"""Benchmark-suite helpers: print each regenerated table/figure."""

from __future__ import annotations


def emit(report: str) -> None:
    """Print a regenerated table/figure so it lands in bench_output.txt."""
    print()
    print(report)
    print()
