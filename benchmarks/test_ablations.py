"""Ablations for the design choices DESIGN.md calls out.

Not paper figures — these quantify *why* the paper's choices work:
block-size/occupancy, the lazy-copy transfer savings, the const-ref
elision, the v3/v4 local-memory decision at kernel level, and the two
chapter-7 extensions (read-only cache placement, grid-accelerated
neighbor search).
"""

import numpy as np
from conftest import emit

from repro.bench.report import format_table
from repro.gpusteer import (
    LaunchGeometry,
    THREADS_PER_BLOCK,
    WorkloadStats,
    neighbor_v2_cost,
    simulate_cost,
    update_time,
)
from repro.simgpu import kernel_time
from repro.steer import DEFAULT_PARAMS

N = 4096


def stats():
    return WorkloadStats.estimate(N, DEFAULT_PARAMS)


# ----------------------------------------------------------------------
def run_block_size_sweep():
    rows = []
    times = {}
    for tpb in (32, 64, 128, 256, 512):
        inputs = neighbor_v2_cost(LaunchGeometry(N, tpb), stats())
        t = kernel_time(inputs)
        times[tpb] = t.total_s
        rows.append(
            (tpb,
             t.occupancy.blocks_per_mp,
             t.occupancy.warps_per_mp,
             t.occupancy.limited_by,
             round(t.total_s * 1e3, 3),
             t.bound_by)
        )
    report = format_table(
        f"Ablation — v2 neighbor kernel block size at {N} agents",
        ["threads/block", "blocks/MP", "warps/MP", "limited by", "time [ms]", "bound"],
        rows,
        note="Occupancy must stay high enough to hide the 400-600 cycle "
        "read latency; beyond that, block size barely matters.",
    )
    return report, times


def test_block_size_sweep(benchmark):
    report, times = benchmark.pedantic(run_block_size_sweep, rounds=3, iterations=1)
    emit(report)
    best, worst = min(times.values()), max(times.values())
    assert worst / best < 2.0  # plateau, not a cliff
    # The paper's 128 sits on the plateau.
    assert times[128] <= best * 1.2


# ----------------------------------------------------------------------
def run_transfer_by_version():
    rows = []
    totals = {}
    for v in (1, 2, 3, 4, 5):
        b = update_time(v, N, DEFAULT_PARAMS, stats())
        per_frame = b.transfer_s + b.host_compute_s
        totals[v] = b.transfer_s
        rows.append(
            (f"v{v}",
             round(b.transfer_s * 1e6, 1),
             round(b.host_compute_s * 1e3, 3),
             round(b.gpu_kernel_s * 1e3, 3))
        )
    report = format_table(
        f"Ablation — per-update host costs by version at {N} agents",
        ["version", "transfers [us]", "host compute [ms]", "GPU [ms]"],
        rows,
        note="Lazy copying pays off in v5: agent state never crosses the "
        "bus, so transfer time drops to zero within the update stage "
        "(only the draw matrices move, in the frame loop).",
    )
    return report, totals


def test_lazy_copy_transfer_savings(benchmark):
    report, totals = benchmark.pedantic(run_transfer_by_version, rounds=3, iterations=1)
    emit(report)
    assert totals[5] == 0.0
    assert totals[3] > 0.0
    assert totals[1] > 0.0


# ----------------------------------------------------------------------
def run_local_cache_ablation():
    rows = []
    times = {}
    for cache, label in ((True, "v3 local-memory cache"), (False, "v4 recompute")):
        inputs = simulate_cost(
            LaunchGeometry(N, THREADS_PER_BLOCK), stats(), local_cache=cache
        )
        t = kernel_time(inputs)
        times[cache] = t.total_s
        rows.append(
            (label,
             round(t.total_s * 1e3, 3),
             f"{inputs.bytes_moved / 2**20:.1f} MiB",
             inputs.issue_cycles)
        )
    report = format_table(
        f"Ablation — caching vs recomputing neighbor data at {N} agents",
        ["variant", "kernel time [ms]", "device-memory traffic", "issue cycles"],
        rows,
        note="§6.2.2: local arrays spill to device memory on the G80, so "
        "recomputing from registers/shared memory wins.",
    )
    return report, times


def test_local_cache_vs_recompute(benchmark):
    report, times = benchmark.pedantic(run_local_cache_ablation, rounds=3, iterations=1)
    emit(report)
    assert times[False] < times[True]  # v4 beats v3
    assert times[True] / times[False] < 1.5  # by percent, not by multiples


# ----------------------------------------------------------------------
def run_readonly_space_ablation():
    from repro.cupp import Device, DeviceVector, Kernel, Vector
    from repro.cuda import global_
    from repro.cupp import ConstRef, Ref
    from repro.simgpu import OpClass
    from repro.simgpu import devicelib as dl
    from repro.simgpu.isa import op, st

    @global_
    def gather(ctx, src: ConstRef[DeviceVector], out: Ref[DeviceVector]):
        i = ctx.global_thread_id
        total = 0.0
        for j in range(len(src)):
            v = yield from dl.ld_auto(src, j)
            total += v
            yield op(OpClass.FADD)
        yield st(out.view, i, total)

    n = 64
    rows = []
    data = {}
    for space in ("global", "texture", "constant"):
        dev = Device()
        src = Vector(np.ones(n, np.float32), readonly_space=space)
        out = Vector(np.zeros(32, np.float32), dtype=np.float32)
        Kernel(gather, 1, 32)(dev, src, out)
        p = dev.runtime.last_launch.profile
        data[space] = p.bytes_read
        rows.append(
            (space, f"{p.bytes_read:,}", p.global_read_transactions,
             p.texture_hits or p.constant_hits or "-")
        )
        dev.close()
    report = format_table(
        "Ablation — const-ref vector placement (ch. 7 extension)",
        ["space", "device bytes read", "transactions", "cache hits"],
        rows,
        note="Every thread scans the whole vector (the Boids pattern): "
        "the texture cache turns the uncoalesced broadcast reads into "
        "line hits; constant memory broadcasts them for free.",
    )
    return report, data


def test_readonly_space_placement(benchmark):
    report, data = benchmark.pedantic(run_readonly_space_ablation, rounds=1, iterations=1)
    emit(report)
    assert data["texture"] * 20 < data["global"]
    assert data["constant"] <= data["texture"]


# ----------------------------------------------------------------------
def run_gl_interop_ablation():
    """§3.2's unused OpenGL interop: keep the draw matrices on the device.

    The paper's v5 copies 64 bytes/agent back every frame; a mapped GL
    buffer object removes the transfer entirely.  Measured on the serial
    (non-double-buffered) schedule, where the blocking fetch sits on the
    critical path — the stream-overlapped double-buffer schedule already
    hides the fetch behind the render, so interop saves nothing there.
    """
    from repro.gpusteer.double_buffer import simulate_frames

    rows = []
    saved = {}
    for n in (4096, 8192, 16384, 32768):
        plain = simulate_frames(
            n, DEFAULT_PARAMS, double_buffered=False, gl_interop=False
        )
        interop = simulate_frames(
            n, DEFAULT_PARAMS, double_buffered=False, gl_interop=True
        )
        saved[n] = plain - interop
        rows.append(
            (n, round(1 / plain, 1), round(1 / interop, 1),
             f"{saved[n] * 1e6:.0f} us/frame",
             f"{(plain / interop - 1) * 100:.2f}%")
        )
    report = format_table(
        "Ablation — GL buffer-object interop for the draw matrices",
        ["agents", "fps (memcpy)", "fps (interop)", "saved", "fps gain"],
        rows,
        note="The paper's v5 ships 64 B/agent over PCIe per frame; mapping "
        "a GL buffer object (§3.2 interop, unused in the paper) removes "
        "it from the serial schedule.  The absolute saving grows linearly "
        "with the flock, but the O(n^2) update dwarfs it — and the "
        "stream-overlapped double-buffer schedule hides the fetch anyway, "
        "so the paper lost little by skipping interop.",
    )
    return report, saved


def test_gl_interop_saves_the_matrix_transfer(benchmark):
    report, saved = benchmark.pedantic(
        run_gl_interop_ablation, rounds=2, iterations=1
    )
    emit(report)
    # Absolute per-frame saving is the (linear) transfer: grows with n.
    ns = sorted(saved)
    assert saved[ns[-1]] > saved[ns[0]]
    assert all(s >= -1e-6 for s in saved.values())  # never hurts
    assert saved[32768] > 0.4e-3  # ~2 MiB over PCIe is real time


# ----------------------------------------------------------------------
def run_multicore_cpu_ablation():
    """What would the cited OpenMP baseline [KLar] change?

    Even a perfectly-scaled multicore CPU cannot catch version 5: the
    O(n^2) neighbor search dominates, and the GPU's advantage (~42x) far
    exceeds any 2007-era core count.
    """
    from repro.bench.calibration import DEFAULT_CALIBRATION

    cpu = DEFAULT_CALIBRATION.cpu_model()
    v5 = update_time(5, N, DEFAULT_PARAMS, stats())
    rows = []
    speedups = {}
    for cores in (1, 2, 4, 8):
        t = cpu.seconds(cpu.parallel_update_cycles(N, N, cores))
        over_gpu = t / v5.total_s
        speedups[cores] = over_gpu
        rows.append(
            (cores, round(1.0 / t, 1), round(v5.updates_per_second, 1),
             f"{over_gpu:.1f}x slower")
        )
    report = format_table(
        f"Ablation — OpenMP-style multicore CPU [KLar] vs version 5 at {N} agents",
        ["CPU cores", "CPU updates/s", "v5 updates/s", "CPU vs GPU"],
        rows,
        note="The paper's CPU baseline descends from Knafla & Leopold's "
        "OpenMP parallelization; even 8 idealized cores stay an order of "
        "magnitude behind the G80.",
    )
    return report, speedups


def test_multicore_cpu_never_catches_the_gpu(benchmark):
    report, speedups = benchmark.pedantic(
        run_multicore_cpu_ablation, rounds=3, iterations=1
    )
    emit(report)
    # Monotone improvement with cores...
    vals = [speedups[c] for c in sorted(speedups)]
    assert vals == sorted(vals, reverse=True)
    # ...but still >5x behind the GPU at 8 cores.
    assert speedups[8] > 5.0
    assert speedups[1] > 30.0


# ----------------------------------------------------------------------
def run_grid_vs_brute():
    from repro.cupp import Device, Kernel, Vector
    from repro.gpusteer import (
        MAX_NEIGHBORS,
        find_neighbors_grid,
        find_neighbors_v2,
        project_cost,
    )
    from repro.gpusteer.grid_search import HostGrid

    rng = np.random.default_rng(17)

    def measure(n):
        cloud = rng.uniform(-45, 45, size=(n, 3)).astype(np.float32)
        dev = Device()
        grid = HostGrid(DEFAULT_PARAMS.world_radius, DEFAULT_PARAMS.search_radius)
        grid.build(cloud.astype(np.float64))
        pos = Vector(cloud.reshape(-1), dtype=np.float32)
        res = Vector(np.full(MAX_NEIGHBORS * n, -1, np.int32), dtype=np.int32)
        Kernel(find_neighbors_grid, n // 32, 32)(
            dev, grid, pos, DEFAULT_PARAMS.search_radius, res
        )
        return dev.runtime.last_launch.profile

    p32, p64 = measure(32), measure(64)
    rows = []
    times = {}
    for n_target in (1024, 4096, 16384):
        grid_inputs = project_cost(p32, p64, 32, 64, n_target, THREADS_PER_BLOCK)
        brute_inputs = neighbor_v2_cost(
            LaunchGeometry(n_target, THREADS_PER_BLOCK),
            WorkloadStats.estimate(n_target, DEFAULT_PARAMS),
        )
        tg = kernel_time(grid_inputs).total_s
        tb = kernel_time(brute_inputs).total_s
        times[n_target] = (tg, tb)
        rows.append(
            (n_target, round(tg * 1e3, 3), round(tb * 1e3, 3), round(tb / tg, 1))
        )
    report = format_table(
        "Ablation — grid-accelerated vs brute-force neighbor search (ch. 7)",
        ["agents", "grid [ms]", "brute v2 [ms]", "speedup"],
        rows,
        note="Host-built uniform grid (O(n) counting sort), CSR layout on "
        "the device: the kernel scans 27 cells instead of all agents.",
    )
    return report, times


def test_grid_beats_brute_at_scale(benchmark):
    report, times = benchmark.pedantic(run_grid_vs_brute, rounds=1, iterations=1)
    emit(report)
    for n_target, (tg, tb) in times.items():
        if n_target >= 4096:
            assert tg < tb, f"grid should win at {n_target}"
    # And the advantage grows with population.
    speedups = [tb / tg for tg, tb in times.values()]
    assert speedups == sorted(speedups)
