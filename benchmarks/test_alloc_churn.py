"""Allocation churn — the repro.mem caching allocator vs raw driver."""

from conftest import emit

from repro.bench.harness import run_alloc_churn


def test_alloc_churn(benchmark):
    exp = benchmark.pedantic(run_alloc_churn, rounds=2, iterations=1)
    emit(exp.report)
    serve = exp.data["serve"]
    vector = exp.data["vector"]

    # The tentpole claim: the pool absorbs serving's allocation churn —
    # after warmup the steady state never touches the raw driver.
    assert serve["alloc_reduction_gain"] >= 5.0
    assert serve["steady_hit_rate"] >= 0.8
    assert serve["steady_raw_allocs_pooled"] == 0
    assert serve["steady_raw_allocs_nopool"] > 0
    assert serve["warmup_raw_allocs_pooled"] > 0
    assert serve["completed"] > 0

    # Vector growth pays the driver once per power-of-two bin, then
    # every subsequent realloc is a cache hit.
    assert vector["alloc_reduction_gain"] >= 5.0
    assert vector["hit_rate"] >= 0.8
    assert vector["reallocs"] > 0
    assert vector["raw_allocs_pooled"] < vector["raw_allocs_nopool"]
