"""Fig 1.1 — GPU vs CPU peak floating-point performance by generation."""

from conftest import emit

from repro.bench.harness import run_fig_1_1


def test_fig_1_1_gpu_cpu_flops_gap(benchmark):
    exp = benchmark.pedantic(run_fig_1_1, rounds=3, iterations=1)
    emit(exp.report)
    gpu = exp.data["gpu"]
    cpu = exp.data["cpu"]
    years = sorted(gpu)
    # The GPU leads every year, by a large (roughly order-of-magnitude)
    # factor at the G80 point, and its curve grows much faster.
    for year in years:
        assert gpu[year] > 2 * cpu[year]
    assert gpu[years[-1]] / cpu[years[-1]] >= 4
    gpu_growth = gpu[years[-1]] / gpu[years[0]]
    cpu_growth = cpu[years[-1]] / cpu[years[0]]
    assert gpu_growth > cpu_growth
