"""Fig 5.5 — where the CPU Boids demo spends its cycles."""

from conftest import emit

from repro.bench.harness import run_fig_5_5


def test_fig_5_5_neighbor_search_dominates(benchmark):
    exp = benchmark.pedantic(run_fig_5_5, rounds=2, iterations=1)
    emit(exp.report)
    # Paper: "about 82%" of update-stage cycles at the demo population.
    assert 0.78 <= exp.data["neighbor_share"] <= 0.90


def test_fig_5_5_share_grows_with_population(benchmark):
    # The O(n^2) term can only grow relative to the O(n) rest.
    exp_small = run_fig_5_5(n=512, steps=2)
    exp_large = benchmark.pedantic(
        run_fig_5_5, kwargs={"n": 4096, "steps": 2}, rounds=1, iterations=1
    )
    emit(exp_large.report)
    assert exp_large.data["neighbor_share"] > exp_small.data["neighbor_share"]
    assert exp_large.data["neighbor_share"] > 0.93
