"""Fig 5.6 — CPU Boids scaling with and without think frequency."""

from conftest import emit

from repro.bench.harness import run_fig_5_6


def test_fig_5_6_cpu_scaling(benchmark):
    exp = benchmark.pedantic(run_fig_5_6, rounds=3, iterations=1)
    emit(exp.report)
    without = exp.data["without"]
    with_tf = exp.data["with_tf"]
    ns = sorted(without)

    # Without think frequency: O(n^2) — doubling agents roughly quarters
    # the update rate once the neighbor search dominates.
    for a, b in zip(ns[1:], ns[2:]):
        ratio = without[a] / without[b]
        assert 3.2 <= ratio <= 4.3, f"{a}->{b}: {ratio:.2f}"

    # Think frequency lifts the curve by roughly the 1/10 factor.
    for n in ns:
        gain = with_tf[n] / without[n]
        assert 5.0 <= gain <= 10.5, f"n={n}: {gain:.2f}"

    # But it cannot change the asymptotic complexity (§5.3): the with-TF
    # curve still tends quadratic at scale.
    tail_ratio = with_tf[ns[-2]] / with_tf[ns[-1]]
    assert tail_ratio >= 3.0
