"""Fig 6.2 — update rate of each development version at 4096 agents."""

from conftest import emit

from repro.bench.harness import PAPER_LADDER, run_fig_6_2

TOLERANCE = 0.35  # ours is a model of their testbed, not their testbed


def test_fig_6_2_version_ladder(benchmark):
    exp = benchmark.pedantic(run_fig_6_2, rounds=1, iterations=1)
    emit(exp.report)
    speedups = exp.data["speedups"]

    # Every paper anchor within the tolerance band.
    for version, paper in PAPER_LADDER.items():
        got = speedups[version]
        assert paper * (1 - TOLERANCE) <= got <= paper * (1 + TOLERANCE), (
            f"v{version}: {got:.1f}x vs paper {paper}x"
        )

    # The qualitative shape.
    ladder = [speedups[v] for v in range(6)]
    assert ladder == sorted(ladder), "versions must improve monotonically"
    assert 2.5 <= speedups[2] / speedups[1] <= 4.5  # the shared-memory jump
    assert 1.0 < speedups[4] / speedups[3] <= 1.25  # v4 slightly over v3
    assert speedups[5] / speedups[4] > 1.1  # v5's transfer elision
