"""Fig 6.3 — version-5 scaling across populations, with measured
workload statistics from live flocks."""

from conftest import emit

from repro.bench.harness import run_fig_6_3


def test_fig_6_3_v5_scaling(benchmark):
    exp = benchmark.pedantic(run_fig_6_3, rounds=1, iterations=1)
    emit(exp.report)
    without = exp.data["without"]
    with_tf = exp.data["with_tf"]

    # Without think frequency the O(n^2) nature is clearly visible at
    # scale (paper: "similar behavior ... the O(n^2) nature of the
    # problem is clearly visible").
    assert without[16384] / without[32768] >= 3.0

    # With think frequency: near-linear up to 16384 ...
    prev = with_tf[2048]
    for n in (4096, 8192, 16384):
        assert prev / with_tf[n] <= 2.5, f"too steep at {n}"
        prev = with_tf[n]
    # ... then a sharp (paper: ~4.8x) drop at 32768 from the combination
    # of complexity and increased warp divergence.
    final_drop = with_tf[16384] / with_tf[32768]
    assert 3.0 <= final_drop <= 6.5

    # Think frequency dominates everywhere at scale.
    for n in (8192, 16384, 32768):
        assert with_tf[n] > without[n]
