"""Fig 6.4 — frame-rate improvement from double buffering."""

from conftest import emit

from repro.bench.harness import run_fig_6_4


def test_fig_6_4_double_buffering(benchmark):
    exp = benchmark.pedantic(run_fig_6_4, rounds=2, iterations=1)
    emit(exp.report)
    gains = exp.data["gains"]
    no_tf = gains["think freq off"]
    tf = gains["think freq 1/10"]

    # Paper band: 12%-32%; the model is allowed to breathe slightly.
    for n, g in {**no_tf, **tf}.items():
        assert 3.0 <= g <= 40.0, f"n={n}: gain {g:.1f}% out of band"

    # Peaks where host and device finish together (§6.3.2).
    assert max(no_tf, key=no_tf.get) == 8192
    assert max(tf, key=tf.get) == 32768

    # The no-TF peak gain falls in the paper's upper range.
    assert 25.0 <= no_tf[8192] <= 40.0
