"""§7 — the pay-once cost of CuPP's kernel-signature analysis.

The paper measures CuPP's template metaprogramming at compile time
(3.1 s -> 7.3 s for the Boids scenario).  The Python analog runs once per
``cupp.Kernel`` construction; this benchmark measures it and checks the
shape: construction is much dearer than a bare launch configuration, but
amortized to nothing across kernel *calls*.
"""

from conftest import emit

from repro.bench.harness import run_sec_7_traits


def test_sec_7_traits_overhead(benchmark):
    exp = benchmark.pedantic(run_sec_7_traits, rounds=1, iterations=1)
    emit(exp.report)
    analysis = exp.data["analysis_s"]
    bare = exp.data["bare_s"]
    kernel = exp.data["kernel_s"]
    # The analysis dominates Kernel construction and dwarfs a bare config.
    assert kernel >= analysis * 0.5
    assert kernel > 5 * bare
    # But it stays a pay-once cost in the microsecond range — nothing
    # that appears per launch.
    assert analysis < 5e-3
