"""Serving SLO — dynamic batching vs per-request launches."""

from conftest import emit

from repro.bench.harness import run_serve_slo


def test_serve_slo(benchmark):
    exp = benchmark.pedantic(run_serve_slo, rounds=2, iterations=1)
    emit(exp.report)
    batched = exp.data["batched"]
    per_request = exp.data["per_request"]

    # The tentpole claim: at the same offered load, batching completes
    # more requests with measurably fewer modelled kernel launches.
    assert exp.data["throughput_gain"] > 1.2
    assert exp.data["launch_ratio"] > 3.0
    assert batched["launches"] < per_request["launches"]

    # The per-request baseline is genuinely saturated — its bounded
    # queue overflowed — while the batched service absorbed the load.
    assert per_request["rejected"] > 0
    assert batched["rejected"] == 0

    # Batching trades a bounded queueing delay for throughput; under
    # overload the per-request path's p99 is far worse anyway.
    assert batched["p99_ms"] < per_request["p99_ms"]
    assert batched["mean_batch_size"] > 4.0
