"""Table 2.1 — memory address spaces: hardware mapping and accessibility.

The table is semantic, so the "benchmark" demonstrates each cell on the
simulator: shared memory is block-scoped and host-inaccessible, global
memory is device+host accessible, host pointers never work on the device.
"""

import numpy as np
import pytest
from conftest import emit

from repro.bench.report import format_table
from repro.simgpu import InvalidDeviceAccess, SimDevice
from repro.simgpu.isa import ld, lds, op, st, sts
from repro.simgpu.costs import OpClass
from repro.simgpu.memory import DeviceArrayView


def demonstrate_table_2_1() -> str:
    dev = SimDevice()
    mem = dev.memory

    # global: device read & write, host read & write (via memcpy).
    ptr = mem.alloc(128)
    view = DeviceArrayView(mem, ptr, np.dtype(np.float32), 32)
    mem.copy_in(ptr, np.full(32, 2.0, np.float32))  # host write

    def kernel(ctx):
        sh = ctx.shared_array("s", np.float32, 32)
        i = ctx.thread_idx.x
        v = yield ld(view, i)  # device read of global
        yield sts(sh, i, v * 2)  # device write of shared
        w = yield lds(sh, i)  # device read of shared
        yield st(view, i, w)  # device write of global

    dev.launch(kernel, 1, 32, ())
    host_read = mem.copy_out(ptr, 128).view(np.float32)  # host read
    assert (host_read == 4.0).all()

    # shared: no host access path exists (only kernels reach ctx.shared_array)
    # local: thread-scoped, spills to device memory (ctx.local_array).
    # host pointer on device / device pointer on host: rejected.
    try:
        ptr[0]
        host_deref = "allowed (BUG)"
    except InvalidDeviceAccess:
        host_deref = "rejected"

    rows = [
        ("local", "registers & device", "read & write", "no", "ctx.local_array"),
        ("shared", "shared", "read & write", "no", "ctx.shared_array"),
        ("global", "device", "read & write", "read & write", "cudaMemcpy"),
        ("(device ptr deref on host)", "-", "-", host_deref, "DevicePtr.__getitem__"),
    ]
    return format_table(
        "Table 2.1 — memory space mapping and accessibility",
        ["software space", "hardware type", "device access", "host access", "simulated via"],
        rows,
        note="All four rows demonstrated live on the simulator above.",
    )


def test_table_2_1_memory_spaces(benchmark):
    report = benchmark.pedantic(demonstrate_table_2_1, rounds=2, iterations=1)
    emit(report)
    assert "rejected" in report
