"""Table 2.2 — instruction costs, measured with emulator micro-kernels.

Each instruction class runs in a one-warp kernel; the measured serialized
cycles per warp must reproduce the table row by row.
"""

import numpy as np
from conftest import emit

from repro.bench.report import format_table
from repro.simgpu import G80_COSTS, OpClass, SimDevice
from repro.simgpu.isa import ld, lds, op, st, sts, sync
from repro.simgpu.memory import DeviceArrayView

REPS = 50


def _measure(device: SimDevice, body_factory) -> float:
    """Serialized cycles per instruction: run REPS instructions in one
    warp, subtract nothing (the kernel body is only the instruction)."""

    def kernel(ctx):
        yield from body_factory(ctx)

    result = device.launch(kernel, 1, 32, ())
    return result.profile.serialized_cycles(G80_COSTS) / REPS


def measure_table_2_2() -> tuple[str, dict[str, float]]:
    dev = SimDevice()
    arr_ptr = dev.memory.alloc(4 * 32)
    arr = DeviceArrayView(dev.memory, arr_ptr, np.dtype(np.float32), 32)

    def arith(op_class):
        def body(ctx):
            yield op(op_class, REPS)

        return body

    def shared_read(ctx):
        sh = ctx.shared_array("s", np.float32, 32)
        for _ in range(REPS):
            _ = yield lds(sh, ctx.thread_idx.x)

    def global_read(ctx):
        for _ in range(REPS):
            _ = yield ld(arr, ctx.thread_idx.x)

    def global_write(ctx):
        for _ in range(REPS):
            yield st(arr, ctx.thread_idx.x, 1.0)

    def syncs(ctx):
        for _ in range(REPS):
            yield sync()

    measured = {
        "FADD": _measure(dev, arith(OpClass.FADD)),
        "FMUL": _measure(dev, arith(OpClass.FMUL)),
        "FMAD": _measure(dev, arith(OpClass.FMAD)),
        "IADD": _measure(dev, arith(OpClass.IADD)),
        "bitwise": _measure(dev, arith(OpClass.BITWISE)),
        "compare": _measure(dev, arith(OpClass.COMPARE)),
        "min/max": _measure(dev, arith(OpClass.MINMAX)),
        "reciprocal": _measure(dev, arith(OpClass.RCP)),
        "rsqrt": _measure(dev, arith(OpClass.RSQRT)),
        "register access": _measure(dev, arith(OpClass.REGISTER)),
        "shared memory access": _measure(dev, lambda ctx: shared_read(ctx)),
        "device memory read": _measure(dev, lambda ctx: global_read(ctx)),
        "device memory write (issue)": _measure(dev, lambda ctx: global_write(ctx)),
        "__syncthreads (no waiting)": _measure(dev, lambda ctx: syncs(ctx)),
    }
    paper = {
        "FADD": "4", "FMUL": "4", "FMAD": "4", "IADD": "4",
        "bitwise": "4", "compare": "4", "min/max": "4",
        "reciprocal": "16", "rsqrt": "16",
        "register access": "0",
        "shared memory access": ">= 4",
        "device memory read": "400 - 600",
        "device memory write (issue)": "fire-and-forget",
        "__syncthreads (no waiting)": "4 + waiting",
    }
    rows = [(k, f"{v:.0f}", paper[k]) for k, v in measured.items()]
    report = format_table(
        "Table 2.2 — instruction costs (cycles per warp), measured",
        ["instruction", "measured", "paper"],
        rows,
    )
    return report, measured


def test_table_2_2_costs(benchmark):
    report, measured = benchmark.pedantic(
        measure_table_2_2, rounds=2, iterations=1
    )
    emit(report)
    for name in ("FADD", "FMUL", "FMAD", "IADD", "bitwise", "compare", "min/max"):
        assert measured[name] == 4
    assert measured["reciprocal"] == 16
    assert measured["rsqrt"] == 16
    assert measured["register access"] == 0
    assert measured["shared memory access"] >= 4
    assert 400 <= measured["device memory read"] <= 600
    # Writes are fire-and-forget: an order of magnitude below reads.
    assert measured["device memory write (issue)"] * 10 <= measured[
        "device memory read"
    ]
    assert measured["__syncthreads (no waiting)"] == 4
