"""Table 6.1 — which substage each development version runs on the device.

The matrix is verified two ways: statically against the VersionSpec
registry, and *behaviourally* by running every version end-to-end on the
emulator and checking what crossed the host/device boundary.
"""

from conftest import emit

from repro.bench.report import format_table
from repro.gpusteer import EmulatedBoids, VERSIONS


def run_table_6_1():
    rows = []
    behaviour = {}
    for v in (1, 2, 3, 4, 5):
        spec = VERSIONS[v]
        eb = EmulatedBoids(32, version=v, seed=2)
        eb.step()
        eb.step()
        behaviour[v] = {
            # If the host computed steering, it must have pulled the
            # neighbor results (v1/v2) back.
            "results_downloaded": eb.results.downloads > 0,
            # If modification ran on the host, positions were re-uploaded
            # for the second step's kernel.
            "positions_reuploaded": eb.positions.uploads > 1,
        }
        rows.append(
            (f"v{v}",
             "device" if spec.neighbor_on_device else "host",
             "device" if spec.steering_on_device else "host",
             "device" if spec.modification_on_device else "host",
             "yes" if spec.uses_shared_memory else "no",
             "yes" if spec.local_mem_caching else "no")
        )
    report = format_table(
        "Table 6.1 — development versions: where each substage runs",
        ["version", "neighbor search", "steering calc", "modification",
         "shared memory", "local-mem cache"],
        rows,
    )
    return report, behaviour


def test_table_6_1(benchmark):
    report, behaviour = benchmark.pedantic(run_table_6_1, rounds=1, iterations=1)
    emit(report)
    # v1/v2: host steering needs the results; v3+: it does not.
    assert behaviour[1]["results_downloaded"]
    assert behaviour[2]["results_downloaded"]
    for v in (3, 4, 5):
        assert not behaviour[v]["results_downloaded"]
    # v1-v4: host modification dirties state -> re-upload; v5 never does.
    for v in (1, 2, 3, 4):
        assert behaviour[v]["positions_reuploaded"]
    assert not behaviour[5]["positions_reuploaded"]
