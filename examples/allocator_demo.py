#!/usr/bin/env python3
"""Memory-pooling tour: the repro.mem caching allocator at work.

Walks the allocator's whole surface on a small simulated device:

1. an allocation-churn loop run twice — against the raw driver and
   through the pool — counting raw driver calls each way,
2. the pool's two tiers (pow-2 bins for small blocks, the segment
   arena with split/coalesce for large ones) and watermark trimming,
3. double-free detection (``CuppInvalidFree``), and
4. a forced out-of-memory showing the flush-and-retry path and the
   fragmentation report ``OutOfMemory`` carries.

Run:  python examples/allocator_demo.py
"""

from repro import obs
from repro.cuda.runtime import CudaMachine
from repro.cupp import Device
from repro.cupp.exceptions import CuppInvalidFree, OutOfMemory
from repro.mem import PoolConfig
from repro.simgpu.arch import scaled_arch

MIB = 1 << 20


def make_device(memory_bytes: int) -> Device:
    machine = CudaMachine(
        [scaled_arch("allocator-demo", 4, memory_bytes=memory_bytes)]
    )
    return Device(machine=machine)


def churn(device: Device, rounds: int = 200) -> int:
    """A serving-shaped workload: transient buffers of a few sizes."""
    raw = obs.counter("cuda.malloc.count")
    before = raw.value
    for i in range(rounds):
        staging = device.alloc(4096 + (i % 4) * 1024)
        result = device.alloc(16 * 1024)
        device.free(staging)
        device.free(result)
    return int(raw.value - before)


def main() -> None:
    print("=== 1. churn: raw driver vs pool ===")
    device = make_device(64 * MIB)
    raw_calls = churn(device)
    print(f"raw driver     : {raw_calls} cudaMalloc calls for 400 allocs")

    pool = device.enable_pool()
    pooled_calls = churn(device)
    s = pool.stats()
    print(
        f"with the pool  : {pooled_calls} cudaMalloc calls "
        f"(hit rate {s.hit_rate * 100:.1f}%, "
        f"{s.bytes_cached:,} bytes cached for reuse)"
    )

    print()
    print("=== 2. bins, arena, trim ===")
    small = device.alloc(1000)  # bins: rounds up to 1024
    big = device.alloc(3 * MIB)  # arena: carves a segment
    device.free(small)
    device.free(big)
    snap = pool.snapshot()
    print(f"bins cached    : {snap['bins']}")
    print(
        f"arena segments : {len(snap['segments'])} "
        f"(coalesced back to {snap['segments'][0]['blocks']} block)"
    )
    released = pool.trim(0)
    print(f"trim(0)        : released {released:,} bytes back to the driver")

    print()
    print("=== 3. double free ===")
    p = device.alloc(2048)
    device.free(p)
    try:
        device.free(p)
    except CuppInvalidFree as exc:
        print(f"caught         : {exc}")

    print()
    print("=== 4. OOM: flush, retry, report ===")
    tiny = make_device(1 * MIB)
    tiny_pool = tiny.enable_pool(PoolConfig(trim_enabled=False))
    # Fill the cache, then ask for a block only a flush can satisfy.
    for ptr in [tiny.alloc(100_000) for _ in range(7)]:
        tiny.free(ptr)
    tiny.alloc(400_000)
    print(
        f"flush-and-retry: succeeded after "
        f"{tiny_pool.stats().oom_flushes} cache flush"
    )
    try:
        tiny.alloc(2 * MIB)  # bigger than the whole device
    except OutOfMemory as exc:
        print("hard OOM report:")
        for key in (
            "requested",
            "bytes_in_use",
            "bytes_reserved",
            "flushed_bytes",
            "device_free_bytes",
            "device_largest_free_bytes",
            "fragmentation",
        ):
            print(f"  {key:26s}= {exc.report[key]}")

    device.close()
    tiny.close()


if __name__ == "__main__":
    main()
