#!/usr/bin/env python3
"""The paper's headline experiment as a demo: GPU-accelerated flocking.

Runs the OpenSteer Boids scenario three ways —

* the CPU reference path (modelled Athlon 64 timing),
* the *emulated* GPU path: a small flock driven through real CuPP kernel
  launches on the SIMT emulator (what the correctness tests use),
* the *paper-scale* modelled path: 4096 agents, all five development
  versions, reproducing the Fig. 6.2 ladder,

and prints a terminal rendering of the flock so the emergent behaviour
(§5.1: "the group behavior itself is an emergent phenomenon") is visible.

Run:  python examples/boids_demo.py
"""

import numpy as np

from repro.bench.harness import run_fig_6_2
from repro.gpusteer import EmulatedBoids
from repro.steer import DEFAULT_PARAMS, ReferenceSimulation, Simulation


def ascii_flock(positions: np.ndarray, world_radius: float, size: int = 31) -> str:
    """Top-down (x, z) density plot of the flock."""
    grid = np.zeros((size, size), dtype=int)
    scale = (size - 1) / (2 * world_radius)
    xs = ((positions[:, 0] + world_radius) * scale).astype(int).clip(0, size - 1)
    zs = ((positions[:, 2] + world_radius) * scale).astype(int).clip(0, size - 1)
    np.add.at(grid, (zs, xs), 1)
    shades = " .:+*#@"
    lines = []
    for row in grid:
        lines.append(
            "".join(shades[min(c, len(shades) - 1)] for c in row)
        )
    return "\n".join(lines)


def main() -> None:
    params = DEFAULT_PARAMS

    # --- 1. Watch a flock emerge (functional engine). -------------------
    print("flock of 256 boids after 0 and 120 steps (top-down density):\n")
    import dataclasses

    dense = dataclasses.replace(params, world_radius=22.0)
    sim = Simulation(256, dense, seed=7, engine="kdtree")
    before = ascii_flock(sim.positions, dense.world_radius)
    pol0 = float(np.linalg.norm(sim.forwards.mean(axis=0)))
    sim.run(120)
    after = ascii_flock(sim.positions, dense.world_radius)
    pol1 = float(np.linalg.norm(sim.forwards.mean(axis=0)))
    for a, b in zip(before.splitlines(), after.splitlines()):
        print(f"  {a}   {b}")
    print(f"\n  polarization |mean(forward)|: {pol0:.3f} -> {pol1:.3f}")

    # --- 2. The GPU pipeline, for real, on the emulator. -----------------
    print("\nemulated GPU pipeline (version 5, 32 agents, real CuPP calls):")
    eb = EmulatedBoids(32, version=5, seed=11)
    ref = ReferenceSimulation(32, params, seed=11)
    for _ in range(3):
        eb.step()
        ref.update()
    diff = np.abs(
        eb.snapshot()["positions"] - ref.state_snapshot()["positions"]
    ).max()
    print(f"  3 steps, max deviation from the CPU reference: {diff:.2e}")
    print(f"  agent-state uploads: {eb.positions.uploads} "
          "(state stays on the device, §6.2.3)")
    launches = eb.device.runtime.launch_count
    print(f"  kernel launches: {launches} (simulate + modify per step)")

    # --- 3. Fig 6.2 at paper scale. --------------------------------------
    print("\npaper-scale version ladder (4096 agents, modelled timing):\n")
    exp = run_fig_6_2()
    print(exp.report)


if __name__ == "__main__":
    main()
