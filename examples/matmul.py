#!/usr/bin/env python3
"""Tiled matrix multiplication with 2D thread/block indexing.

The paper cites NVIDIA's matrix multiplication sample as the canonical
use of multi-dimensional indexing: "the addressing scheme ... is mostly
used to simplify the mapping of data elements to threads — e.g. see the
matrix-vector multiplication provided by NVIDIA" (§2.2).  This example
reproduces that sample on the simulator: C = A x B with 2D blocks, 2D
grids, and the classic shared-memory tile algorithm.

It is also the showcase for 2D ``Dim3`` indexing, which the Boids
scenario (1D throughout, §2.2) never touches.

Run:  python examples/matmul.py
"""

import numpy as np

from repro.cuda import global_
from repro.cupp import ConstRef, Device, DeviceVector, Kernel, Ref, Vector
from repro.simgpu import Dim3, OpClass
from repro.simgpu.isa import ld, lds, op, st, sts, sync

TILE = 4  # TILE x TILE threads per block


@global_
def matmul_kernel(
    ctx,
    a: ConstRef[DeviceVector],
    b: ConstRef[DeviceVector],
    c: Ref[DeviceVector],
    size: int,
):
    """C[row, col] = sum_k A[row, k] * B[k, col], tile by tile."""
    s_a = ctx.shared_array("s_a", np.float32, TILE * TILE)
    s_b = ctx.shared_array("s_b", np.float32, TILE * TILE)

    row = ctx.block_idx.y * TILE + ctx.thread_idx.y
    col = ctx.block_idx.x * TILE + ctx.thread_idx.x
    tx, ty = ctx.thread_idx.x, ctx.thread_idx.y

    acc = 0.0
    for base in range(0, size, TILE):
        # Stage one element of each operand tile per thread.
        av = yield ld(a.view, row * size + (base + tx))
        bv = yield ld(b.view, (base + ty) * size + col)
        yield sts(s_a, ty * TILE + tx, av)
        yield sts(s_b, ty * TILE + tx, bv)
        yield sync()
        for k in range(TILE):
            x = yield lds(s_a, ty * TILE + k)
            y = yield lds(s_b, k * TILE + tx)
            yield op(OpClass.FMAD)
            acc += x * y
        yield sync()
    yield st(c.view, row * size + col, acc)


def main() -> None:
    n = 8  # matrices are n x n; grid is (n/TILE) x (n/TILE) blocks
    rng = np.random.default_rng(2)
    a = rng.standard_normal((n, n)).astype(np.float32)
    b = rng.standard_normal((n, n)).astype(np.float32)

    device = Device()
    va = Vector(a.reshape(-1), dtype=np.float32)
    vb = Vector(b.reshape(-1), dtype=np.float32)
    vc = Vector(np.zeros(n * n, np.float32), dtype=np.float32)

    kernel = Kernel(
        matmul_kernel,
        grid_dim=Dim3(n // TILE, n // TILE),  # 2D grid (§2.2)
        block_dim=Dim3(TILE, TILE),  # 2D blocks
    )
    kernel(device, va, vb, vc, n)

    got = vc.to_numpy().reshape(n, n)
    want = a.astype(np.float64) @ b.astype(np.float64)
    err = np.abs(got - want).max()
    profile = device.runtime.last_launch.profile

    print(f"C = A x B, {n}x{n}, {TILE}x{TILE} tiles, "
          f"{(n // TILE) ** 2} blocks of {TILE * TILE} threads")
    print(f"  max |error| vs numpy float64 : {err:.2e}")
    print(f"  shared accesses              : {profile.shared_accesses}")
    print(f"  bank conflicts               : {profile.shared_bank_conflicts}")
    print(f"  divergent rounds             : {profile.divergent_rounds} "
          "(uniform control flow)")
    assert err < 1e-4
    assert profile.divergent_rounds == 0
    device.close()


if __name__ == "__main__":
    main()
