#!/usr/bin/env python3
"""Multiple devices in one host thread — chapter 7's future work, built.

The paper: "the CuPP framework currently misses support for multiple
devices in one thread" (ch. 7) but "is designed to offer multiple devices
to the same host thread with only minor interface changes" (§4.1).

This example drives a 4-GPU machine from one host thread: a vector is
*sharded* across the group, one kernel launch per device runs
concurrently (kernel calls are asynchronous, §2.2), and the mutated
shards gather back into the source vector.

Run:  python examples/multi_device.py
"""

import numpy as np

from repro.cuda import CudaMachine, global_
from repro.cupp import DeviceGroup, DeviceVector, MultiKernel, Ref, shard
from repro.cupp import Vector
from repro.simgpu import OpClass, scaled_arch
from repro.simgpu.isa import ld, op, st


@global_
def smooth_kernel(ctx, v: Ref[DeviceVector]):
    """A little stencil-ish workload: v[i] <- v[i] * 0.5 + 0.25."""
    i = ctx.global_thread_id
    if i < len(v):
        x = yield ld(v.view, i)
        yield op(OpClass.FMAD)
        yield st(v.view, i, x * 0.5 + 0.25)


def main() -> None:
    # A machine with four (simulated) boards of different sizes.
    machine = CudaMachine(
        [
            scaled_arch("8800 GTS board 0", 12),
            scaled_arch("8800 GTS board 1", 12),
            scaled_arch("8600 GT board 2", 4),
            scaled_arch("8600 GT board 3", 4),
        ]
    )

    with DeviceGroup(machine) as group:
        print(f"device group of {len(group)}:")
        for d in group:
            print(f"  {d.name}: {d.multiprocessors} multiprocessors")

        n = 512
        v = Vector(np.zeros(n, np.float32))
        mk = MultiKernel(smooth_kernel)
        mk.for_chunks(group, total=n, block=32)

        for step in range(3):
            mk(group, shard(v))
        # Fixed point of x -> x/2 + 1/4 is 1/2; three steps from 0:
        # 0 -> .25 -> .375 -> .4375
        result = v.to_numpy()
        print(f"\nafter 3 sharded launches: v[0] = {result[0]} "
              f"(expected 0.4375), all equal: {bool((result == result[0]).all())}")

        busy = [d.sim.timeline.device_busy_until for d in group]
        print("\nper-device busy-until (s):",
              ", ".join(f"{b * 1e3:.3f}ms" for b in busy))
        print(f"group makespan: {group.makespan_s * 1e3:.3f}ms "
              f"(vs {sum(busy) * 1e3:.3f}ms if the devices ran serially)")
        print("\none host thread, one CUDA-runtime binding per device — "
              "the §3.2.1 rule is never violated.")


if __name__ == "__main__":
    main()
