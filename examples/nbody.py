#!/usr/bin/env python3
"""All-pairs N-body gravity — the paper's divergence-free comparison.

§6.3.1 judges the Boids kernels "even when compared with similar work,
e.g. the N-body system implemented by NVIDIA, which does not suffer of
divergent warps".  This example builds that comparison: an all-pairs
gravitational kernel with the same shared-memory tiling as the Boids
neighbor search, but with *uniform control flow* — every interaction
executes the same instructions.

The emulator shows exactly what the paper argues: the N-body kernel has
**zero** divergent rounds, while the Boids kernel diverges on every
in-radius insert; and both enjoy the same tiling traffic reduction.

Run:  python examples/nbody.py
"""

import numpy as np

from repro.cuda import global_
from repro.cupp import ConstRef, Device, DeviceVector, Kernel, Ref, Vector
from repro.simgpu import OpClass
from repro.simgpu import devicelib as dl
from repro.simgpu.isa import op, sync

SOFTENING2 = 0.01


@global_
def nbody_forces(
    ctx,
    positions: ConstRef[DeviceVector],
    masses: ConstRef[DeviceVector],
    accel_out: Ref[DeviceVector],
):
    """Tiled all-pairs gravitation (GPU Gems 3 chapter 31 structure)."""
    i = ctx.global_thread_id
    tpb = ctx.block_dim.x
    n = len(positions) // 3
    s_pos = ctx.shared_array("s_pos", np.float32, tpb * 3)
    s_mass = ctx.shared_array("s_mass", np.float32, tpb)

    my_pos = yield from dl.ld_vec3(positions.view, i)
    acc = dl.ZERO3
    for base in range(0, n, tpb):
        staged = yield from dl.ld_vec3(positions.view, base + ctx.thread_idx.x)
        yield from dl.sts_vec3(s_pos, ctx.thread_idx.x, staged)
        m = yield from _ld1(masses.view, base + ctx.thread_idx.x)
        yield from _sts1(s_mass, ctx.thread_idx.x, m)
        yield sync()
        for t in range(tpb):
            other = yield from dl.lds_vec3(s_pos, t)
            mj = yield from _lds1(s_mass, t)
            r = yield from dl.sub3(other, my_pos)
            d2 = yield from dl.length_squared3(r)
            yield op(OpClass.FADD)  # softening
            inv = yield from dl.rsqrt(d2 + SOFTENING2)
            yield op(OpClass.FMUL, 3)  # inv^3 * m  (no branch: softened
            s = mj * inv * inv * inv  # self-interaction contributes 0-ish)
            contrib = yield from dl.scale3(r, s)
            acc = yield from dl.add3(acc, contrib)
        yield sync()
    yield from dl.st_vec3(accel_out.view, i, acc)


def _ld1(view, idx):
    from repro.simgpu.isa import ld

    v = yield ld(view, idx)
    return v


def _lds1(view, idx):
    from repro.simgpu.isa import lds

    v = yield lds(view, idx)
    return v


def _sts1(view, idx, value):
    from repro.simgpu.isa import sts

    yield sts(view, idx, value)


def reference_forces(pos: np.ndarray, mass: np.ndarray) -> np.ndarray:
    """Vectorized oracle of the same softened gravity."""
    r = pos[None, :, :] - pos[:, None, :]
    d2 = (r**2).sum(axis=2) + SOFTENING2
    s = mass[None, :] * d2**-1.5
    return (r * s[:, :, None]).sum(axis=1)


def main() -> None:
    n, tpb = 64, 32
    rng = np.random.default_rng(13)
    pos = rng.uniform(-5, 5, (n, 3)).astype(np.float32)
    mass = rng.uniform(0.5, 2.0, n).astype(np.float32)

    device = Device()
    positions = Vector(pos.reshape(-1), dtype=np.float32)
    masses = Vector(mass, dtype=np.float32)
    accel = Vector(np.zeros(3 * n, np.float32), dtype=np.float32)

    kernel = Kernel(nbody_forces, n // tpb, tpb)
    kernel(device, positions, masses, accel)
    got = accel.to_numpy().reshape(n, 3)
    want = reference_forces(pos.astype(np.float64), mass.astype(np.float64))
    err = np.abs(got - want).max() / np.abs(want).max()
    profile = device.runtime.last_launch.profile

    print(f"N-body all-pairs forces, n={n}, threads/block={tpb}")
    print(f"  max relative error vs oracle : {err:.2e}")
    print(f"  divergent rounds             : {profile.divergent_rounds}")
    print(f"  global-memory bytes moved    : {profile.bytes_read + profile.bytes_written:,}")
    print(f"  shared-memory accesses       : {profile.shared_accesses:,}")

    # Contrast with the Boids neighbor search on the same population.
    from repro.gpusteer import MAX_NEIGHBORS, find_neighbors_v2

    results = Vector(np.full(MAX_NEIGHBORS * n, -1, np.int32), dtype=np.int32)
    nb = Kernel(find_neighbors_v2, n // tpb, tpb)
    nb(device, positions, 9.0, results)
    boids_profile = device.runtime.last_launch.profile
    print(f"\nBoids neighbor search on the same cloud:")
    print(f"  divergent rounds             : {boids_profile.divergent_rounds}")
    print(
        "\n§6.3.1: the N-body kernel 'does not suffer of divergent warps' — "
        "uniform control flow — while the Boids insert path diverges."
    )
    assert profile.divergent_rounds == 0
    assert boids_profile.divergent_rounds > 0
    device.close()


if __name__ == "__main__":
    main()
