#!/usr/bin/env python3
"""A second OpenSteer scenario: pursuit and evasion.

OpenSteerDemo "currently offers different scenarios — among others the
Boids scenario" (§5.3).  This example exercises the wider steering
library (`repro.steer.behaviors_extra`): a pursuer chases an evading
target through a field of spherical obstacles, using pursuit (predictive
seek), evasion, obstacle avoidance, and wander — all combined exactly as
§5.1 prescribes (steering vectors: direction = desired motion, length =
acceleration).

Run:  python examples/pursuit_demo.py
"""

from repro.steer.behaviors_extra import Wander, avoid_sphere, evade, pursue
from repro.steer.vec3 import Vec3

DT = 1.0 / 30.0
MAX_SPEED_PURSUER = 11.0
MAX_SPEED_EVADER = 9.0
MAX_FORCE = 30.0
CAPTURE_RADIUS = 2.0  # two agent radii: bodies touch

OBSTACLES = [
    (Vec3(15.0, 0.0, 5.0), 3.0),
    (Vec3(30.0, 2.0, -4.0), 4.0),
    (Vec3(22.0, -3.0, 10.0), 2.5),
]


class Vehicle:
    """Minimal point-mass vehicle (§5.1's sphere agent)."""

    def __init__(self, position: Vec3, velocity: Vec3, max_speed: float) -> None:
        self.position = position
        self.velocity = velocity
        self.max_speed = max_speed

    @property
    def forward(self) -> Vec3:
        return self.velocity.normalize()

    def apply(self, steering: Vec3) -> None:
        force = steering.truncate_length(MAX_FORCE)
        self.velocity = (self.velocity + force * DT).truncate_length(
            self.max_speed
        )
        self.position = self.position + self.velocity * DT


def main() -> None:
    pursuer = Vehicle(Vec3(0, 0, 0), Vec3(1, 0, 0), MAX_SPEED_PURSUER)
    evader = Vehicle(Vec3(25, 0, 0), Vec3(0, 0, 6), MAX_SPEED_EVADER)
    wander = Wander(jitter=0.4, seed=9)

    captured_at = None
    min_obstacle_clearance = float("inf")
    for step in range(1, 2000):
        # Pursuer: predictive pursuit + obstacle avoidance.
        steer_p = pursue(
            pursuer.position,
            pursuer.velocity,
            evader.position,
            evader.velocity,
            pursuer.max_speed,
        )
        for center, radius in OBSTACLES:
            steer_p = steer_p + avoid_sphere(
                pursuer.position,
                pursuer.forward,
                pursuer.velocity.length(),
                center,
                radius,
                agent_radius=0.5,
                lookahead_s=1.0,
            ) * 4.0

        # Evader: predictive evasion + a dash of wander for lifelikeness.
        steer_e = evade(
            evader.position,
            evader.velocity,
            pursuer.position,
            pursuer.velocity,
            evader.max_speed,
        ) + wander(evader.forward) * 2.0
        for center, radius in OBSTACLES:
            steer_e = steer_e + avoid_sphere(
                evader.position,
                evader.forward,
                evader.velocity.length(),
                center,
                radius,
                agent_radius=0.5,
                lookahead_s=1.0,
            ) * 4.0

        pursuer.apply(steer_p)
        evader.apply(steer_e)

        for center, radius in OBSTACLES:
            for v in (pursuer, evader):
                min_obstacle_clearance = min(
                    min_obstacle_clearance,
                    v.position.distance(center) - radius,
                )
        gap = pursuer.position.distance(evader.position)
        if step % 150 == 0:
            print(f"  t={step * DT:5.1f}s  gap={gap:6.2f}")
        if gap < CAPTURE_RADIUS:
            captured_at = step * DT
            break

    print()
    if captured_at is None:
        raise SystemExit("pursuit failed — the evader got away (unexpected)")
    print(f"capture after {captured_at:.1f}s "
          f"(pursuer is {MAX_SPEED_PURSUER / MAX_SPEED_EVADER:.2f}x faster)")
    print(f"closest obstacle approach: {min_obstacle_clearance:.2f} "
          "(positive = no collision)")
    assert min_obstacle_clearance > 0.0


if __name__ == "__main__":
    main()
