#!/usr/bin/env python3
"""Quickstart: the CuPP workflow in one file.

Covers the paper's chapter-4 feature tour on the simulated G80:

1. a ``cupp.Device`` handle (explicit, queryable, RAII — §4.1),
2. exception-based memory management (``Memory1D``, shared pointers — §4.2),
3. the C++-style kernel call with call-by-value and call-by-reference,
   including the listing-4.3 example where ``j == i/2`` after the call,
4. ``cupp.Vector`` with lazy memory copying (§4.6) on a SAXPY kernel.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.cuda import global_
from repro.cupp import (
    Boxed,
    ConstRef,
    Device,
    DeviceSharedPtr,
    DeviceVector,
    Kernel,
    Memory1D,
    Ref,
    Vector,
)
from repro.simgpu import OpClass
from repro.simgpu.isa import ld, op, st


# --- kernels (the simulator's generator dialect) -------------------------
@global_
def half_kernel(ctx, i: int, j: Ref[int]):
    """The paper's listing 4.2: __global__ void kernel(int i, int& j)."""
    yield op(OpClass.IADD)
    j.value = i // 2


@global_
def saxpy_kernel(ctx, a: float, x: ConstRef[DeviceVector], y: Ref[DeviceVector]):
    """y <- a*x + y, one agent... er, element per thread."""
    i = ctx.global_thread_id
    if i < len(x):
        xi = yield ld(x.view, i)
        yi = yield ld(y.view, i)
        yield op(OpClass.FMAD)
        yield st(y.view, i, a * xi + yi)


def main() -> None:
    # 1. Device management (§4.1). ---------------------------------------
    device = Device()  # "creates a default device" (listing 4.1)
    print(f"device: {device.name}")
    print(f"  multiprocessors : {device.multiprocessors}")
    print(f"  total memory    : {device.total_memory // 2**20} MiB")
    print(f"  atomics support : {device.supports_atomics}")

    # 2. Memory management (§4.2): exceptions, RAII, deep copies. --------
    block = Memory1D.from_iterable(device, np.float32, (i * i for i in range(8)))
    print(f"\nmemory1d holds {list(block)} (iterator-linearized)")
    twin = block.copy()  # deep copy: own device allocation
    print(f"deep copy at a different address: {twin.ptr != block.ptr}")

    shared = DeviceSharedPtr(device, 1024)
    other = shared.clone()
    print(f"shared pointer use_count: {other.use_count}")
    shared.release()
    print(f"after one release       : {other.use_count} (memory still alive)")

    # 3. The C++-style kernel call (§4.3, listing 4.3). ------------------
    f = Kernel(half_kernel, grid_dim=(10, 10), block_dim=(8, 8))
    j = Boxed(0)
    f(device, 10, j)
    print(f"\nf(device, 10, j) -> j == {j.value}   (paper: 'j == 5')")

    # 4. cupp::vector with lazy memory copying (§4.6). -------------------
    n = 256
    x = Vector(np.linspace(0, 1, n, dtype=np.float32))
    y = Vector(np.ones(n, dtype=np.float32))
    saxpy = Kernel(saxpy_kernel, n // 32, 32)

    stats = saxpy(device, 2.0, x, y)
    stats = saxpy(device, 2.0, x, y)  # second call: x/y stay on the device
    print(f"\nafter two SAXPY launches:")
    print(f"  x uploads={x.uploads} downloads={x.downloads} (const ref)")
    print(f"  y uploads={y.uploads} downloads={y.downloads} (before host read)")
    expected = 4.0 * np.linspace(0, 1, n) + 1.0
    result = y.to_numpy()  # first host read triggers the lazy download
    print(f"  y downloads after host read: {y.downloads}")
    print(f"  max |error|: {np.abs(result - expected).max():.2e}")
    print(f"  const-ref copy-backs elided this call: {stats.elided_writebacks}")

    device.close()  # frees every allocation made on the handle (§4.1)
    print("\ndevice closed; all device memory reclaimed")


if __name__ == "__main__":
    main()
