#!/usr/bin/env python3
"""Parallel sum reduction — and the paper's two-kernel synchronization rule.

§2.2: "It is not possible to synchronize blocks within a grid.  If
synchronization is required between all threads, the work has to be
split into two separate kernels, since multiple kernels are not executed
in parallel."

Summing an array needs exactly that: each block tree-reduces its tile in
shared memory (``__syncthreads`` between levels), writes one partial sum,
and a *second* kernel launch — the grid-wide barrier — combines the
partials.  The emulator's profile shows the textbook behaviour: the
divergent-looking halving loop is actually uniform per warp until the
tree narrows below warp width.

Run:  python examples/reduction.py
"""

import numpy as np

from repro.cuda import global_
from repro.cupp import ConstRef, Device, DeviceVector, Kernel, Ref, Vector
from repro.simgpu import OpClass
from repro.simgpu.isa import ld, lds, op, reconv, st, sts, sync

TPB = 32


@global_
def block_reduce(ctx, src: ConstRef[DeviceVector], partial: Ref[DeviceVector]):
    """Each block tree-reduces its tile; one partial sum per block."""
    tid = ctx.thread_idx.x
    i = ctx.global_thread_id
    sh = ctx.shared_array("tile", np.float32, TPB)

    v = yield ld(src.view, i)
    yield sts(sh, tid, v)
    yield sync()

    stride = TPB // 2
    while stride > 0:
        yield op(OpClass.COMPARE)
        if tid < stride:
            a = yield lds(sh, tid)
            b = yield lds(sh, tid + stride)
            yield op(OpClass.FADD)
            yield sts(sh, tid, a + b)
        yield reconv()  # idle upper half re-joins (uniform until < warp)
        yield sync()
        stride //= 2

    if tid == 0:
        total = yield lds(sh, 0)
        yield st(partial.view, ctx.block_idx.x, total)
    yield reconv()


@global_
def final_reduce(ctx, partial: ConstRef[DeviceVector], out: Ref[DeviceVector]):
    """The second launch: the grid-wide 'barrier' that combines partials."""
    if ctx.global_thread_id == 0:
        total = 0.0
        for b in range(len(partial)):
            v = yield ld(partial.view, b)
            total += v
            yield op(OpClass.FADD)
        yield st(out.view, 0, total)
    yield reconv()


def main() -> None:
    n = 256
    rng = np.random.default_rng(4)
    data = rng.uniform(-1, 1, n).astype(np.float32)

    device = Device()
    src = Vector(data, dtype=np.float32)
    partial = Vector(np.zeros(n // TPB, np.float32), dtype=np.float32)
    out = Vector(np.zeros(1, np.float32), dtype=np.float32)

    Kernel(block_reduce, n // TPB, TPB)(device, src, partial)
    p1 = device.runtime.last_launch.profile
    Kernel(final_reduce, 1, 1)(device, partial, out)

    got = out[0]
    want = data.astype(np.float64).sum()
    print(f"sum of {n} floats across {n // TPB} blocks + a second launch")
    print(f"  result              : {got:.6f}")
    print(f"  numpy float64 oracle: {want:.6f}")
    print(f"  |error|             : {abs(got - want):.2e}")
    print(f"  kernel launches     : {device.runtime.launch_count} "
          "(the grid-wide sync IS the second launch, §2.2)")
    print(f"  __syncthreads/warp  : {p1.sync_count // p1.warps_launched} "
          f"(log2({TPB}) tree levels + the staging barrier)")
    assert abs(got - want) < 1e-3
    assert device.runtime.launch_count == 2
    device.close()


if __name__ == "__main__":
    main()
