#!/usr/bin/env python3
"""Simulation serving: two tenants, one fused kernel launch.

Spins up the ``repro.serve`` subsystem with real boids physics and walks
through the serving pipeline end to end:

* two client sessions ("ravens", "starlings") each own a flock held in a
  ``cupp.Vector`` with §4.6 lazy-copy reuse across requests;
* both clients request a step at (virtually) the same instant, and the
  dynamic batcher coalesces the two requests into ONE fused launch —
  one batch, two kernel launches total, instead of four;
* the fused draw-matrix result comes back as one modelled d2h transfer
  and is sliced per request with ``Vector.split_at``;
* later steps are lazy hits: the session state stays device-resident,
  so the transfer ledger shows no further ``batch-concat`` bytes.

Run:  python examples/serving_demo.py
"""

import numpy as np

from repro import obs
from repro.serve import ServeConfig, SimulationService


def main() -> None:
    obs.reset()
    config = ServeConfig(
        agents_per_session=64,
        devices=1,
        max_batch=8,
        window_s=2e-3,
        physics=True,
    )
    service = SimulationService(config)
    ravens = service.create_session("ravens", seed=1)
    starlings = service.create_session("starlings", seed=2)
    print(f"sessions: {ravens.session_id} ({ravens.n} agents), "
          f"{starlings.session_id} ({starlings.n} agents)")

    # --- 1. Two concurrent requests -> one batch, one fused launch. ----
    r1 = service.submit("ravens", want_draw=True)
    r2 = service.submit("starlings", want_draw=True)
    service.drain()

    assert r1.batch_id == r2.batch_id, "requests should share a batch"
    assert service.stats.batches == 1
    assert service.stats.launches == 2  # simulate + modify, paid ONCE
    print(f"\nstep 1: both requests rode batch #{r1.batch_id} "
          f"on device {r1.device_index}")
    print(f"  batches formed        : {service.stats.batches}")
    print(f"  fused kernel launches : {service.stats.launches} "
          f"(vs 4 without batching)")
    print(f"  latency ravens        : {r1.latency_s * 1e3:.3f} ms (virtual)")
    print(f"  latency starlings     : {r2.latency_s * 1e3:.3f} ms (virtual)")

    # The demuxed per-request results are real draw matrices (§6.2.3).
    assert r1.result.shape == (64, 4, 4)
    assert r2.result.shape == (64, 4, 4)
    assert not np.allclose(r1.result, r2.result), "separate worlds"
    print(f"  result shapes         : {r1.result.shape} each "
          f"(fused, then Vector.split_at per request)")

    ledger = obs.get_ledger().snapshot()
    uploaded = ledger["bytes_by_cause"]["batch-concat"]
    fetched = ledger["bytes_by_cause"]["batch-split"]
    assert uploaded == ravens.state_bytes + starlings.state_bytes
    print(f"  state uploaded (h2d)  : {uploaded} B in one fused transfer")
    print(f"  results fetched (d2h) : {fetched} B in one fused transfer")

    # --- 2. Later steps reuse the device-resident state (lazy hits). ---
    for _ in range(3):
        service.submit("ravens")
        service.submit("starlings")
    service.drain()

    again = obs.get_ledger().snapshot()["bytes_by_cause"]["batch-concat"]
    assert again == uploaded, "warm sessions must not re-upload state"
    print(f"\nsteps 2-4: {service.stats.completed} requests completed, "
          f"state re-uploaded: {again - uploaded} B (lazy reuse, §4.6)")
    print(f"  flocks really moved   : ravens stepped "
          f"{ravens.steps_done}x, starlings {starlings.steps_done}x")

    mean_size = service.stats.mean_batch_size
    print(f"  mean batch size       : {mean_size:.1f} requests/launch")
    print("\nserving pipeline OK: admission -> batch -> fused launch -> demux")


if __name__ == "__main__":
    main()
