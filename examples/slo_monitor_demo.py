#!/usr/bin/env python3
"""Close the loop: SLO alerts fire under overload, admission reacts.

Drives the serving loadgen twice with identical SLOs —

1. **below capacity**: every objective holds, no alerts fire;
2. **past saturation**: the p99-latency rule breaches, the monitor fires,
   and the service reacts by switching admission from ``reject`` to
   ``shed-oldest`` (freshest-first degradation) — visible in the report
   as shed requests that the passive run never produces;

then feeds both captured traces to :mod:`repro.obs.analyze` and prints
the before/after span diff, so "what got slower under overload" is a
computed answer, not a guess.

Run:  python examples/slo_monitor_demo.py [output-dir]
"""

import sys
import tempfile

from repro import obs
from repro.obs.analyze import analyze, diff, render_diff
from repro.serve.loadgen import run_load, slo_monitor
from repro.serve.service import ServeConfig


def _config() -> ServeConfig:
    return ServeConfig(
        agents_per_session=32,
        devices=1,
        physics=False,
        batching=True,
        queue_capacity=16,
    )


def _run(rate_rps: float, monitor, degrade_policy=None):
    with obs.capture() as cap:
        report = run_load(
            clients=4,
            duration_s=0.05,
            rate_rps=rate_rps,
            seed=11,
            config=_config(),
            monitor=monitor,
            degrade_policy=degrade_policy,
        )
    return report, cap


def main(out_dir: "str | None" = None) -> None:
    # The objectives: p99 completed-request latency <= 2.6 ms over a
    # 20 ms window (5 ms burn-rate fast window under the hood).
    print("== calm: offered load well below capacity ==")
    calm_report, calm_cap = _run(1000.0, slo_monitor(p99_ms=2.6, window_s=0.02))
    for line in calm_report.lines():
        print(f"  {line}")
    assert calm_report.alerts == [], "no SLO may fire below capacity"
    print("  slo alerts  none (all objectives held)")

    print("\n== overload: ~6x capacity, alert-reactive admission ==")
    monitor = slo_monitor(p99_ms=2.6, window_s=0.02)
    hot_report, hot_cap = _run(
        48000.0, monitor, degrade_policy="shed-oldest"
    )
    for line in hot_report.lines():
        print(f"  {line}")
    assert monitor.fired("latency-p99"), "overload must trip the p99 SLO"
    assert hot_report.shed > 0, "degrade policy must kick in and shed"
    for alert in hot_report.alerts:
        cleared = (
            f"cleared at {alert['cleared_at_s'] * 1e3:.1f} ms"
            if alert["cleared_at_s"] is not None
            else "still firing at drain"
        )
        print(
            f"  alert {alert['rule']}: value {alert['value']:.0f} > "
            f"threshold {alert['threshold']:.0f} at "
            f"{alert['fired_at_s'] * 1e3:.1f} ms ({cleared})"
        )

    # The analyzer turns the two traces into a per-span comparison.
    print("\n== analyze: overload relative to calm ==")
    print(render_diff(diff(analyze(calm_cap.events), analyze(hot_cap.events))))

    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="repro-slo-")
    for cap, stem in ((calm_cap, "calm"), (hot_cap, "overload")):
        for path in cap.write(out_dir, stem=stem):
            print(f"wrote {path}")
    print(
        "diff them offline with: python -m repro.obs.analyze --diff "
        f"{out_dir}/calm.trace.json {out_dir}/overload.trace.json"
    )


if __name__ == "__main__":
    # Ignore option-looking argv entries: when the test suite executes the
    # examples via runpy, sys.argv still holds pytest's own flags (-q, -x).
    arg = sys.argv[1] if len(sys.argv) > 1 else None
    main(None if arg is not None and arg.startswith("-") else arg)
