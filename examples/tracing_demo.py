#!/usr/bin/env python3
"""Observability tour: trace a SAXPY workload, export a Chrome trace.

Runs the quickstart's SAXPY kernel under :func:`repro.obs.capture`, then

1. prints the span tree the tracer recorded (kernel launches nested
   around ``cuda.launch`` spans and transfer instants),
2. prints the transfer ledger — every host<->device byte attributed to a
   cause, including the bytes the const-ref optimization (§4.3.2) did
   *not* move back,
3. writes ``saxpy.trace.json`` (load it at https://ui.perfetto.dev or
   chrome://tracing) and ``saxpy.metrics.json`` next to it.

Run:  python examples/tracing_demo.py [output-dir]
"""

import sys
import tempfile

import numpy as np

from repro import obs
from repro.cuda import global_
from repro.cupp import ConstRef, Device, DeviceVector, Kernel, Ref, Vector
from repro.simgpu import OpClass
from repro.simgpu.isa import ld, op, st


@global_
def saxpy_kernel(ctx, a: float, x: ConstRef[DeviceVector], y: Ref[DeviceVector]):
    """y <- a*x + y; x is const, so its copy-back is elided."""
    i = ctx.global_thread_id
    if i < len(x):
        xi = yield ld(x.view, i)
        yi = yield ld(y.view, i)
        yield op(OpClass.FMAD)
        yield st(y.view, i, a * xi + yi)


def main(out_dir: "str | None" = None) -> None:
    device = Device()
    n = 256
    x = Vector(np.linspace(0, 1, n, dtype=np.float32))
    y = Vector(np.ones(n, dtype=np.float32))
    saxpy = Kernel(saxpy_kernel, n // 32, 32)

    with obs.capture() as cap:
        saxpy(device, 2.0, x, y)
        saxpy(device, 2.0, x, y)  # lazy copying: no re-upload
        y.to_numpy()  # first host read triggers the lazy download

    # 1. The span tree. ---------------------------------------------------
    print("recorded spans/instants:")
    for ev in cap.events:
        marker = "*" if ev.kind == "instant" else " "
        print(f"  {'  ' * ev.depth}{marker}{ev.name}")

    # 2. The transfer ledger. ---------------------------------------------
    ledger = cap.ledger
    print("\ntransfer bytes by cause:")
    for cause, nbytes in sorted(ledger["bytes_by_cause"].items()):
        print(f"  {cause:>24}: {nbytes} bytes ({ledger['count_by_cause'][cause]}x)")
    skipped = ledger["bytes_by_cause"].get("copy-back-skipped-const", 0)
    print(f"\nconst-ref elision saved {skipped} bytes of copy-back "
          f"(ledger bytes_saved={ledger['bytes_saved']})")
    assert skipped > 0, "const-ref SAXPY must skip x's copy-back"
    assert ledger["moved_bytes_by_direction"].get("none", 0) == 0

    # 3. Chrome-trace + metrics JSON. -------------------------------------
    if out_dir is None:
        out_dir = tempfile.mkdtemp(prefix="repro-trace-")
    for path in cap.write(out_dir, stem="saxpy"):
        print(f"wrote {path}")
    trace = cap.chrome_trace()
    kinds = {e["ph"] for e in trace["traceEvents"]}
    print(f"trace has {len(trace['traceEvents'])} events (phases: {sorted(kinds)})")

    device.close()


if __name__ == "__main__":
    # Ignore option-looking argv entries: when the test suite executes the
    # examples via runpy, sys.argv still holds pytest's own flags (-q, -x).
    arg = sys.argv[1] if len(sys.argv) > 1 else None
    main(None if arg is not None and arg.startswith("-") else arg)
