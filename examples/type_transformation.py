#!/usr/bin/env python3
"""Host/device type transformation — the paper's §4.5 + ch. 7 future work.

"On the host side, using a balanced tree may be a good choice ... a
simple brute force approach using shared memory as a cache may even
perform better [on the device]" (§4.5), and chapter 7 proposes spatial
data structures built on the host, transformed to a flat device layout,
to accelerate the neighbor search.

This example implements exactly that pattern with CuPP's type bindings:

* ``HostSpatialGrid`` — a pointer-rich host structure (dict-of-cells),
  cheap to build incrementally on the CPU;
* ``DeviceSpatialGrid`` — its ``device_type``: two flat arrays (CSR
  layout), cheap to ship and to scan from a kernel;
* ``transform()`` flattens on the way in; the 1:1 binding is declared
  exactly as in listing 4.6.

A device kernel then counts the points in each query cell and the result
is checked against the host structure.

Run:  python examples/type_transformation.py
"""

import numpy as np

from repro.cuda import global_
from repro.cupp import ConstRef, Device, DeviceVector, Kernel, Ref, Vector
from repro.cupp.device_reference import DeviceReference
from repro.cupp.memory1d import Memory1D
from repro.simgpu import OpClass
from repro.simgpu.isa import ld, op, st


class DeviceSpatialGrid:
    """Flat CSR layout: ``starts[c] .. starts[c+1]`` indexes ``points``.

    No dicts, no Python objects per cell — exactly the "designed for fast
    memory transfer and fast lookup" device representation of chapter 7.
    The device cannot grow it (no allocation), matching §4.6's constraint.
    """

    host_type: type = None  # filled in below (listing 4.6)
    device_type: type = None
    kernel_arg_size = 8

    def __init__(self, starts_view, points_view, cells_per_axis: int):
        self.starts = starts_view  # DeviceArrayView, int32, cells+1
        self.points = points_view  # DeviceArrayView, int32
        self.cells_per_axis = cells_per_axis

    def pack(self) -> np.ndarray:
        import pickle

        meta = (
            self.starts.ptr.addr, self.starts.count,
            self.points.ptr.addr, self.points.count,
            self.cells_per_axis,
        )
        return np.frombuffer(pickle.dumps(meta), dtype=np.uint8).copy()

    @classmethod
    def unpack(cls, blob: np.ndarray, device: Device) -> "DeviceSpatialGrid":
        import pickle

        from repro.simgpu.memory import DeviceArrayView, DevicePtr

        s_addr, s_count, p_addr, p_count, cpa = pickle.loads(blob.tobytes())
        mem = device.sim.memory
        return cls(
            DeviceArrayView(mem, DevicePtr(s_addr), np.dtype(np.int32), s_count),
            DeviceArrayView(mem, DevicePtr(p_addr), np.dtype(np.int32), p_count),
            cpa,
        )


class HostSpatialGrid:
    """Pointer-rich host structure: a dict of cell -> point-index list.

    Designed for fast incremental construction (§4.5/ch. 7: "the host
    data structure could be designed for fast construction").
    """

    host_type: type = None
    device_type = DeviceSpatialGrid

    def __init__(self, cells_per_axis: int, extent: float) -> None:
        self.cells_per_axis = cells_per_axis
        self.extent = extent
        self.cells: dict[int, list[int]] = {}
        self.count = 0
        self._device_blocks: list[Memory1D] = []

    def cell_of(self, point: np.ndarray) -> int:
        scaled = (point + self.extent) / (2 * self.extent)
        ijk = np.clip(
            (scaled * self.cells_per_axis).astype(int),
            0,
            self.cells_per_axis - 1,
        )
        c = self.cells_per_axis
        return int(ijk[0] + ijk[1] * c + ijk[2] * c * c)

    def insert(self, index: int, point: np.ndarray) -> None:
        self.cells.setdefault(self.cell_of(point), []).append(index)
        self.count += 1

    # --- the CuPP protocol (§4.4/§4.5) ---------------------------------
    def transform(self, device: Device) -> DeviceSpatialGrid:
        """Flatten dict-of-lists into CSR arrays in global memory."""
        total_cells = self.cells_per_axis**3
        starts = np.zeros(total_cells + 1, dtype=np.int32)
        for c, members in self.cells.items():
            starts[c + 1] = len(members)
        starts = np.cumsum(starts, dtype=np.int32)
        points = np.empty(self.count, dtype=np.int32)
        for c, members in sorted(self.cells.items()):
            points[starts[c] : starts[c] + len(members)] = members
        s_mem = Memory1D.from_host(device, starts)
        p_mem = Memory1D.from_host(
            device, points if self.count else np.zeros(1, np.int32)
        )
        self._device_blocks = [s_mem, p_mem]  # keep the allocation alive
        return DeviceSpatialGrid(s_mem.view(), p_mem.view(), self.cells_per_axis)

    def get_device_reference(self, device: Device) -> DeviceReference:
        return DeviceReference(device, self.transform(device))


# Listing 4.6: both types carry both typedefs, 1:1.
HostSpatialGrid.host_type = HostSpatialGrid
DeviceSpatialGrid.device_type = DeviceSpatialGrid
DeviceSpatialGrid.host_type = HostSpatialGrid


@global_
def count_cell_kernel(
    ctx,
    grid: ConstRef[DeviceSpatialGrid],
    counts_out: Ref[DeviceVector],
):
    """One thread per cell: count the points in the flat CSR layout."""
    c = ctx.global_thread_id
    if c < len(counts_out):
        a = yield ld(grid.starts, c)
        b = yield ld(grid.starts, c + 1)
        yield op(OpClass.IADD)
        yield st(counts_out.view, c, b - a)


def main() -> None:
    rng = np.random.default_rng(21)
    extent, cells_per_axis = 10.0, 4
    points = rng.uniform(-extent, extent, size=(500, 3))

    # Fast incremental host-side construction.
    host_grid = HostSpatialGrid(cells_per_axis, extent)
    for i, p in enumerate(points):
        host_grid.insert(i, p)
    print(
        f"host grid: {host_grid.count} points in {len(host_grid.cells)} "
        f"occupied cells (dict-of-lists)"
    )

    # Pass it to a kernel: transform() flattens it on the way across.
    device = Device()
    total_cells = cells_per_axis**3
    counts = Vector(np.zeros(total_cells, np.int32), dtype=np.int32)
    kernel = Kernel(count_cell_kernel, total_cells // 32, 32)
    kernel(device, host_grid, counts)

    got = counts.to_numpy()
    want = np.zeros(total_cells, dtype=np.int64)
    for c, members in host_grid.cells.items():
        want[c] = len(members)
    assert (got == want).all(), "device counts disagree with the host grid"
    print(f"device counted {got.sum()} points across {total_cells} cells — "
          "matches the host structure")
    print(
        "\nhost type  : dict-of-lists (fast insert, pointer-rich)\n"
        "device type: CSR arrays (flat, scan-friendly) — transformed\n"
        "             automatically by CuPP at the kernel boundary (§4.5)"
    )
    device.close()


if __name__ == "__main__":
    main()
