"""repro.backend — execution backends behind the CuPP device API.

The package keeps its ``__init__`` light on purpose: ``simgpu.device``
imports :mod:`repro.backend.base` to subclass :class:`ExecutionBackend`,
so eagerly importing the native backend here (which imports
``simgpu.device`` back for its SIMT fallback path) would create a cycle.
Import :class:`~repro.backend.native.NativeDevice` from its module.
"""

from repro.backend.base import (
    BACKEND_KINDS,
    MIXED,
    ExecutionBackend,
    normalize_backends,
    resolve_backend,
)

__all__ = [
    "BACKEND_KINDS",
    "MIXED",
    "ExecutionBackend",
    "normalize_backends",
    "resolve_backend",
]
