"""The execution-backend abstraction behind every :class:`cupp.Device`.

CuPP's core promise (and CuPBoP's generalisation of it) is that one
kernel/data-structure API can hide the execution substrate from the
application.  :class:`ExecutionBackend` is that substrate boundary: it
owns everything the CUDA runtime needs from "a device" — global and
constant memory, a transfer timeline, launch validation against the
CUDA 1.0 limits, and the two operations that differ per substrate:

``launch(kernel_fn, grid, block, args)``
    Execute one grid and return a launch-result object.

``duration_s(result, registers_per_thread)``
    How long that launch occupies the device *on this backend's clock*:
    the cycle simulator answers with the analytic perf model over the
    measured instruction profile (virtual time), the native backend
    answers with measured wall-clock time.

Two implementations exist:

* :class:`repro.simgpu.device.SimDevice` — the cycle-accounting SIMT
  emulator (``backend_kind == "sim"``);
* :class:`repro.backend.native.NativeDevice` — vectorized numpy
  execution of the same kernel definitions at real speed
  (``backend_kind == "native"``).

This module must stay import-light: ``simgpu.device`` subclasses it, so
it may not import ``repro.cupp`` (whose package ``__init__`` pulls in
the CUDA runtime and would close an import cycle).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable

from repro.common.errors import ConfigurationError

if TYPE_CHECKING:  # annotations only — simgpu.device subclasses us,
    from repro.simgpu.arch import ArchSpec  # so no runtime simgpu import
    from repro.simgpu.dims import Dim3
    from repro.simgpu.transfer import PcieModel

#: The backend kinds a :class:`cupp.Device` / ``CudaMachine`` accepts.
BACKEND_KINDS = ("sim", "native")

#: Pseudo-kind accepted anywhere a *group* of devices is configured:
#: devices alternate sim, native, sim, native, ...
MIXED = "mixed"

_device_ids = itertools.count(0)


def resolve_backend(name: str) -> str:
    """Validate a single backend kind, returning it canonicalised.

    Raises :class:`~repro.common.errors.ConfigurationError` (never a
    ``KeyError``) for unknown names, listing the valid choices.
    """
    kind = str(name).strip().lower()
    if kind not in BACKEND_KINDS:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; "
            f"expected one of {', '.join(BACKEND_KINDS)}"
        )
    return kind


def normalize_backends(spec: "str | list[str] | tuple[str, ...]", count: int) -> list[str]:
    """Expand a backend spec into one kind per device.

    ``spec`` may be a single kind (``"sim"`` / ``"native"``), the
    pseudo-kind ``"mixed"`` (devices alternate sim, native, ...), or an
    explicit per-device list.  Unknown names raise
    :class:`~repro.common.errors.ConfigurationError`.
    """
    if count <= 0:
        raise ConfigurationError("a machine needs at least one device")
    if isinstance(spec, (list, tuple)):
        if len(spec) != count:
            raise ConfigurationError(
                f"backend list has {len(spec)} entries for {count} devices"
            )
        return [resolve_backend(k) for k in spec]
    kind = str(spec).strip().lower()
    if kind == MIXED:
        return [BACKEND_KINDS[i % 2] for i in range(count)]
    if kind not in BACKEND_KINDS:
        raise ConfigurationError(
            f"unknown execution backend {spec!r}; expected one of "
            f"{', '.join(BACKEND_KINDS)}, or {MIXED} for a group"
        )
    return [kind] * count


class ExecutionBackend:
    """Common device surface shared by the sim and native backends.

    Subclasses call :meth:`_init_backend` from their ``__init__`` and
    implement :meth:`launch` and :meth:`duration_s`; everything else —
    memory, constant cache, timeline, launch validation, properties —
    is backend-independent and lives here.
    """

    #: Overridden per subclass; ``"sim"`` or ``"native"``.
    backend_kind: str = "abstract"

    def _init_backend(self, arch: "ArchSpec", pcie: "PcieModel | None") -> None:
        from repro.simgpu.caches import ConstantMemory
        from repro.simgpu.memory import DeviceMemory
        from repro.simgpu.transfer import DeviceTimeline, PcieModel

        self.device_id = next(_device_ids)
        self.arch = arch
        self.memory = DeviceMemory(arch.device_memory_bytes)
        self.constant = ConstantMemory(arch.constant_mem_bytes)
        self.timeline = DeviceTimeline(pcie or PcieModel())
        self.launches: list = []
        #: Optional :class:`repro.fault.FaultInjector` consulted by the
        #: CUDA runtime's alloc/launch/memcpy entry points.  ``None``
        #: (the default) keeps every fault path completely inert.
        self.fault_injector = None

    # ------------------------------------------------------------------
    def validate_launch(self, grid_dim: Dim3, block_dim: Dim3) -> None:
        """Apply the CUDA 1.0 configuration limits (§2.2).

        Both backends present the same device model to the application,
        so the limits are enforced identically regardless of substrate.
        """
        if block_dim.volume == 0 or grid_dim.volume == 0:
            raise ConfigurationError("grid and block dimensions must be non-zero")
        if block_dim.volume > self.arch.max_threads_per_block:
            raise ConfigurationError(
                f"block of {block_dim.volume} threads exceeds the limit of "
                f"{self.arch.max_threads_per_block}"
            )
        if grid_dim.z != 1:
            raise ConfigurationError("grids are at most 2-dimensional (§2.2)")
        mx, my = self.arch.max_grid_dim
        if grid_dim.x > mx or grid_dim.y > my:
            raise ConfigurationError(
                f"grid {tuple(grid_dim)} exceeds the limit {(mx, my)}"
            )
        bx, by, bz = self.arch.max_block_dim
        if block_dim.x > bx or block_dim.y > by or block_dim.z > bz:
            raise ConfigurationError(
                f"block {tuple(block_dim)} exceeds the limit {(bx, by, bz)}"
            )

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel_fn: Callable,
        grid_dim: "Dim3 | int | tuple",
        block_dim: "Dim3 | int | tuple",
        args: tuple = (),
        *,
        registers_per_thread: int = 10,
        strict_sync: bool = True,
    ):
        """Execute ``kernel_fn`` over the whole grid; backend-specific."""
        raise NotImplementedError

    def duration_s(self, result, registers_per_thread: int = 10) -> float:
        """Seconds one launch occupies the device, on this backend's clock."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def properties(self) -> dict[str, object]:
        """Device properties in ``cudaDeviceProp`` spirit (§3.2.1)."""
        return {
            "name": self.arch.name,
            "totalGlobalMem": self.arch.device_memory_bytes,
            "sharedMemPerBlock": self.arch.shared_mem_per_mp,
            "regsPerBlock": self.arch.registers_per_mp,
            "warpSize": self.arch.warp_size,
            "maxThreadsPerBlock": self.arch.max_threads_per_block,
            "multiProcessorCount": self.arch.multiprocessors,
            "clockRate": int(self.arch.shader_clock_hz / 1000),  # kHz
            "major": self.arch.compute_capability[0],
            "minor": self.arch.compute_capability[1],
            "supportsAtomics": self.arch.supports_atomics,
        }
