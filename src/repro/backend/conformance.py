"""Cross-backend differential conformance: sim vs native, same kernels.

The oracle for the native backend is the cycle simulator: run the same
workload from the same seed on both, compare every array the pipeline
produces.  The conformance policy (DESIGN.md §6):

* integer paths (neighbor-index results) must be **exactly** equal;
* float paths are tolerance-bounded (``FLOAT_TOLERANCE`` max absolute
  difference) — but because the native twins mirror the emulator's
  float64-between-float32-stores numerics op for op, the observed
  difference is 0.0 in practice, and the suite records exactness;
* keep-7 tie-breaking is exact, not tolerated: every engine selects the
  smallest seven ``(d2, index)`` pairs (see
  :mod:`repro.backend.kernels_native`), so neighbor sets are
  bit-identical across backends, across pipeline versions (all-pairs,
  tiled, grid-bucketed), and under manufactured exact-tie inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Max absolute difference allowed on float arrays.  The twins are
#: bit-exact by construction; the bound exists so the suite degrades
#: into a meaningful tolerance check if a platform's libm ever differs.
FLOAT_TOLERANCE = 1e-6


@dataclass
class ArrayReport:
    """Comparison of one named array across the two backends."""

    name: str
    dtype: str
    exact: bool
    max_abs_diff: float

    @property
    def ok(self) -> bool:
        if np.issubdtype(np.dtype(self.dtype), np.integer):
            return self.exact
        return self.exact or self.max_abs_diff <= FLOAT_TOLERANCE


@dataclass
class ConformanceReport:
    """All array comparisons for one differential run."""

    version: int
    agents: int
    steps: int
    arrays: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(a.ok for a in self.arrays)

    @property
    def exact(self) -> bool:
        return all(a.exact for a in self.arrays)

    @property
    def max_abs_diff(self) -> float:
        return max((a.max_abs_diff for a in self.arrays), default=0.0)

    def to_dict(self) -> dict:
        return {
            "version": self.version,
            "agents": self.agents,
            "steps": self.steps,
            "ok": self.ok,
            "exact": self.exact,
            "max_abs_diff": self.max_abs_diff,
            "arrays": {
                a.name: {
                    "dtype": a.dtype,
                    "exact": a.exact,
                    "max_abs_diff": a.max_abs_diff,
                }
                for a in self.arrays
            },
        }


def compare_arrays(name: str, a, b) -> ArrayReport:
    """Compare one array pair under the int-exact / float-bounded policy."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape or a.dtype != b.dtype:
        return ArrayReport(name, str(a.dtype), exact=False, max_abs_diff=float("inf"))
    exact = bool(np.array_equal(a, b))
    if exact or a.size == 0:
        diff = 0.0
    elif np.issubdtype(a.dtype, np.integer):
        diff = float(np.max(np.abs(a.astype(np.int64) - b.astype(np.int64))))
    else:
        diff = float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))
    return ArrayReport(name, str(a.dtype), exact=exact, max_abs_diff=diff)


def run_differential(
    version: int,
    agents: int = 32,
    steps: int = 3,
    seed: int = 7,
    threads_per_block: int = 16,
) -> ConformanceReport:
    """Run one gpusteer pipeline version on both backends, same seed,
    and compare everything it produces."""
    from repro.cupp.device import Device
    from repro.gpusteer.emulated import EmulatedBoids

    pair = {}
    for kind in ("sim", "native"):
        boids = EmulatedBoids(
            agents,
            version,
            seed=seed,
            device=Device(backend=kind),
            threads_per_block=threads_per_block,
        )
        for _ in range(steps):
            boids.step()
        pair[kind] = boids

    report = ConformanceReport(version=version, agents=agents, steps=steps)
    sim, native = pair["sim"], pair["native"]
    native_snap = native.snapshot()
    for name, a in sim.snapshot().items():
        report.arrays.append(compare_arrays(name, a, native_snap[name]))
    report.arrays.append(
        # The int path: device-computed neighbor indexes, exact by policy.
        compare_arrays("results", sim.neighbor_sets(), native.neighbor_sets())
    )
    if version in (5, 6):
        report.arrays.append(
            compare_arrays("matrices", sim.draw_data(), native.draw_data())
        )
    return report


def run_suite(
    versions=(1, 2, 3, 4, 5, 6), agents: int = 32, steps: int = 3, seed: int = 7
) -> "list[ConformanceReport]":
    """The full differential suite: every pipeline version."""
    return [
        run_differential(v, agents=agents, steps=steps, seed=seed)
        for v in versions
    ]
