"""Vectorized numpy twins of the gpusteer emulator kernels.

Each function here is the *same program* as its emulator counterpart in
:mod:`repro.gpusteer.kernels_emu`, re-expressed as numpy array code over
all threads at once.  The conformance contract is bit-identity, which
follows from mirroring the emulator's numerics exactly:

* the emulator returns every load as a Python float — the float64 value
  of the float32-rounded element — so twins upcast loads with
  ``astype(float64)``;
* all intermediate arithmetic is float64 **in the emulator's operation
  order** (numpy elementwise binary ops in the same association produce
  the same IEEE results as scalar Python);
* stores round to float32 exactly like assigning into the float32
  backing array;
* reductions that the emulator performs sequentially (the per-neighbor
  steering accumulation) are kept slot-sequential here — vectorized only
  across *agents* — because numpy's pairwise summation would re-associate
  the adds.

Tie-breaking is exact, not accepted-divergent: the emulator's streaming
keep-7 insert (listing 5.2) compares full ``(d2, index)`` pairs, which
makes its kept set *the* seven lexicographically smallest pairs
regardless of insertion order — identical to the stable-sort selection
used here even when tied distances straddle the seventh slot, and
identical across candidate traversal orders (all-pairs scan, shared
tiles, grid buckets).  The conformance suite asserts this with
manufactured exact ties.
"""

from __future__ import annotations

import numpy as np

from repro.backend.native import native_kernel
from repro.cupp.containers.flatmap import EMPTY_KEY
from repro.cupp.containers.hashgrid import _AXIS_MAX, axis_cell, pack_cell_key
from repro.gpusteer.kernels_emu import (
    MAX_NEIGHBORS,
    NO_NEIGHBOR,
    find_neighbors_v1,
    find_neighbors_v2,
    modify_kernel,
    simulate_v3,
    simulate_v4,
)
from repro.gpusteer.kernels_grid import find_neighbors_hash, simulate_grid
from repro.simgpu.memory import InvalidDeviceAccess

F64 = np.float64


def _threads(grid_dim, block_dim) -> int:
    return grid_dim.volume * block_dim.volume


def _load3(vec, count: int) -> np.ndarray:
    """Load a packed float3 array as (count, 3) float64 — the emulator's
    view of float32 data after ``ld``."""
    raw = vec.view._raw()
    if 3 * count > raw.shape[0]:
        raise InvalidDeviceAccess(
            f"kernel reads {3 * count} elements from a vector of {raw.shape[0]}"
        )
    return raw[: 3 * count].astype(F64).reshape(count, 3)


def _rsqrt(x: np.ndarray) -> np.ndarray:
    """devicelib.rsqrt: ``1/sqrt(x)`` guarded to 0 for ``x <= 0``."""
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(x > 0.0, 1.0 / np.sqrt(x), 0.0)


def _length_squared3(v: np.ndarray) -> np.ndarray:
    """devicelib.length_squared3's association: ``(x*x + y*y) + z*z``."""
    return (v[:, 0] * v[:, 0] + v[:, 1] * v[:, 1]) + v[:, 2] * v[:, 2]


def _normalize3(v: np.ndarray) -> np.ndarray:
    """devicelib.normalize3: scale by rsqrt of the squared length."""
    return v * _rsqrt(_length_squared3(v))[:, None]


def _neighbor_candidates(pos: np.ndarray, m: int, r2: float):
    """The v1/v2 candidate scan for threads 0..m-1 over all n agents.

    Returns ``(order, found)``: per thread, up to 7 neighbor indexes in
    the canonical nearest-first (d2, index) order the emulator's
    ``_write_results``/gather produce, and the validity mask.
    """
    n = pos.shape[0]
    my = pos[:m]
    # offset = my_pos - other_pos, per component; d2 in dot3's order.
    ox = my[:, None, 0] - pos[None, :, 0]
    oy = my[:, None, 1] - pos[None, :, 1]
    oz = my[:, None, 2] - pos[None, :, 2]
    d2 = (ox * ox + oy * oy) + oz * oz
    in_radius = (d2 < r2) & (np.arange(n)[None, :] != np.arange(m)[:, None])
    ranked = np.where(in_radius, d2, np.inf)
    # Stable sort on d2 breaks ties by ascending index == sort by (d2, j).
    order = np.argsort(ranked, axis=1, kind="stable")[:, :MAX_NEIGHBORS]
    found = np.take_along_axis(ranked, order, axis=1) < np.inf
    return order, found


def _steering_from_neighbors(
    pos: np.ndarray,
    fwd: np.ndarray,
    my_pos: np.ndarray,
    my_fwd: np.ndarray,
    order: np.ndarray,
    found: np.ndarray,
    w_sep: float,
    w_ali: float,
    w_coh: float,
) -> np.ndarray:
    """_flocking_steering over the nearest-first gather ``(order, found)``,
    slot-sequential (vectorized across agents; the per-neighbor adds must
    stay in the emulator's sequential order).  Shared by the all-pairs and
    grid simulate twins — the steering math is identical, only the
    candidate enumeration differs."""
    m = my_pos.shape[0]
    sep = np.zeros((m, 3), dtype=F64)
    coh = np.zeros((m, 3), dtype=F64)
    ali_sum = np.zeros((m, 3), dtype=F64)
    count = np.zeros(m, dtype=np.int64)
    for slot in range(order.shape[1]):
        j = order[:, slot]
        valid = found[:, slot]
        offset = pos[j] - my_pos  # v4's recompute: neighbor - my
        d2 = _length_squared3(offset)
        inv = _rsqrt(d2)
        contrib = offset * (inv * inv)[:, None]
        vcol = valid[:, None]
        # Masked no-ops are exact: x - (+0) == x and the accumulators
        # never hold -0 (sums of +0 addends), so x + (+0) == x too.
        sep = sep - np.where(vcol, contrib, 0.0)
        coh = coh + np.where(vcol, offset, 0.0)
        ali_sum = ali_sum + np.where(vcol, fwd[j], 0.0)
        count = count + valid

    scaled_fwd = my_fwd * count.astype(F64)[:, None]
    ali = ali_sum - scaled_fwd
    a = _normalize3(sep) * float(w_sep)
    b = _normalize3(ali) * float(w_ali)
    c = _normalize3(coh) * float(w_coh)
    return (a + b) + c


def _find_neighbors(device, grid_dim, block_dim, args) -> None:
    positions, search_radius, results = args
    m = _threads(grid_dim, block_dim)
    n = len(positions) // 3
    if m > n:
        # Thread i >= n would read past the positions array — the same
        # out-of-range access the emulator faults on.
        raise InvalidDeviceAccess(f"{m} threads over {n} agents")
    pos = _load3(positions, n)
    r2 = float(search_radius * search_radius)
    order, found = _neighbor_candidates(pos, m, r2)
    # Fewer than MAX_NEIGHBORS agents in the world: the candidate scan
    # yields fewer than 7 columns; the remaining slots stay NO_NEIGHBOR,
    # as with the emulator's unfilled result slots.
    out = np.full((m, MAX_NEIGHBORS), NO_NEIGHBOR, np.int32)
    cols = order.shape[1]
    out[:, :cols] = np.where(found, order, NO_NEIGHBOR).astype(np.int32)
    res = results.view._raw()
    res[: m * MAX_NEIGHBORS] = out.reshape(-1)


# v1 and v2 visit the identical candidate set (the tile staging only
# changes *where* the reads come from), so they share one twin.
native_kernel(find_neighbors_v1.impl)(_find_neighbors)
native_kernel(find_neighbors_v2.impl)(_find_neighbors)


def _simulate(device, grid_dim, block_dim, args) -> None:
    positions, forwards, search_radius, w_sep, w_ali, w_coh, steering_out = args
    m = _threads(grid_dim, block_dim)
    n = len(positions) // 3
    if m > n:
        raise InvalidDeviceAccess(f"{m} threads over {n} agents")
    pos = _load3(positions, n)
    fwd = _load3(forwards, n)
    my_pos = pos[:m]
    my_fwd = fwd[:m]
    r2 = float(search_radius * search_radius)
    order, found = _neighbor_candidates(pos, m, r2)
    steering = _steering_from_neighbors(
        pos, fwd, my_pos, my_fwd, order, found, w_sep, w_ali, w_coh
    )
    out = steering_out.view._raw()
    out[: 3 * m] = steering.reshape(-1)  # float32 store rounds here


# v3 (local-memory cache) and v4 (recompute) produce identical values —
# the cached d2/offset are bit-equal to the recomputation from the same
# inputs — so they also share one twin.
native_kernel(simulate_v3.impl)(_simulate)
native_kernel(simulate_v4.impl)(_simulate)


def _modify(device, grid_dim, block_dim, args) -> None:
    (
        steering,
        positions,
        forwards,
        speeds,
        smoothed,
        params_packed,
        step_index,
        matrices_out,
    ) = args
    m = _threads(grid_dim, block_dim)
    params = params_packed.view._raw().astype(F64)
    max_force, max_speed, mass, dt, smoothing, world_r = (
        float(params[k]) for k in range(6)
    )

    steer = _load3(steering, m)
    f2 = _length_squared3(steer)
    over_f = f2 > max_force * max_force
    inv_f = _rsqrt(f2)
    steer = np.where(over_f[:, None], steer * (max_force * inv_f)[:, None], steer)
    accel = steer / mass

    if step_index == 0:
        smooth = accel
    else:
        old = _load3(smoothed, m)
        smooth = old * (1.0 - smoothing) + accel * smoothing
    sm_raw = smoothed.view._raw()
    sm_raw[: 3 * m] = smooth.reshape(-1)
    # The emulator round-trips the smoothed accel through a float32
    # shared-memory scratch before using it — replicate the rounding.
    smooth32 = smooth.astype(np.float32).astype(F64)

    fwd = _load3(forwards, m)
    speed = speeds.view._raw()[:m].astype(F64)
    vel_base = fwd * speed[:, None]
    delta = smooth32 * dt
    velocity = vel_base + delta

    v2 = _length_squared3(velocity)
    over_v = v2 > max_speed * max_speed
    inv_v = _rsqrt(v2)
    velocity = np.where(
        over_v[:, None], velocity * (max_speed * inv_v)[:, None], velocity
    )
    new_speed = np.where(over_v, max_speed, v2 * inv_v)

    pos = _load3(positions, m)
    pos = pos + velocity * dt
    p2 = _length_squared3(pos)
    pos = np.where((p2 > world_r * world_r)[:, None], -pos, pos)
    positions.view._raw()[: 3 * m] = pos.reshape(-1)

    moving = new_speed > 1e-12
    with np.errstate(divide="ignore", invalid="ignore"):
        fwd = np.where(moving[:, None], velocity / new_speed[:, None], fwd)
    forwards.view._raw()[: 3 * m] = fwd.reshape(-1)
    speeds.view._raw()[:m] = new_speed

    # Draw matrix from the *unrounded* register fwd/pos (the stores above
    # rounded the arrays, not the registers).
    hint_y = np.abs(fwd[:, 1]) < 0.99
    up_hint = np.where(
        hint_y[:, None],
        np.array([0.0, 1.0, 0.0], dtype=F64),
        np.array([1.0, 0.0, 0.0], dtype=F64),
    )

    def _cross(u, v):
        return np.stack(
            [
                u[:, 1] * v[:, 2] - u[:, 2] * v[:, 1],
                u[:, 2] * v[:, 0] - u[:, 0] * v[:, 2],
                u[:, 0] * v[:, 1] - u[:, 1] * v[:, 0],
            ],
            axis=1,
        )

    side = _normalize3(_cross(fwd, up_hint))
    up = _cross(side, fwd)

    mat = np.empty((m, 16), dtype=F64)
    mat[:, 0:3] = side
    mat[:, 3] = 0.0
    mat[:, 4:7] = up
    mat[:, 7] = 0.0
    mat[:, 8:11] = fwd
    mat[:, 11] = 0.0
    mat[:, 12:15] = pos
    mat[:, 15] = 1.0
    matrices_out.view._raw()[: 16 * m] = mat.reshape(-1)


native_kernel(modify_kernel.impl)(_modify)


# ----------------------------------------------------------------------
# Version 6: grid-bucketed neighbor search (cupp.containers hash grid).
# The twins below enumerate candidates from the grid's cell directory
# instead of scanning all pairs; because cell_edge >= search_radius the
# 27-cell neighborhood is a superset of the in-radius set, so selecting
# the smallest-(d2, index) seven over it is bit-identical to the
# all-pairs selection.
# ----------------------------------------------------------------------


def _grid_neighbors(hgrid, pos: np.ndarray, m: int, r2: float):
    """The grid query pass for threads 0..m-1: per agent, the nearest-7
    ``(d2, index)`` selection over its 3x3x3 cell neighborhood.

    Returns ``(order, found)`` shaped (m, MAX_NEIGHBORS) — the same
    canonical nearest-first layout ``_neighbor_candidates`` produces.
    The cell directory is rebuilt as a dict from the flat map's probe
    table (semantically the probe sequence, minus the re-hashing).
    """
    keys_raw = hgrid.cells.keys._raw()
    vals_raw = hgrid.cells.vals._raw()
    occupied = keys_raw != EMPTY_KEY
    directory = {
        int(k): int(v) for k, v in zip(keys_raw[occupied], vals_raw[occupied])
    }
    members = hgrid.members._raw()
    starts = hgrid.starts._raw()
    edge = float(hgrid.cell_edge)

    order = np.zeros((m, MAX_NEIGHBORS), dtype=np.int64)
    found = np.zeros((m, MAX_NEIGHBORS), dtype=bool)
    for i in range(m):
        cx = axis_cell(pos[i, 0], edge)
        cy = axis_cell(pos[i, 1], edge)
        cz = axis_cell(pos[i, 2], edge)
        segments = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    x, y, z = cx + dx, cy + dy, cz + dz
                    if not (
                        0 <= x <= _AXIS_MAX
                        and 0 <= y <= _AXIS_MAX
                        and 0 <= z <= _AXIS_MAX
                    ):
                        continue
                    seg = directory.get(pack_cell_key(x, y, z))
                    if seg is None:
                        continue
                    segments.append(
                        members[starts[seg] : starts[seg + 1]]
                    )
        if segments:
            j = np.concatenate(segments).astype(np.int64)
        else:
            j = np.empty(0, dtype=np.int64)
        off = pos[i][None, :] - pos[j]
        d2 = (off[:, 0] * off[:, 0] + off[:, 1] * off[:, 1]) + off[:, 2] * off[:, 2]
        keep = (d2 < r2) & (j != i)
        j = j[keep]
        d2 = d2[keep]
        # The smallest seven (d2, index) pairs — lexsort's primary key is
        # its *last* array.
        sel = np.lexsort((j, d2))[:MAX_NEIGHBORS]
        k = sel.shape[0]
        order[i, :k] = j[sel]
        found[i, :k] = True
    return order, found


def _store_results(results, order: np.ndarray, found: np.ndarray, m: int) -> None:
    out = np.where(found, order, NO_NEIGHBOR).astype(np.int32)
    results.view._raw()[: m * MAX_NEIGHBORS] = out.reshape(-1)


def _find_neighbors_hash(device, grid_dim, block_dim, args) -> None:
    hgrid, positions, search_radius, results = args
    m = _threads(grid_dim, block_dim)
    n = len(positions) // 3
    if m > n:
        raise InvalidDeviceAccess(f"{m} threads over {n} agents")
    pos = _load3(positions, n)
    r2 = float(search_radius * search_radius)
    order, found = _grid_neighbors(hgrid, pos, m, r2)
    _store_results(results, order, found, m)


native_kernel(find_neighbors_hash.impl)(_find_neighbors_hash)


def _simulate_grid(device, grid_dim, block_dim, args) -> None:
    (
        hgrid,
        positions,
        forwards,
        search_radius,
        w_sep,
        w_ali,
        w_coh,
        steering_out,
        results,
    ) = args
    m = _threads(grid_dim, block_dim)
    n = len(positions) // 3
    if m > n:
        raise InvalidDeviceAccess(f"{m} threads over {n} agents")
    pos = _load3(positions, n)
    fwd = _load3(forwards, n)
    r2 = float(search_radius * search_radius)
    order, found = _grid_neighbors(hgrid, pos, m, r2)
    _store_results(results, order, found, m)
    steering = _steering_from_neighbors(
        pos, fwd, pos[:m], fwd[:m], order, found, w_sep, w_ali, w_coh
    )
    steering_out.view._raw()[: 3 * m] = steering.reshape(-1)


native_kernel(simulate_grid.impl)(_simulate_grid)
