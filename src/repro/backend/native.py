"""The native execution backend: vectorized numpy at wall-clock speed.

:class:`NativeDevice` implements the same
:class:`~repro.backend.base.ExecutionBackend` surface as the cycle
simulator, but *executes* instead of *emulating*: kernels with a
registered vectorized implementation (see
:mod:`repro.backend.kernels_native`) run as numpy array programs over
the device's backing store, and the launch "duration" is the measured
wall-clock time — there is no instruction profile and no analytic cost
model on this substrate.

Kernels without a vectorized twin still work: the device falls back to
the SIMT thread-block executor for correctness (the instruction events
are drained into a throwaway profile — on this backend they carry no
cost meaning), so *any* ``cupp.kernel`` launches on either backend.

Numerical contract (load-bearing for the differential conformance
suite): the warp emulator returns every load as a Python ``float`` —
i.e. the float64 value of the float32-rounded stored element — does all
arithmetic between stores in float64, and rounds back to float32 only
at stores.  Vectorized twins therefore upcast loads to float64, mirror
the emulator's exact operation order, and round only at stores, which
makes the two backends bit-identical (not merely close) on the
steer/gpusteer pipelines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from repro.backend.base import ExecutionBackend
from repro.prof import hook as prof_hook
from repro.simgpu.arch import ArchSpec, G80_8800GTS
from repro.simgpu.block import ThreadBlock
from repro.simgpu.dims import Dim3, as_dim3
from repro.simgpu.profile import InstructionProfile
from repro.simgpu.transfer import PcieModel


@dataclass
class NativeLaunchResult:
    """What the native backend learned from executing one grid."""

    grid_dim: Dim3
    block_dim: Dim3
    elapsed_s: float
    vectorized: bool
    kernel_name: str
    #: ``None`` for plain vectorized runs — there is no instruction
    #: stream to profile; populated when the SIMT fallback executed the
    #: kernel, or when a :class:`repro.prof.session.ProfSession` was
    #: active and the device derived counters by SIMT replay.
    profile: "InstructionProfile | None" = None
    occupancy: object = None
    shared_bytes_per_block: int = 0

    @property
    def blocks(self) -> int:
        return self.grid_dim.volume

    @property
    def threads(self) -> int:
        return self.grid_dim.volume * self.block_dim.volume


#: Vectorized kernel implementations, keyed by the *emulator* kernel
#: function (the ``.impl`` the runtime passes to ``launch``).  Populated
#: by :func:`native_kernel` and, lazily, :func:`_ensure_builtin_kernels`.
_NATIVE_IMPLS: "dict[Callable, Callable]" = {}
_builtins_loaded = False


def native_kernel(emulator_fn: Callable):
    """Decorator: register a vectorized twin for an emulator kernel.

    The wrapped function is called as ``impl(device, grid, block, args)``
    with ``args`` in declared parameter order, exactly as the emulator
    kernel would receive them (device-vector views for Ref/ConstRef
    parameters, plain Python scalars for value parameters).
    """

    def register(impl: Callable) -> Callable:
        _NATIVE_IMPLS[emulator_fn] = impl
        return impl

    return register


def _ensure_builtin_kernels() -> None:
    """Load the gpusteer pipeline twins on first launch.

    Deferred because :mod:`repro.backend.kernels_native` imports the
    emulator kernels, which pull in ``cupp`` — importing them at module
    scope would cycle back into this module through the CUDA runtime.
    """
    global _builtins_loaded
    if not _builtins_loaded:
        _builtins_loaded = True
        import repro.backend.kernels_native  # noqa: F401  (registers on import)


class EwmaCost:
    """Online EWMA of the ratio measured/modelled kernel seconds.

    The serve scheduler predicts a native device's kernel time as
    ``perf_model_prediction * ratio``: the perf model supplies the shape
    (how cost scales with agents and versions), the EWMA learns the
    actual speed factor of the machine the native backend runs on.
    Seeded at 1.0 so a cold scheduler falls back to the perf model.
    """

    def __init__(self, alpha: float = 0.25, initial: float = 1.0) -> None:
        self.alpha = float(alpha)
        self.ratio = float(initial)
        self.observations = 0

    def observe(self, modelled_s: float, measured_s: float) -> float:
        if modelled_s <= 0.0:
            return self.ratio
        sample = measured_s / modelled_s
        if self.observations == 0:
            self.ratio = sample
        else:
            self.ratio = self.alpha * sample + (1.0 - self.alpha) * self.ratio
        self.observations += 1
        return self.ratio

    def predict(self, modelled_s: float) -> float:
        return modelled_s * self.ratio


class NativeDevice(ExecutionBackend):
    """A device that executes kernels as vectorized numpy programs.

    Shares the whole device model with :class:`SimDevice` — memory,
    constant cache, timeline, launch limits — so transfers, the memory
    pool, ledger causes, obs spans, and fault hooks work unchanged; only
    the execution substrate and the clock differ.
    """

    backend_kind = "native"

    def __init__(
        self,
        arch: ArchSpec = G80_8800GTS,
        pcie: PcieModel | None = None,
    ) -> None:
        self._init_backend(arch, pcie)

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel_fn: Callable,
        grid_dim: "Dim3 | int | tuple",
        block_dim: "Dim3 | int | tuple",
        args: tuple = (),
        *,
        registers_per_thread: int = 10,
        strict_sync: bool = True,
    ) -> NativeLaunchResult:
        """Execute one grid natively (vectorized if registered)."""
        grid_dim = as_dim3(grid_dim)
        block_dim = as_dim3(block_dim)
        self.validate_launch(grid_dim, block_dim)
        _ensure_builtin_kernels()

        name = getattr(kernel_fn, "__name__", "kernel")
        impl = _NATIVE_IMPLS.get(kernel_fn)
        if impl is not None:
            profile = shared_bytes = None
            if prof_hook.active() is not None:
                # Counter replay (Nsight style): run the launch once
                # through the SIMT emulator to collect the instruction
                # profile, restore memory to its pre-launch contents,
                # then do the real timed vectorized pass.  Both backends
                # are bit-identical, so the replay sees exactly the
                # memory the sim backend would — derived native counters
                # equal sim counters by construction.
                snapshot = self.memory.snapshot_contents()
                profile, shared_bytes = self._run_simt(
                    kernel_fn, grid_dim, block_dim, args, strict_sync
                )
                self.memory.restore_contents(snapshot)
            start = time.perf_counter()
            impl(self, grid_dim, block_dim, args)
            result = NativeLaunchResult(
                grid_dim=grid_dim,
                block_dim=block_dim,
                elapsed_s=time.perf_counter() - start,
                vectorized=True,
                kernel_name=name,
                profile=profile,
                shared_bytes_per_block=shared_bytes or 0,
            )
        else:
            # SIMT fallback: thread-by-thread execution for correctness.
            # The profile is kept for introspection but carries no cost
            # meaning here — duration_s reports wall-clock either way.
            start = time.perf_counter()
            profile, shared_bytes = self._run_simt(
                kernel_fn, grid_dim, block_dim, args, strict_sync
            )
            result = NativeLaunchResult(
                grid_dim=grid_dim,
                block_dim=block_dim,
                elapsed_s=time.perf_counter() - start,
                vectorized=False,
                kernel_name=name,
                profile=profile,
                shared_bytes_per_block=shared_bytes,
            )
        self.launches.append(result)
        return result

    def _run_simt(
        self,
        kernel_fn: Callable,
        grid_dim: Dim3,
        block_dim: Dim3,
        args: tuple,
        strict_sync: bool,
    ) -> "tuple[InstructionProfile, int]":
        """One SIMT pass over the grid: the merged profile and the peak
        per-block shared footprint (the fallback execution path, also
        used as the profiler's counter-replay pass)."""
        profile = InstructionProfile()
        shared_bytes = 0
        for by in range(grid_dim.y):
            for bx in range(grid_dim.x):
                block = ThreadBlock(
                    kernel_fn,
                    args,
                    Dim3(bx, by, 1),
                    block_dim,
                    grid_dim,
                    self.arch,
                    strict_sync=strict_sync,
                    device_memory=self.memory,
                )
                try:
                    block.run(profile)
                finally:
                    block.release_local_memory()
                shared_bytes = max(shared_bytes, block.shared_bytes_used)
        return profile, shared_bytes

    # ------------------------------------------------------------------
    def duration_s(
        self, result: NativeLaunchResult, registers_per_thread: int = 10
    ) -> float:
        """Measured wall-clock seconds — the native backend's real time."""
        return result.elapsed_s
