"""Calibration constants and the experiment harness (tables & figures).

See :mod:`repro.bench.calibration` for every tunable scalar and its
provenance, :mod:`repro.bench.harness` for the per-experiment runners,
and ``python -m repro.bench`` for the command-line entry point.
"""
