"""Run every experiment and print the regenerated tables/figures.

Usage::

    python -m repro.bench                    # everything
    python -m repro.bench fig-6.2            # one experiment by id
    python -m repro.bench --list             # available experiment ids
    python -m repro.bench --trace DIR        # also dump traces + metrics

The perf-regression gate rides the same entry point::

    python -m repro.bench --baseline benchmarks/baseline.json
    python -m repro.bench --check benchmarks/baseline.json --tolerance 25

``--baseline`` snapshots every gated experiment's key scalars to JSON;
``--check`` re-runs them, compares against the committed baseline (per
:mod:`repro.bench.regression`), and exits non-zero on regression — the
CI hook that makes the BENCH_* trajectory self-enforcing.
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.bench.harness import (
    run_alloc_churn,
    run_fault_recovery,
    run_fig_1_1,
    run_fig_5_5,
    run_fig_5_6,
    run_fig_6_2,
    run_fig_6_3,
    run_fig_6_4,
    run_backend_compare,
    run_kernel_prof,
    run_million_boids,
    run_sec_7_traits,
    run_serve_slo,
)

EXPERIMENTS = {
    "fig-1.1": run_fig_1_1,
    "fig-5.5": run_fig_5_5,
    "fig-5.6": run_fig_5_6,
    "fig-6.2": run_fig_6_2,
    "fig-6.3": run_fig_6_3,
    "fig-6.4": run_fig_6_4,
    "sec-7": run_sec_7_traits,
    "serve-slo": run_serve_slo,
    "alloc-churn": run_alloc_churn,
    "fault-recovery": run_fault_recovery,
    "backend-compare": run_backend_compare,
    "kernel-prof": run_kernel_prof,
    "million-boids": run_million_boids,
}


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables/figures; optionally "
        "trace them or run the perf-regression gate.",
    )
    p.add_argument(
        "experiments",
        nargs="*",
        metavar="ID",
        help="experiment ids to run (default: all)",
    )
    p.add_argument(
        "--list", action="store_true", help="print available experiment ids"
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="DIR",
        help="dump each experiment's Chrome trace + metrics JSON here",
    )
    p.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the selected experiments' data dicts as JSON "
        "(CI smoke steps consume this)",
    )
    gate = p.add_argument_group("perf-regression gate")
    gate.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="snapshot gated experiment scalars to FILE and exit",
    )
    gate.add_argument(
        "--check",
        default=None,
        metavar="FILE",
        help="compare a fresh snapshot against FILE; exit 1 on regression",
    )
    gate.add_argument(
        "--tolerance",
        type=float,
        default=25.0,
        metavar="PCT",
        help="per-metric tolerance for --check (default 25)",
    )
    return p


def main(argv: "list[str]") -> int:
    """Entry point: run the selected (or all) experiments."""
    args = _build_parser().parse_args(argv)
    if args.list:
        print("\n".join(EXPERIMENTS))
        return 0

    if args.baseline or args.check:
        from repro.bench import regression

        snap = regression.snapshot(EXPERIMENTS)
        if args.baseline:
            regression.write_snapshot(args.baseline, snap)
            print(f"baseline written: {args.baseline}")
            return 0
        baseline = regression.load_snapshot(args.check)
        deltas = regression.compare(baseline, snap, args.tolerance)
        print(regression.render(deltas, args.tolerance))
        return 1 if any(d.failed for d in deltas) else 0

    unknown = [w for w in args.experiments if w not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.trace is not None:
        obs.enable_tracing()
    collected: "dict[str, dict]" = {}
    for name, runner in EXPERIMENTS.items():
        if args.experiments and name not in args.experiments:
            continue
        exp = runner()
        collected[name] = exp.data
        print(exp.report)
        if args.trace is not None:
            for path in exp.dump_observability(args.trace):
                print(f"wrote {path}")
        print()
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                {"experiments": collected}, fh, indent=1, sort_keys=True
            )
            fh.write("\n")
        print(f"data written: {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
