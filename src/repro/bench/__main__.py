"""Run every experiment and print the regenerated tables/figures.

Usage::

    python -m repro.bench               # everything
    python -m repro.bench fig-6.2       # one experiment by id
    python -m repro.bench --list        # available experiment ids
    python -m repro.bench --trace DIR   # also dump Chrome traces + metrics
"""

from __future__ import annotations

import sys

from repro import obs
from repro.bench.harness import (
    run_fig_1_1,
    run_fig_5_5,
    run_fig_5_6,
    run_fig_6_2,
    run_fig_6_3,
    run_fig_6_4,
    run_sec_7_traits,
    run_serve_slo,
)

EXPERIMENTS = {
    "fig-1.1": run_fig_1_1,
    "fig-5.5": run_fig_5_5,
    "fig-5.6": run_fig_5_6,
    "fig-6.2": run_fig_6_2,
    "fig-6.3": run_fig_6_3,
    "fig-6.4": run_fig_6_4,
    "sec-7": run_sec_7_traits,
    "serve-slo": run_serve_slo,
}


def main(argv: "list[str]") -> int:
    """Entry point: run the selected (or all) experiments."""
    if "--list" in argv:
        print("\n".join(EXPERIMENTS))
        return 0
    trace_dir: "str | None" = None
    if "--trace" in argv:
        i = argv.index("--trace")
        if i + 1 >= len(argv):
            print("--trace requires a directory argument", file=sys.stderr)
            return 2
        trace_dir = argv[i + 1]
        argv = argv[:i] + argv[i + 2 :]
        obs.enable_tracing()
    wanted = [a for a in argv if not a.startswith("-")]
    unknown = [w for w in wanted if w not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name, runner in EXPERIMENTS.items():
        if wanted and name not in wanted:
            continue
        exp = runner()
        print(exp.report)
        if trace_dir is not None:
            for path in exp.dump_observability(trace_dir):
                print(f"wrote {path}")
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
