"""Calibration constants for the timing models — with provenance.

The *structure* of every model in this repository (SIMT issue costs,
coalescing traffic, occupancy latency hiding, PCIe transfers, O(n^2)
neighbor scans) comes from the paper's chapters 2 and 5.  What the paper
does not publish are absolute per-operation constants of its testbed, so
the handful of scalars below pin the absolute scale.  They were chosen
once, by hand, to satisfy the paper's *published anchor ratios*:

* Fig. 5.5 — neighbor search ~82% of CPU update cycles at the demo's
  ~1024-agent population;
* Fig. 6.2 — the version ladder at 4096 agents: 3.9x / 12.9x / 27x /
  28.8x / 42x over the CPU version;
* Fig. 6.4 — double-buffering gains between 12% and 32%, peaking where
  host and device finish together;
* §7 — CuPP's analysis overhead roughly doubles "compile" time.

Changing a constant here rescales curves but cannot manufacture the
paper's qualitative results: who wins, the v1->v2 shared-memory jump, the
v3/v4 ordering, and the think-frequency crossovers all emerge from the
counted work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simgpu.transfer import PcieModel
from repro.steer.cpu_model import CpuCostModel


@dataclass(frozen=True)
class Calibration:
    """Every tunable scalar in one place."""

    # ---- CPU (Athlon 64 3700+, serial OpenSteer) ----------------------
    #: Listing 5.2 inner loop, cycles per candidate (load + distance +
    #: compare + bookkeeping on a 2.2 GHz K8 with warm caches).
    cpu_cycles_per_candidate: float = 15.0
    #: Steering-vector computation per thinking agent.
    cpu_cycles_steering: float = 2400.0
    #: Modification substage per agent.
    cpu_cycles_modification: float = 250.0
    #: Draw stage per agent (matrix + GL submission + render share).  Set
    #: so drawing 4096 boids alone runs at ~60 fps — the paper's
    #: 4096-agent demo is "only limited by the draw stage" (§6.3.2) and
    #: targets the 30-60 fps band of §5.3.
    cpu_cycles_draw: float = 8900.0
    #: Fraction of the draw stage that is host-side work a CUDA kernel can
    #: overlap with (submission/driver); the rest is GPU render time that
    #: serializes with compute on the same device.
    draw_overlappable_fraction: float = 0.35
    #: Host cost to extract one float element into a cupp::vector
    #: (listing 6.1's copy loop) or read one result element back.
    cpu_cycles_extract_per_element: float = 9.0

    # ---- GPU / interconnect -------------------------------------------
    #: Effective PCIe bandwidth (pageable memory, 2007 chipset).
    pcie_bandwidth: float = 2.5e9
    #: Per-cudaMemcpy fixed overhead.
    pcie_call_overhead_s: float = 15e-6
    #: Per-kernel-launch host overhead (configure + args + launch).
    launch_overhead_s: float = 10e-6

    # ---- workload statistics -------------------------------------------
    #: Flocking clustering factor for the in-radius density estimate
    #: (measured populations cluster ~2x over uniform).
    density_clustering: float = 2.0

    def cpu_model(self) -> CpuCostModel:
        return CpuCostModel(
            cycles_per_candidate=self.cpu_cycles_per_candidate,
            cycles_steering_per_agent=self.cpu_cycles_steering,
            cycles_modification_per_agent=self.cpu_cycles_modification,
            cycles_draw_per_agent=self.cpu_cycles_draw,
        )

    def pcie_model(self) -> PcieModel:
        return PcieModel(
            bandwidth_bytes_per_s=self.pcie_bandwidth,
            per_call_overhead_s=self.pcie_call_overhead_s,
        )

    def extract_seconds(self, elements: int) -> float:
        """Host time to move ``elements`` floats in/out of cupp vectors."""
        return (
            elements
            * self.cpu_cycles_extract_per_element
            / self.cpu_model().cpu.clock_hz
        )


#: The calibration used by every benchmark.
DEFAULT_CALIBRATION = Calibration()
