"""Experiment harness: one function per table/figure of the paper.

Each ``run_*`` function regenerates its experiment's data — workload
generation, parameter sweep, baselines — and returns structured rows plus
a rendered report.  The ``benchmarks/`` suite calls these (and asserts
the paper's qualitative shape); the ``examples/`` scripts reuse them.
"""

from __future__ import annotations

import functools
import time
from dataclasses import dataclass, field

from repro import obs
from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.bench.report import format_series, format_table
from repro.gpusteer.cost_model import WorkloadStats
from repro.gpusteer.double_buffer import compare as compare_db
from repro.gpusteer.pipeline import version_ladder
from repro.gpusteer.versions import VERSIONS, update_time
from repro.simgpu.arch import ATHLON64_3700, CpuSpec, G80_8800GTS, scaled_arch
from repro.steer.params import DEFAULT_PARAMS, THINK_FREQ_PARAMS
from repro.steer.simulation import Simulation


@dataclass
class Experiment:
    """A regenerated table/figure: rows + the printable report."""

    experiment_id: str
    rows: list = field(default_factory=list)
    report: str = ""
    data: dict = field(default_factory=dict)
    #: Filled by :func:`observed` when global tracing is enabled: the
    #: run's :class:`repro.obs.Capture` (trace events + metrics snapshot
    #: + transfer-ledger delta).
    capture: "obs.Capture | None" = None

    def show(self) -> None:  # pragma: no cover - console convenience
        print(self.report)

    def dump_observability(self, directory: str) -> "list[str]":
        """Write this run's trace + metrics JSON next to its results.

        Returns the written paths (``<id>.trace.json``,
        ``<id>.metrics.json``); empty when the run was not traced.
        """
        if self.capture is None:
            return []
        return self.capture.write(directory, stem=self.experiment_id)


def observed(runner):
    """Decorator: attach observability data to an experiment runner.

    When the global tracer is enabled, the wrapped ``run_*`` executes
    inside an :func:`repro.obs.capture` session and the resulting
    :class:`~repro.obs.session.Capture` lands on ``Experiment.capture``.
    When tracing is disabled the runner is called directly — the no-op
    recorder keeps the hot path free.
    """

    @functools.wraps(runner)
    def wrapper(*args, **kwargs):
        if not obs.enabled():
            return runner(*args, **kwargs)
        with obs.capture() as cap:
            exp = runner(*args, **kwargs)
        exp.capture = cap
        return exp

    return wrapper


# ----------------------------------------------------------------------
# Fig 1.1 — peak GFLOPS, GPU vs CPU, across generations
# ----------------------------------------------------------------------
#: Reconstructed generation tables (the paper reprints NVIDIA's marketing
#: chart; we rebuild the trend from architecture parameters — ALU counts
#: approximated as multiprocessor-equivalents on the G80 clock template).
GPU_GENERATIONS = [
    ("2004", scaled_arch("NV40 (GeForce 6800U)", 2, bandwidth_scale=0.55)),
    ("2005", scaled_arch("G70 (GeForce 7800GTX)", 4, bandwidth_scale=0.6)),
    ("2006", scaled_arch("G71 (GeForce 7900GTX)", 6, bandwidth_scale=0.8)),
    ("2007", G80_8800GTS),
]

CPU_GENERATIONS = [
    ("2004", CpuSpec("Athlon 64 3500+", 2.2e9, 1, 4.0)),
    ("2005", ATHLON64_3700),
    ("2006", CpuSpec("Athlon 64 X2 4800+", 2.4e9, 2, 4.0)),
    ("2007", CpuSpec("Core 2 Duo E6700", 2.66e9, 2, 8.0)),
]


@observed
def run_fig_1_1() -> Experiment:
    """GPU vs CPU peak single-precision GFLOP/s over hardware generations."""
    rows = []
    gpu_series: dict[str, float] = {}
    cpu_series: dict[str, float] = {}
    cpus = dict(CPU_GENERATIONS)
    for year, arch in GPU_GENERATIONS:
        cpu = cpus[year]
        rows.append(
            (year, arch.name, round(arch.peak_gflops, 1),
             cpu.name, round(cpu.peak_gflops, 1),
             round(arch.peak_gflops / cpu.peak_gflops, 1))
        )
        gpu_series[year] = arch.peak_gflops
        cpu_series[year] = cpu.peak_gflops
    exp = Experiment("fig-1.1", rows)
    exp.data = {"gpu": gpu_series, "cpu": cpu_series}
    exp.report = format_table(
        "Fig 1.1 — peak GFLOP/s, GPU vs CPU by generation",
        ["year", "GPU", "GPU GFLOP/s", "CPU", "CPU GFLOP/s", "ratio"],
        rows,
        note="Paper: GPUs outrange CPUs roughly by a factor of 10 and the "
        "gap widens with each generation.",
    )
    return exp


# ----------------------------------------------------------------------
# Fig 5.5 — CPU cycle breakdown
# ----------------------------------------------------------------------
@observed
def run_fig_5_5(
    n: int = 1024, steps: int = 5, calib: Calibration = DEFAULT_CALIBRATION
) -> Experiment:
    """Per-stage share of the CPU update stage (neighbor search ~82%)."""
    sim = Simulation(n, DEFAULT_PARAMS, seed=7, cpu_model=calib.cpu_model())
    sim.run(steps)
    profile = sim.profile
    rows = [
        (stage, f"{profile.update_share(stage) * 100:.1f}%")
        for stage in ("neighbor_search", "steering", "modification")
    ]
    exp = Experiment("fig-5.5", rows)
    exp.data = {"neighbor_share": profile.update_share("neighbor_search")}
    exp.report = format_table(
        f"Fig 5.5 — CPU update-stage cycle breakdown ({n} agents)",
        ["stage", "share of update stage"],
        rows,
        note="Paper: 'The neighbor search is the performance bottleneck, "
        "with about 82% of the used CPU cycles.'",
    )
    return exp


# ----------------------------------------------------------------------
# Fig 5.6 — CPU scaling with/without think frequency
# ----------------------------------------------------------------------
@observed
def run_fig_5_6(
    populations: "tuple[int, ...]" = (1024, 2048, 4096, 8192, 16384, 32768),
    calib: Calibration = DEFAULT_CALIBRATION,
) -> Experiment:
    """CPU updates/second over population, think frequency off and 1/10."""
    cpu = calib.cpu_model()
    without: dict[int, float] = {}
    with_tf: dict[int, float] = {}
    for n in populations:
        without[n] = 1.0 / cpu.update_seconds(n, n)
        with_tf[n] = 1.0 / cpu.update_seconds(n, max(1, n // 10))
    exp = Experiment("fig-5.6")
    exp.rows = [(n, without[n], with_tf[n]) for n in populations]
    exp.data = {"without": without, "with_tf": with_tf}
    exp.report = format_series(
        "Fig 5.6 — CPU Boids update rate",
        "agents",
        {"think freq off": without, "think freq 1/10": with_tf},
        unit="updates/s",
        note="Paper: without think frequency the O(n^2) neighbor search "
        "dominates; the 1/10 think frequency flattens the curve.",
    )
    return exp


# ----------------------------------------------------------------------
# Fig 6.2 — the development-version ladder at 4096 agents
# ----------------------------------------------------------------------
PAPER_LADDER = {1: 3.9, 2: 12.9, 3: 27.0, 4: 28.8, 5: 42.0}


@observed
def run_fig_6_2(
    n: int = 4096, steps: int = 5, calib: Calibration = DEFAULT_CALIBRATION
) -> Experiment:
    """Updates/second per development version, with measured workload
    statistics from a live flock."""
    ladder = version_ladder(n, DEFAULT_PARAMS, steps=steps, seed=3, calib=calib)
    base = ladder[0].updates_per_second
    rows = []
    speedups: dict[int, float] = {}
    for v in range(6):
        r = ladder[v]
        speedup = r.updates_per_second / base
        speedups[v] = speedup
        rows.append(
            (f"v{v}" if v else "CPU",
             VERSIONS[v].name,
             round(r.updates_per_second, 1),
             round(speedup, 1),
             PAPER_LADDER.get(v, 1.0))
        )
    exp = Experiment("fig-6.2", rows)
    exp.data = {"speedups": speedups, "stats": ladder[5].stats}
    exp.report = format_table(
        f"Fig 6.2 — development versions at {n} agents",
        ["version", "description", "updates/s", "speedup", "paper speedup"],
        rows,
        note="Paper factors: 3.9 / 12.9 / 27 / 28.8 / 42 over the CPU "
        "version; shapes to check: the big shared-memory jump v1->v2, "
        "v4 slightly above v3, v5 the largest.",
    )
    return exp


# ----------------------------------------------------------------------
# Fig 6.3 — version-5 scaling
# ----------------------------------------------------------------------
@observed
def run_fig_6_3(
    populations: "tuple[int, ...]" = (1024, 2048, 4096, 8192, 16384, 32768),
    calib: Calibration = DEFAULT_CALIBRATION,
    measure: bool = True,
    steps: int = 3,
) -> Experiment:
    """v5 update rate over population, think frequency off and 1/10."""
    without: dict[int, float] = {}
    with_tf: dict[int, float] = {}
    for n in populations:
        if measure:
            sim = Simulation(n, DEFAULT_PARAMS, seed=5, cpu_model=calib.cpu_model())
            sim.run(steps)
            stats = WorkloadStats.measure(sim.positions, DEFAULT_PARAMS)
        else:
            stats = None
        without[n] = update_time(
            5, n, DEFAULT_PARAMS, stats, calib
        ).updates_per_second
        with_tf[n] = update_time(
            5, n, THINK_FREQ_PARAMS, stats, calib
        ).updates_per_second
    exp = Experiment("fig-6.3")
    exp.rows = [(n, without[n], with_tf[n]) for n in populations]
    exp.data = {"without": without, "with_tf": with_tf}
    exp.report = format_series(
        "Fig 6.3 — version 5 update rate",
        "agents",
        {"think freq off": without, "think freq 1/10": with_tf},
        unit="updates/s",
        note="Paper: O(n^2) visible without think frequency; with it, "
        "near-linear to 16384 and a ~4.8x drop at 32768 (divergence + "
        "complexity).",
    )
    return exp


# ----------------------------------------------------------------------
# Fig 6.4 — double buffering
# ----------------------------------------------------------------------
@observed
def run_fig_6_4(
    populations: "tuple[int, ...]" = (4096, 8192, 16384, 32768),
    calib: Calibration = DEFAULT_CALIBRATION,
) -> Experiment:
    """Frame-rate gain from overlapping draw with the next update."""
    rows = []
    gains: dict[str, dict[int, float]] = {"think freq off": {}, "think freq 1/10": {}}
    for n in populations:
        for label, params in (
            ("think freq off", DEFAULT_PARAMS),
            ("think freq 1/10", THINK_FREQ_PARAMS),
        ):
            t = compare_db(n, params, calib=calib)
            gains[label][n] = t.improvement * 100
            rows.append(
                (n, label, round(t.fps_without, 1), round(t.fps_with, 1),
                 f"{t.improvement * 100:.1f}%")
            )
    exp = Experiment("fig-6.4", rows)
    exp.data = {"gains": gains}
    exp.report = format_table(
        "Fig 6.4 — double buffering improvement (version 5)",
        ["agents", "think frequency", "fps without", "fps with", "gain"],
        rows,
        note="Paper: improvements between 12% and 32%, highest where host "
        "and device finish together (8192 without think frequency; 32768 "
        "with); 4096 agents are draw-bound either way.",
    )
    return exp


# ----------------------------------------------------------------------
# §7 — traits-analysis ('compile time') overhead
# ----------------------------------------------------------------------
@observed
def run_sec_7_traits(repeats: int = 2000) -> Experiment:
    """Cost of CuPP's kernel-signature analysis vs a bare launch config.

    The paper's analog: template metaprogramming more than doubled the
    Boids compile time (3.1 s -> 7.3 s).  Here the pay-once work is
    ``analyze_kernel`` at Kernel construction.
    """
    from repro.cupp import Kernel, analyze_kernel
    from repro.gpusteer.kernels_emu import modify_kernel
    from repro.simgpu.dims import as_dim3

    t0 = time.perf_counter()
    for _ in range(repeats):
        analyze_kernel(modify_kernel)
    analysis_s = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    for _ in range(repeats):
        as_dim3(128), as_dim3(32)  # the raw-CUDA "configuration" work
    bare_s = (time.perf_counter() - t0) / repeats

    t0 = time.perf_counter()
    for _ in range(repeats):
        Kernel(modify_kernel, 128, 32)
    kernel_s = (time.perf_counter() - t0) / repeats

    rows = [
        ("bare launch configuration", f"{bare_s * 1e6:.2f} us"),
        ("analyze_kernel (traits)", f"{analysis_s * 1e6:.2f} us"),
        ("cupp.Kernel construction", f"{kernel_s * 1e6:.2f} us"),
        ("overhead factor", f"{kernel_s / max(bare_s, 1e-12):.0f}x"),
    ]
    exp = Experiment("sec-7-traits", rows)
    exp.data = {"analysis_s": analysis_s, "bare_s": bare_s, "kernel_s": kernel_s}
    exp.report = format_table(
        "§7 — pay-once signature-analysis overhead",
        ["operation", "cost"],
        rows,
        note="Paper: CuPP's template metaprogramming raised compile time "
        "from 3.1 s to 7.3 s; the Python analog is run-once signature "
        "analysis at Kernel construction.",
    )
    return exp


# ----------------------------------------------------------------------
# Serving SLO — batched vs per-request launches at one offered load
# ----------------------------------------------------------------------
@observed
def run_serve_slo(
    clients: int = 32,
    duration_s: float = 0.25,
    rate_rps: float = 16000.0,
    seed: int = 0,
) -> Experiment:
    """repro.serve under open-loop load: batching on vs off.

    Runs the load generator twice on the identical Poisson arrival
    stream — dynamic batching enabled, then one-launch-per-request — and
    tabulates the SLO deltas.  The qualitative shape the serving layer
    exists for: batching amortizes launch + PCIe per-call overhead, so
    at the same offered load it completes more requests with far fewer
    modelled kernel launches, while the per-request baseline saturates
    its dispatch path and starts rejecting.
    """
    from repro.serve.loadgen import run_load
    from repro.serve.service import ServeConfig

    reports = {}
    for label, batching in (("batched", True), ("per-request", False)):
        reports[label] = run_load(
            clients=clients,
            duration_s=duration_s,
            rate_rps=rate_rps,
            seed=seed,
            config=ServeConfig(physics=False, batching=batching),
        )

    rows = []
    for label, r in reports.items():
        rows.append(
            (
                label,
                r.completed,
                f"{r.throughput_rps:,.0f}",
                f"{r.p50_ms:.2f}",
                f"{r.p99_ms:.2f}",
                f"{r.mean_batch_size:.1f}",
                r.launches,
                r.rejected + r.shed + r.expired,
            )
        )
    on, off = reports["batched"], reports["per-request"]
    exp = Experiment("serve-slo", rows)
    exp.data = {
        "batched": on.to_dict(),
        "per_request": off.to_dict(),
        "throughput_gain": on.throughput_rps / max(off.throughput_rps, 1e-9),
        "launch_ratio": off.launches / max(on.launches, 1),
    }
    exp.report = format_table(
        f"serve SLO — {clients} clients, {rate_rps:,.0f} req/s offered "
        f"for {duration_s:g} s (virtual)",
        ["mode", "done", "req/s", "p50 ms", "p99 ms", "batch", "launches",
         "failed"],
        rows,
        note="Dynamic batching amortizes launch + PCIe per-call overhead "
        "across coalesced sessions; the per-request baseline saturates "
        "its host dispatch path at the same offered load.",
    )
    return exp


# ----------------------------------------------------------------------
# Allocation churn — the repro.mem caching allocator, pooled vs raw
# ----------------------------------------------------------------------
@observed
def run_alloc_churn(
    clients: int = 16,
    warmup_s: float = 0.08,
    steady_s: float = 0.16,
    rate_rps: float = 12000.0,
    seed: int = 0,
) -> Experiment:
    """Allocation churn with and without the :mod:`repro.mem` pool.

    Two workloads, each run pooled and raw:

    * the serving loadgen (per-batch result/staging buffers plus session
      state blocks) — after a warmup window, a caching allocator should
      serve the steady state entirely from its bins, so the headline is
      *raw driver allocations in the steady window*;
    * a ``cupp.Vector`` growth microbench (push_back + transform churn,
      §4.6 realloc-on-growth) — every realloc re-allocates the next
      power-of-two bin, which the pool has cached after the first pass.

    All counts are deterministic (virtual-time serve, fixed seeds), so
    the perf gate can hold the reduction factors exactly.
    """
    import numpy as np

    from repro.cuda.runtime import CudaMachine
    from repro.cupp import Device
    from repro.cupp.vector import Vector
    from repro.serve.service import ServeConfig, SimulationService

    raw_mallocs = obs.counter("cuda.malloc.count")

    def pool_counts(devices: int) -> "tuple[int, int]":
        hits = sum(
            obs.counter("mem.pool.hits", device=i).value
            for i in range(devices)
        )
        misses = sum(
            obs.counter("mem.pool.misses", device=i).value
            for i in range(devices)
        )
        return int(hits), int(misses)

    def drive_serve(pool: bool) -> dict:
        # Serial scheduler: this experiment isolates the allocator, and
        # depth-2 stream pipelining would keep *two* staging buffers in
        # flight per device — a concurrency the warmup window doesn't
        # exercise, so the steady state would pay a couple of raw
        # allocations that say nothing about the pool itself.
        cfg = ServeConfig(physics=False, pool=pool, streams=1)
        service = SimulationService(cfg)
        for i in range(clients):
            service.create_session(f"client-{i}", seed=seed + i)
        rng = np.random.default_rng(seed)
        total = warmup_s + steady_s
        gaps = rng.exponential(
            1.0 / rate_rps, size=max(1, int(rate_rps * total * 2))
        )
        arrivals = np.cumsum(gaps)
        arrivals = arrivals[arrivals < total]
        owners = rng.integers(0, clients, size=arrivals.size)
        start = raw_mallocs.value
        boundary: "float | None" = None
        hits0 = misses0 = 0
        for t, owner in zip(arrivals, owners):
            if boundary is None and t >= warmup_s:
                service.advance(warmup_s)
                boundary = raw_mallocs.value
                hits0, misses0 = pool_counts(cfg.devices)
            service.advance(float(t))
            service.submit(f"client-{owner}")
        if boundary is None:
            boundary = raw_mallocs.value
            hits0, misses0 = pool_counts(cfg.devices)
        service.drain()
        hits1, misses1 = pool_counts(cfg.devices)
        steady_hits = hits1 - hits0
        steady_misses = misses1 - misses0
        steady_pool_allocs = steady_hits + steady_misses
        return {
            "completed": service.stats.completed,
            "warmup_raw": int(boundary - start),
            "steady_raw": int(raw_mallocs.value - boundary),
            "steady_hit_rate": (
                steady_hits / steady_pool_allocs if steady_pool_allocs else 0.0
            ),
        }

    def drive_vector(pool: bool) -> dict:
        machine = CudaMachine(
            [scaled_arch("alloc-churn-gpu", 12, memory_bytes=1 << 26)]
        )
        device = Device(machine=machine)
        if pool:
            device.enable_pool()
        raw0 = raw_mallocs.value
        re0 = obs.counter("cupp.vector.reallocs").value
        vec = Vector(dtype="float32")
        for i in range(512):
            vec.push_back(float(i))
            if (i + 1) % 16 == 0:
                vec.transform(device)  # grew -> realloc + re-upload
        stats = device.pool.stats() if pool else None
        raw = int(raw_mallocs.value - raw0)
        reallocs = int(obs.counter("cupp.vector.reallocs").value - re0)
        device.close()
        return {
            "raw": raw,
            "reallocs": reallocs,
            "hit_rate": stats.hit_rate if stats else 0.0,
        }

    serve_pooled = drive_serve(pool=True)
    serve_raw = drive_serve(pool=False)
    vec_pooled = drive_vector(pool=True)
    vec_raw = drive_vector(pool=False)

    serve_gain = serve_raw["steady_raw"] / max(serve_pooled["steady_raw"], 1)
    vec_gain = vec_raw["raw"] / max(vec_pooled["raw"], 1)

    rows = [
        (
            "serve loadgen (steady)",
            serve_raw["steady_raw"],
            serve_pooled["steady_raw"],
            f"{serve_gain:.1f}x",
            f"{serve_pooled['steady_hit_rate'] * 100:.1f}%",
        ),
        (
            "vector growth",
            vec_raw["raw"],
            vec_pooled["raw"],
            f"{vec_gain:.1f}x",
            f"{vec_pooled['hit_rate'] * 100:.1f}%",
        ),
    ]
    exp = Experiment("alloc-churn", rows)
    exp.data = {
        "serve": {
            "completed": serve_pooled["completed"],
            "warmup_raw_allocs_pooled": serve_pooled["warmup_raw"],
            "steady_raw_allocs_pooled": serve_pooled["steady_raw"],
            "steady_raw_allocs_nopool": serve_raw["steady_raw"],
            "alloc_reduction_gain": serve_gain,
            "steady_hit_rate": serve_pooled["steady_hit_rate"],
        },
        "vector": {
            "reallocs": vec_pooled["reallocs"],
            "raw_allocs_pooled": vec_pooled["raw"],
            "raw_allocs_nopool": vec_raw["raw"],
            "alloc_reduction_gain": vec_gain,
            "hit_rate": vec_pooled["hit_rate"],
        },
    }
    exp.report = format_table(
        f"alloc churn — raw driver allocations, pooled vs raw "
        f"({clients} clients, {rate_rps:,.0f} req/s; 512-element vector "
        f"growth)",
        ["workload", "raw allocs", "pooled allocs", "reduction", "hit rate"],
        rows,
        note="The repro.mem caching allocator serves the steady state from "
        "its bins: after warmup the serve loadgen performs (near-)zero raw "
        "driver allocations, and vector growth pays the driver only for "
        "the first visit to each power-of-two bin.",
    )
    return exp


# ----------------------------------------------------------------------
# Fault recovery — chaos injection vs the fault-free baseline
# ----------------------------------------------------------------------
@observed
def run_fault_recovery(
    clients: int = 32,
    duration_s: float = 0.25,
    rate_rps: float = 16000.0,
    seed: int = 0,
    device_fault_rate: float = 0.01,
) -> Experiment:
    """The serving layer under injected chaos vs the same load clean.

    Runs the serve-slo load point twice on the identical Poisson
    arrival stream: once fault-free, once with the standard
    :meth:`~repro.fault.FaultConfig.chaos` mix at ``device_fault_rate``
    (launch failures, hangs, ECC transfer corruption, spurious OOM).
    The resilience contract the gate holds: **zero stranded requests**
    and **zero failed requests** at this rate, with p99 degrading by
    less than 2x — retries, watchdog timeouts, device eviction, and
    checkpointed session failover absorb every injected fault.  All
    numbers are deterministic (seeded injector, virtual time), so the
    chaos counters themselves are gated as band metrics.
    """
    from repro.fault import FaultConfig
    from repro.serve.loadgen import run_load
    from repro.serve.service import ServeConfig

    reports = {}
    for label, faults in (
        ("fault-free", None),
        ("chaos", FaultConfig.chaos(seed=seed, device_fault_rate=device_fault_rate)),
    ):
        reports[label] = run_load(
            clients=clients,
            duration_s=duration_s,
            rate_rps=rate_rps,
            seed=seed,
            config=ServeConfig(physics=False, faults=faults),
        )

    clean, chaos = reports["fault-free"], reports["chaos"]
    degradation = chaos.p99_ms / max(clean.p99_ms, 1e-9)
    injected = chaos.faults["injected"] if chaos.faults else 0
    rows = [
        (
            label,
            r.completed,
            r.failed,
            r.stranded,
            f"{r.p99_ms:.2f}",
            r.retries,
            r.timeouts,
            r.failovers,
        )
        for label, r in reports.items()
    ]
    exp = Experiment("fault-recovery", rows)
    exp.data = {
        "fault_free": {
            "completed": clean.completed,
            "p99_ms": clean.p99_ms,
            "throughput_rps": clean.throughput_rps,
        },
        "chaos": {
            "completed": chaos.completed,
            "failed": chaos.failed,
            "stranded": chaos.stranded,
            "p99_ms": chaos.p99_ms,
            "retries": chaos.retries,
            "timeouts": chaos.timeouts,
            "evictions": chaos.evictions,
            "failovers": chaos.failovers,
            "faults_injected": injected,
        },
        "p99_degradation_x": degradation,
    }
    exp.report = format_table(
        f"fault recovery — {clients} clients, {rate_rps:,.0f} req/s for "
        f"{duration_s:g} s, {device_fault_rate:.0%} device-fault rate",
        ["mode", "done", "failed", "stranded", "p99 ms", "retries",
         "timeouts", "failovers"],
        rows,
        note=f"Injected chaos ({injected} faults) costs "
        f"{degradation:.2f}x on p99; retries, watchdog eviction, and "
        f"checkpointed session failover leave zero requests stranded.",
    )
    return exp


# ----------------------------------------------------------------------
# Backend compare — the cycle simulator vs the native numpy backend
# ----------------------------------------------------------------------
@observed
def run_backend_compare(
    agents: int = 512,
    steps: int = 5,
    conformance_agents: int = 32,
    conformance_steps: int = 2,
    seed: int = 11,
) -> Experiment:
    """The same kernels on two substrates: virtual time vs wall clock.

    Two measurements:

    * **throughput** — the v5 pipeline at ``agents`` boids, native
      backend wall-clock seconds per step against the sim backend's
      *modelled* virtual seconds per step (the analytic perf model the
      simulator's clock is built from — running the emulator at this
      scale would measure Python, not the G80);
    * **conformance** — every pipeline version (1-5) run on both
      backends from the same seed at a population the emulator handles
      quickly, reporting exactness / max abs difference.

    Wall-clock numbers vary by machine, so the whole experiment is
    excluded from the perf-regression gate (like sec-7).
    """
    import time as _time

    from repro.backend.conformance import run_suite
    from repro.cupp.device import Device
    from repro.gpusteer.emulated import EmulatedBoids
    from repro.gpusteer.versions import update_time
    from repro.steer.params import DEFAULT_PARAMS

    boids = EmulatedBoids(
        agents, 5, seed=seed, device=Device(backend="native"),
        threads_per_block=32,
    )
    boids.step()  # warm the kernel registry + pools before timing
    start = _time.perf_counter()
    for _ in range(steps):
        boids.step()
    native_s = (_time.perf_counter() - start) / steps
    modelled = update_time(5, agents, DEFAULT_PARAMS)
    sim_s = modelled.total_s

    suite = [r.to_dict() for r in run_suite(
        agents=conformance_agents, steps=conformance_steps, seed=seed
    )]
    all_ok = all(r["ok"] for r in suite)
    all_exact = all(r["exact"] for r in suite)
    max_diff = max(r["max_abs_diff"] for r in suite)

    # Head-to-head wall clock at a population the emulator can stomach:
    # the same v5 steps, instruction-level emulation vs vectorized numpy.
    small = {}
    for kind in ("sim", "native"):
        b = EmulatedBoids(
            conformance_agents, 5, seed=seed, device=Device(backend=kind),
            threads_per_block=16,
        )
        start = _time.perf_counter()
        for _ in range(conformance_steps):
            b.step()
        small[kind] = (_time.perf_counter() - start) / conformance_steps
    emu_speedup = small["sim"] / max(small["native"], 1e-12)

    rows = [
        (
            "sim (modelled)",
            f"{sim_s * 1e3:.3f}",
            f"{agents / sim_s:,.0f}",
            "perf model",
        ),
        (
            "native (measured)",
            f"{native_s * 1e3:.3f}",
            f"{agents / native_s:,.0f}",
            "wall clock",
        ),
    ]
    exp = Experiment("backend-compare", rows)
    exp.data = {
        "agents": agents,
        "steps": steps,
        "sim_modelled_s_per_step": sim_s,
        "native_wall_s_per_step": native_s,
        "native_agent_steps_per_s": agents / native_s,
        "emulator_wall_s_per_step_small": small["sim"],
        "native_wall_s_per_step_small": small["native"],
        "native_speedup_vs_emulator": emu_speedup,
        "conformance": {
            "versions": suite,
            "ok": all_ok,
            "exact": all_exact,
            "max_abs_diff": max_diff,
        },
    }
    exp.report = format_table(
        f"backend compare — v5 pipeline, {agents} agents, {steps} steps",
        ["backend", "ms/step", "agent-steps/s", "clock"],
        rows,
        note=f"Conformance (v1-v5, {conformance_agents} agents, "
        f"{conformance_steps} steps): "
        + ("bit-exact" if all_exact else f"max |diff| {max_diff:.2e}")
        + f" across backends; at {conformance_agents} agents the native "
        f"backend executes the same kernels {emu_speedup:,.0f}x faster "
        f"than instruction-level emulation.",
    )
    return exp


# ----------------------------------------------------------------------
# kernel-prof — the profiler's v1-vs-v5 story, counter-attributed
# ----------------------------------------------------------------------
@observed
def run_kernel_prof(
    agents: int = 128,
    steps: int = 1,
    threads_per_block: int = 32,
    multiprocessors: int = 2,
    seed: int = 7,
) -> Experiment:
    """Profile v1 and v5 and attribute the speedup to counters.

    Runs ``repro.prof`` over both ends of the Table 6.1 ladder on the
    simulator, diffs the counter movement, and *validates* the advisor:
    the block-size suggestion its low-occupancy rule makes for the v1
    neighbor kernel is re-run at the suggested configuration and the
    measured (virtual-clock) improvement is reported next to the
    estimate.  Everything here is deterministic — emulated counters plus
    the analytic perf model — so the experiment sits inside the
    perf-regression gate.
    """
    from repro.prof.__main__ import profile_pipeline
    from repro.prof.advisor import advise
    from repro.prof.report import diff_reports, session_report

    def profile(version: int, tpb: int):
        return profile_pipeline(
            version,
            agents=agents,
            steps=steps,
            threads_per_block=tpb,
            multiprocessors=multiprocessors,
            seed=seed,
        )

    v1 = profile(1, threads_per_block)
    v5 = profile(5, threads_per_block)
    report_v1 = session_report(v1, label="v1")
    report_v5 = session_report(v5, label="v5")
    prof_diff = diff_reports(report_v1, report_v5)

    findings_v1 = advise(v1)
    findings_v5 = advise(v5)
    rules_v1 = {f"{f.rule}:{f.kernel}" for f in findings_v1}
    rules_v5 = {f"{f.rule}:{f.kernel}" for f in findings_v5}

    # Validate the advisor's block-size suggestion against the machine
    # model it advises about: re-run v1 at the suggested configuration
    # and compare virtual-clock kernel time.
    validation: dict = {"validated": False}
    suggestion = next(
        (
            f
            for f in findings_v1
            if f.rule == "low-occupancy" and f.suggestion is not None
        ),
        None,
    )
    if suggestion is not None:
        suggested_tpb = int(suggestion.suggestion["threads_per_block"])
        base_s = v1.kernels[suggestion.kernel].modelled_s
        retuned = profile(1, suggested_tpb)
        tuned_s = retuned.kernels[suggestion.kernel].modelled_s
        measured_speedup = base_s / tuned_s if tuned_s > 0 else 0.0
        validation = {
            "kernel": suggestion.kernel,
            "suggested_threads_per_block": suggested_tpb,
            "estimated_speedup": suggestion.estimated_speedup,
            "base_modelled_s": base_s,
            "tuned_modelled_s": tuned_s,
            "measured_speedup": measured_speedup,
            "validated": measured_speedup > 1.0,
        }

    rows = []
    for label, report in (("v1", report_v1), ("v5", report_v5)):
        for name, kc in sorted(report["kernels"].items()):
            rows.append(
                (
                    label,
                    name,
                    kc["instructions"],
                    kc["uncoalesced_read_transactions"],
                    f"{kc['bytes_moved']:,}",
                    f"{kc['modelled_s'] * 1e3:.4f}",
                )
            )

    speedup = prof_diff["totals"]["speedup"]
    exp = Experiment("kernel-prof", rows)
    exp.data = {
        "agents": agents,
        "steps": steps,
        "threads_per_block": threads_per_block,
        "multiprocessors": multiprocessors,
        "v1": report_v1,
        "v5": report_v5,
        "diff": prof_diff,
        "v1_to_v5_speedup": speedup,
        "v1_uncoalesced_load_finding": "uncoalesced-loads:find_neighbors_v1"
        in rules_v1,
        "v5_uncoalesced_load_findings": sum(
            1 for r in rules_v5 if r.startswith("uncoalesced-loads:")
        ),
        "block_size_validation": validation,
    }
    note = (
        f"v1 -> v5: {speedup:.2f}x modelled; "
        f"advisor block-size suggestion "
        + (
            f"({validation.get('kernel')} @ "
            f"{validation.get('suggested_threads_per_block')} tpb): "
            f"estimated {validation.get('estimated_speedup', 0.0):.2f}x, "
            f"measured {validation.get('measured_speedup', 0.0):.2f}x"
            if validation["validated"]
            else "not validated"
        )
    )
    exp.report = format_table(
        f"kernel profiler — v1 vs v5, {agents} agents, "
        f"{multiprocessors} MPs",
        ["version", "kernel", "instr", "uncoal.ld.tx", "bytes", "modelled ms"],
        rows,
        note=note,
    )
    return exp


# ----------------------------------------------------------------------
# million-boids — grid-bucketed neighbor search at scale (ch. 7)
# ----------------------------------------------------------------------
@observed
def run_million_boids(
    populations: "tuple[int, ...]" = (10_000, 100_000, 1_000_000),
    base_n: int = 4096,
    exact_agents: int = 64,
    exact_steps: int = 1,
    seed: int = 11,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> Experiment:
    """O(n^2) vs O(n·k): the all-pairs v5 against the grid-bucketed v6.

    Two halves, both deterministic:

    * **scaling** — the analytic update-time model at constant flock
      density (the world radius grows with the cube root of the
      population, so the neighborhood size k stays fixed while n grows).
      The all-pairs kernel scales with n per agent, the hash-grid kernel
      with ~27k per agent; the speedup column is the experiment's
      headline and must exceed 10x at a million boids.
    * **exactness** — the differential oracle at an emulatable
      population: v2 (all-pairs) and v6 (grid) neighbor sets after a
      step, on both the sim and native backends.  1.0 means bit-identical
      — the grid changes *time*, never *answers* (the (d2, index)
      tie-break makes the kept set traversal-order-independent).
    """
    import dataclasses

    import numpy as np

    allpairs_s: "dict[int, float]" = {}
    grid_s: "dict[int, float]" = {}
    speedup: "dict[int, float]" = {}
    rows = []
    for n in populations:
        params = dataclasses.replace(
            DEFAULT_PARAMS,
            world_radius=DEFAULT_PARAMS.world_radius * (n / base_n) ** (1 / 3),
        )
        t5 = update_time(5, n, params, calib=calib)
        t6 = update_time(6, n, params, calib=calib)
        allpairs_s[n] = t5.total_s
        grid_s[n] = t6.total_s
        speedup[n] = t5.total_s / t6.total_s
        rows.append(
            (
                f"{n:,}",
                f"{t5.total_s * 1e3:,.1f}",
                f"{t6.total_s * 1e3:,.1f}",
                f"{t6.host_compute_s * 1e3:,.2f}",
                f"{t6.transfer_s * 1e3:,.2f}",
                f"{speedup[n]:,.1f}x",
            )
        )

    from repro.cupp.device import Device
    from repro.gpusteer.emulated import EmulatedBoids

    exact_match: "dict[str, float]" = {}
    for kind in ("sim", "native"):
        sets = {}
        for version in (2, 6):
            boids = EmulatedBoids(
                exact_agents,
                version,
                seed=seed,
                device=Device(backend=kind),
                threads_per_block=32,
            )
            for _ in range(exact_steps):
                boids.step()
            sets[version] = boids.neighbor_sets()
        exact_match[kind] = float(np.array_equal(sets[2], sets[6]))

    exp = Experiment("million-boids", rows)
    exp.data = {
        "allpairs_s": allpairs_s,
        "grid_s": grid_s,
        "speedup": speedup,
        "exact_match": exact_match,
    }
    exp.report = format_table(
        "million boids — all-pairs v5 vs grid-bucketed v6 "
        "(constant density)",
        ["agents", "all-pairs ms", "grid ms", "grid host ms",
         "grid xfer ms", "speedup"],
        rows,
        note=(
            f"neighbor sets bit-identical to all-pairs: "
            f"sim={exact_match['sim']:.0f} native={exact_match['native']:.0f} "
            f"(at {exact_agents} agents, both backends); the grid pays a "
            "host rebuild + CSR upload per step and wins asymptotically."
        ),
    )
    return exp
