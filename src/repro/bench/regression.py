"""The perf-regression gate: snapshot experiment scalars, diff, enforce.

Every experiment runner already computes the numbers that matter — the
Fig 6.2 speedups, the v5 scaling curve, the serving throughput and p99,
the transfer bytes by cause.  This module makes that trajectory
*self-enforcing*: :func:`snapshot` flattens each experiment's
``Experiment.data`` into named scalars, :func:`compare` diffs a fresh
snapshot against a committed baseline with per-metric tolerances, and
``python -m repro.bench --check benchmarks/baseline.json`` exits
non-zero when a metric moved the wrong way — CI turns a silent
performance regression into a red build.

Direction matters: a 30% *higher* throughput is progress, a 30% higher
p99 is a page.  :func:`direction_of` classifies each metric name as
``lower`` (latencies, launches, failure counts), ``higher`` (speedups,
throughput, update rates), or ``band`` (shape constants such as the
Fig 5.5 neighbor share, where drift in *either* direction means the
model changed).  Good-direction moves beyond tolerance are reported as
improvements but never fail the gate; band metrics fail on any
out-of-tolerance drift.

The only experiment excluded from the gate is ``sec-7`` — it measures
wall-clock Python overhead, which is machine noise, not model output.
Everything else in this repo is virtual-time/modelled and exactly
reproducible for a given seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

#: Snapshot schema version (bump when the flattening rules change).
FORMAT = 1

#: Experiments excluded from the gate (wall-clock measurements).
EXCLUDED_EXPERIMENTS = ("sec-7", "backend-compare")

#: Metric-name fragments that mean "smaller is better".
_LOWER_TOKENS = (
    "p50",
    "p95",
    "p99",
    "latency",
    "_ms",
    "launch",
    "rejected",
    "expired",
    "shed",
    "bytes",
    "queue_depth",
)

#: Metric-name fragments that mean "bigger is better".
_HIGHER_TOKENS = (
    "speedup",
    "throughput",
    "updates",
    "gain",
    "rps",
    "completed",
    "gflops",
    "per_second",
    "without",
    "with_tf",
    "gpu",
    "cpu",
)


def direction_of(metric: str) -> str:
    """``lower``, ``higher``, or ``band`` for a flattened metric name.

    Lower-is-better tokens win ties (a ``throughput_p99`` series is a
    latency), and only the metric's own segments are consulted.
    """
    name = metric.lower()
    if any(token in name for token in _LOWER_TOKENS):
        return "lower"
    if any(token in name for token in _HIGHER_TOKENS):
        return "higher"
    return "band"


def flatten_scalars(data: object, prefix: str = "") -> "dict[str, float]":
    """Numeric leaves of a nested dict, as dotted-key scalars.

    Booleans, strings, lists, and arbitrary objects are skipped — the
    gate compares numbers only, and list-shaped data (rows, samples) is
    presentation, not a tracked scalar.
    """
    out: "dict[str, float]" = {}
    if isinstance(data, dict):
        for key, value in data.items():
            dotted = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_scalars(value, dotted))
    elif isinstance(data, bool):
        pass
    elif isinstance(data, (int, float)):
        out[prefix] = float(data)
    return out


def snapshot(experiments: "dict | None" = None) -> dict:
    """Run the gated experiments and collect their scalars.

    ``experiments`` maps id -> runner (defaults to the full registry in
    :mod:`repro.bench.__main__` minus :data:`EXCLUDED_EXPERIMENTS`).
    The result is the JSON document ``--baseline`` writes and
    ``--check`` compares against.
    """
    if experiments is None:
        from repro.bench.__main__ import EXPERIMENTS

        experiments = EXPERIMENTS
    results: "dict[str, dict[str, float]]" = {}
    for name, runner in experiments.items():
        if name in EXCLUDED_EXPERIMENTS:
            continue
        results[name] = flatten_scalars(runner().data)
    return {"format": FORMAT, "experiments": results}


def write_snapshot(path: str, snap: dict) -> None:
    """Serialize a snapshot as stable, diffable JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(snap, fh, indent=1, sort_keys=True)
        fh.write("\n")


def load_snapshot(path: str) -> dict:
    """Read a snapshot written by :func:`write_snapshot`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


@dataclass
class Delta:
    """One metric's baseline-vs-current comparison."""

    experiment: str
    metric: str
    baseline: float
    current: float
    change_pct: float
    direction: str
    #: ``ok`` | ``regression`` | ``improvement`` | ``missing``
    verdict: str

    @property
    def failed(self) -> bool:
        """Does this delta fail the gate?"""
        return self.verdict in ("regression", "missing")


def _change_pct(baseline: float, current: float) -> float:
    if baseline == 0.0:
        return 0.0 if current == 0.0 else float("inf")
    return (current - baseline) / abs(baseline) * 100.0


def compare(
    baseline: dict,
    current: dict,
    tolerance_pct: float = 25.0,
    tolerances: "dict[str, float] | None" = None,
) -> "list[Delta]":
    """Diff two snapshots; returns every out-of-tolerance delta.

    ``tolerances`` overrides the default tolerance per metric, keyed by
    ``"experiment.metric"`` (exact match).  A baseline metric missing
    from the current snapshot always fails — silently dropping an
    experiment must not green the gate.
    """
    tolerances = tolerances or {}
    deltas: "list[Delta]" = []
    for experiment, metrics in sorted(baseline.get("experiments", {}).items()):
        got = current.get("experiments", {}).get(experiment, {})
        for metric, base_value in sorted(metrics.items()):
            tol = tolerances.get(f"{experiment}.{metric}", tolerance_pct)
            direction = direction_of(metric)
            if metric not in got:
                deltas.append(
                    Delta(
                        experiment,
                        metric,
                        base_value,
                        float("nan"),
                        float("nan"),
                        direction,
                        "missing",
                    )
                )
                continue
            value = got[metric]
            change = _change_pct(base_value, value)
            if abs(change) <= tol:
                continue
            worse = (
                change > 0
                if direction == "lower"
                else change < 0
                if direction == "higher"
                else True
            )
            deltas.append(
                Delta(
                    experiment,
                    metric,
                    base_value,
                    value,
                    change,
                    direction,
                    "regression" if worse else "improvement",
                )
            )
    return deltas


def render(deltas: "list[Delta]", tolerance_pct: float) -> str:
    """The human-readable gate report."""
    from repro.bench.report import format_table

    failures = [d for d in deltas if d.failed]
    if not deltas:
        return (
            f"perf gate OK: every metric within {tolerance_pct:g}% of baseline"
        )
    rows = [
        (
            d.experiment,
            d.metric,
            f"{d.baseline:g}",
            "-" if d.verdict == "missing" else f"{d.current:g}",
            "-" if d.verdict == "missing" else f"{d.change_pct:+.1f}%",
            d.direction,
            d.verdict,
        )
        for d in sorted(deltas, key=lambda d: (not d.failed, d.experiment))
    ]
    return format_table(
        "perf gate — out-of-tolerance metrics",
        ["experiment", "metric", "baseline", "current", "change", "direction",
         "verdict"],
        rows,
        note=f"{len(failures)} failing, "
        f"{len(deltas) - len(failures)} improvement(s), "
        f"tolerance {tolerance_pct:g}%",
    )
