"""Plain-text rendering of experiment results (tables and series).

Every benchmark prints the rows/series the paper's corresponding table or
figure reports, in a stable ASCII format that lands in the pytest output
and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str | None = None,
) -> str:
    """A fixed-width table with a title rule."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = [f"== {title} ==", "", " | ".join(h.ljust(w) for h, w in zip(headers, widths)), sep]
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    if note:
        lines += ["", note]
    return "\n".join(lines)


def format_series(
    title: str,
    x_label: str,
    series: "dict[str, dict[object, float]]",
    unit: str = "",
    note: str | None = None,
) -> str:
    """A figure rendered as aligned columns, one per named series."""
    xs = sorted({x for points in series.values() for x in points})
    headers = [x_label] + [f"{name}{f' [{unit}]' if unit else ''}" for name in series]
    rows = []
    for x in xs:
        row: list[object] = [x]
        for points in series.values():
            row.append(points.get(x, float("nan")))
        rows.append(row)
    return format_table(title, headers, rows, note)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.1f}"
        return f"{value:.3f}"
    return str(value)
