"""Shared infrastructure: error roots, unit conversions, deterministic RNG."""

from repro.common.errors import ReproError
from repro.common.units import (
    GIB,
    KIB,
    MIB,
    cycles_to_seconds,
    seconds_to_cycles,
)

__all__ = [
    "GIB",
    "KIB",
    "MIB",
    "ReproError",
    "cycles_to_seconds",
    "seconds_to_cycles",
]
