"""Root exception types shared by every subpackage.

Each layer defines its own, more specific hierarchy (``repro.simgpu`` raises
simulator faults, ``repro.cuda`` returns C-style error codes, ``repro.cupp``
raises exceptions wrapping those codes — that translation is one of the
paper's selling points, §4.2), but everything derives from
:class:`ReproError` so callers can catch the whole library with one clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """A component was constructed or configured with invalid parameters."""
