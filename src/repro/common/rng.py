"""Deterministic random number generation.

All stochastic components (agent placement, workload generators) take a seed
and build their generator through :func:`make_rng` so every experiment in the
benchmark harness is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

DEFAULT_SEED = 0xC0FFEE


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a seeded :class:`numpy.random.Generator` (PCG64)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)
