"""Unit helpers: byte sizes and clock-domain conversions.

The simulator accounts time in *cycles* of a particular clock domain (the G80
has a 500 MHz core clock and a 1.2 GHz shader clock; the host CPU model runs
at 2.2 GHz).  Converting between cycles and wall-clock seconds is done in one
place so the benchmarks cannot silently mix domains.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB


def cycles_to_seconds(cycles: float, clock_hz: float) -> float:
    """Convert a cycle count in the given clock domain to seconds."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return cycles / clock_hz


def seconds_to_cycles(seconds: float, clock_hz: float) -> float:
    """Convert seconds to a cycle count in the given clock domain."""
    if clock_hz <= 0:
        raise ValueError(f"clock_hz must be positive, got {clock_hz}")
    return seconds * clock_hz


def align_up(value: int, alignment: int) -> int:
    """Round ``value`` up to the next multiple of ``alignment``."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment
