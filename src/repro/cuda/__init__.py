"""The CUDA 1.0 host runtime and language-extension layer (paper ch. 3).

This package exposes the GPU exactly the way CUDA 1.0 did — C-style error
codes, the three-step launch protocol, function type qualifiers — so the
CuPP layer above it has the same integration problems to solve that the
paper describes.
"""

from repro.cuda.errors import CudaQualifierError, cudaError, cudaGetErrorString
from repro.cuda.qualifiers import (
    device_fn,
    global_,
    host_device_fn,
    host_fn,
    in_kernel,
    is_global,
)
from repro.cuda.interop import GLBufferObject, GlInteropError
from repro.cuda.runtime import CudaMachine, CudaRuntime, sizeof_argument
from repro.cuda.types import cudaDeviceProp, cudaMemcpyKind, dim3, make_dim3, uint3

__all__ = [
    "CudaMachine",
    "GLBufferObject",
    "GlInteropError",
    "CudaQualifierError",
    "CudaRuntime",
    "cudaDeviceProp",
    "cudaError",
    "cudaGetErrorString",
    "cudaMemcpyKind",
    "device_fn",
    "dim3",
    "global_",
    "host_device_fn",
    "host_fn",
    "in_kernel",
    "is_global",
    "make_dim3",
    "sizeof_argument",
    "uint3",
]
