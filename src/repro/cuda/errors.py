"""CUDA 1.0 error codes.

The host runtime library reports failures through ``cudaError`` return
values (§3.2) — the very thing CuPP replaces with exceptions (§4.2).  Our
:mod:`repro.cuda.runtime` faithfully returns these codes so the CuPP layer
has something real to wrap.
"""

from __future__ import annotations

import enum

from repro.common.errors import ReproError


class cudaError(enum.Enum):  # noqa: N801 - matches the CUDA spelling
    cudaSuccess = 0
    cudaErrorMemoryAllocation = 2
    cudaErrorInitializationError = 3
    cudaErrorLaunchFailure = 4
    cudaErrorInvalidDevice = 10
    cudaErrorInvalidValue = 11
    cudaErrorInvalidDevicePointer = 17
    cudaErrorInvalidMemcpyDirection = 21
    cudaErrorInvalidConfiguration = 9
    cudaErrorInvalidResourceHandle = 33
    cudaErrorSetOnActiveProcess = 36
    cudaErrorNoDevice = 38
    cudaErrorECCUncorrectable = 39
    cudaErrorUnknown = 30

    @property
    def ok(self) -> bool:
        return self is cudaError.cudaSuccess


_ERROR_STRINGS = {
    "cudaSuccess": "no error",
    "cudaErrorMemoryAllocation": "out of memory",
    "cudaErrorInitializationError": "initialization error",
    "cudaErrorLaunchFailure": "unspecified launch failure",
    "cudaErrorInvalidDevice": "invalid device ordinal",
    "cudaErrorInvalidValue": "invalid argument",
    "cudaErrorInvalidDevicePointer": "invalid device pointer",
    "cudaErrorInvalidMemcpyDirection": "invalid copy direction for memcpy",
    "cudaErrorInvalidConfiguration": "invalid configuration argument",
    "cudaErrorInvalidResourceHandle": "invalid resource handle",
    "cudaErrorSetOnActiveProcess": "cannot set while device is active in this process",
    "cudaErrorNoDevice": "no CUDA-capable device is detected",
    "cudaErrorECCUncorrectable": "uncorrectable ECC error encountered",
    "cudaErrorUnknown": "unknown error",
}


def cudaGetErrorString(err: cudaError) -> str:  # noqa: N802 - CUDA spelling
    """Human-readable message for an error code (§3.2's error handling)."""
    return _ERROR_STRINGS.get(err.name, "unrecognized error code")


class CudaQualifierError(ReproError):
    """A function was called from the wrong side of the host/device split
    (e.g. calling a ``__global__`` kernel like a normal function, §3.1.1)."""
