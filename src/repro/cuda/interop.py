"""OpenGL interoperability (§3.2's untouched CUDA 1.0 functionality).

The host runtime library offers "interoperability with both OpenGL and
Direct3D"; the paper's GPU port does not use it — version 5 copies the
4x4 draw matrices device -> host every frame (§6.2.3) and the renderer
re-uploads them.  GL interop removes that round trip: a GL buffer object
is *registered* with CUDA, *mapped* to get a device pointer kernels can
write, and *unmapped* so the renderer consumes it in place.

We model the API and its payoff: a mapped buffer is ordinary simulated
device memory, and the draw stage of an interop-enabled frame loop needs
no PCIe transfer for the draw data (only the map/unmap driver overhead).
The ablation benchmark quantifies what the paper left on the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ReproError
from repro.cuda.errors import cudaError
from repro.simgpu.memory import DevicePtr, NULL_PTR


class GlInteropError(ReproError):
    """Misuse of the buffer-object protocol (map/unmap ordering)."""


@dataclass
class GLBufferObject:
    """A (simulated) OpenGL buffer object the renderer owns."""

    name: int  # the GL buffer id
    nbytes: int
    registered: bool = False
    mapped: bool = False
    _ptr: DevicePtr = NULL_PTR


#: Driver cost of one map/unmap pair (synchronizes with GL, no copy).
MAP_OVERHEAD_S = 8e-6


class GlInteropMixin:
    """``cudaGL*`` entry points, mixed into :class:`CudaRuntime`."""

    def cudaGLRegisterBufferObject(self, buf: GLBufferObject) -> cudaError:  # noqa: N802
        """Make a GL buffer mappable by CUDA (allocates its device backing
        in the simulator — on real hardware the driver shares it)."""
        if buf.registered:
            return cudaError.cudaErrorInvalidValue
        err, ptr = self.cudaMalloc(buf.nbytes)
        if not err.ok:
            return err
        buf._ptr = ptr
        buf.registered = True
        return cudaError.cudaSuccess

    def cudaGLMapBufferObject(  # noqa: N802
        self, buf: GLBufferObject
    ) -> "tuple[cudaError, DevicePtr | None]":
        """Map the buffer into the CUDA address space; returns the device
        pointer kernels may write.  Synchronizes with the renderer."""
        if not buf.registered or buf.mapped:
            return cudaError.cudaErrorInvalidValue, None
        self.device.timeline.synchronize()
        self.device.timeline.host_work(MAP_OVERHEAD_S)
        buf.mapped = True
        return cudaError.cudaSuccess, buf._ptr

    def cudaGLUnmapBufferObject(self, buf: GLBufferObject) -> cudaError:  # noqa: N802
        """Return the buffer to GL; the renderer reads it *in place* — no
        device->host transfer, the interop payoff."""
        if not buf.mapped:
            return cudaError.cudaErrorInvalidValue
        self.device.timeline.host_work(MAP_OVERHEAD_S)
        buf.mapped = False
        return cudaError.cudaSuccess

    def cudaGLUnregisterBufferObject(self, buf: GLBufferObject) -> cudaError:  # noqa: N802
        if buf.mapped:
            return cudaError.cudaErrorInvalidValue
        if not buf.registered:
            return cudaError.cudaErrorInvalidValue
        err = self.cudaFree(buf._ptr)
        if not err.ok:
            return err
        buf._ptr = NULL_PTR
        buf.registered = False
        return cudaError.cudaSuccess
