"""Function type qualifiers: ``__global__``, ``__device__``, ``__host__``.

The qualifiers (§3.1.1) define *where* a function runs and *who* may call
it:

==============  ============  ==========
qualifier       callable from runs on
==============  ============  ==========
``__host__``    host          host
``__device__``  device        device
``__global__``  host          device
==============  ============  ==========

We enforce the same rules at call time: a ``global_`` kernel can only be
started through the execution-control API (``cudaLaunch`` or, one level
up, ``cupp.Kernel``); a ``device_fn`` can only be called while a kernel is
executing; a ``host_fn`` cannot be called from inside one.  Violations
raise :class:`~repro.cuda.errors.CudaQualifierError` immediately instead of
producing the baffling nvcc link errors the paper complains about.
"""

from __future__ import annotations

import functools
from typing import Callable

from repro.cuda.errors import CudaQualifierError

#: True while a kernel is executing on the simulated device.  The host is
#: blocked during emulation, so a plain module flag is faithful: host code
#: cannot run concurrently with device code in this process.
_in_kernel: bool = False


class _KernelGuard:
    """Context manager the launcher uses to mark device execution."""

    def __enter__(self) -> None:
        global _in_kernel
        if _in_kernel:
            raise CudaQualifierError(
                "nested kernel launch: the device cannot launch kernels "
                "(no function-call capability, §2.4)"
            )
        _in_kernel = True

    def __exit__(self, *exc_info: object) -> None:
        global _in_kernel
        _in_kernel = False


kernel_guard = _KernelGuard


def in_kernel() -> bool:
    """Is device code currently executing?"""
    return _in_kernel


def global_(fn: Callable) -> Callable:
    """Mark a generator function as a ``__global__`` kernel.

    The returned wrapper refuses direct calls — a kernel "may only be
    called as described in section 3.2.2", i.e. through the execution
    control API.  The launcher reaches the real generator via ``.impl``.
    """

    @functools.wraps(fn)
    def wrapper(*_args: object, **_kwargs: object) -> None:
        raise CudaQualifierError(
            f"__global__ function {fn.__name__!r} cannot be called "
            "directly; launch it via cudaConfigureCall/cudaLaunch or a "
            "cupp.Kernel functor"
        )

    wrapper.impl = fn  # type: ignore[attr-defined]
    wrapper.__cuda_global__ = True  # type: ignore[attr-defined]
    return wrapper


def device_fn(fn: Callable) -> Callable:
    """Mark a function as ``__device__``: callable from device code only.

    Device functions are always inlined on real hardware (§3.1.1); here
    they are ordinary generator helpers, but calling one from host code is
    rejected.
    """

    @functools.wraps(fn)
    def wrapper(*args: object, **kwargs: object):
        if not _in_kernel:
            raise CudaQualifierError(
                f"__device__ function {fn.__name__!r} called from host code"
            )
        return fn(*args, **kwargs)

    wrapper.__cuda_device__ = True  # type: ignore[attr-defined]
    return wrapper


def host_fn(fn: Callable) -> Callable:
    """Mark a function as ``__host__``: callable from host code only
    (the default for unqualified functions, §3.1.1)."""

    @functools.wraps(fn)
    def wrapper(*args: object, **kwargs: object):
        if _in_kernel:
            raise CudaQualifierError(
                f"__host__ function {fn.__name__!r} called from device code"
            )
        return fn(*args, **kwargs)

    wrapper.__cuda_host__ = True  # type: ignore[attr-defined]
    return wrapper


def host_device_fn(fn: Callable) -> Callable:
    """``__host__ __device__``: compiled for both sides (listing 3.1)."""
    fn.__cuda_device__ = True  # type: ignore[attr-defined]
    fn.__cuda_host__ = True  # type: ignore[attr-defined]
    return fn


def is_global(fn: Callable) -> bool:
    """Is ``fn`` a ``__global__``-qualified kernel?"""
    return getattr(fn, "__cuda_global__", False)
