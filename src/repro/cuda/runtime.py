"""The CUDA 1.0 host runtime library (§3.2), C-style.

Everything the paper says makes raw CUDA awkward in C++ is reproduced
as-is:

* functions return :class:`~repro.cuda.errors.cudaError` codes instead of
  raising — callers must check every call (CuPP's exception layer, §4.2,
  wraps exactly this surface);
* a kernel launch is the three-step ``cudaConfigureCall`` /
  ``cudaSetupArgument`` / ``cudaLaunch`` dance with explicit byte offsets
  on a 256-byte kernel parameter stack (§3.2.2);
* one host thread binds at most one device, and device 0 is selected
  implicitly at first use (§3.2.1);
* ``cudaMemcpy`` blocks the host while a kernel is active (§2.2) —
  modelled through the device timeline.

:class:`CudaMachine` represents the machine (its set of simulated
devices); :class:`CudaRuntime` is the per-host-thread API state.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro import obs
from repro.common.errors import ConfigurationError
from repro.prof import hook as prof_hook
from repro.cuda.errors import CudaQualifierError, cudaError
from repro.cuda.qualifiers import is_global, kernel_guard
from repro.cuda.types import (
    cudaDeviceProp,
    cudaEvent_t,
    cudaMemcpyKind,
    cudaStream_t,
    dim3,
)
from repro.backend.base import ExecutionBackend, normalize_backends
from repro.simgpu.arch import ArchSpec, G80_8800GTS
from repro.simgpu.device import LaunchResult, SimDevice
from repro.simgpu.dims import as_dim3
from repro.simgpu.memory import (
    DeviceMemoryError,
    DevicePtr,
    InvalidDeviceAccess,
    InvalidFree,
    OutOfDeviceMemory,
)
from repro.simgpu.warp import KernelFault


def _make_backend_device(kind: str, arch: ArchSpec) -> ExecutionBackend:
    if kind == "native":
        from repro.backend.native import NativeDevice

        return NativeDevice(arch)
    return SimDevice(arch)


class CudaMachine:
    """A host machine with one or more CUDA devices.

    ``backend`` selects the execution substrate per device: ``"sim"``
    (the default cycle simulator), ``"native"`` (vectorized numpy at
    wall-clock speed), ``"mixed"`` (alternating), or an explicit
    per-device list of kinds.
    """

    def __init__(
        self,
        archs: "list[ArchSpec] | None" = None,
        backend: "str | list[str]" = "sim",
    ) -> None:
        archs = archs or [G80_8800GTS]
        kinds = normalize_backends(backend, len(archs))
        self.devices = [
            _make_backend_device(kind, arch)
            for kind, arch in zip(kinds, archs)
        ]

    def device(self, index: int) -> ExecutionBackend:
        return self.devices[index]


@dataclass
class _PendingLaunch:
    grid_dim: dim3
    block_dim: dim3
    args: "list[tuple[int, int, object]]"  # (offset, size, value)


def sizeof_argument(value: object) -> int:
    """Byte size of a kernel argument on the parameter stack."""
    if isinstance(value, DevicePtr):
        return 4  # 32-bit device address space (§3.2.3)
    if isinstance(value, bool):
        return 4
    if isinstance(value, int):
        return 4
    if isinstance(value, float):
        return 4  # CUDA 1.0 kernels take 32-bit floats
    if isinstance(value, np.generic):
        return value.dtype.itemsize
    # Aggregates (simulated structs / views) declare their own size.
    declared = getattr(value, "kernel_arg_size", None)
    if declared is not None:
        return int(declared)
    return struct.calcsize("P")


from repro.cuda.interop import GlInteropMixin


class CudaRuntime(GlInteropMixin):
    """Per-host-thread CUDA runtime state and API entry points."""

    def __init__(self, machine: CudaMachine | None = None) -> None:
        self.machine = machine or CudaMachine()
        self._device_index: int | None = None
        self._pending: _PendingLaunch | None = None
        self.last_launch: LaunchResult | None = None
        self.memcpy_count = 0
        self.launch_count = 0

    # ------------------------------------------------------------------
    # Device management (§3.2.1)
    # ------------------------------------------------------------------
    def cudaGetDeviceCount(self) -> tuple[cudaError, int]:  # noqa: N802
        n = len(self.machine.devices)
        if n == 0:
            return cudaError.cudaErrorNoDevice, 0
        return cudaError.cudaSuccess, n

    def cudaSetDevice(self, dev: int) -> cudaError:  # noqa: N802
        if self._device_index is not None:
            # CUDA 1.0: one host thread is bound to at most one device,
            # and the binding cannot change once made.
            return cudaError.cudaErrorSetOnActiveProcess
        if not 0 <= dev < len(self.machine.devices):
            return cudaError.cudaErrorInvalidDevice
        self._device_index = dev
        return cudaError.cudaSuccess

    def cudaGetDevice(self) -> tuple[cudaError, int]:  # noqa: N802
        return cudaError.cudaSuccess, self._bind_default()

    def cudaChooseDevice(  # noqa: N802
        self, prop: cudaDeviceProp
    ) -> tuple[cudaError, int]:
        """Device number best matching the requested properties (§3.2.1)."""
        candidates = [
            i
            for i, d in enumerate(self.machine.devices)
            if prop.satisfied_by(d.arch)
        ]
        if not candidates:
            return cudaError.cudaErrorInvalidValue, -1
        # "Best matching": most multiprocessors among the satisfying ones.
        best = max(
            candidates,
            key=lambda i: self.machine.devices[i].arch.multiprocessors,
        )
        return cudaError.cudaSuccess, best

    def cudaGetDeviceProperties(  # noqa: N802
        self, dev: int
    ) -> tuple[cudaError, cudaDeviceProp | None]:
        if not 0 <= dev < len(self.machine.devices):
            return cudaError.cudaErrorInvalidDevice, None
        return cudaError.cudaSuccess, cudaDeviceProp.of(
            self.machine.devices[dev].arch
        )

    def _bind_default(self) -> int:
        """§3.2.1: device 0 is selected automatically at first use."""
        if self._device_index is None:
            self._device_index = 0
        return self._device_index

    @property
    def device(self) -> ExecutionBackend:
        """The bound device backend (binding lazily if needed)."""
        return self.machine.devices[self._bind_default()]

    # ------------------------------------------------------------------
    # Memory management (§3.2.3)
    # ------------------------------------------------------------------
    def cudaMalloc(self, count: int) -> tuple[cudaError, DevicePtr | None]:  # noqa: N802
        injector = self.device.fault_injector
        if injector is not None and (
            injector.draw(
                "alloc", device_index=self._bind_default(), nbytes=count
            )
            is not None
        ):
            # Spurious OOM: the driver claims exhaustion although memory
            # is available; the caller's retry path decides what happens.
            return cudaError.cudaErrorMemoryAllocation, None
        try:
            ptr = self.device.memory.alloc(count)
        except OutOfDeviceMemory:
            return cudaError.cudaErrorMemoryAllocation, None
        except DeviceMemoryError:
            return cudaError.cudaErrorInvalidValue, None
        obs.counter("cuda.malloc.count").inc()
        obs.counter("cuda.malloc.bytes").inc(int(count))
        obs.instant("cuda.malloc", nbytes=count, addr=ptr.addr)
        return cudaError.cudaSuccess, ptr

    def cudaFree(self, ptr: DevicePtr) -> cudaError:  # noqa: N802
        try:
            self.device.memory.free(ptr)
        except InvalidFree:
            return cudaError.cudaErrorInvalidDevicePointer
        obs.counter("cuda.free.count").inc()
        obs.instant("cuda.free", addr=ptr.addr)
        return cudaError.cudaSuccess

    def cudaMemcpy(  # noqa: N802
        self,
        dst: "DevicePtr | np.ndarray",
        src: "DevicePtr | np.ndarray",
        count: int,
        kind: cudaMemcpyKind,
    ) -> cudaError:
        """Blocking copy; implicit host/device synchronization (§2.2)."""
        mem = self.device.memory
        dst_dev = isinstance(dst, DevicePtr)
        src_dev = isinstance(src, DevicePtr)
        expected = {
            cudaMemcpyKind.cudaMemcpyHostToHost: (False, False),
            cudaMemcpyKind.cudaMemcpyHostToDevice: (True, False),
            cudaMemcpyKind.cudaMemcpyDeviceToHost: (False, True),
            cudaMemcpyKind.cudaMemcpyDeviceToDevice: (True, True),
        }
        if expected.get(kind) != (dst_dev, src_dev):
            return cudaError.cudaErrorInvalidMemcpyDirection
        injector = self.device.fault_injector
        if (
            injector is not None
            and (dst_dev or src_dev)
            and injector.draw(
                "transfer", device_index=self._bind_default(), nbytes=count
            )
            is not None
        ):
            # Uncorrectable ECC error: the bytes cross the bus (the time
            # is charged) but arrive poisoned, so nothing is copied.
            self.device.timeline.memcpy(count)
            return cudaError.cudaErrorECCUncorrectable
        self.memcpy_count += 1
        obs.counter("cuda.memcpy.count", kind=kind.name).inc()
        obs.counter("cuda.memcpy.bytes", kind=kind.name).inc(count)
        obs.instant("cuda.memcpy", kind=kind.name, nbytes=count)
        try:
            if kind is cudaMemcpyKind.cudaMemcpyHostToHost:
                raw = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
                dst.view(np.uint8).reshape(-1)[:count] = raw[:count]
                return cudaError.cudaSuccess
            if kind is cudaMemcpyKind.cudaMemcpyDeviceToDevice:
                # Device-to-device copies never touch the PCIe bus: they
                # run at device-memory bandwidth (read + write the bytes)
                # after the implicit synchronization.
                tl = self.device.timeline
                tl.synchronize()
                tl.host_work(
                    2 * count / self.device.arch.memory_bandwidth_bytes_per_s
                )
                tl.device_busy_until = tl.host_time
                mem.copy_device_to_device(dst, src, count)
                return cudaError.cudaSuccess
            self.device.timeline.memcpy(count)
            if kind is cudaMemcpyKind.cudaMemcpyHostToDevice:
                raw = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
                if raw.size < count:
                    return cudaError.cudaErrorInvalidValue
                mem.copy_in(dst, raw[:count])
            else:
                out = mem.copy_out(src, count)
                dst.view(np.uint8).reshape(-1)[:count] = out
        except InvalidDeviceAccess:
            return cudaError.cudaErrorInvalidDevicePointer
        return cudaError.cudaSuccess

    # ------------------------------------------------------------------
    # Streams & events (asyncAPI-style overlap on the device timeline)
    # ------------------------------------------------------------------
    def _stream_ok(self, stream: cudaStream_t) -> bool:
        return (
            isinstance(stream, cudaStream_t)
            and not stream.destroyed
            and stream.device_index == self._bind_default()
        )

    def _event_ok(self, event: cudaEvent_t) -> bool:
        return (
            isinstance(event, cudaEvent_t)
            and not event.destroyed
            and event.device_index == self._bind_default()
        )

    def cudaStreamCreate(self) -> tuple[cudaError, cudaStream_t | None]:  # noqa: N802
        """Create an in-order work queue on the bound device."""
        dev = self._bind_default()
        stream = cudaStream_t(dev, self.device.timeline.create_stream())
        obs.counter("cuda.stream.created").inc()
        return cudaError.cudaSuccess, stream

    def cudaStreamDestroy(self, stream: cudaStream_t) -> cudaError:  # noqa: N802
        """Destroy a stream (CUDA 1.x semantics: drains it first)."""
        if not self._stream_ok(stream):
            return cudaError.cudaErrorInvalidResourceHandle
        tl = self.device.timeline
        tl.stream_synchronize(stream.sim)
        tl.destroy_stream(stream.sim)
        obs.counter("cuda.stream.destroyed").inc()
        return cudaError.cudaSuccess

    def cudaEventCreate(self) -> tuple[cudaError, cudaEvent_t | None]:  # noqa: N802
        dev = self._bind_default()
        event = cudaEvent_t(dev, self.device.timeline.create_event())
        obs.counter("cuda.event.created").inc()
        return cudaError.cudaSuccess, event

    def cudaEventDestroy(self, event: cudaEvent_t) -> cudaError:  # noqa: N802
        if not self._event_ok(event):
            return cudaError.cudaErrorInvalidResourceHandle
        self.device.timeline.destroy_event(event.sim)
        return cudaError.cudaSuccess

    def cudaEventRecord(  # noqa: N802
        self, event: cudaEvent_t, stream: cudaStream_t | None = None
    ) -> cudaError:
        """Record ``event`` after the work currently in ``stream`` (the
        null stream when ``stream`` is ``None``)."""
        if not self._event_ok(event):
            return cudaError.cudaErrorInvalidResourceHandle
        if stream is not None and not self._stream_ok(stream):
            return cudaError.cudaErrorInvalidResourceHandle
        self.device.timeline.record_event(
            event.sim, None if stream is None else stream.sim
        )
        obs.counter("cuda.event.records").inc()
        return cudaError.cudaSuccess

    def cudaStreamWaitEvent(  # noqa: N802
        self, stream: cudaStream_t, event: cudaEvent_t
    ) -> cudaError:
        """Future work on ``stream`` waits for ``event``; dependencies
        resolve as max-of-predecessor-completions on the timeline."""
        if not self._stream_ok(stream) or not self._event_ok(event):
            return cudaError.cudaErrorInvalidResourceHandle
        self.device.timeline.stream_wait_event(stream.sim, event.sim)
        obs.counter("cuda.stream.waits").inc()
        obs.record_transfer(
            "stream-wait",
            "none",
            0,
            moved=False,
            label=f"stream{stream.stream_id}<-event{event.sim.event_id}",
        )
        return cudaError.cudaSuccess

    def cudaStreamSynchronize(self, stream: cudaStream_t) -> cudaError:  # noqa: N802
        if not self._stream_ok(stream):
            return cudaError.cudaErrorInvalidResourceHandle
        self.device.timeline.stream_synchronize(stream.sim)
        return cudaError.cudaSuccess

    def cudaEventSynchronize(self, event: cudaEvent_t) -> cudaError:  # noqa: N802
        if not self._event_ok(event):
            return cudaError.cudaErrorInvalidResourceHandle
        self.device.timeline.event_synchronize(event.sim)
        return cudaError.cudaSuccess

    def cudaEventElapsedTime(  # noqa: N802
        self, start: cudaEvent_t, end: cudaEvent_t
    ) -> tuple[cudaError, float]:
        """Milliseconds between two recorded events (asyncAPI's timing)."""
        if not self._event_ok(start) or not self._event_ok(end):
            return cudaError.cudaErrorInvalidResourceHandle, 0.0
        if start.sim.timestamp_s is None or end.sim.timestamp_s is None:
            return cudaError.cudaErrorInvalidValue, 0.0
        return (
            cudaError.cudaSuccess,
            (end.sim.timestamp_s - start.sim.timestamp_s) * 1e3,
        )

    def cudaMemcpyAsync(  # noqa: N802
        self,
        dst: "DevicePtr | np.ndarray",
        src: "DevicePtr | np.ndarray",
        count: int,
        kind: cudaMemcpyKind,
        stream: cudaStream_t,
    ) -> cudaError:
        """Stream-ordered copy: the host pays only the submit cost; the
        DMA runs on the copy-engine track and may overlap compute on
        other streams.  Only the PCIe directions are asynchronous —
        device-to-device copies fall back to the blocking path (the sim
        models them as device-internal, not DMA-engine, work)."""
        if not self._stream_ok(stream):
            return cudaError.cudaErrorInvalidResourceHandle
        dst_dev = isinstance(dst, DevicePtr)
        src_dev = isinstance(src, DevicePtr)
        expected = {
            cudaMemcpyKind.cudaMemcpyHostToHost: (False, False),
            cudaMemcpyKind.cudaMemcpyHostToDevice: (True, False),
            cudaMemcpyKind.cudaMemcpyDeviceToHost: (False, True),
            cudaMemcpyKind.cudaMemcpyDeviceToDevice: (True, True),
        }
        if expected.get(kind) != (dst_dev, src_dev):
            return cudaError.cudaErrorInvalidMemcpyDirection
        if kind in (
            cudaMemcpyKind.cudaMemcpyHostToHost,
            cudaMemcpyKind.cudaMemcpyDeviceToDevice,
        ):
            return self.cudaMemcpy(dst, src, count, kind)
        tl = self.device.timeline
        direction = (
            "h2d" if kind is cudaMemcpyKind.cudaMemcpyHostToDevice else "d2h"
        )
        injector = self.device.fault_injector
        if injector is not None and (
            injector.draw(
                "transfer", device_index=self._bind_default(), nbytes=count
            )
            is not None
        ):
            # Uncorrectable ECC error: the DMA engine still burns the bus
            # time, but the payload arrives poisoned.
            tl.stream_memcpy(stream.sim, count)
            return cudaError.cudaErrorECCUncorrectable
        op = tl.stream_memcpy(stream.sim, count)
        self.memcpy_count += 1
        obs.counter("cuda.stream.memcpy.count", kind=kind.name).inc()
        obs.counter("cuda.stream.memcpy.bytes", kind=kind.name).inc(count)
        obs.record_transfer(
            f"async-{direction}",
            direction,
            count,
            label=f"stream{stream.stream_id}",
        )
        obs.instant(
            "cuda.memcpyAsync",
            kind=kind.name,
            nbytes=count,
            stream=stream.stream_id,
        )
        mem = self.device.memory
        try:
            # The sim applies the payload eagerly; only the *time* is
            # deferred onto the copy-engine track.
            if kind is cudaMemcpyKind.cudaMemcpyHostToDevice:
                raw = np.ascontiguousarray(src).view(np.uint8).reshape(-1)
                if raw.size < count:
                    return cudaError.cudaErrorInvalidValue
                mem.copy_in(dst, raw[:count])
            else:
                out = mem.copy_out(src, count)
                dst.view(np.uint8).reshape(-1)[:count] = out
        except InvalidDeviceAccess:
            return cudaError.cudaErrorInvalidDevicePointer
        return cudaError.cudaSuccess

    # ------------------------------------------------------------------
    # Constant memory & texture references (ch. 7 extension surface)
    # ------------------------------------------------------------------
    def constant_symbol(
        self, dtype, count: int
    ) -> "tuple[cudaError, object | None]":
        """Declare a ``__constant__`` symbol on the bound device."""
        from repro.simgpu.caches import ConstantMemoryError

        try:
            return cudaError.cudaSuccess, self.device.constant.alloc_symbol(
                dtype, count
            )
        except ConstantMemoryError:
            return cudaError.cudaErrorMemoryAllocation, None

    def cudaMemcpyToSymbol(  # noqa: N802
        self, symbol: object, src: np.ndarray
    ) -> cudaError:
        """Host -> constant-memory transfer (blocking, like cudaMemcpy)."""
        raw = np.ascontiguousarray(src)
        if raw.nbytes > symbol.count * symbol.dtype.itemsize:
            return cudaError.cudaErrorInvalidValue
        self.memcpy_count += 1
        obs.counter("cuda.memcpy.count", kind="toSymbol").inc()
        obs.counter("cuda.memcpy.bytes", kind="toSymbol").inc(raw.nbytes)
        obs.instant("cuda.memcpyToSymbol", nbytes=raw.nbytes)
        self.device.timeline.memcpy(raw.nbytes)
        symbol.memory.write(symbol.offset, raw)
        return cudaError.cudaSuccess

    def cudaBindTexture(  # noqa: N802
        self, texref: object, ptr: DevicePtr, dtype, count: int
    ) -> cudaError:
        """Bind a texture reference to linear device memory (§3.2 lists
        texture reference management; modelled for the ch. 7 feature)."""
        from repro.simgpu.memory import DeviceArrayView, InvalidDeviceAccess

        try:
            view = DeviceArrayView(
                self.device.memory, ptr, np.dtype(dtype), count
            )
            view._raw()  # validate the range now, like the driver does
        except InvalidDeviceAccess:
            return cudaError.cudaErrorInvalidDevicePointer
        texref.bind(view)
        return cudaError.cudaSuccess

    def cudaUnbindTexture(self, texref: object) -> cudaError:  # noqa: N802
        texref.unbind()
        return cudaError.cudaSuccess

    # ------------------------------------------------------------------
    # Execution control (§3.2.2)
    # ------------------------------------------------------------------
    def cudaConfigureCall(  # noqa: N802
        self, grid_dim: "dim3 | int | tuple", block_dim: "dim3 | int | tuple"
    ) -> cudaError:
        """Step 1: configure the next kernel launch."""
        try:
            grid = as_dim3(grid_dim)
            block = as_dim3(block_dim)
            self.device.validate_launch(grid, block)
        except ConfigurationError:
            return cudaError.cudaErrorInvalidConfiguration
        self._pending = _PendingLaunch(grid, block, [])
        return cudaError.cudaSuccess

    def cudaSetupArgument(  # noqa: N802
        self, arg: object, offset: int, size: int | None = None
    ) -> cudaError:
        """Step 2: push one parameter onto the kernel stack at ``offset``."""
        if self._pending is None:
            return cudaError.cudaErrorInvalidValue
        size = sizeof_argument(arg) if size is None else int(size)
        stack_limit = self.device.arch.kernel_stack_bytes
        if offset < 0 or offset + size > stack_limit:
            return cudaError.cudaErrorInvalidValue
        for off, sz, _val in self._pending.args:
            if not (offset + size <= off or off + sz <= offset):
                return cudaError.cudaErrorInvalidValue  # overlap
        self._pending.args.append((offset, size, arg))
        return cudaError.cudaSuccess

    def cudaLaunch(  # noqa: N802
        self,
        kernel: Callable,
        *,
        registers_per_thread: int = 10,
        strict_sync: bool = True,
        stream: cudaStream_t | None = None,
    ) -> cudaError:
        """Step 3: start the configured kernel.

        ``kernel`` must be a ``__global__``-qualified function pointer
        (§3.2.2).  The launch consumes the pending configuration.  With
        ``stream`` the kernel is enqueued on that stream's compute track
        and may overlap copies and other streams' kernels; without, it
        runs on the null stream and serializes against everything.
        """
        if self._pending is None:
            return cudaError.cudaErrorInvalidConfiguration
        if stream is not None and not self._stream_ok(stream):
            self._pending = None
            return cudaError.cudaErrorInvalidResourceHandle
        if not is_global(kernel):
            self._pending = None
            return cudaError.cudaErrorInvalidValue
        pending, self._pending = self._pending, None
        args = tuple(
            val for _off, _sz, val in sorted(pending.args, key=lambda a: a[0])
        )
        name = getattr(kernel, "__name__", "kernel")
        with obs.span(
            f"cuda.launch:{name}",
            grid=str(pending.grid_dim),
            block=str(pending.block_dim),
        ) as span:
            injector = self.device.fault_injector
            if injector is not None:
                fault = injector.draw(
                    "launch", device_index=self._bind_default()
                )
                if fault == "launch-fail":
                    span.set(error="injected-launch-failure")
                    return cudaError.cudaErrorLaunchFailure
                if fault == "hang":
                    # The device wedges for the configured latency; the
                    # failure is only visible once a watchdog gives up.
                    # A stream launch wedges that stream's compute track
                    # (other streams may still make progress).
                    if stream is not None:
                        self.device.timeline.stream_launch(
                            stream.sim, injector.config.hang_latency_s
                        )
                    else:
                        self.device.timeline.launch_kernel(
                            injector.config.hang_latency_s
                        )
                    span.set(error="injected-hang")
                    return cudaError.cudaErrorLaunchFailure
            try:
                with kernel_guard():
                    result = self.device.launch(
                        kernel.impl,
                        pending.grid_dim,
                        pending.block_dim,
                        args,
                        registers_per_thread=registers_per_thread,
                        strict_sync=strict_sync,
                    )
            except (KernelFault, InvalidDeviceAccess):
                span.set(error="launch-failure")
                return cudaError.cudaErrorLaunchFailure
            except CudaQualifierError:
                span.set(error="launch-failure")
                return cudaError.cudaErrorLaunchFailure
            self.last_launch = result
            self.launch_count += 1
            obs.counter("cuda.launches").inc()
            # Asynchronous semantics: the host is only charged the launch
            # overhead; the device timeline advances by the backend's
            # duration — the analytic model on the simulator, measured
            # wall-clock time on the native backend.
            duration = self.device.duration_s(
                result, registers_per_thread=registers_per_thread
            )
            if stream is not None:
                op = self.device.timeline.stream_launch(stream.sim, duration)
                obs.counter("cuda.stream.launches").inc()
                span.set(
                    stream=stream.stream_id,
                    track=op.track,
                    sched_start_s=op.start_s,
                    sched_end_s=op.end_s,
                )
            else:
                self.device.timeline.launch_kernel(duration)
            # The emulator's instruction profile rides on the launch span
            # so a trace alone can answer "what did this launch do?"
            # (vectorized native launches have no instruction stream).
            profile = getattr(result, "profile", None)
            span.set(
                profile=profile.summary() if profile is not None else None,
                backend=self.device.backend_kind,
                modelled_duration_s=duration,
                occupancy=getattr(result.occupancy, "occupancy", None),
            )
            # Kernel profiler capture: one module-global read when no
            # session is attached, so profiling-off stays inert.
            prof = prof_hook.active()
            if prof is not None:
                prof.record_launch(
                    name=name,
                    backend=self.device.backend_kind,
                    result=result,
                    duration_s=duration,
                    arch=self.device.arch,
                    registers_per_thread=registers_per_thread,
                )
        return cudaError.cudaSuccess

    def cudaThreadSynchronize(self) -> cudaError:  # noqa: N802
        """Block the host until the device is idle."""
        self.device.timeline.synchronize()
        return cudaError.cudaSuccess
