"""CUDA host-API types: ``dim3``, memcpy kinds, device properties."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.simgpu.arch import ArchSpec
from repro.simgpu.dims import Dim3 as dim3  # noqa: N813 - CUDA spelling
from repro.simgpu.dims import Dim3 as uint3  # noqa: N813 - same layout
from repro.simgpu.dims import make_dim3

__all__ = ["cudaDeviceProp", "cudaMemcpyKind", "dim3", "make_dim3", "uint3"]


class cudaMemcpyKind(enum.Enum):  # noqa: N801 - matches the CUDA spelling
    cudaMemcpyHostToHost = 0
    cudaMemcpyHostToDevice = 1
    cudaMemcpyDeviceToHost = 2
    cudaMemcpyDeviceToDevice = 3


@dataclass(frozen=True)
class cudaDeviceProp:  # noqa: N801 - matches the CUDA spelling
    """The property record ``cudaChooseDevice`` matches against (§3.2.1).

    ``None`` fields are wildcards: a request that only sets
    ``totalGlobalMem`` matches any device with at least that much memory.
    """

    name: str | None = None
    totalGlobalMem: int | None = None  # noqa: N815 - CUDA field name
    sharedMemPerBlock: int | None = None  # noqa: N815
    warpSize: int | None = None  # noqa: N815
    maxThreadsPerBlock: int | None = None  # noqa: N815
    multiProcessorCount: int | None = None  # noqa: N815
    supportsAtomics: bool | None = None  # noqa: N815

    @staticmethod
    def of(arch: ArchSpec) -> "cudaDeviceProp":
        """The full property record of a device."""
        return cudaDeviceProp(
            name=arch.name,
            totalGlobalMem=arch.device_memory_bytes,
            sharedMemPerBlock=arch.shared_mem_per_mp,
            warpSize=arch.warp_size,
            maxThreadsPerBlock=arch.max_threads_per_block,
            multiProcessorCount=arch.multiprocessors,
            supportsAtomics=arch.supports_atomics,
        )

    def satisfied_by(self, arch: ArchSpec) -> bool:
        """Does a device meet this request?  Numeric fields are minimums,
        boolean/string fields must match exactly."""
        if self.name is not None and self.name != arch.name:
            return False
        numeric_minimums = (
            (self.totalGlobalMem, arch.device_memory_bytes),
            (self.sharedMemPerBlock, arch.shared_mem_per_mp),
            (self.maxThreadsPerBlock, arch.max_threads_per_block),
            (self.multiProcessorCount, arch.multiprocessors),
        )
        for wanted, actual in numeric_minimums:
            if wanted is not None and actual < wanted:
                return False
        if self.warpSize is not None and arch.warp_size != self.warpSize:
            return False
        if (
            self.supportsAtomics is not None
            and arch.supports_atomics != self.supportsAtomics
        ):
            return False
        return True
