"""CUDA host-API types: ``dim3``, memcpy kinds, streams, events,
device properties."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.simgpu.arch import ArchSpec
from repro.simgpu.dims import Dim3 as dim3  # noqa: N813 - CUDA spelling
from repro.simgpu.dims import Dim3 as uint3  # noqa: N813 - same layout
from repro.simgpu.dims import make_dim3
from repro.simgpu.transfer import Event as _TimelineEvent
from repro.simgpu.transfer import Stream as _TimelineStream

__all__ = [
    "cudaDeviceProp",
    "cudaEvent_t",
    "cudaMemcpyKind",
    "cudaStream_t",
    "dim3",
    "make_dim3",
    "uint3",
]


@dataclass(eq=False)
class cudaStream_t:  # noqa: N801 - matches the CUDA spelling
    """An opaque stream handle bound to one device's timeline.

    Wraps the :class:`repro.simgpu.transfer.Stream` work queue; the
    runtime validates that a handle is used on the device that created
    it (``cudaErrorInvalidResourceHandle`` otherwise).
    """

    device_index: int
    sim: _TimelineStream

    @property
    def stream_id(self) -> int:
        return self.sim.stream_id

    @property
    def destroyed(self) -> bool:
        return self.sim.destroyed


@dataclass(eq=False)
class cudaEvent_t:  # noqa: N801 - matches the CUDA spelling
    """An opaque event handle bound to one device's timeline."""

    device_index: int
    sim: _TimelineEvent

    @property
    def recorded(self) -> bool:
        return self.sim.timestamp_s is not None

    @property
    def destroyed(self) -> bool:
        return self.sim.destroyed


class cudaMemcpyKind(enum.Enum):  # noqa: N801 - matches the CUDA spelling
    cudaMemcpyHostToHost = 0
    cudaMemcpyHostToDevice = 1
    cudaMemcpyDeviceToHost = 2
    cudaMemcpyDeviceToDevice = 3


@dataclass(frozen=True)
class cudaDeviceProp:  # noqa: N801 - matches the CUDA spelling
    """The property record ``cudaChooseDevice`` matches against (§3.2.1).

    ``None`` fields are wildcards: a request that only sets
    ``totalGlobalMem`` matches any device with at least that much memory.
    """

    name: str | None = None
    totalGlobalMem: int | None = None  # noqa: N815 - CUDA field name
    sharedMemPerBlock: int | None = None  # noqa: N815
    warpSize: int | None = None  # noqa: N815
    maxThreadsPerBlock: int | None = None  # noqa: N815
    multiProcessorCount: int | None = None  # noqa: N815
    supportsAtomics: bool | None = None  # noqa: N815

    @staticmethod
    def of(arch: ArchSpec) -> "cudaDeviceProp":
        """The full property record of a device."""
        return cudaDeviceProp(
            name=arch.name,
            totalGlobalMem=arch.device_memory_bytes,
            sharedMemPerBlock=arch.shared_mem_per_mp,
            warpSize=arch.warp_size,
            maxThreadsPerBlock=arch.max_threads_per_block,
            multiProcessorCount=arch.multiprocessors,
            supportsAtomics=arch.supports_atomics,
        )

    def satisfied_by(self, arch: ArchSpec) -> bool:
        """Does a device meet this request?  Numeric fields are minimums,
        boolean/string fields must match exactly."""
        if self.name is not None and self.name != arch.name:
            return False
        numeric_minimums = (
            (self.totalGlobalMem, arch.device_memory_bytes),
            (self.sharedMemPerBlock, arch.shared_mem_per_mp),
            (self.maxThreadsPerBlock, arch.max_threads_per_block),
            (self.multiProcessorCount, arch.multiprocessors),
        )
        for wanted, actual in numeric_minimums:
            if wanted is not None and actual < wanted:
                return False
        if self.warpSize is not None and arch.warp_size != self.warpSize:
            return False
        if (
            self.supportsAtomics is not None
            and arch.supports_atomics != self.supportsAtomics
        ):
            return False
        return True
