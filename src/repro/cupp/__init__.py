"""CuPP — the paper's contribution (chapter 4).

A C++-style integration layer over the CUDA runtime:

- :class:`Device` — explicit device handles; destroying one frees all of
  its memory (§4.1).
- :class:`DeviceSharedPtr` / :class:`Memory1D` — exception-based memory
  management with RAII and deep-copy semantics (§4.2).
- :class:`Kernel` — a functor whose ``__call__`` gives kernels real
  call-by-value / call-by-reference semantics, skipping the copy-back for
  ``ConstRef`` parameters (§4.3).
- ``transform()`` / ``get_device_reference()`` / ``dirty()`` — the three
  customization points a class implements to cross the host/device
  boundary (§4.4), with the listing-4.5 defaults applied otherwise.
- :func:`bind_types` and the ``host_type``/``device_type`` convention —
  two independent representations per type, transformed at the boundary
  (§4.5).
- :class:`Vector` — the STL-vector wrapper with lazy memory copying
  (§4.6).
"""

from repro.cupp.device import Device
from repro.cupp.device_reference import DeviceReference
from repro.cupp.exceptions import (
    CuppError,
    CuppInvalidDevice,
    CuppInvalidFree,
    CuppLaunchError,
    CuppMemoryError,
    CuppTraitError,
    CuppUsageError,
    OutOfMemory,
    check,
)
from repro.cupp.kernel import CallStats, Kernel, plan_grid
from repro.cupp.memory1d import Memory1D
from repro.cupp.multidevice import DeviceGroup, MultiKernel, Sharded, shard
from repro.cupp.nested import DeviceNestedVector, NestedVector
from repro.cupp.serialize import Boxed, pack_object, unpack_object
from repro.cupp.shared_ptr import DeviceSharedPtr, make_shared
from repro.cupp.traits import (
    ConstRef,
    KernelTraits,
    ParamTrait,
    PassKind,
    Ref,
    analyze_kernel,
)
from repro.cupp.typetransform import (
    bind_types,
    device_type_of,
    host_type_of,
    unbind_types,
    validate_binding,
)
from repro.cupp.vector import DeviceVector, Vector

__all__ = [
    "Boxed",
    "CallStats",
    "ConstRef",
    "CuppError",
    "CuppInvalidDevice",
    "CuppInvalidFree",
    "CuppLaunchError",
    "CuppMemoryError",
    "CuppTraitError",
    "CuppUsageError",
    "Device",
    "DeviceGroup",
    "DeviceNestedVector",
    "DeviceReference",
    "NestedVector",
    "DeviceSharedPtr",
    "DeviceVector",
    "Kernel",
    "MultiKernel",
    "OutOfMemory",
    "Sharded",
    "shard",
    "KernelTraits",
    "Memory1D",
    "ParamTrait",
    "PassKind",
    "Ref",
    "Vector",
    "analyze_kernel",
    "bind_types",
    "check",
    "device_type_of",
    "host_type_of",
    "make_shared",
    "pack_object",
    "plan_grid",
    "unpack_object",
    "unbind_types",
    "validate_binding",
]
