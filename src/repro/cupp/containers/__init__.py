"""``cupp.containers`` — STL-like device data structures (paper ch. 7).

The paper closes with the observation that "spatial data structures
could improve the neighbor search performance.  Data structures must be
constructed at the host ... and then be transferred to the GPU.  With
CuPP it would be easy to use two different data representations, the
host data structure could be designed for fast construction, whereas
the device data structure could be designed for fast memory transfer to
device memory and fast neighborhood lookup."  stdgpu makes the same
argument for STL-like GPU containers at library scale.

This package builds that layer on the same machinery as
``cupp.Vector``:

* :class:`~repro.cupp.containers.flatmap.FlatMap` — an open-addressing
  device hash map (uint64 keys -> int32 values), ``std::unordered_map``
  on the host, two flat probe arrays on the device;
* :class:`~repro.cupp.containers.hashgrid.HashGrid` — a spatial hash
  grid composing a :class:`FlatMap` cell directory with CSR member
  lists; built on the host in O(n), queried on the device in O(k).

Both participate in the CuPP protocol exactly like ``cupp.Vector``:
1:1 host/device type binding (listing 4.6), lazy residency (uploads
happen only when a kernel consumes a stale structure), and dirty
tracking (host mutation invalidates the device copy).  Their traffic is
attributed in the transfer ledger under the ``grid-build`` /
``grid-query`` causes and counted in the ``cupp.containers.*`` metric
family, so the observability stack sees containers like any other
device allocation.
"""

from __future__ import annotations

from repro.cupp.containers.flatmap import (
    EMPTY_KEY,
    DeviceFlatMap,
    FlatMap,
    device_map_get,
)
from repro.cupp.containers.hashgrid import (
    CELL_KEY_BITS,
    DeviceHashGrid,
    HashGrid,
    pack_cell_key,
)

__all__ = [
    "CELL_KEY_BITS",
    "DeviceFlatMap",
    "DeviceHashGrid",
    "EMPTY_KEY",
    "FlatMap",
    "HashGrid",
    "device_map_get",
    "pack_cell_key",
]
