"""``cupp.containers.FlatMap`` — an open-addressing device hash map.

The host side behaves like ``std::unordered_map<uint64_t, int32_t>``
(insert, lookup, erase, iteration); the device side is two flat arrays
— ``keys`` (uint64) and ``vals`` (int32) — probed with linear open
addressing, the layout stdgpu uses for its ``unordered_map`` because a
flat probe sequence is coalescing-friendly and needs no device-side
allocation.

Construction happens on the host (paper ch. 7: "Data structures must be
constructed at the host, due to the low arithmetic intensity of such a
process"); the device only ever reads.  The CuPP protocol is the same
as ``cupp.Vector``'s:

* ``transform()`` / ``get_device_reference()`` upload the probe arrays
  **iff** the device copy is absent or stale (lazy residency);
* any host mutation marks the device copy stale (dirty tracking);
* uploads are attributed to the ``grid-build`` ledger cause, and every
  kernel consumption records a ``grid-query`` entry (``moved=False`` —
  on-device bytes read, not bus traffic).

The load factor is capped at 1/2 and the capacity is a power of two,
so linear probing terminates quickly and the device kernel's probe loop
(:func:`device_map_get`) has a short expected walk.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro import obs
from repro.cupp.device import Device
from repro.cupp.device_reference import DeviceReference
from repro.cupp.exceptions import CuppUsageError
from repro.cupp.memory1d import Memory1D
from repro.simgpu import devicelib as dl
from repro.simgpu.isa import ld
from repro.simgpu.memory import DeviceArrayView, DevicePtr

_MASK64 = (1 << 64) - 1

#: The reserved empty-slot marker.  Grid cell keys use at most 63 bits
#: (see :mod:`repro.cupp.containers.hashgrid`), so the all-ones key can
#: never collide with a real key.
EMPTY_KEY = _MASK64

#: Sentinel returned by lookups that miss.
NOT_FOUND = -1


def mix64(key: int) -> int:
    """The splitmix64 finalizer — the probe-start hash.

    Pure 64-bit integer arithmetic, identical on the host (build), the
    emulated device (probe loop), and the native twin, so every engine
    walks the same probe sequence.
    """
    key &= _MASK64
    key = ((key ^ (key >> 33)) * 0xFF51AFD7ED558CCD) & _MASK64
    key = ((key ^ (key >> 33)) * 0xC4CEB9FE1A85EC53) & _MASK64
    return key ^ (key >> 33)


class DeviceFlatMap:
    """The device type of :class:`FlatMap`: two probe arrays + capacity.

    Like :class:`~repro.cupp.vector.DeviceVector` it is a thin window
    onto global memory; kernels probe it through
    :func:`device_map_get`.  It has no insert — the device cannot
    allocate, and containers are built at the host (ch. 7).
    """

    #: Stack footprint: two device pointers plus a 32-bit capacity.
    kernel_arg_size = 20

    host_type: "type | None" = None  # bound below (listing 4.6)
    device_type: "type | None" = None

    def __init__(self, keys: DeviceArrayView, vals: DeviceArrayView) -> None:
        self.keys = keys
        self.vals = vals

    @property
    def capacity(self) -> int:
        return self.keys.count

    @property
    def nbytes(self) -> int:
        """The device footprint a probing kernel can touch."""
        return self.keys.count * 8 + self.vals.count * 4

    def pack(self) -> np.ndarray:
        meta = (
            self.keys.ptr.addr,
            self.vals.ptr.addr,
            self.keys.count,
        )
        return np.frombuffer(pickle.dumps(meta), dtype=np.uint8).copy()

    @classmethod
    def unpack(cls, blob: np.ndarray, device: Device) -> "DeviceFlatMap":
        k_addr, v_addr, cap = pickle.loads(blob.tobytes())
        mem = device.sim.memory
        return cls(
            DeviceArrayView(mem, DevicePtr(k_addr), np.dtype(np.uint64), cap),
            DeviceArrayView(mem, DevicePtr(v_addr), np.dtype(np.int32), cap),
        )


def device_map_get(fmap: DeviceFlatMap, key: int, default: int = NOT_FOUND):
    """Device-side lookup: the linear probe loop, with instruction events.

    A generator in the emulator's kernel dialect — each probe is one
    global 8-byte key read plus a compare; a hit pays one more 4-byte
    value read.  Capacity is a power of two, so the wrap is a mask.
    """
    mask = fmap.capacity - 1
    slot = mix64(key) & mask
    yield dl.iadd(2)  # hash fold + mask
    while True:
        stored = yield ld(fmap.keys, slot)
        yield dl.compare(2)  # empty? match?
        yield dl.branch()
        if stored == EMPTY_KEY:
            return default
        if stored == key:
            value = yield ld(fmap.vals, slot)
            return int(value)
        slot = (slot + 1) & mask
        yield dl.iadd()


class FlatMap:
    """Host-side ``unordered_map`` with a lazily synchronized device twin.

    Keys are uint64, values int32 — the shapes device code can read
    directly.  The probe table is host-resident numpy (``_keys`` /
    ``_vals``); the device copy is uploaded on demand by the CuPP
    protocol methods and invalidated by any host mutation.
    """

    host_type: "type | None" = None
    device_type = DeviceFlatMap

    _MIN_CAPACITY = 8

    def __init__(self, items: "dict | None" = None) -> None:
        self._keys = np.full(self._MIN_CAPACITY, EMPTY_KEY, dtype=np.uint64)
        self._vals = np.zeros(self._MIN_CAPACITY, dtype=np.int32)
        self._size = 0
        # Lazy-copy state (same protocol as cupp.Vector).
        self._mem_keys: Memory1D | None = None
        self._mem_vals: Memory1D | None = None
        self._device_valid = False
        if items:
            for key, value in items.items():
                self[key] = value

    # ------------------------------------------------------------------
    # host-side probe table
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._keys.size

    def _check_key(self, key: int) -> int:
        key = int(key)
        if not 0 <= key < EMPTY_KEY:
            raise CuppUsageError(
                f"FlatMap keys must be uint64 below the empty sentinel "
                f"(2**64-1); got {key}"
            )
        return key

    def _slot_of(self, key: int) -> "tuple[int, bool]":
        """(slot, occupied) — the probe walk shared by get and insert."""
        mask = self.capacity - 1
        slot = mix64(key) & mask
        while True:
            stored = int(self._keys[slot])
            if stored == EMPTY_KEY:
                return slot, False
            if stored == key:
                return slot, True
            slot = (slot + 1) & mask

    def _grow_to(self, capacity: int) -> None:
        old_keys, old_vals = self._keys, self._vals
        self._keys = np.full(capacity, EMPTY_KEY, dtype=np.uint64)
        self._vals = np.zeros(capacity, dtype=np.int32)
        self._size = 0
        for stored, value in zip(old_keys, old_vals):
            if int(stored) != EMPTY_KEY:
                self._insert(int(stored), int(value))

    def _insert(self, key: int, value: int) -> None:
        slot, occupied = self._slot_of(key)
        self._keys[slot] = key
        self._vals[slot] = value
        if not occupied:
            self._size += 1

    def _before_host_write(self) -> None:
        """Dirty tracking: host mutation invalidates the device copy."""
        if self._device_valid:
            obs.instant("flatmap.invalidate-device", nbytes=self.device_nbytes)
        self._device_valid = False

    # ------------------------------------------------------------------
    # std::unordered_map-like host interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def size(self) -> int:
        return self._size

    def empty(self) -> bool:
        return self._size == 0

    def __setitem__(self, key: int, value: int) -> None:
        key = self._check_key(key)
        self._before_host_write()
        # Load factor <= 1/2 keeps device probe walks short.
        if 2 * (self._size + 1) > self.capacity:
            self._grow_to(self.capacity * 2)
        self._insert(key, int(value))

    def insert(self, key: int, value: int) -> None:
        """``m.insert({k, v})`` — alias of item assignment."""
        self[key] = value

    def __getitem__(self, key: int) -> int:
        key = self._check_key(key)
        slot, occupied = self._slot_of(key)
        if not occupied:
            raise KeyError(key)
        return int(self._vals[slot])

    def get(self, key: int, default: int = NOT_FOUND) -> int:
        key = self._check_key(key)
        slot, occupied = self._slot_of(key)
        return int(self._vals[slot]) if occupied else default

    def __contains__(self, key: int) -> bool:
        _, occupied = self._slot_of(self._check_key(key))
        return occupied

    def erase(self, key: int) -> bool:
        """``m.erase(k)`` — remove a key; returns whether it existed.

        Open addressing cannot simply null a slot (it would break probe
        chains), so erase rehashes the survivors — fine for host-side
        maintenance of a structure that is rebuilt wholesale anyway.
        """
        key = self._check_key(key)
        _, occupied = self._slot_of(key)
        if not occupied:
            return False
        self._before_host_write()
        items = {
            int(k): int(v)
            for k, v in zip(self._keys, self._vals)
            if int(k) != EMPTY_KEY and int(k) != key
        }
        self._keys = np.full(
            max(self._MIN_CAPACITY, self.capacity), EMPTY_KEY, dtype=np.uint64
        )
        self._vals = np.zeros(self._keys.size, dtype=np.int32)
        self._size = 0
        for k, v in items.items():
            self._insert(k, v)
        return True

    def clear(self) -> None:
        self._before_host_write()
        self._keys = np.full(self._MIN_CAPACITY, EMPTY_KEY, dtype=np.uint64)
        self._vals = np.zeros(self._MIN_CAPACITY, dtype=np.int32)
        self._size = 0

    def items(self):
        for stored, value in zip(self._keys, self._vals):
            if int(stored) != EMPTY_KEY:
                yield int(stored), int(value)

    def keys(self):
        for key, _ in self.items():
            yield key

    def __iter__(self):
        return self.keys()

    # ------------------------------------------------------------------
    # bulk build (the HashGrid fast path)
    # ------------------------------------------------------------------
    def assign(self, keys: np.ndarray, values: np.ndarray) -> None:
        """Replace the contents from parallel key/value arrays in one
        rebuild — the O(n) bulk path :class:`HashGrid` uses per frame."""
        keys = np.asarray(keys, dtype=np.uint64)
        values = np.asarray(values, dtype=np.int32)
        if keys.shape != values.shape:
            raise CuppUsageError(
                f"assign shape mismatch: {keys.shape} keys vs "
                f"{values.shape} values"
            )
        self._before_host_write()
        capacity = self._MIN_CAPACITY
        while capacity < 2 * keys.size:
            capacity *= 2
        self._keys = np.full(capacity, EMPTY_KEY, dtype=np.uint64)
        self._vals = np.zeros(capacity, dtype=np.int32)
        self._size = 0
        for key, value in zip(keys.tolist(), values.tolist()):
            self._insert(self._check_key(key), int(value))

    # ------------------------------------------------------------------
    # the CuPP protocol (§4.4/§4.6)
    # ------------------------------------------------------------------
    @property
    def device_nbytes(self) -> int:
        """Bytes the device copy occupies (keys + vals arrays)."""
        return self.capacity * (8 + 4)

    def _ensure_device(self, device: Device, nested: bool = False) -> None:
        """Upload the probe arrays iff absent, resized, or stale.

        ``nested=True`` suppresses the ``cupp.containers.*`` counters —
        a composite container (:class:`~repro.cupp.containers.hashgrid.
        HashGrid`) accounts for the whole structure once; the ledger
        still sees the inner arrays' real upload bytes either way.
        """
        if self._mem_keys is not None and self._mem_keys.device is not device:
            raise CuppUsageError(
                "FlatMap is bound to a different device; CuPP supports one "
                "device per container"
            )
        if self._mem_keys is None or self._mem_keys.count != self.capacity:
            if self._mem_keys is not None:
                self._mem_keys.close()
                self._mem_vals.close()
                if not nested:
                    obs.counter("cupp.containers.reallocs").inc()
            self._mem_keys = Memory1D(device, np.uint64, self.capacity)
            self._mem_vals = Memory1D(device, np.int32, self.capacity)
            self._device_valid = False
        if not self._device_valid:
            self._mem_keys.copy_from_host(self._keys, cause="grid-build")
            self._mem_vals.copy_from_host(self._vals, cause="grid-build")
            self._device_valid = True
            if not nested:
                obs.counter("cupp.containers.uploads").inc()
        elif not nested:
            obs.counter("cupp.containers.lazy_hits").inc()
            tracer = obs.get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "containers.lazy-hit", nbytes=self.device_nbytes
                )

    def _device_twin(self) -> DeviceFlatMap:
        return DeviceFlatMap(self._mem_keys.view(), self._mem_vals.view())

    def transform(self, device: Device) -> DeviceFlatMap:
        """Pass-by-value: upload if needed, attribute the consumption."""
        self._ensure_device(device)
        obs.counter("cupp.containers.queries").inc()
        obs.record_transfer(
            "grid-query",
            "d2d",
            self.device_nbytes,
            moved=False,
            label="flatmap",
        )
        return self._device_twin()

    def get_device_reference(self, device: Device) -> DeviceReference:
        return DeviceReference(device, self.transform(device))

    def dirty(self, device_ref: DeviceReference) -> None:
        """Containers are device-read-only (built at the host, ch. 7):
        a kernel claiming to have mutated one is a usage error."""
        raise CuppUsageError(
            "cupp.containers structures are const on the device; pass them "
            "as ConstRef parameters"
        )


# Listing 4.6: both types carry both typedefs, matched 1:1.
FlatMap.host_type = FlatMap
DeviceFlatMap.host_type = FlatMap
DeviceFlatMap.device_type = DeviceFlatMap
