"""``cupp.containers.HashGrid`` — a spatial hash grid for neighbor search.

The two-representation design the paper's chapter 7 sketches, composed
from this package's own parts:

* **Host representation (fast construction):** one O(n) counting-sort
  pass buckets agents by their packed cell key; occupied cells become
  contiguous CSR segments.  No dense cell array exists anywhere — the
  grid hashes an *unbounded* world, paying memory only for occupied
  cells (the property that lets it scale to million-agent flocks).
* **Device representation (fast transfer + fast lookup):** three flat
  arrays — ``members`` (agent ids, segment-contiguous), ``starts`` (CSR
  offsets per segment), and a :class:`~repro.cupp.containers.flatmap.
  FlatMap` cell directory mapping packed cell key -> segment index.  A
  query probes the directory for each of the 27 cells around an agent
  and scans only those segments: O(k) instead of O(n).

Cell keys pack the three signed cell coordinates into 21 bits each
(63 bits total), leaving the flat map's all-ones empty sentinel
unreachable.  Cell coordinates are ``floor(p / cell_edge)`` computed in
float64 — bit-identical between the numpy build, the emulated kernel,
and the native twin.

Residency follows the ``cupp.Vector`` protocol: ``build()`` marks the
device copy stale (dirty tracking), ``transform()`` uploads only when
stale (lazy residency, ledger cause ``grid-build``) and attributes
every kernel consumption as ``grid-query`` on-device traffic.  The
``cupp.containers.*`` counter family (builds / uploads / queries /
lazy_hits / reallocs) makes the rebuild-vs-reuse economics observable.
"""

from __future__ import annotations

import math
import pickle

import numpy as np

from repro import obs
from repro.cupp.containers.flatmap import DeviceFlatMap, FlatMap
from repro.cupp.device import Device
from repro.cupp.device_reference import DeviceReference
from repro.cupp.exceptions import CuppUsageError
from repro.cupp.memory1d import Memory1D
from repro.simgpu.memory import DeviceArrayView, DevicePtr

#: Bits per axis in a packed cell key (3 x 21 = 63 < 64).
CELL_KEY_BITS = 21

_AXIS_BIAS = 1 << (CELL_KEY_BITS - 1)
_AXIS_MAX = (1 << CELL_KEY_BITS) - 1


def axis_cell(x: float, cell_edge: float) -> int:
    """One axis's biased cell coordinate — scalar twin of the build.

    ``floor`` (not int-truncation) so negative coordinates land in the
    right cell; float64 division so host and device agree bitwise.
    """
    return min(max(int(math.floor(float(x) / cell_edge)) + _AXIS_BIAS, 0),
               _AXIS_MAX)


def pack_cell_key(cx: int, cy: int, cz: int) -> int:
    """Pack three biased axis cells into one 63-bit key."""
    return (cx << (2 * CELL_KEY_BITS)) | (cy << CELL_KEY_BITS) | cz


def _cell_keys(positions: np.ndarray, cell_edge: float) -> np.ndarray:
    """Vectorized packed keys for an (n, 3) position array."""
    cells = np.floor(positions.astype(np.float64) / cell_edge).astype(np.int64)
    cells = np.clip(cells + _AXIS_BIAS, 0, _AXIS_MAX).astype(np.uint64)
    return (
        (cells[:, 0] << np.uint64(2 * CELL_KEY_BITS))
        | (cells[:, 1] << np.uint64(CELL_KEY_BITS))
        | cells[:, 2]
    )


class DeviceHashGrid:
    """The device type of :class:`HashGrid`: CSR arrays + cell directory.

    Kernels locate an agent's cell with :func:`axis_cell` /
    :func:`pack_cell_key`, probe ``cells`` (a
    :class:`DeviceFlatMap`) for the segment index, and scan
    ``members[starts[s] : starts[s+1]]``.
    """

    #: Stack footprint: three device pointers, two sizes, the edge.
    kernel_arg_size = 32

    host_type: "type | None" = None  # bound below (listing 4.6)
    device_type: "type | None" = None

    def __init__(
        self,
        members: DeviceArrayView,
        starts: DeviceArrayView,
        cells: DeviceFlatMap,
        cell_edge: float,
    ) -> None:
        self.members = members
        self.starts = starts
        self.cells = cells
        self.cell_edge = cell_edge

    @property
    def nbytes(self) -> int:
        """The device footprint a querying kernel can touch."""
        return (
            self.members.count * 4
            + self.starts.count * 4
            + self.cells.nbytes
        )

    def pack(self) -> np.ndarray:
        meta = (
            self.members.ptr.addr,
            self.members.count,
            self.starts.ptr.addr,
            self.starts.count,
            self.cells.keys.ptr.addr,
            self.cells.vals.ptr.addr,
            self.cells.capacity,
            self.cell_edge,
        )
        return np.frombuffer(pickle.dumps(meta), dtype=np.uint8).copy()

    @classmethod
    def unpack(cls, blob: np.ndarray, device: Device) -> "DeviceHashGrid":
        (m_addr, m_n, s_addr, s_n, k_addr, v_addr, cap, edge) = pickle.loads(
            blob.tobytes()
        )
        mem = device.sim.memory
        return cls(
            DeviceArrayView(mem, DevicePtr(m_addr), np.dtype(np.int32), m_n),
            DeviceArrayView(mem, DevicePtr(s_addr), np.dtype(np.int32), s_n),
            DeviceFlatMap(
                DeviceArrayView(
                    mem, DevicePtr(k_addr), np.dtype(np.uint64), cap
                ),
                DeviceArrayView(
                    mem, DevicePtr(v_addr), np.dtype(np.int32), cap
                ),
            ),
            edge,
        )


class HashGrid:
    """Host-built spatial hash with a lazily synchronized device twin.

    Parameters
    ----------
    cell_edge:
        Cell size.  Choosing the query radius guarantees the 3x3x3 cell
        neighborhood covers every agent within that radius.
    """

    host_type: "type | None" = None
    device_type = DeviceHashGrid

    def __init__(self, cell_edge: float) -> None:
        if not cell_edge > 0:
            raise CuppUsageError(
                f"cell_edge must be positive, got {cell_edge}"
            )
        self.cell_edge = float(cell_edge)
        self._members: np.ndarray | None = None
        self._starts: np.ndarray | None = None
        self._keys: np.ndarray | None = None  # per-segment packed cell key
        self.cells = FlatMap()
        # Lazy-copy state (same protocol as cupp.Vector).
        self._mem_members: Memory1D | None = None
        self._mem_starts: Memory1D | None = None
        self._device_valid = False

    # ------------------------------------------------------------------
    # host-side construction ("fast construction", ch. 7)
    # ------------------------------------------------------------------
    def build(self, positions: np.ndarray) -> None:
        """O(n) counting-sort (re)build from an (n, 3) position array.

        Marks any device copy stale — the next kernel consumption pays
        one ``grid-build`` upload, later consumptions are lazy hits.
        """
        positions = np.asarray(positions, dtype=np.float32).reshape(-1, 3)
        keys = _cell_keys(positions, self.cell_edge)
        # Stable sort keeps same-cell agents in index order, so segment
        # scans enumerate candidates deterministically.
        order = np.argsort(keys, kind="stable").astype(np.int32)
        sorted_keys = keys[order.astype(np.int64)]
        unique_keys, counts = np.unique(sorted_keys, return_counts=True)
        starts = np.zeros(unique_keys.size + 1, dtype=np.int32)
        np.cumsum(counts, out=starts[1:])
        self._members = order
        self._starts = starts
        self._keys = unique_keys
        self.cells.assign(
            unique_keys, np.arange(unique_keys.size, dtype=np.int32)
        )
        self._before_host_write()
        obs.counter("cupp.containers.builds").inc()
        tracer = obs.get_tracer()
        if tracer.enabled:
            tracer.instant(
                "hashgrid.build",
                agents=int(positions.shape[0]),
                cells=int(unique_keys.size),
            )

    def _require_built(self) -> None:
        if self._members is None:
            raise CuppUsageError(
                "HashGrid.build() must run before this operation"
            )

    def _before_host_write(self) -> None:
        """Dirty tracking: a rebuild invalidates the device copy."""
        if self._device_valid:
            obs.instant(
                "hashgrid.invalidate-device", nbytes=self.device_nbytes
            )
        self._device_valid = False

    # ------------------------------------------------------------------
    # host-side queries (tests, native twins, reference answers)
    # ------------------------------------------------------------------
    @property
    def agent_count(self) -> int:
        self._require_built()
        return int(self._members.size)

    @property
    def cell_count(self) -> int:
        """Occupied cells — the only cells that cost memory."""
        self._require_built()
        return int(self._keys.size)

    def members_of(self, key: int) -> np.ndarray:
        """Agent ids stored in one packed cell (empty array on miss)."""
        self._require_built()
        segment = self.cells.get(int(key))
        if segment < 0:
            return np.empty(0, dtype=np.int32)
        return self._members[
            int(self._starts[segment]) : int(self._starts[segment + 1])
        ]

    def candidates(self, point: np.ndarray) -> np.ndarray:
        """Agent ids in the 27 cells around ``point``, in scan order.

        The host mirror of the device query's candidate enumeration —
        the superset every in-radius neighbor is guaranteed to be in
        when ``cell_edge >= radius``.
        """
        self._require_built()
        cx = axis_cell(point[0], self.cell_edge)
        cy = axis_cell(point[1], self.cell_edge)
        cz = axis_cell(point[2], self.cell_edge)
        found: "list[np.ndarray]" = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    x, y, z = cx + dx, cy + dy, cz + dz
                    if not (
                        0 <= x <= _AXIS_MAX
                        and 0 <= y <= _AXIS_MAX
                        and 0 <= z <= _AXIS_MAX
                    ):
                        continue
                    found.append(self.members_of(pack_cell_key(x, y, z)))
        if not found:
            return np.empty(0, dtype=np.int32)
        return np.concatenate(found)

    # ------------------------------------------------------------------
    # the CuPP protocol (§4.4/§4.6)
    # ------------------------------------------------------------------
    @property
    def device_nbytes(self) -> int:
        """Bytes of the full device representation (CSR + directory)."""
        self._require_built()
        return (
            self._members.size * 4
            + self._starts.size * 4
            + self.cells.device_nbytes
        )

    def _ensure_device(self, device: Device) -> None:
        """Upload the CSR arrays + directory iff absent or stale."""
        self._require_built()
        if (
            self._mem_members is not None
            and self._mem_members.device is not device
        ):
            raise CuppUsageError(
                "HashGrid is bound to a different device; CuPP supports one "
                "device per container"
            )
        members = self._members if self._members.size else np.zeros(1, np.int32)
        if (
            self._mem_members is None
            or self._mem_members.count != members.size
            or self._mem_starts.count != self._starts.size
        ):
            if self._mem_members is not None:
                self._mem_members.close()
                self._mem_starts.close()
                obs.counter("cupp.containers.reallocs").inc()
            self._mem_members = Memory1D(device, np.int32, members.size)
            self._mem_starts = Memory1D(device, np.int32, self._starts.size)
            self._device_valid = False
        if not self._device_valid:
            self._mem_members.copy_from_host(members, cause="grid-build")
            self._mem_starts.copy_from_host(self._starts, cause="grid-build")
            self.cells._ensure_device(device, nested=True)
            self._device_valid = True
            obs.counter("cupp.containers.uploads").inc()
        else:
            self.cells._ensure_device(device, nested=True)
            obs.counter("cupp.containers.lazy_hits").inc()
            tracer = obs.get_tracer()
            if tracer.enabled:
                tracer.instant(
                    "containers.lazy-hit", nbytes=self.device_nbytes
                )

    def transform(self, device: Device) -> DeviceHashGrid:
        """Pass-by-value: upload if needed, attribute the consumption."""
        self._ensure_device(device)
        obs.counter("cupp.containers.queries").inc()
        obs.record_transfer(
            "grid-query",
            "d2d",
            self.device_nbytes,
            moved=False,
            label="hashgrid",
        )
        return DeviceHashGrid(
            self._mem_members.view(),
            self._mem_starts.view(),
            self.cells._device_twin(),
            self.cell_edge,
        )

    def get_device_reference(self, device: Device) -> DeviceReference:
        return DeviceReference(device, self.transform(device))

    def dirty(self, device_ref: DeviceReference) -> None:
        """Containers are device-read-only (built at the host, ch. 7)."""
        raise CuppUsageError(
            "cupp.containers structures are const on the device; pass them "
            "as ConstRef parameters"
        )


# Listing 4.6: both types carry both typedefs, matched 1:1.
HashGrid.host_type = HashGrid
DeviceHashGrid.host_type = HashGrid
DeviceHashGrid.device_type = DeviceHashGrid
