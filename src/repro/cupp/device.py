"""The CuPP device handle (paper §4.1).

CUDA binds a host thread to a device implicitly; CuPP makes the handle
explicit: "the developer is forced to create a device handle
(``cupp::device``), which is passed to all CuPP functions using the
device".  The handle can be created from requested properties or default
to device 0, can be queried for information, and — the RAII part — frees
every allocation made on it when it is destroyed.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cuda.runtime import CudaMachine, CudaRuntime
from repro.cuda.types import cudaDeviceProp, cudaMemcpyKind
from repro.cupp.exceptions import CuppUsageError, check
from repro.simgpu.device import SimDevice
from repro.simgpu.memory import DevicePtr


class Device:
    """A handle to one simulated CUDA device.

    Parameters
    ----------
    properties:
        Optional :class:`cudaDeviceProp` request — the handle binds to the
        best matching device (mirrors ``cudaChooseDevice``).
    index:
        Explicit device index; mutually exclusive with ``properties``.
    machine:
        The :class:`CudaMachine` to pick a device from.  Defaults to a
        fresh single-8800GTS machine, so ``Device()`` "creates a default
        device" exactly as in listing 4.1.
    """

    def __init__(
        self,
        properties: cudaDeviceProp | None = None,
        index: int | None = None,
        machine: CudaMachine | None = None,
    ) -> None:
        if properties is not None and index is not None:
            raise CuppUsageError(
                "pass either a property request or an explicit index, not both"
            )
        self.runtime = CudaRuntime(machine)
        if properties is not None:
            err, index = self.runtime.cudaChooseDevice(properties)
            if not err.ok:
                from repro.cupp.exceptions import CuppInvalidDevice

                raise CuppInvalidDevice(
                    "no device matches the requested properties"
                )
        check(self.runtime.cudaSetDevice(0 if index is None else index))
        self._open = True

    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if not self._open:
            raise CuppUsageError("device handle has been destroyed")

    @property
    def sim(self) -> SimDevice:
        """The underlying simulated device."""
        self._ensure_open()
        return self.runtime.device

    # -- queries (§4.1: "the device handle can be queried") -------------
    def properties(self) -> cudaDeviceProp:
        self._ensure_open()
        err, _ = self.runtime.cudaGetDevice()
        check(err)
        err, prop = self.runtime.cudaGetDeviceProperties(
            self.runtime.cudaGetDevice()[1]
        )
        check(err)
        return prop

    @property
    def name(self) -> str:
        return self.sim.arch.name

    @property
    def total_memory(self) -> int:
        return self.sim.arch.device_memory_bytes

    @property
    def free_memory(self) -> int:
        return self.sim.memory.free_bytes

    @property
    def multiprocessors(self) -> int:
        return self.sim.arch.multiprocessors

    @property
    def supports_atomics(self) -> bool:
        return self.sim.arch.supports_atomics

    # -- memory (exception-throwing variants of §3.2.3) -----------------
    def alloc(self, nbytes: int) -> DevicePtr:
        """Allocate global memory; raises :class:`CuppMemoryError` on
        failure instead of returning an error code."""
        self._ensure_open()
        err, ptr = self.runtime.cudaMalloc(nbytes)
        check(err, f"allocating {nbytes} bytes")
        obs.instant("device.alloc", nbytes=nbytes, addr=ptr.addr)
        return ptr

    def free(self, ptr: DevicePtr) -> None:
        self._ensure_open()
        check(self.runtime.cudaFree(ptr))
        obs.instant("device.free", addr=ptr.addr)

    def upload(self, ptr: DevicePtr, data: np.ndarray) -> None:
        """Host -> device transfer (blocking, implicit synchronization)."""
        self._ensure_open()
        raw = np.ascontiguousarray(data)
        with obs.span("device.upload", nbytes=raw.nbytes):
            check(
                self.runtime.cudaMemcpy(
                    ptr, raw, raw.nbytes, cudaMemcpyKind.cudaMemcpyHostToDevice
                )
            )

    def download(self, ptr: DevicePtr, nbytes: int, dtype=np.uint8) -> np.ndarray:
        """Device -> host transfer; returns a fresh host array."""
        self._ensure_open()
        out = np.empty(nbytes, dtype=np.uint8)
        with obs.span("device.download", nbytes=nbytes):
            check(
                self.runtime.cudaMemcpy(
                    out, ptr, nbytes, cudaMemcpyKind.cudaMemcpyDeviceToHost
                )
            )
        return out.view(dtype)

    def synchronize(self) -> None:
        """Explicit host/device synchronization (rarely needed, §2.2)."""
        self._ensure_open()
        check(self.runtime.cudaThreadSynchronize())

    # -- lifetime (§4.1) -------------------------------------------------
    def close(self) -> None:
        """Destroy the handle: "all memory allocated on this device is
        freed as well"."""
        if self._open:
            self.runtime.device.memory.free_all()
            self._open = False

    def __enter__(self) -> "Device":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self._open else "closed"
        return f"cupp.Device({self.runtime._device_index}, {state})"
