"""The CuPP device handle (paper §4.1).

CUDA binds a host thread to a device implicitly; CuPP makes the handle
explicit: "the developer is forced to create a device handle
(``cupp::device``), which is passed to all CuPP functions using the
device".  The handle can be created from requested properties or default
to device 0, can be queried for information, and — the RAII part — frees
every allocation made on it when it is destroyed.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.backend.base import ExecutionBackend
from repro.cuda.errors import cudaError
from repro.cuda.runtime import CudaMachine, CudaRuntime
from repro.cuda.types import cudaDeviceProp, cudaMemcpyKind
from repro.cupp.exceptions import CuppUsageError, check, invalid_free
from repro.simgpu.memory import DevicePtr


class Device:
    """A handle to one CUDA device (simulated or native).

    Parameters
    ----------
    properties:
        Optional :class:`cudaDeviceProp` request — the handle binds to the
        best matching device (mirrors ``cudaChooseDevice``).
    index:
        Explicit device index; mutually exclusive with ``properties``.
    machine:
        The :class:`CudaMachine` to pick a device from.  Defaults to a
        fresh single-8800GTS machine, so ``Device()`` "creates a default
        device" exactly as in listing 4.1.
    backend:
        Execution backend kind for a fresh single-device machine
        (``"sim"`` or ``"native"``); mutually exclusive with ``machine``
        (a machine already fixes its devices' backends).
    """

    def __init__(
        self,
        properties: cudaDeviceProp | None = None,
        index: int | None = None,
        machine: CudaMachine | None = None,
        backend: str | None = None,
    ) -> None:
        if properties is not None and index is not None:
            raise CuppUsageError(
                "pass either a property request or an explicit index, not both"
            )
        if backend is not None:
            if machine is not None:
                raise CuppUsageError(
                    "pass either a machine or a backend kind, not both "
                    "(a machine already fixes its devices' backends)"
                )
            machine = CudaMachine(backend=backend)
        self.runtime = CudaRuntime(machine)
        if properties is not None:
            err, index = self.runtime.cudaChooseDevice(properties)
            if not err.ok:
                from repro.cupp.exceptions import CuppInvalidDevice

                raise CuppInvalidDevice(
                    "no device matches the requested properties"
                )
        check(self.runtime.cudaSetDevice(0 if index is None else index))
        self._pool = None
        self._open = True

    # ------------------------------------------------------------------
    def _ensure_open(self) -> None:
        if not self._open:
            raise CuppUsageError("device handle has been destroyed")

    @property
    def backend(self) -> ExecutionBackend:
        """The underlying execution backend (sim or native device)."""
        self._ensure_open()
        return self.runtime.device

    @property
    def backend_kind(self) -> str:
        """``"sim"`` or ``"native"``."""
        self._ensure_open()
        return self.runtime.device.backend_kind

    @property
    def sim(self) -> ExecutionBackend:
        """Historical alias for :attr:`backend` (the first backend was
        the simulator; serve/bench code reaches the timeline through
        ``device.sim.timeline`` regardless of kind)."""
        self._ensure_open()
        return self.runtime.device

    @property
    def index(self) -> int:
        """The bound device number (binding lazily, like §3.2.1)."""
        return self.runtime._bind_default()

    # -- queries (§4.1: "the device handle can be queried") -------------
    def properties(self) -> cudaDeviceProp:
        self._ensure_open()
        err, _ = self.runtime.cudaGetDevice()
        check(err)
        err, prop = self.runtime.cudaGetDeviceProperties(
            self.runtime.cudaGetDevice()[1]
        )
        check(err)
        return prop

    @property
    def name(self) -> str:
        return self.sim.arch.name

    @property
    def total_memory(self) -> int:
        return self.sim.arch.device_memory_bytes

    @property
    def free_memory(self) -> int:
        return self.sim.memory.free_bytes

    @property
    def multiprocessors(self) -> int:
        return self.sim.arch.multiprocessors

    @property
    def supports_atomics(self) -> bool:
        return self.sim.arch.supports_atomics

    # -- memory pooling (repro.mem) --------------------------------------
    @property
    def pool(self):
        """The active :class:`repro.mem.MemoryPool`, or ``None``."""
        return self._pool

    def enable_pool(self, config=None) -> "object":
        """Route :meth:`alloc`/:meth:`free` through a caching
        :class:`repro.mem.MemoryPool` (idempotent when no ``config`` is
        given).  The serving layer and the benchmarks enable this; raw
        driver tests leave it off."""
        self._ensure_open()
        if self._pool is not None:
            if config is not None:
                raise CuppUsageError(
                    "pool already enabled; disable_pool() before "
                    "reconfiguring"
                )
            return self._pool
        from repro.mem import MemoryPool

        self._pool = MemoryPool(self, config)
        return self._pool

    def disable_pool(self) -> None:
        """Release the pool's cache back to the driver and detach it.

        Raises :class:`CuppUsageError` while pool allocations are live
        (arena pointers cannot outlive their segments).  A no-op when no
        pool is enabled."""
        self._ensure_open()
        if self._pool is None:
            return
        stats = self._pool.stats()
        if stats.bytes_in_use > 0:
            # Checked here, before touching the pool, so a refused
            # disable leaves the pool attached and every live pointer
            # (bin blocks *and* interior arena pointers) valid.
            raise CuppUsageError(
                f"cannot disable pool on device {self.index} with "
                f"{stats.bytes_in_use} bytes live; free them first"
            )
        self._pool.release()
        self._pool = None

    # -- memory (exception-throwing variants of §3.2.3) -----------------
    def _raw_alloc(self, nbytes: int) -> DevicePtr:
        """Driver-level allocation, bypassing any pool."""
        self._ensure_open()
        err, ptr = self.runtime.cudaMalloc(nbytes)
        check(err, f"allocating {nbytes} bytes")
        obs.instant("device.alloc", nbytes=nbytes, addr=ptr.addr)
        return ptr

    def _raw_free(self, ptr: DevicePtr) -> None:
        """Driver-level free, bypassing any pool.

        Maps the driver's invalid-pointer code to the richer
        :class:`~repro.cupp.exceptions.CuppInvalidFree` so a double free
        names the pointer and device instead of failing generically."""
        self._ensure_open()
        err = self.runtime.cudaFree(ptr)
        if err is cudaError.cudaErrorInvalidDevicePointer:
            raise invalid_free(
                ptr.addr,
                self.index,
                "not a live allocation (double free or foreign pointer)",
            )
        check(err)
        obs.instant("device.free", addr=ptr.addr)

    def alloc(self, nbytes: int) -> DevicePtr:
        """Allocate global memory; raises :class:`CuppMemoryError` on
        failure instead of returning an error code.  Served from the
        cache when a :meth:`enable_pool` pool is active."""
        if self._pool is not None:
            self._ensure_open()
            return self._pool.alloc(nbytes)
        return self._raw_alloc(nbytes)

    def free(self, ptr: DevicePtr) -> None:
        """Release an allocation.  Freeing the null pointer is a no-op;
        a double free or foreign pointer raises
        :class:`~repro.cupp.exceptions.CuppInvalidFree`."""
        if self._pool is not None:
            self._ensure_open()
            kind = self._pool.classify(ptr)
            if kind == "live":
                self._pool.free(ptr)
                return
            if kind == "cached":
                raise invalid_free(
                    ptr.addr,
                    self.index,
                    "pointer is pool-owned but not live (double free)",
                )
            # Unknown to the pool: predates enable_pool — raw path.
        self._raw_free(ptr)

    def upload(self, ptr: DevicePtr, data: np.ndarray) -> None:
        """Host -> device transfer (blocking, implicit synchronization)."""
        self._ensure_open()
        raw = np.ascontiguousarray(data)
        with obs.span("device.upload", nbytes=raw.nbytes):
            check(
                self.runtime.cudaMemcpy(
                    ptr, raw, raw.nbytes, cudaMemcpyKind.cudaMemcpyHostToDevice
                )
            )

    def download(self, ptr: DevicePtr, nbytes: int, dtype=np.uint8) -> np.ndarray:
        """Device -> host transfer; returns a fresh host array."""
        self._ensure_open()
        out = np.empty(nbytes, dtype=np.uint8)
        with obs.span("device.download", nbytes=nbytes):
            check(
                self.runtime.cudaMemcpy(
                    out, ptr, nbytes, cudaMemcpyKind.cudaMemcpyDeviceToHost
                )
            )
        return out.view(dtype)

    def synchronize(self) -> None:
        """Explicit host/device synchronization (rarely needed, §2.2)."""
        self._ensure_open()
        check(self.runtime.cudaThreadSynchronize())

    # -- lifetime (§4.1) -------------------------------------------------
    def close(self) -> None:
        """Destroy the handle: "all memory allocated on this device is
        freed as well"."""
        if self._open:
            if self._pool is not None:
                # free_all() below releases at the driver level; drop the
                # pool's books first so nothing dangles.
                self._pool.invalidate()
                self._pool = None
            self.runtime.device.memory.free_all()
            self._open = False

    def __enter__(self) -> "Device":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter teardown
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self._open else "closed"
        return f"cupp.Device({self.runtime._device_index}, {state})"
