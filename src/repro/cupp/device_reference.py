"""``cupp::device_reference<T>`` (paper §4.4).

"A reference to an object of type T located on the device.  When created,
it automatically copies the object passed to its constructor to global
memory.  The member function ``get()`` can be used to transfer the object
from global memory back to the host memory."

The packed bytes in simulated global memory are authoritative: ``get()``
always round-trips through them, and the kernel launcher calls
:meth:`put` after a mutable-reference kernel finishes so device-side
mutations land in global memory before the host reads them back.
"""

from __future__ import annotations

import numpy as np

from repro.cupp.device import Device
from repro.cupp.exceptions import CuppUsageError
from repro.cupp.serialize import is_picklable, pack_object, replicate, unpack_object
from repro.simgpu.memory import DevicePtr


class DeviceReference:
    """Owns one object's global-memory image."""

    #: On the kernel parameter stack a reference is one device pointer.
    kernel_arg_size = 4

    def __init__(self, device: Device, obj: object) -> None:
        self.device = device
        self.cls = type(obj)
        self._picklable = is_picklable(obj)
        blob = pack_object(obj)
        self._nbytes = int(blob.size)
        self._ptr: DevicePtr | None = device.alloc(max(self._nbytes, 1))
        device.upload(self._ptr, blob)
        #: The live device-side object handed to kernel threads.  All
        #: threads share it — it *is* the object in global memory.
        if self._picklable:
            self._resident: object = unpack_object(blob, self.cls, device)
        else:
            self._resident = replicate(obj)

    # ------------------------------------------------------------------
    @property
    def ptr(self) -> DevicePtr:
        if self._ptr is None:
            raise CuppUsageError("device reference has been freed")
        return self._ptr

    @property
    def nbytes(self) -> int:
        return self._nbytes

    def deref(self) -> object:
        """The device-side object (what a kernel parameter ``T&`` binds to)."""
        self._ptr  # liveness check via property
        return self._resident

    def put(self, obj: object | None = None) -> None:
        """Write the (possibly mutated) device object back into its
        global-memory image.  Reallocates if the packed size changed."""
        if obj is not None:
            self._resident = obj
        blob = pack_object(self._resident)
        if blob.size != self._nbytes:
            old = self.ptr
            self._ptr = self.device.alloc(max(int(blob.size), 1))
            self.device.free(old)
            self._nbytes = int(blob.size)
        self.device.upload(self.ptr, blob)

    def get(self) -> object:
        """Transfer the object from global memory back to the host (§4.4)."""
        blob = self.device.download(self.ptr, max(self._nbytes, 1))[
            : self._nbytes
        ]
        return unpack_object(
            np.asarray(blob, dtype=np.uint8),
            self.cls,
            self.device,
            fallback=None if self._picklable else replicate(self._resident),
        )

    # ------------------------------------------------------------------
    def free(self) -> None:
        ptr, self._ptr = self._ptr, None
        if ptr is not None:
            try:
                self.device.free(ptr)
            except CuppUsageError:
                pass

    def __del__(self) -> None:  # pragma: no cover - gc timing
        try:
            self.free()
        except Exception:
            pass
