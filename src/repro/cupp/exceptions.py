"""CuPP exception hierarchy.

The first thing CuPP changes about raw CUDA (§4.2): "exceptions are thrown
when an error occurs instead of returning an error code".  :func:`check`
is the single choke point where a :class:`~repro.cuda.errors.cudaError`
becomes an exception; every CuPP entry point funnels its runtime calls
through it.
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.cuda.errors import cudaError


class CuppError(ReproError):
    """Base class of all CuPP errors."""

    #: The underlying CUDA error code, when one exists.
    code: cudaError | None = None


class CuppMemoryError(CuppError):
    """Device memory allocation or transfer failed."""


class OutOfMemory(CuppMemoryError):
    """Device memory exhausted even after the pool flushed its cache.

    Raised by :class:`repro.mem.MemoryPool` once the flush-and-retry
    path fails.  Carries a :attr:`report` dict (requested size, bytes in
    use / reserved, largest contiguous free range, per-bin and
    per-segment occupancy) so the caller can see *why* the allocation
    failed — exhaustion and fragmentation look identical without it.
    """

    def __init__(self, message: str, *, report: "dict | None" = None) -> None:
        super().__init__(message)
        #: The fragmentation report captured at the failure point.
        self.report: dict = report or {}


class CuppInvalidFree(CuppMemoryError):
    """``free`` called with a pointer that is not a live allocation.

    Covers both double frees and foreign pointers.  Carries the
    offending address and the device id so the failure is debuggable
    from the message alone.
    """

    def __init__(
        self,
        message: str,
        *,
        addr: "int | None" = None,
        device_index: "int | None" = None,
    ) -> None:
        super().__init__(message)
        self.addr = addr
        self.device_index = device_index


def invalid_free(addr: int, device_index: int, reason: str) -> CuppInvalidFree:
    """Build the canonical :class:`CuppInvalidFree` for ``addr``."""
    return CuppInvalidFree(
        f"invalid free of 0x{addr:x} on device {device_index}: {reason}",
        addr=addr,
        device_index=device_index,
    )


class CuppInvalidDevice(CuppError):
    """No device matches the request, or the handle is unusable."""


class CuppLaunchError(CuppError):
    """Kernel configuration or launch failed."""


class CuppTraitError(CuppError):
    """A kernel signature or type-transformation declaration is invalid.

    Raised at :class:`~repro.cupp.kernel.Kernel` construction time — the
    moral equivalent of the paper's compile-time template errors.
    """


class CuppUsageError(CuppError):
    """The framework was used against its documented contract (e.g.
    resizing a vector on the device, reusing a closed handle)."""


_ERROR_MAP: dict[cudaError, type[CuppError]] = {
    cudaError.cudaErrorMemoryAllocation: CuppMemoryError,
    cudaError.cudaErrorInvalidDevicePointer: CuppMemoryError,
    cudaError.cudaErrorInvalidMemcpyDirection: CuppMemoryError,
    cudaError.cudaErrorECCUncorrectable: CuppMemoryError,
    cudaError.cudaErrorInvalidValue: CuppUsageError,
    cudaError.cudaErrorInvalidDevice: CuppInvalidDevice,
    cudaError.cudaErrorNoDevice: CuppInvalidDevice,
    cudaError.cudaErrorSetOnActiveProcess: CuppInvalidDevice,
    cudaError.cudaErrorInvalidConfiguration: CuppLaunchError,
    cudaError.cudaErrorLaunchFailure: CuppLaunchError,
}


def check(err: cudaError, context: str = "") -> None:
    """Raise the matching CuPP exception unless ``err`` is success."""
    if err.ok:
        return
    from repro.cuda.errors import cudaGetErrorString

    exc_type = _ERROR_MAP.get(err, CuppError)
    message = f"{err.name} ({cudaGetErrorString(err)})" + (
        f": {context}" if context else ""
    )
    exc = exc_type(message)
    exc.code = err
    raise exc
