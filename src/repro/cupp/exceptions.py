"""CuPP exception hierarchy.

The first thing CuPP changes about raw CUDA (§4.2): "exceptions are thrown
when an error occurs instead of returning an error code".  :func:`check`
is the single choke point where a :class:`~repro.cuda.errors.cudaError`
becomes an exception; every CuPP entry point funnels its runtime calls
through it.
"""

from __future__ import annotations

from repro.common.errors import ReproError
from repro.cuda.errors import cudaError


class CuppError(ReproError):
    """Base class of all CuPP errors."""

    #: The underlying CUDA error code, when one exists.
    code: cudaError | None = None


class CuppMemoryError(CuppError):
    """Device memory allocation or transfer failed."""


class CuppInvalidDevice(CuppError):
    """No device matches the request, or the handle is unusable."""


class CuppLaunchError(CuppError):
    """Kernel configuration or launch failed."""


class CuppTraitError(CuppError):
    """A kernel signature or type-transformation declaration is invalid.

    Raised at :class:`~repro.cupp.kernel.Kernel` construction time — the
    moral equivalent of the paper's compile-time template errors.
    """


class CuppUsageError(CuppError):
    """The framework was used against its documented contract (e.g.
    resizing a vector on the device, reusing a closed handle)."""


_ERROR_MAP: dict[cudaError, type[CuppError]] = {
    cudaError.cudaErrorMemoryAllocation: CuppMemoryError,
    cudaError.cudaErrorInvalidDevicePointer: CuppMemoryError,
    cudaError.cudaErrorInvalidMemcpyDirection: CuppMemoryError,
    cudaError.cudaErrorInvalidValue: CuppUsageError,
    cudaError.cudaErrorInvalidDevice: CuppInvalidDevice,
    cudaError.cudaErrorNoDevice: CuppInvalidDevice,
    cudaError.cudaErrorSetOnActiveProcess: CuppInvalidDevice,
    cudaError.cudaErrorInvalidConfiguration: CuppLaunchError,
    cudaError.cudaErrorLaunchFailure: CuppLaunchError,
}


def check(err: cudaError, context: str = "") -> None:
    """Raise the matching CuPP exception unless ``err`` is success."""
    if err.ok:
        return
    from repro.cuda.errors import cudaGetErrorString

    exc_type = _ERROR_MAP.get(err, CuppError)
    message = f"{err.name} ({cudaGetErrorString(err)})" + (
        f": {context}" if context else ""
    )
    exc = exc_type(message)
    exc.code = err
    raise exc
