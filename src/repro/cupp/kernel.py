"""The C++-style kernel call: ``cupp::kernel`` (paper §4.3).

A :class:`Kernel` is a functor wrapping a ``__global__`` function.  Its
``__call__`` mimics a function call with real pass-by-value and
pass-by-reference semantics:

**Call-by-value** (§4.3.1)
    1. a copy of the object is created (copy-constructor analog),
    2. the copy is transformed to its device type and pushed byte-wise
       onto the kernel parameter stack,
    3. the kernel executes,
    4. the host copy is destroyed *after the kernel has started* — not
       after it finishes, to avoid a pointless synchronization.

**Call-by-reference** (§4.3.2)
    1. the object's global-memory image is created
       (``get_device_reference``),
    2. the kernel receives the device-side object,
    3. after the kernel, the image is copied back and the host object is
       notified via ``dirty()`` — *unless the parameter was declared
       const*, in which case the copy-back is skipped entirely.  That
       elision is the paper's marquee optimization and is observable in
       this implementation through :attr:`CallStats`.

The signature analysis (which parameter is a const reference, which types
customize the protocol) happens once at construction — the run-once
analog of CuPP's compile-time template metaprogramming.
"""

from __future__ import annotations

import copy as _copy
from typing import Callable

from repro import obs
from repro.cuda.qualifiers import is_global
from repro.cupp.device import Device
from repro.cupp.device_reference import DeviceReference
from repro.cupp.exceptions import CuppLaunchError, CuppTraitError, check
from repro.cupp.serialize import Boxed
from repro.cupp.traits import (
    KernelTraits,
    ParamTrait,
    PassKind,
    analyze_kernel,
    apply_transform,
    has_dirty,
    has_get_device_reference,
)
from repro.simgpu.dims import Dim3, as_dim3


def _stat_field(name: str) -> property:
    def _get(self: "CallStats") -> int:
        return self._counters[name].value

    def _set(self: "CallStats", value: int) -> None:
        self._counters[name].value = int(value)

    return property(_get, _set, doc=f"The per-call {name!r} statistic.")


class CallStats:
    """Observable side effects of one kernel call — the paper's
    performance traps (value copies, forgotten const) show up here.

    Backed by :class:`repro.obs.Counter` instruments: each field is a
    read-through property over a per-call counter (so the historical
    ``stats.value_copies`` attribute access keeps working), and every
    :meth:`bump` also feeds the process-wide aggregate series
    ``cupp.kernel.<field>`` in the global metrics registry.
    """

    FIELDS = (
        "value_copies",
        "ref_uploads",
        "ref_upload_bytes",
        "writebacks",
        "writeback_bytes",
        "elided_writebacks",
    )

    __slots__ = ("_counters",)

    def __init__(self, **initial: int) -> None:
        self._counters = {f: obs.Counter() for f in self.FIELDS}
        for name, value in initial.items():
            if name not in self._counters:
                raise TypeError(f"CallStats has no field {name!r}")
            self._counters[name].value = int(value)

    def bump(self, field: str, n: int = 1) -> None:
        """Increment one statistic here and in the global registry."""
        self._counters[field].inc(n)
        obs.counter(f"cupp.kernel.{field}").inc(n)

    def as_dict(self) -> "dict[str, int]":
        """Plain-dict snapshot (span attributes, reports)."""
        return {f: self._counters[f].value for f in self.FIELDS}

    value_copies = _stat_field("value_copies")
    ref_uploads = _stat_field("ref_uploads")
    ref_upload_bytes = _stat_field("ref_upload_bytes")
    writebacks = _stat_field("writebacks")
    writeback_bytes = _stat_field("writeback_bytes")
    elided_writebacks = _stat_field("elided_writebacks")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"CallStats({inner})"


def _default_get_device_reference(obj: object, device: Device) -> DeviceReference:
    """Listing 4.5 default: copy the *transformed* object to global memory."""
    return DeviceReference(device, apply_transform(obj, device))


def _default_dirty(host_obj: object, device_ref: DeviceReference) -> None:
    """Listing 4.5 default: replace ``*this`` with the updated device data.

    Python cannot rebind the caller's variable, so "replace" means
    updating the object in place.  Immutable arguments passed by mutable
    reference are a usage error — pass :class:`Boxed` or declare the
    parameter ``ConstRef``.
    """
    updated = device_ref.get()
    if isinstance(host_obj, Boxed):
        host_obj.value = (
            updated.value if isinstance(updated, Boxed) else updated
        )
        return
    if hasattr(host_obj, "__dict__") and hasattr(updated, "__dict__"):
        host_obj.__dict__.update(updated.__dict__)
        return
    if isinstance(host_obj, list) and isinstance(updated, list):
        host_obj[:] = updated
        return
    raise CuppTraitError(
        f"cannot write device changes back into a {type(host_obj).__name__}; "
        "pass a Boxed value, implement dirty(), or declare the parameter "
        "ConstRef"
    )


def plan_grid(total_threads: int, threads_per_block: int) -> Dim3:
    """Pick a grid for ``total_threads``, going 2D when it must.

    §2.2: "When requiring more than 2^16 thread blocks, 2-dimensional
    block-indexes have to be used" — each grid axis caps at 65535.  For
    small launches this returns the familiar 1D grid.
    """
    import math

    if total_threads <= 0 or threads_per_block <= 0:
        raise CuppLaunchError("thread counts must be positive")
    blocks = math.ceil(total_threads / threads_per_block)
    if blocks <= 65535:
        return Dim3(blocks, 1, 1)
    width = 65535
    height = math.ceil(blocks / width)
    if height > 65535:
        raise CuppLaunchError(
            f"{blocks} blocks exceed the 65535x65535 grid limit"
        )
    # Prefer a squarer grid: fewer wasted tail blocks.
    width = math.ceil(math.sqrt(blocks))
    height = math.ceil(blocks / width)
    return Dim3(width, height, 1)


class Kernel:
    """The ``cupp::kernel`` functor.

    Parameters
    ----------
    fn:
        A ``@global_``-qualified kernel (the "function pointer" of
        listing 4.2).
    grid_dim, block_dim:
        Optional launch configuration; may also be set later with
        :meth:`set_grid_dim` / :meth:`set_block_dim` (§4.3).
    """

    def __init__(
        self,
        fn: Callable,
        grid_dim: "Dim3 | int | tuple | None" = None,
        block_dim: "Dim3 | int | tuple | None" = None,
    ) -> None:
        if not is_global(fn):
            raise CuppTraitError(
                f"{getattr(fn, '__name__', fn)!r} is not a __global__ "
                "function; qualify it with @global_"
            )
        self.fn = fn
        # "Compile time": the signature is analyzed exactly once.
        self.traits: KernelTraits = analyze_kernel(fn)
        self._grid_dim = None if grid_dim is None else as_dim3(grid_dim)
        self._block_dim = None if block_dim is None else as_dim3(block_dim)
        self.last_stats: CallStats | None = None

    # ------------------------------------------------------------------
    def set_grid_dim(self, grid_dim: "Dim3 | int | tuple") -> None:
        self._grid_dim = as_dim3(grid_dim)

    def set_block_dim(self, block_dim: "Dim3 | int | tuple") -> None:
        self._block_dim = as_dim3(block_dim)

    @property
    def grid_dim(self) -> Dim3 | None:
        return self._grid_dim

    @property
    def block_dim(self) -> Dim3 | None:
        return self._block_dim

    # ------------------------------------------------------------------
    def __call__(self, device: Device, *args: object) -> CallStats:
        """Launch: ``f(device_hdl, arg0, arg1, ...)`` (listing 4.3)."""
        if self._grid_dim is None or self._block_dim is None:
            raise CuppLaunchError(
                f"kernel {self.traits.name!r}: grid/block dimensions not set"
            )
        if len(args) != self.traits.arity:
            raise CuppLaunchError(
                f"kernel {self.traits.name!r} takes {self.traits.arity} "
                f"argument(s), got {len(args)}"
            )

        stats = CallStats()
        obs.counter("cupp.kernel.launches", kernel=self.traits.name).inc()
        tracer = obs.get_tracer()
        if tracer.enabled:
            # Traits decisions become span attributes: which parameter
            # passed how, and therefore which copies can be elided.
            span = tracer.span(
                f"kernel:{self.traits.name}",
                grid=str(self._grid_dim),
                block=str(self._block_dim),
                params=[
                    f"{t.name}:{t.kind.name.lower()}"
                    for t in self.traits.params
                ],
            )
        else:
            span = obs.NULL_SPAN
        with span:
            rt = device.runtime
            check(
                rt.cudaConfigureCall(self._grid_dim, self._block_dim),
                f"configuring {self.traits.name!r}",
            )

            # Prepare each argument per its declared pass semantics.
            pending_writeback: list[tuple[object, DeviceReference, ParamTrait]] = []
            host_copies: list[object] = []  # destroyed after the launch starts
            offset = 0
            from repro.cuda.runtime import sizeof_argument

            for trait, arg in zip(self.traits.params, args):
                if trait.kind is PassKind.VALUE:
                    host_copy = _copy.copy(arg)  # step 1: copy constructor
                    stats.bump("value_copies")
                    device_obj = apply_transform(host_copy, device)
                    host_copies.append(host_copy)
                else:
                    readonly_gdr = getattr(
                        type(arg), "get_device_reference_readonly", None
                    )
                    if trait.kind is PassKind.CONST_REF and callable(readonly_gdr):
                        # Chapter-7 extension: the traits analysis knows this
                        # parameter is const, so the argument may serve it
                        # from a read-only cached space.
                        dref = arg.get_device_reference_readonly(device)  # type: ignore[attr-defined]
                    elif has_get_device_reference(arg):
                        dref = arg.get_device_reference(device)  # type: ignore[attr-defined]
                    else:
                        dref = _default_get_device_reference(arg, device)
                    if not isinstance(dref, DeviceReference):
                        raise CuppTraitError(
                            f"{type(arg).__name__}.get_device_reference() must "
                            "return a DeviceReference"
                        )
                    stats.bump("ref_uploads")
                    stats.bump("ref_upload_bytes", dref.nbytes)
                    device_obj = dref.deref()
                    if trait.kind is PassKind.REF:
                        pending_writeback.append((arg, dref, trait))
                    else:
                        stats.bump("elided_writebacks")
                        # The marquee optimization, as ledger evidence:
                        # these bytes were attributed but never moved.
                        obs.record_transfer(
                            "copy-back-skipped-const",
                            "none",
                            dref.nbytes,
                            moved=False,
                            label=f"{self.traits.name}.{trait.name}",
                        )
                size = sizeof_argument(device_obj)
                check(
                    rt.cudaSetupArgument(device_obj, offset, size=size),
                    f"pushing argument {trait.name!r}",
                )
                offset += max(size, 4)

            check(rt.cudaLaunch(self.fn), f"launching {self.traits.name!r}")
            # Step 4 of call-by-value: the host copies die here, after the
            # kernel has *started* — no synchronization with completion.
            host_copies.clear()

            # Call-by-reference step 4: copy back and notify, unless const.
            for host_obj, dref, trait in pending_writeback:
                dref.put()  # device-side mutations -> global memory image
                stats.bump("writebacks")
                stats.bump("writeback_bytes", dref.nbytes)
                obs.record_transfer(
                    "copy-back",
                    "d2h",
                    dref.nbytes,
                    label=f"{self.traits.name}.{trait.name}",
                )
                if has_dirty(host_obj):
                    host_obj.dirty(dref)  # type: ignore[attr-defined]
                else:
                    _default_dirty(host_obj, dref)

            span.set(stats=stats.as_dict())

        self.last_stats = stats
        return stats

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"cupp.Kernel({self.traits.name}, grid={self._grid_dim}, "
            f"block={self._block_dim})"
        )
