"""``cupp::memory1d`` — an RAII linear block of global memory (paper §4.2).

"Objects of this class represent a linear block of global memory.  The
memory is allocated when the object is created and freed when the object
is destroyed.  When the object is copied, the copy allocates new memory
and copies the data from the original memory to the newly allocated one."

Transfers come in the paper's two flavours: pointer-style (a contiguous
host buffer) and iterator-style (any iterable, linearized in traversal
order).

Every transfer is attributed in the :mod:`repro.obs` ledger.  Direct
``memory1d`` use is an unconditional copy (cause ``"eager"``); wrappers
implementing the §4.6 lazy protocol (``cupp.Vector``) pass their own
``cause`` so the bytes land in the right bucket exactly once.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro import obs
from repro.cupp.device import Device
from repro.cupp.exceptions import CuppUsageError
from repro.simgpu.memory import DeviceArrayView, DevicePtr


class Memory1D:
    """A typed linear block of ``count`` elements of ``dtype`` on a device."""

    def __init__(self, device: Device, dtype, count: int) -> None:
        if count < 0:
            raise CuppUsageError(f"count must be non-negative, got {count}")
        self.device = device
        self.dtype = np.dtype(dtype)
        self.count = int(count)
        self._ptr: DevicePtr | None = device.alloc(self.nbytes)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_host(
        cls, device: Device, data: np.ndarray, *, cause: str = "eager"
    ) -> "Memory1D":
        """Allocate and fill from a contiguous host array (pointer-style)."""
        data = np.ascontiguousarray(data)
        mem = cls(device, data.dtype, data.size)
        mem.copy_from_host(data, cause=cause)
        return mem

    @classmethod
    def from_iterable(
        cls, device: Device, dtype, items: Iterable
    ) -> "Memory1D":
        """Allocate and fill from any iterable (iterator-style, §4.2):
        the traversal order defines the linearized device layout."""
        host = np.fromiter(items, dtype=dtype)
        return cls.from_host(device, host)

    # ------------------------------------------------------------------
    @property
    def nbytes(self) -> int:
        return self.count * self.dtype.itemsize

    @property
    def ptr(self) -> DevicePtr:
        if self._ptr is None:
            raise CuppUsageError("memory1d block has been freed")
        return self._ptr

    def view(self) -> DeviceArrayView:
        """Typed handle for device kernels (never host-indexable)."""
        return DeviceArrayView(
            self.device.sim.memory, self.ptr, self.dtype, self.count
        )

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def copy_from_host(
        self, data: np.ndarray, *, cause: str = "eager"
    ) -> None:
        """Pointer-style host -> device transfer (§4.2).

        ``cause`` names the ledger bucket this copy is attributed to;
        lazy-protocol callers pass ``"lazy-miss"``.
        """
        data = np.ascontiguousarray(data)
        if data.nbytes != self.nbytes:
            raise CuppUsageError(
                f"host buffer is {data.nbytes} bytes, block is {self.nbytes}"
            )
        self.device.upload(self.ptr, data)
        obs.record_transfer(cause, "h2d", data.nbytes, label="memory1d")

    def copy_to_host(self, *, cause: str = "eager") -> np.ndarray:
        """Pointer-style device -> host transfer; returns a fresh array."""
        out = self.device.download(self.ptr, self.nbytes, self.dtype)
        obs.record_transfer(cause, "d2h", self.nbytes, label="memory1d")
        return out

    def copy_from_iter(self, items: Iterable, *, cause: str = "eager") -> None:
        """Iterator-style transfer: linearize ``items`` in traversal order."""
        host = np.fromiter(items, dtype=self.dtype, count=self.count)
        self.copy_from_host(host, cause=cause)

    def __iter__(self) -> Iterator:
        """Iterator-style device -> host traversal (Python scalars)."""
        return iter(self.copy_to_host().tolist())

    # ------------------------------------------------------------------
    # copy semantics (§4.2: copying copies the device data)
    # ------------------------------------------------------------------
    def copy(self) -> "Memory1D":
        """Deep copy: new allocation + device-to-device transfer."""
        dup = Memory1D(self.device, self.dtype, self.count)
        self.device.sim.memory.copy_device_to_device(
            dup.ptr, self.ptr, self.nbytes
        )
        obs.record_transfer("eager", "d2d", self.nbytes, label="memory1d.copy")
        return dup

    def __copy__(self) -> "Memory1D":
        return self.copy()

    def __deepcopy__(self, memo: dict) -> "Memory1D":
        return self.copy()

    # ------------------------------------------------------------------
    # lifetime
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Free the device allocation (idempotent)."""
        ptr, self._ptr = self._ptr, None
        if ptr is not None:
            try:
                self.device.free(ptr)
            except CuppUsageError:
                pass  # device handle already closed; memory already freed

    def __enter__(self) -> "Memory1D":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - gc timing
        try:
            self.close()
        except Exception:
            pass

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "freed" if self._ptr is None else f"0x{self._ptr.addr:x}"
        return f"Memory1D({self.dtype}, {self.count}, {state})"
