"""Multiple devices in one host thread — chapter 7's other future work.

"Currently, only one device handle per thread is supported, but the CuPP
framework itself is designed to offer multiple devices to the same host
thread with only minor interface changes" (§4.1); chapter 7 lists the
missing multi-device support as future work.  This module supplies those
minor interface changes:

* :class:`DeviceGroup` — a set of :class:`~repro.cupp.device.Device`
  handles the host thread drives together (each handle keeps its own
  CUDA-runtime binding, so the one-device-per-runtime rule of §3.2.1 is
  never violated — the group simply owns several runtimes);
* :func:`shard` — marks a kernel argument as *split across the group*:
  each device receives its contiguous chunk of the vector;
* :class:`MultiKernel` — launches one kernel per device; sharded
  arguments are scattered before the launches and gathered back after,
  replicated arguments are re-uploaded per device (they are distinct
  memory spaces).

The modelled wall-clock of a group launch is the **makespan**: the
devices execute concurrently, each on its own timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cuda.runtime import CudaMachine
from repro.cupp.device import Device
from repro.cupp.exceptions import CuppUsageError
from repro.cupp.kernel import CallStats, Kernel
from repro.cupp.vector import Vector
from repro.simgpu.dims import Dim3, as_dim3


@dataclass(frozen=True)
class Sharded:
    """Marker: split this vector across the group's devices."""

    vector: Vector


def shard(vector: Vector) -> Sharded:
    """Mark a kernel argument for scatter/gather across the group."""
    if not isinstance(vector, Vector):
        raise CuppUsageError("only cupp.Vector arguments can be sharded")
    return Sharded(vector)


class DeviceGroup:
    """Several device handles owned by one host thread."""

    def __init__(
        self,
        machine: CudaMachine,
        indices: "list[int] | None" = None,
    ) -> None:
        indices = list(range(len(machine.devices))) if indices is None else indices
        if not indices:
            raise CuppUsageError("a device group needs at least one device")
        self.devices = [Device(index=i, machine=machine) for i in indices]

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self):
        return iter(self.devices)

    def close(self) -> None:
        for d in self.devices:
            d.close()

    def __enter__(self) -> "DeviceGroup":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    def chunk_bounds(self, total: int) -> list[tuple[int, int]]:
        """Contiguous [start, stop) split of ``total`` elements."""
        k = len(self.devices)
        base, rem = divmod(total, k)
        bounds = []
        start = 0
        for i in range(k):
            stop = start + base + (1 if i < rem else 0)
            bounds.append((start, stop))
            start = stop
        return bounds

    @property
    def makespan_s(self) -> float:
        """Modelled time until every device in the group is idle."""
        return max(d.sim.timeline.device_busy_until for d in self.devices)


class MultiKernel:
    """One kernel launched across a device group.

    The grid dimension is interpreted *per shard*: pass the blocks needed
    for one device's chunk (or use :meth:`for_chunks` to derive it).
    """

    def __init__(
        self,
        fn,
        grid_dim: "Dim3 | int | tuple | None" = None,
        block_dim: "Dim3 | int | tuple | None" = None,
    ) -> None:
        self._fn = fn
        self._grid = None if grid_dim is None else as_dim3(grid_dim)
        self._block = None if block_dim is None else as_dim3(block_dim)
        # One functor per device is created lazily: the underlying Kernel
        # keeps no device state, so a single traits analysis is shared.
        self._kernel = Kernel(fn, grid_dim, block_dim)

    def __call__(self, group: DeviceGroup, *args: object) -> list[CallStats]:
        """Scatter, launch everywhere, gather.  Returns per-device stats."""
        shard_args = [a for a in args if isinstance(a, Sharded)]
        if not shard_args:
            raise CuppUsageError(
                "a MultiKernel call needs at least one sharded argument "
                "(otherwise every device would do identical work)"
            )
        total = len(shard_args[0].vector)
        for s in shard_args:
            if len(s.vector) != total:
                raise CuppUsageError(
                    "all sharded vectors must have the same length"
                )
        bounds = group.chunk_bounds(total)

        # Scatter: per-device argument lists.
        per_device_args: list[list[object]] = [[] for _ in group.devices]
        chunks: list[list[tuple[Vector, Vector]]] = [[] for _ in group.devices]
        for arg in args:
            if isinstance(arg, Sharded):
                data = arg.vector.to_numpy()
                for d, (start, stop) in enumerate(bounds):
                    piece = Vector(
                        data[start:stop].copy(), dtype=arg.vector.dtype
                    )
                    per_device_args[d].append(piece)
                    chunks[d].append((arg.vector, piece))
            else:
                for d in range(len(group.devices)):
                    per_device_args[d].append(arg)

        # Launch on every device (kernel calls are asynchronous, so the
        # host walks the group while the devices crunch concurrently).
        stats = []
        for device, dev_args in zip(group.devices, per_device_args):
            stats.append(self._kernel(device, *dev_args))

        # Gather: copy mutated shards back into the source vectors.
        for (start, stop), pieces in zip(bounds, chunks):
            for source, piece in pieces:
                result = piece.to_numpy()
                for offset, value in enumerate(result):
                    source[start + offset] = value
        return stats

    def for_chunks(self, group: DeviceGroup, total: int, block: int) -> None:
        """Set grid/block so each device covers its chunk of ``total``."""
        per_dev = -(-total // len(group))
        blocks = -(-per_dev // block)
        self._kernel.set_grid_dim(blocks)
        self._kernel.set_block_dim(block)
