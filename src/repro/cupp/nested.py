"""Nested vectors: ``vector< vector<T> >`` across the kernel boundary.

§4.6: "The type transformation is not only done to the vector itself,
but also to the type of the values stored by the vector.  Therefore
``vector<T>::device_type`` is identical to
``deviceT::vector<T::device_type>`` ...  This kind of transformation
makes it possible to pass e.g. a two dimensional vector
(``vector< vector<T> >``) to a kernel."

The host side is a list of :class:`~repro.cupp.vector.Vector` rows that
can grow and shrink independently; the device type flattens them into
the classic ragged-array (CSR) pair — ``offsets`` + ``values`` — because
the device cannot allocate and wants linear scans.  The element
transformation is applied recursively, exactly as the paper specifies:
each row's *own* ``transform`` result is what gets linearized.
"""

from __future__ import annotations

import pickle
from typing import Iterable

import numpy as np

from repro import obs
from repro.cupp.device import Device
from repro.cupp.device_reference import DeviceReference
from repro.cupp.exceptions import CuppUsageError
from repro.cupp.memory1d import Memory1D
from repro.cupp.vector import Vector
from repro.simgpu.memory import DeviceArrayView, DevicePtr


class DeviceNestedVector:
    """Device type of :class:`NestedVector`: CSR offsets + flat values.

    Row ``r`` occupies ``values[offsets[r] .. offsets[r+1]]``.  Like every
    device container, its shape is frozen (§4.6: the size cannot be
    changed on the device); the *values* are writable.
    """

    kernel_arg_size = 12  # two pointers + a row count

    host_type: type = None  # bound below (listing 4.6)
    device_type: type = None

    def __init__(
        self, offsets: DeviceArrayView, values: DeviceArrayView, rows: int
    ) -> None:
        self.offsets = offsets
        self.values = values
        self.rows = rows

    def __len__(self) -> int:
        return self.rows

    def pack(self) -> np.ndarray:
        meta = (
            self.offsets.ptr.addr,
            self.offsets.count,
            self.values.ptr.addr,
            self.values.count,
            self.values.dtype.str,
            self.rows,
        )
        return np.frombuffer(pickle.dumps(meta), dtype=np.uint8).copy()

    @classmethod
    def unpack(cls, blob: np.ndarray, device: Device) -> "DeviceNestedVector":
        o_addr, o_n, v_addr, v_n, v_dtype, rows = pickle.loads(blob.tobytes())
        mem = device.sim.memory
        return cls(
            DeviceArrayView(mem, DevicePtr(o_addr), np.dtype(np.int32), o_n),
            DeviceArrayView(mem, DevicePtr(v_addr), np.dtype(v_dtype), v_n),
            rows,
        )


class NestedVector:
    """A growable vector of :class:`Vector` rows (``vector<vector<T>>``)."""

    host_type: type = None
    device_type = DeviceNestedVector

    def __init__(
        self, rows: "Iterable[Iterable] | None" = None, dtype=np.float32
    ) -> None:
        self.dtype = np.dtype(dtype)
        self._rows: list[Vector] = []
        self._mem_offsets: Memory1D | None = None
        self._mem_values: Memory1D | None = None
        self._device_valid = False
        self._host_valid = True
        self._uploads = obs.Counter()
        self._downloads = obs.Counter()
        if rows is not None:
            for row in rows:
                self.push_back(row)

    @property
    def uploads(self) -> int:
        """Host -> device linearized uploads performed."""
        return self._uploads.value

    @property
    def downloads(self) -> int:
        """Device -> host downloads performed."""
        return self._downloads.value

    # ------------------------------------------------------------------
    # host interface
    # ------------------------------------------------------------------
    def _ensure_host(self) -> None:
        if self._host_valid:
            return
        flat = self._mem_values.copy_to_host(cause="lazy-miss")
        offsets = self._mem_offsets.copy_to_host(cause="lazy-miss")
        for r, row in enumerate(self._rows):
            row_data = flat[offsets[r] : offsets[r + 1]]
            for i, v in enumerate(row_data):
                row[i] = v
        self._host_valid = True
        self._downloads.inc()
        obs.counter("cupp.nested_vector.downloads").inc()

    def _before_host_write(self) -> None:
        self._ensure_host()
        self._device_valid = False

    def push_back(self, row: "Iterable | Vector") -> None:
        self._before_host_write()
        if isinstance(row, Vector):
            if row.dtype != self.dtype:
                raise CuppUsageError(
                    f"row dtype {row.dtype} != nested dtype {self.dtype}"
                )
            self._rows.append(row)
        else:
            self._rows.append(Vector(row, dtype=self.dtype))

    def pop_back(self) -> Vector:
        self._before_host_write()
        if not self._rows:
            raise CuppUsageError("pop_back on an empty nested vector")
        return self._rows.pop()

    def __len__(self) -> int:
        self._ensure_host()
        return len(self._rows)

    def __getitem__(self, index: int) -> Vector:
        self._ensure_host()
        # Handing out the row lets the caller mutate it behind our back;
        # conservatively invalidate the device copy, like any host write.
        self._device_valid = False
        return self._rows[index]

    def row_lengths(self) -> list[int]:
        self._ensure_host()
        return [len(r) for r in self._rows]

    def total_elements(self) -> int:
        return sum(self.row_lengths())

    def to_lists(self) -> "list[list]":
        self._ensure_host()
        return [list(r) for r in self._rows]

    # ------------------------------------------------------------------
    # the CuPP protocol: recursive transformation + lazy copying
    # ------------------------------------------------------------------
    def transform(self, device: Device) -> DeviceNestedVector:
        self._ensure_host()
        if not self._device_valid:
            # Element-wise transformation first (§4.6: the value type is
            # transformed too), then linearization in traversal order.
            offsets = np.zeros(len(self._rows) + 1, dtype=np.int32)
            chunks = []
            for r, row in enumerate(self._rows):
                chunks.append(row.to_numpy())
                offsets[r + 1] = offsets[r] + len(row)
            flat = (
                np.concatenate(chunks)
                if chunks
                else np.zeros(0, dtype=self.dtype)
            )
            if self._mem_offsets is not None:
                self._mem_offsets.close()
            if self._mem_values is not None:
                self._mem_values.close()
            self._mem_offsets = Memory1D.from_host(
                device, offsets, cause="lazy-miss"
            )
            self._mem_values = Memory1D.from_host(
                device,
                flat if flat.size else np.zeros(1, dtype=self.dtype),
                cause="lazy-miss",
            )
            self._device_valid = True
            self._uploads.inc()
            obs.counter("cupp.nested_vector.uploads").inc()
        return DeviceNestedVector(
            self._mem_offsets.view(), self._mem_values.view(), len(self._rows)
        )

    def get_device_reference(self, device: Device) -> DeviceReference:
        return DeviceReference(device, self.transform(device))

    def dirty(self, device_ref: DeviceReference) -> None:
        self._host_valid = False


NestedVector.host_type = NestedVector
DeviceNestedVector.device_type = DeviceNestedVector
DeviceNestedVector.host_type = NestedVector
