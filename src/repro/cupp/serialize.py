"""Object <-> device-byte serialization for call semantics.

Passing an object to a kernel ultimately means producing bytes that live
in device memory (on the kernel stack for call-by-value, in global memory
for call-by-reference).  Types choose their representation:

* types defining ``pack(self) -> np.ndarray[uint8]`` and
  ``unpack(cls, blob, device) -> obj`` control their device layout —
  this is how a ``DeviceVector`` stores just ``{pointer, size}`` while its
  payload stays in global memory, exactly the C++ picture;
* everything else is serialized with :mod:`pickle`, the closest Python
  analog of a byte-wise copy: the device works on a faithful replica and
  host-side mutations are invisible to it.

:class:`Boxed` is the host-side mutable cell that stands in for a C++
lvalue: Python cannot rebind a caller's ``int`` the way ``int& j`` can, so
``f(device, 10, j)`` from listing 4.3 becomes
``f(device, 10, box := Boxed(0))`` and the result lands in ``box.value``.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.cupp.exceptions import CuppUsageError


class Boxed:
    """A mutable value cell for passing scalars by reference."""

    __slots__ = ("value",)

    def __init__(self, value: object = None) -> None:
        self.value = value

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Boxed):
            return self.value == other.value
        return NotImplemented

    def __repr__(self) -> str:
        return f"Boxed({self.value!r})"


def pack_object(obj: object) -> np.ndarray:
    """Serialize ``obj`` into device bytes (uint8 array).

    Objects that cannot be pickled (e.g. instances of classes defined in a
    local scope) are replicated with :func:`copy.deepcopy` instead; the
    device-memory image is then an opaque fingerprint of the right rough
    size, and :func:`unpack_object` must be given the replica through the
    ``fallback`` parameter.  Accounting (bytes moved) stays realistic; only
    the literal byte layout is given up.
    """
    pack = getattr(obj, "pack", None)
    if callable(pack):
        blob = pack()
        if not isinstance(blob, np.ndarray) or blob.dtype != np.uint8:
            raise CuppUsageError(
                f"{type(obj).__name__}.pack() must return a uint8 ndarray"
            )
        return blob
    try:
        return np.frombuffer(pickle.dumps(obj), dtype=np.uint8).copy()
    except Exception:
        fingerprint = repr(obj).encode() + b"\x00" * 32
        return np.frombuffer(fingerprint, dtype=np.uint8).copy()


def is_picklable(obj: object) -> bool:
    """Can ``obj`` round-trip through the byte-wise (pickle) path?"""
    if callable(getattr(obj, "pack", None)):
        return True
    try:
        pickle.dumps(obj)
        return True
    except Exception:
        return False


def replicate(obj: object) -> object:
    """Deep-copy fallback replica for unpicklable objects."""
    import copy

    return copy.deepcopy(obj)


def unpack_object(
    blob: np.ndarray,
    cls: type,
    device: object,
    fallback: object | None = None,
) -> object:
    """Deserialize device bytes back into an object of ``cls``.

    ``fallback`` carries the deep-copy replica for unpicklable objects.
    """
    unpack = getattr(cls, "unpack", None)
    if callable(unpack):
        return unpack(blob, device)
    if fallback is not None:
        return fallback
    return pickle.loads(blob.tobytes())
