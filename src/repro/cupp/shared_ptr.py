"""A boost-compliant shared pointer for global memory (paper §4.2).

"To ease the development with this basic approach, a boost
library-compliant shared pointer for global memory is supplied.  The
memory is freed automatically after the last smart pointer pointing to a
specific memory address is destroyed, so resource leaks can hardly
occur."

Python already reference-counts, but relying on garbage collection for
*device* memory would make deallocation timing unobservable, so the
refcount is explicit: copies share a control block, :meth:`release`
decrements, and the device allocation is freed exactly when the count
reaches zero.  ``__del__`` is a safety net, not the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.cupp.device import Device
from repro.cupp.exceptions import CuppUsageError
from repro.simgpu.memory import DevicePtr, NULL_PTR


@dataclass
class _ControlBlock:
    device: Device
    ptr: DevicePtr
    count: int


class DeviceSharedPtr:
    """Shared ownership of one global-memory allocation."""

    def __init__(self, device: Device, nbytes: int) -> None:
        """Allocate ``nbytes`` of global memory with use_count 1."""
        self._block: _ControlBlock | None = _ControlBlock(
            device, device.alloc(nbytes), 1
        )
        obs.gauge("cupp.shared_ptr.live").inc()
        obs.instant(
            "shared_ptr.alloc", nbytes=nbytes, addr=self._block.ptr.addr
        )

    # ------------------------------------------------------------------
    @classmethod
    def _from_block(cls, block: _ControlBlock) -> "DeviceSharedPtr":
        obj = cls.__new__(cls)
        obj._block = block
        return obj

    def clone(self) -> "DeviceSharedPtr":
        """Another pointer to the same allocation (boost copy semantics)."""
        block = self._require_block()
        block.count += 1
        obs.instant(
            "shared_ptr.clone", addr=block.ptr.addr, use_count=block.count
        )
        return DeviceSharedPtr._from_block(block)

    def __copy__(self) -> "DeviceSharedPtr":
        return self.clone()

    def __deepcopy__(self, memo: dict) -> "DeviceSharedPtr":
        # Shared pointers share even under deep copy, like boost.
        return self.clone()

    # ------------------------------------------------------------------
    def _require_block(self) -> _ControlBlock:
        if self._block is None:
            raise CuppUsageError("shared pointer has been released")
        return self._block

    def get(self) -> DevicePtr:
        """The raw device pointer (never dereferenceable on the host)."""
        return self._require_block().ptr

    @property
    def use_count(self) -> int:
        return 0 if self._block is None else self._block.count

    def __bool__(self) -> bool:
        return self._block is not None and bool(self._block.ptr)

    # ------------------------------------------------------------------
    def release(self) -> None:
        """Drop this pointer's ownership; frees at use_count zero.

        Idempotent per instance.
        """
        block, self._block = self._block, None
        if block is None:
            return
        block.count -= 1
        obs.instant(
            "shared_ptr.release", addr=block.ptr.addr, use_count=block.count
        )
        if block.count == 0 and block.ptr:
            obs.gauge("cupp.shared_ptr.live").dec()
            try:
                block.device.free(block.ptr)
            except CuppUsageError:
                pass  # the device handle was closed first; memory is gone
            block.ptr = NULL_PTR

    def __del__(self) -> None:  # pragma: no cover - gc timing
        try:
            self.release()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self._block is None:
            return "DeviceSharedPtr(released)"
        return (
            f"DeviceSharedPtr(0x{self._block.ptr.addr:x}, "
            f"use_count={self._block.count})"
        )


def make_shared(device: Device, nbytes: int) -> DeviceSharedPtr:
    """Convenience constructor mirroring ``boost::make_shared``."""
    return DeviceSharedPtr(device, nbytes)
