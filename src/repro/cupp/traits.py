"""Kernel signature traits — the "template metaprogramming" of CuPP.

The paper analyzes kernel declarations at compile time with boost function
traits plus self-written template metaprogramming (§4.3.2) to answer two
questions:

1. Is a parameter passed by value, by reference, or by *const* reference?
   (Const references skip the device->host copy-back.)
2. Does the argument's type customize ``transform()`` /
   ``get_device_reference()`` / ``dirty()`` (§4.4), or do the defaults
   apply?

Python gives us the same information through annotations and attribute
introspection.  Reference parameters are declared with the :class:`Ref` /
:class:`ConstRef` markers::

    @global_
    def kernel(ctx, i: int, j: Ref[int]):
        ...

Analysis happens once, when the :class:`~repro.cupp.kernel.Kernel` functor
is constructed — CuPP's analog of paying at compile time.  (The paper
measures that price: compiling the Boids scenario went from 3.1 s to
7.3 s; our §7 benchmark measures this function.)
"""

from __future__ import annotations

import enum
import inspect
from dataclasses import dataclass
from typing import Callable

from repro.cupp.exceptions import CuppTraitError
from repro.cupp.typetransform import device_type_of, validate_binding


@dataclass(frozen=True)
class RefSpec:
    """The annotation payload produced by ``Ref[T]`` / ``ConstRef[T]``."""

    inner: object
    const: bool


class Ref:
    """Marks a kernel parameter as passed by (mutable) reference.

    Changes the device makes are copied back to the host object after the
    kernel completes (§4.3.2 step 4).
    """

    def __class_getitem__(cls, item: object) -> RefSpec:
        return RefSpec(item, const=False)


class ConstRef:
    """Marks a kernel parameter as passed by ``const`` reference.

    The framework skips the device->host copy-back (§4.3.2): "if a
    reference is defined as constant, the last step is skipped".
    """

    def __class_getitem__(cls, item: object) -> RefSpec:
        return RefSpec(item, const=True)


class PassKind(enum.Enum):
    VALUE = "value"
    REF = "ref"
    CONST_REF = "const_ref"


@dataclass(frozen=True)
class ParamTrait:
    """What the framework knows about one kernel parameter."""

    name: str
    kind: PassKind
    declared_type: object  # annotation payload (may be None)

    @property
    def copies_back(self) -> bool:
        return self.kind is PassKind.REF


@dataclass(frozen=True)
class KernelTraits:
    """The full signature analysis of a ``__global__`` function."""

    name: str
    params: tuple[ParamTrait, ...]

    @property
    def arity(self) -> int:
        return len(self.params)


def analyze_kernel(fn: Callable) -> KernelTraits:
    """Analyze a kernel's declaration (run once per ``cupp.Kernel``).

    ``fn`` may be the ``@global_`` wrapper or the raw generator function;
    the first parameter must be the thread context and is not a kernel
    parameter.
    """
    impl = getattr(fn, "impl", fn)
    sig = inspect.signature(impl)
    names = list(sig.parameters)
    if not names:
        raise CuppTraitError(
            f"kernel {impl.__name__!r} must take the thread context as its "
            "first parameter"
        )
    params: list[ParamTrait] = []
    for name in names[1:]:
        p = sig.parameters[name]
        if p.kind in (p.VAR_POSITIONAL, p.VAR_KEYWORD):
            raise CuppTraitError(
                f"kernel {impl.__name__!r}: *args/**kwargs parameters are "
                "not kernel-stack compatible"
            )
        ann = p.annotation if p.annotation is not inspect.Parameter.empty else None
        if isinstance(ann, str):
            # PEP 563 (`from __future__ import annotations`) stringizes
            # annotations; resolve them in the kernel's namespace so
            # Ref/ConstRef markers survive.
            try:
                ann = eval(  # noqa: S307 - trusted kernel source
                    ann, getattr(impl, "__globals__", {})
                )
            except Exception as exc:
                raise CuppTraitError(
                    f"kernel {impl.__name__!r}: cannot resolve annotation "
                    f"{ann!r} for parameter {name!r}: {exc}"
                ) from exc
        if isinstance(ann, RefSpec):
            kind = PassKind.CONST_REF if ann.const else PassKind.REF
            declared: object = ann.inner
        else:
            kind = PassKind.VALUE
            declared = ann
        if isinstance(declared, type):
            validate_binding(declared)
        params.append(ParamTrait(name, kind, declared))
    return KernelTraits(name=impl.__name__, params=tuple(params))


# ----------------------------------------------------------------------
# Type traits: which of the three customization points a type defines
# (§4.4), and the default implementations (listing 4.5).
# ----------------------------------------------------------------------
def has_transform(obj: object) -> bool:
    """Does the object declare its own ``transform()``?"""
    return callable(getattr(type(obj), "transform", None))


def has_get_device_reference(obj: object) -> bool:
    """Does the object declare its own ``get_device_reference()``?"""
    return callable(getattr(type(obj), "get_device_reference", None))


def has_dirty(obj: object) -> bool:
    """Does the object declare its own ``dirty()``?"""
    return callable(getattr(type(obj), "dirty", None))


def default_transform(obj: object, device: object) -> object:
    """Listing 4.5: cast ``*this`` to the device type.

    For PODs (device type == host type) this returns the object itself;
    for a declared pair the device type must be constructible from the
    host object (``DeviceT.from_host(obj)`` or ``DeviceT(obj)``).
    """
    dev_cls = device_type_of(type(obj))
    if dev_cls is type(obj):
        return obj
    from_host = getattr(dev_cls, "from_host", None)
    if callable(from_host):
        return from_host(obj)
    return dev_cls(obj)


def apply_transform(obj: object, device: object) -> object:
    """Dispatch to the object's ``transform()`` or the default."""
    if has_transform(obj):
        return obj.transform(device)  # type: ignore[attr-defined]
    return default_transform(obj, device)
