"""Host/device type transformation (paper §4.5).

CPUs and GPUs want different data layouts: "the developer can define two
independent types, which get transformed into one another when transferred
from one memory domain to the other".  A class opts in either by declaring
``device_type`` / ``host_type`` attributes (the paper's typedef pair,
listing 4.6) or by calling :func:`bind_types`.  The matching must be a
1:1 relation — we enforce that at registration.

A type without a binding is its own device type (the POD case).
"""

from __future__ import annotations

from repro.cupp.exceptions import CuppTraitError

#: Explicit registry for types that cannot carry class attributes.
_host_to_device: dict[type, type] = {}
_device_to_host: dict[type, type] = {}


def bind_types(host_cls: type, device_cls: type) -> None:
    """Register ``host_cls <-> device_cls`` as a transformation pair.

    Raises :class:`CuppTraitError` if either side is already bound to a
    different partner (the 1:1 rule of §4.5).
    """
    existing_d = _host_to_device.get(host_cls) or getattr(
        host_cls, "device_type", None
    )
    if existing_d is not None and existing_d is not device_cls:
        raise CuppTraitError(
            f"{host_cls.__name__} is already bound to device type "
            f"{existing_d.__name__}; the host/device matching must be 1:1"
        )
    existing_h = _device_to_host.get(device_cls) or getattr(
        device_cls, "host_type", None
    )
    if existing_h is not None and existing_h is not host_cls:
        raise CuppTraitError(
            f"{device_cls.__name__} is already bound to host type "
            f"{existing_h.__name__}; the host/device matching must be 1:1"
        )
    _host_to_device[host_cls] = device_cls
    _device_to_host[device_cls] = host_cls


def unbind_types(host_cls: type, device_cls: type) -> None:
    """Remove a registry binding (primarily for test isolation)."""
    _host_to_device.pop(host_cls, None)
    _device_to_host.pop(device_cls, None)


def device_type_of(cls: type) -> type:
    """The device type of ``cls`` (itself when unbound — the POD case)."""
    declared = getattr(cls, "device_type", None)
    if isinstance(declared, type):
        return declared
    return _host_to_device.get(cls, cls)


def host_type_of(cls: type) -> type:
    """The host type of ``cls`` (itself when unbound)."""
    declared = getattr(cls, "host_type", None)
    if isinstance(declared, type):
        return declared
    return _device_to_host.get(cls, cls)


def validate_binding(cls: type) -> None:
    """Check that a declared host/device pair points back at itself.

    Mirrors the paper's listing 4.6, where *both* structs carry both
    typedefs; an asymmetric declaration is a latent bug we surface early.
    """
    dev = device_type_of(cls)
    if dev is cls:
        return
    back = host_type_of(dev)
    if back is not cls:
        raise CuppTraitError(
            f"type transformation of {cls.__name__} is not 1:1: its device "
            f"type {dev.__name__} maps back to "
            f"{getattr(back, '__name__', back)!r}"
        )
