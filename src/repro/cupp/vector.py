"""``cupp::vector`` — an STL-style vector with lazy memory copying (§4.6).

The host side behaves like ``std::vector`` (grow/shrink, random access);
the device side is a fixed-size window onto global memory ("it is not
possible to allocate memory on the device.  Therefore the size of the
vector cannot be changed on the device").

Lazy memory copying implements §4.6 to the letter:

* ``transform()`` and ``get_device_reference()`` copy the vector data to
  global memory **iff** the device copy is out of date or absent;
* ``dirty()`` marks the *host* data out of date;
* any host read checks the flag and downloads first if needed;
* any host write marks the *device* data out of date.

So "the developer may pass a vector directly to one or multiple kernels,
without the need to think about how memory transfers may be minimized".

A note on the paper's proxy classes: C++ cannot tell ``v[i]`` reads from
``v[i] = x`` writes without a proxy object (§4.6 footnote).  Python's
``__getitem__``/``__setitem__`` split gives us that distinction natively,
so the read/write detection here is exact rather than proxy-approximate.
"""

from __future__ import annotations

import pickle
from typing import Iterable, Iterator

import numpy as np

from repro import obs
from repro.cupp.device import Device
from repro.cupp.device_reference import DeviceReference
from repro.cupp.exceptions import CuppUsageError
from repro.cupp.memory1d import Memory1D
from repro.simgpu.memory import DeviceArrayView, DevicePtr


class DeviceVector:
    """The device type of :class:`Vector`: ``{pointer, size}`` plus a typed
    view.  Kernels index it through the thread context; it has no resize
    operations because the device cannot allocate (§4.6).

    ``space`` implements the chapter-7 extension: a const-reference vector
    may live behind the texture cache (``"texture"``) or in constant
    memory (``"constant"``) instead of plain global memory.  Kernels that
    want to profit read through :func:`repro.simgpu.devicelib.ld_auto`.
    """

    #: Stack footprint: a device pointer plus a 32-bit size.
    kernel_arg_size = 8

    host_type: "type | None" = None  # filled in below (listing 4.6)
    device_type: "type | None" = None

    def __init__(
        self,
        view: "DeviceArrayView | None",
        space: str = "global",
        texref: object | None = None,
        const_view: object | None = None,
    ) -> None:
        self.view = view
        self.space = space
        self.texref = texref
        self.const_view = const_view

    def __len__(self) -> int:
        if self.space == "constant":
            return self.const_view.count
        return self.view.count

    @property
    def size(self) -> int:
        return len(self)

    @property
    def read_handle(self) -> object:
        """What device code reads through, per space (used by
        ``devicelib.ld_auto``)."""
        if self.space == "texture":
            return self.texref
        if self.space == "constant":
            return self.const_view
        return self.view

    # -- device-byte layout: exactly a pointer + size + element type ----
    def pack(self) -> np.ndarray:
        if self.space == "constant":
            meta = (
                "constant",
                self.const_view.offset,
                self.const_view.count,
                self.const_view.dtype.str,
            )
        else:
            meta = (
                self.space,
                self.view.ptr.addr,
                self.view.count,
                self.view.dtype.str,
            )
        return np.frombuffer(pickle.dumps(meta), dtype=np.uint8).copy()

    @classmethod
    def unpack(cls, blob: np.ndarray, device: Device) -> "DeviceVector":
        space, addr_or_offset, count, dtype_str = pickle.loads(blob.tobytes())
        if space == "constant":
            from repro.simgpu.caches import ConstantArrayView

            const_view = ConstantArrayView(
                device.sim.constant, addr_or_offset, np.dtype(dtype_str), count
            )
            return cls(None, "constant", const_view=const_view)
        view = DeviceArrayView(
            device.sim.memory, DevicePtr(addr_or_offset), np.dtype(dtype_str), count
        )
        if space == "texture":
            from repro.simgpu.caches import TextureReference

            return cls(view, "texture", texref=TextureReference(view))
        return cls(view)


class Vector:
    """Host-side growable vector with a lazily synchronized device twin.

    Parameters
    ----------
    data:
        Optional initial contents (iterable or ndarray).
    dtype:
        Element type; defaults to float32 (the GPU-native scalar).
    """

    host_type: "type | None" = None
    device_type = DeviceVector

    _GROWTH = 2  # capacity doubling, the std::vector idiom

    #: Constant memory is precious (64 KiB, bump-allocated): "auto" only
    #: places vectors at most this large there.
    CONSTANT_AUTO_LIMIT = 4096

    def __init__(
        self,
        data: "Iterable | None" = None,
        dtype=np.float32,
        readonly_space: str = "global",
    ) -> None:
        if readonly_space not in ("global", "texture", "constant", "auto"):
            raise CuppUsageError(
                f"unknown readonly_space {readonly_space!r}; use global, "
                "texture, constant or auto"
            )
        #: Chapter-7 extension: where to place the data when a kernel
        #: declares this vector as a *const* reference.
        self.readonly_space = readonly_space
        self._texref = None
        self._const_view = None
        self._const_valid = False
        self.dtype = np.dtype(dtype)
        if data is None:
            self._store = np.empty(4, dtype=self.dtype)
            self._size = 0
        else:
            arr = np.asarray(list(data) if not isinstance(data, np.ndarray) else data)
            self._store = arr.astype(self.dtype).reshape(-1).copy()
            self._size = self._store.size
        # Lazy-copy state.
        self._mem: Memory1D | None = None
        self._host_valid = True
        self._device_valid = False
        # Transfer counters, observable by tests and benchmarks: private
        # obs.Counter instruments behind read-through properties; the
        # process-wide totals live in the global MetricsRegistry as
        # cupp.vector.uploads / cupp.vector.downloads.
        self._uploads = obs.Counter()
        self._downloads = obs.Counter()

    @property
    def uploads(self) -> int:
        """Host -> device transfers this vector has performed."""
        return self._uploads.value

    @property
    def downloads(self) -> int:
        """Device -> host transfers this vector has performed."""
        return self._downloads.value

    # ------------------------------------------------------------------
    # host-side freshness management
    # ------------------------------------------------------------------
    def _ensure_host(self, cause: str = "lazy-miss") -> None:
        """Host read path: download from the device if the host is stale.

        ``cause`` names the ledger bucket a forced download lands in;
        batch assembly (:meth:`concat` / :meth:`split_at`) passes its own
        attribution so the serving layer's traffic is distinguishable
        from ordinary lazy misses.
        """
        if not self._host_valid:
            assert self._mem is not None, "host marked stale with no device data"
            fresh = self._mem.copy_to_host(cause=cause)
            self._store = fresh.copy()
            self._size = fresh.size
            self._host_valid = True
            self._downloads.inc()
            obs.counter("cupp.vector.downloads").inc()

    def _before_host_write(self) -> None:
        """Host write path: refresh first, then invalidate the device."""
        self._ensure_host()
        if self._device_valid:
            # The dirty-flag flip the lazy protocol pivots on (§4.6).
            obs.instant(
                "vector.invalidate-device",
                nbytes=self._size * self.dtype.itemsize,
            )
        self._device_valid = False
        self._const_valid = False

    def _ensure_device(self, device: Device) -> Memory1D:
        """Upload iff the device copy is absent, undersized, or stale."""
        if self._mem is not None and self._mem.device is not device:
            raise CuppUsageError(
                "vector is bound to a different device; CuPP supports one "
                "device per vector"
            )
        # The device can never resize the vector (§4.6), so _size is
        # trustworthy even while the host copy is stale — and if the
        # device copy is current we must NOT touch the host at all:
        # that deferred download is the whole point of lazy copying.
        upload_cause = "lazy-miss"
        if self._mem is None or self._mem.count != self._size:
            self._ensure_host()
            if self._mem is not None:
                # Growth (or shrink) churn: the old device block is freed
                # and the full contents re-uploaded — attributed under its
                # own cause so the allocator benchmarks can count it.
                self._mem.close()
                upload_cause = "vector-realloc"
                obs.counter("cupp.vector.reallocs").inc()
                obs.instant(
                    "vector.realloc",
                    nbytes=self._size * self.dtype.itemsize,
                )
            self._mem = Memory1D(device, self.dtype, self._size)
            self._device_valid = False
        if not self._device_valid:
            self._ensure_host()
            self._mem.copy_from_host(
                self._store[: self._size], cause=upload_cause
            )
            self._device_valid = True
            self._uploads.inc()
            obs.counter("cupp.vector.uploads").inc()
        else:
            tracer = obs.get_tracer()
            if tracer.enabled:
                # The transfer the lazy protocol avoided (§4.6).
                tracer.instant(
                    "vector.lazy-hit",
                    nbytes=self._size * self.dtype.itemsize,
                )
        return self._mem

    # ------------------------------------------------------------------
    # the CuPP protocol (§4.4/§4.6)
    # ------------------------------------------------------------------
    def transform(self, device: Device) -> DeviceVector:
        """Called for pass-by-value: upload if needed, return the device
        type.  (The expensive part of by-value passing is the host-side
        copy constructor, which already ran by the time this is called.)"""
        mem = self._ensure_device(device)
        return DeviceVector(mem.view())

    def get_device_reference(self, device: Device) -> DeviceReference:
        """Called for pass-by-reference: upload if needed, wrap the device
        type in a global-memory reference."""
        return DeviceReference(device, self.transform(device))

    def dirty(self, device_ref: DeviceReference) -> None:
        """The kernel mutated the device data: host copy is now stale."""
        self._host_valid = False
        self._const_valid = False  # a constant mirror would now be stale
        obs.instant(
            "vector.dirty", nbytes=self._size * self.dtype.itemsize
        )

    # ------------------------------------------------------------------
    # chapter-7 extension: read-only placement for const references
    # ------------------------------------------------------------------
    def _resolved_readonly_space(self) -> str:
        if self.readonly_space != "auto":
            return self.readonly_space
        self._ensure_host()
        nbytes = self._size * self.dtype.itemsize
        return "constant" if nbytes <= self.CONSTANT_AUTO_LIMIT else "texture"

    def transform_readonly(self, device: Device) -> DeviceVector:
        """Like :meth:`transform`, but for parameters the kernel declared
        ``const``: the data may be served from the texture or constant
        cache ("if it is known that the vector is passed as a const
        reference to a kernel, texture or constant memory could
        automatically be used", ch. 7)."""
        space = self._resolved_readonly_space()
        if space == "global":
            return self.transform(device)
        if space == "texture":
            mem = self._ensure_device(device)
            from repro.cupp.exceptions import check

            from repro.simgpu.caches import TextureReference

            if self._texref is None:
                self._texref = TextureReference()
            check(
                device.runtime.cudaBindTexture(
                    self._texref, mem.ptr, self.dtype, self._size
                ),
                "binding the vector's texture reference",
            )
            return DeviceVector(mem.view(), "texture", texref=self._texref)
        # constant space
        self._ensure_host()
        from repro.cupp.exceptions import check

        if (
            self._const_view is None
            or self._const_view.count != self._size
        ):
            err, sym = device.runtime.constant_symbol(self.dtype, self._size)
            check(err, "allocating a __constant__ mirror for the vector")
            self._const_view = sym
            self._const_valid = False
        if not self._const_valid:
            check(
                device.runtime.cudaMemcpyToSymbol(
                    self._const_view, self._store[: self._size]
                )
            )
            self._const_valid = True
            self._uploads.inc()
            obs.counter("cupp.vector.uploads").inc()
            obs.record_transfer(
                "eager",
                "h2d",
                self._size * self.dtype.itemsize,
                label="vector.constant-mirror",
            )
        return DeviceVector(None, "constant", const_view=self._const_view)

    def get_device_reference_readonly(self, device: Device) -> DeviceReference:
        return DeviceReference(device, self.transform_readonly(device))

    # ------------------------------------------------------------------
    # batching helpers (the repro.serve data path)
    # ------------------------------------------------------------------
    @classmethod
    def concat(cls, parts: "Iterable[Vector]") -> "Vector":
        """Fuse several vectors into one new vector (batch assembly).

        The dynamic batcher concatenates per-session state so one kernel
        launch (and one transfer) covers every request in a batch.  Parts
        whose host copy is stale are downloaded first, attributed to the
        ``batch-concat`` ledger cause; the fused vector is a fresh
        host-valid vector with no device binding (its upload, if any, is
        a separate attributed transfer).  All parts must share a dtype.
        """
        parts = list(parts)
        if not parts:
            raise CuppUsageError("concat needs at least one vector")
        dtype = parts[0].dtype
        arrays = []
        for part in parts:
            if not isinstance(part, Vector):
                raise CuppUsageError("concat requires cupp.Vector parts")
            if part.dtype != dtype:
                raise CuppUsageError(
                    f"concat dtype mismatch: {part.dtype} vs {dtype}"
                )
            part._ensure_host(cause="batch-concat")
            arrays.append(part._store[: part._size])
        fused = cls(np.concatenate(arrays), dtype=dtype)
        obs.instant(
            "vector.concat",
            parts=len(parts),
            nbytes=fused._size * dtype.itemsize,
        )
        return fused

    def split_at(self, *offsets: int) -> "list[Vector]":
        """Slice this vector into ``len(offsets) + 1`` independent vectors.

        The inverse of :meth:`concat`: the batcher demultiplexes a fused
        result back into per-request pieces.  ``offsets`` must be
        non-decreasing element indices within the vector; each returned
        vector owns a copy of its slice (so writes to a piece never leak
        into the source, and the source's device copy stays valid).  A
        stale host copy is downloaded first, attributed to the
        ``batch-split`` ledger cause.
        """
        self._ensure_host(cause="batch-split")
        previous = 0
        for offset in offsets:
            if not previous <= offset <= self._size:
                raise CuppUsageError(
                    f"split offsets must be non-decreasing and within "
                    f"[0, {self._size}]; got {offsets}"
                )
            previous = offset
        bounds = [0, *offsets, self._size]
        pieces = [
            Vector(self._store[start:stop].copy(), dtype=self.dtype)
            for start, stop in zip(bounds, bounds[1:])
        ]
        obs.instant(
            "vector.split",
            pieces=len(pieces),
            nbytes=self._size * self.dtype.itemsize,
        )
        return pieces

    # ------------------------------------------------------------------
    # std::vector-like host interface
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        self._ensure_host()
        return self._size

    @property
    def size(self) -> int:
        return len(self)

    def _grow_to(self, capacity: int) -> None:
        if capacity <= self._store.size:
            return
        new_cap = max(capacity, self._store.size * self._GROWTH, 4)
        grown = np.empty(new_cap, dtype=self.dtype)
        grown[: self._size] = self._store[: self._size]
        self._store = grown

    def push_back(self, value: object) -> None:
        self._before_host_write()
        self._grow_to(self._size + 1)
        self._store[self._size] = value
        self._size += 1

    def pop_back(self) -> object:
        self._before_host_write()
        if self._size == 0:
            raise CuppUsageError("pop_back on an empty vector")
        self._size -= 1
        return self._store[self._size].item()

    def resize(self, count: int, fill: object = 0) -> None:
        self._before_host_write()
        if count > self._size:
            self._grow_to(count)
            self._store[self._size : count] = fill
        self._size = int(count)

    def reserve(self, capacity: int) -> None:
        self._ensure_host()
        self._grow_to(capacity)

    def clear(self) -> None:
        self._before_host_write()
        self._size = 0

    def insert(self, index: int, value: object) -> None:
        """Insert ``value`` before ``index`` (``v.insert(begin()+i, x)``)."""
        self._before_host_write()
        if not 0 <= index <= self._size:
            raise IndexError(
                f"insert position {index} out of range for size {self._size}"
            )
        self._grow_to(self._size + 1)
        self._store[index + 1 : self._size + 1] = self._store[index : self._size]
        self._store[index] = value
        self._size += 1

    def erase(self, index: int) -> object:
        """Remove and return the element at ``index`` (``v.erase(...)``)."""
        self._before_host_write()
        index = self._check_index(index)
        value = self._store[index].item()
        self._store[index : self._size - 1] = self._store[index + 1 : self._size]
        self._size -= 1
        return value

    def extend(self, items: Iterable) -> None:
        for item in items:
            self.push_back(item)

    def empty(self) -> bool:
        """``v.empty()`` — true when the vector holds no elements."""
        return len(self) == 0

    def front(self) -> object:
        """``v.front()`` — the first element."""
        self._ensure_host()
        if self._size == 0:
            raise CuppUsageError("front() on an empty vector")
        return self._store[0].item()

    def back(self) -> object:
        """``v.back()`` — the last element."""
        self._ensure_host()
        if self._size == 0:
            raise CuppUsageError("back() on an empty vector")
        return self._store[self._size - 1].item()

    def swap(self, other: "Vector") -> None:
        """``a.swap(b)`` — exchange contents (host *and* device state, so
        neither side loses its lazy-copy bookkeeping)."""
        if not isinstance(other, Vector):
            raise CuppUsageError("swap requires another cupp.Vector")
        for attr in (
            "dtype", "_store", "_size", "_mem", "_host_valid",
            "_device_valid", "_uploads", "_downloads", "readonly_space",
            "_texref", "_const_view", "_const_valid",
        ):
            mine, theirs = getattr(self, attr), getattr(other, attr)
            setattr(self, attr, theirs)
            setattr(other, attr, mine)

    def _check_index(self, index: int) -> int:
        if index < 0:
            index += self._size
        if not 0 <= index < self._size:
            raise IndexError(f"index {index} out of range for size {self._size}")
        return index

    def __getitem__(self, index: int) -> object:
        self._ensure_host()  # read detection (§4.6)
        return self._store[self._check_index(index)].item()

    def __setitem__(self, index: int, value: object) -> None:
        self._before_host_write()  # write detection (§4.6)
        self._store[self._check_index(index)] = value

    def __iter__(self) -> Iterator:
        self._ensure_host()
        return iter(self._store[: self._size].tolist())

    def to_numpy(self) -> np.ndarray:
        """A read-only snapshot of the host data (a mutable view would
        bypass the write detection the laziness depends on)."""
        self._ensure_host()
        out = self._store[: self._size].copy()
        out.flags.writeable = False
        return out

    # ------------------------------------------------------------------
    # copy semantics: "when a vector is copied, the copy is expected to
    # have its own dataset" (§4.2) — the by-value performance trap.
    # ------------------------------------------------------------------
    def __copy__(self) -> "Vector":
        self._ensure_host()
        return Vector(self._store[: self._size].copy(), dtype=self.dtype)

    def __deepcopy__(self, memo: dict) -> "Vector":
        return self.__copy__()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Vector):
            return NotImplemented
        return bool(np.array_equal(other.to_numpy(), self.to_numpy()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = []
        if not self._host_valid:
            state.append("host-stale")
        if self._device_valid:
            state.append("on-device")
        return (
            f"cupp.Vector(size={self._size}, dtype={self.dtype}"
            + (", " + ",".join(state) if state else "")
            + ")"
        )


# Listing 4.6: both types carry both typedefs, matched 1:1.
Vector.host_type = Vector
DeviceVector.host_type = Vector
DeviceVector.device_type = DeviceVector
