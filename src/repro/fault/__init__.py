"""repro.fault — deterministic fault injection & the chaos vocabulary.

See :mod:`repro.fault.injector` for the model.  The serving layer's
recovery machinery (retry with backoff, batch timeouts, device
eviction, session failover) lives in :mod:`repro.serve`; this package
only decides *when something breaks*.
"""

from repro.fault.injector import (
    FAULT_KINDS,
    FAULT_POINTS,
    FaultConfig,
    FaultInjector,
    FaultStats,
    InjectedFault,
)

__all__ = [
    "FAULT_KINDS",
    "FAULT_POINTS",
    "FaultConfig",
    "FaultInjector",
    "FaultStats",
    "InjectedFault",
]
