"""Deterministic fault injection for the simulated CUDA stack.

The serving stack (PRs 2-4) assumes every launch, transfer, and
allocation succeeds; CuPP's device-management layer exists precisely
because real CUDA does not behave that way.  This module supplies the
chaos half of the resilience story: a seedable :class:`FaultInjector`
that the runtime (:meth:`~repro.cuda.runtime.CudaRuntime.cudaMalloc` /
``cudaLaunch`` / ``cudaMemcpy``) and the serving scheduler consult at
well-defined points, injecting the four classic GPU failure modes:

``launch-fail``
    A transient kernel-launch failure, detected synchronously (the
    driver returns ``cudaErrorLaunchFailure``; nothing ran).
``hang``
    The launch is accepted but the device wedges for
    :attr:`FaultConfig.hang_latency_s` — only a watchdog timeout can
    surface it.  In the serving layer this is what batch timeouts,
    device eviction, and session failover exist for.
``transfer-corrupt``
    An uncorrectable ECC error on a host<->device copy: the bytes cross
    the bus but arrive poisoned (``cudaErrorECCUncorrectable``).
``spurious-oom``
    ``cudaMalloc`` fails although memory is available — the transient
    OOM the :mod:`repro.mem` flush-and-retry path absorbs.

Determinism is a hard requirement (the whole repo is virtual-time and
bit-identical per seed), so the injector consumes **exactly one**
uniform draw per consult point, whatever the configured rates, and
events are attributed through the usual observability spine: a
``fault-inject`` ledger cause, ``fault.injected`` counters, and a
``fault.inject`` trace instant per fired fault.

Tests that need a specific fault at a specific consult use
:attr:`FaultConfig.script` instead of rates: a mapping from consult
point to the exact sequence of kinds to inject (``None`` entries mean
"no fault here"); scripted points consume no randomness at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import obs

#: The injectable fault kinds, by the consult point that can draw them.
FAULT_POINTS = {
    "launch": ("launch-fail", "hang"),
    "transfer": ("transfer-corrupt",),
    "alloc": ("spurious-oom",),
}

#: Every fault kind the injector can produce.
FAULT_KINDS = tuple(k for kinds in FAULT_POINTS.values() for k in kinds)


class InjectedFault(Exception):
    """Raised by a consult site that surfaces a fault as control flow
    (the serving scheduler's launch path).  Carries the fault kind and
    the device it fired on so recovery can attribute it."""

    def __init__(self, kind: str, device_index: "int | None" = None) -> None:
        super().__init__(f"injected fault: {kind} (device {device_index})")
        self.kind = kind
        self.device_index = device_index


@dataclass
class FaultConfig:
    """Rates and shape of the injected chaos (all rates per consult).

    A consult is one fault-prone operation: one sub-batch (or runtime)
    kernel launch, one fused transfer, one driver allocation.  Rates
    are independent probabilities; at most one fault fires per consult.
    """

    seed: int = 0
    #: Transient launch failure (synchronously detected, retryable).
    launch_fail_rate: float = 0.0
    #: Device hang on launch; surfaced only by a watchdog timeout.
    hang_rate: float = 0.0
    #: How long a hung device stays wedged before going idle again.
    hang_latency_s: float = 50e-3
    #: Uncorrectable ECC corruption on a host<->device copy.
    transfer_corrupt_rate: float = 0.0
    #: cudaMalloc fails although memory is available (transient OOM).
    spurious_oom_rate: float = 0.0
    #: Scripted injection: consult point -> exact sequence of kinds
    #: (``None`` = no fault).  Scripted points bypass the RNG entirely.
    script: "dict[str, list] | None" = None

    def __post_init__(self) -> None:
        for point, kinds in FAULT_POINTS.items():
            total = sum(self._rate(k) for k in kinds)
            if total > 1.0:
                raise ValueError(
                    f"fault rates at consult point {point!r} sum to "
                    f"{total}, which exceeds 1"
                )
        if self.script:
            unknown = set(self.script) - set(FAULT_POINTS)
            if unknown:
                raise ValueError(
                    f"scripted consult point(s) {sorted(unknown)} unknown; "
                    f"one of {sorted(FAULT_POINTS)}"
                )

    def _rate(self, kind: str) -> float:
        return {
            "launch-fail": self.launch_fail_rate,
            "hang": self.hang_rate,
            "transfer-corrupt": self.transfer_corrupt_rate,
            "spurious-oom": self.spurious_oom_rate,
        }[kind]

    @classmethod
    def chaos(
        cls, seed: int = 0, device_fault_rate: float = 0.01
    ) -> "FaultConfig":
        """The standard chaos mix: ``device_fault_rate`` total fault
        probability per device operation, split across the four kinds
        (launch failures dominate; hangs are rare but expensive)."""
        return cls(
            seed=seed,
            launch_fail_rate=0.4 * device_fault_rate,
            hang_rate=0.2 * device_fault_rate,
            transfer_corrupt_rate=0.2 * device_fault_rate,
            spurious_oom_rate=0.2 * device_fault_rate,
        )

    @property
    def any_enabled(self) -> bool:
        """Is there any way this config can produce a fault?"""
        return bool(self.script) or any(
            self._rate(k) > 0.0 for k in FAULT_KINDS
        )


@dataclass
class FaultStats:
    """Counters one injector accumulated (JSON-friendly)."""

    consults: int = 0
    injected: int = 0
    by_kind: "dict[str, int]" = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "consults": self.consults,
            "injected": self.injected,
            "by_kind": dict(self.by_kind),
        }


class FaultInjector:
    """Seeded fault source consulted by the runtime and the scheduler.

    One uniform draw is consumed per (unscripted) consult regardless of
    outcome, so two runs with the same seed and the same event order
    see the same faults — the property the chaos acceptance test holds
    the serving layer to.
    """

    def __init__(self, config: "FaultConfig | None" = None) -> None:
        self.config = config or FaultConfig()
        self._rng = np.random.default_rng(self.config.seed)
        self._script = {
            point: list(kinds)
            for point, kinds in (self.config.script or {}).items()
        }
        self.stats = FaultStats(by_kind={k: 0 for k in FAULT_KINDS})
        #: Optional ``listener(kind, point, device_index)`` — the serving
        #: layer installs one to feed its SLO monitor a fault series.
        self.listener = None

    # ------------------------------------------------------------------
    def draw(
        self,
        point: str,
        device_index: "int | None" = None,
        nbytes: int = 0,
    ) -> "str | None":
        """Consult the injector at ``point``; returns a fault kind or
        ``None``.  ``nbytes`` sizes the ledger attribution for faults
        that poison data in flight (ECC corruption)."""
        kinds = FAULT_POINTS.get(point)
        if kinds is None:
            raise ValueError(
                f"unknown consult point {point!r}; one of "
                f"{sorted(FAULT_POINTS)}"
            )
        self.stats.consults += 1
        scripted = self._script.get(point)
        if scripted is not None:
            kind = scripted.pop(0) if scripted else None
            if kind is not None and kind not in kinds:
                raise ValueError(
                    f"scripted kind {kind!r} cannot fire at point {point!r}"
                )
        else:
            u = float(self._rng.random())
            kind = None
            edge = 0.0
            for candidate in kinds:
                edge += self.config._rate(candidate)
                if u < edge:
                    kind = candidate
                    break
        if kind is None:
            return None
        self.stats.injected += 1
        self.stats.by_kind[kind] += 1
        obs.counter("fault.injected", kind=kind).inc()
        obs.instant(
            "fault.inject", kind=kind, point=point, device=device_index
        )
        obs.record_transfer(
            "fault-inject", "none", nbytes, moved=False, label=kind
        )
        if self.listener is not None:
            self.listener(kind, point, device_index)
        return kind

    @property
    def injected(self) -> int:
        """Total faults fired so far."""
        return self.stats.injected
