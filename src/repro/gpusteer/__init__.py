"""The GPU port of the Boids scenario via CuPP (paper ch. 6).

- :mod:`repro.gpusteer.kernels_emu` — the five versions' device kernels
  for the SIMT emulator.
- :class:`EmulatedBoids` — the full pipeline through real CuPP calls at
  emulable populations (integration tests).
- :mod:`repro.gpusteer.cost_model` — closed-form kernel counts validated
  against the emulator.
- :mod:`repro.gpusteer.versions` — Table 6.1 and the per-version update
  timing model (Fig. 6.2 / 6.3).
- :mod:`repro.gpusteer.double_buffer` — the update/draw overlap
  (Fig. 6.4).
- :class:`GpuBoidsRun` — paper-scale runs: functional flock + modelled
  timing.
"""

from repro.gpusteer.cost_model import (
    LaunchGeometry,
    WorkloadStats,
    modify_cost,
    neighbor_v1_cost,
    neighbor_v2_cost,
    simulate_cost,
)
from repro.gpusteer.double_buffer import FrameTimings, compare, simulate_frames
from repro.gpusteer.emulated import EmulatedBoids
from repro.gpusteer.grid_search import (
    DeviceGrid,
    HostGrid,
    find_neighbors_grid,
    project_cost,
)
from repro.gpusteer.kernels_emu import (
    MAX_NEIGHBORS,
    find_neighbors_v1,
    find_neighbors_v2,
    modify_kernel,
    simulate_v3,
    simulate_v4,
)
from repro.gpusteer.pipeline import GpuBoidsRun, RunResult, version_ladder
from repro.gpusteer.versions import (
    CPU_VERSION,
    THREADS_PER_BLOCK,
    UpdateBreakdown,
    VERSIONS,
    VersionSpec,
    speedup_vs_cpu,
    update_time,
)

__all__ = [
    "CPU_VERSION",
    "DeviceGrid",
    "EmulatedBoids",
    "FrameTimings",
    "HostGrid",
    "find_neighbors_grid",
    "project_cost",
    "GpuBoidsRun",
    "LaunchGeometry",
    "MAX_NEIGHBORS",
    "RunResult",
    "THREADS_PER_BLOCK",
    "UpdateBreakdown",
    "VERSIONS",
    "VersionSpec",
    "WorkloadStats",
    "compare",
    "find_neighbors_v1",
    "find_neighbors_v2",
    "modify_cost",
    "modify_kernel",
    "neighbor_v1_cost",
    "neighbor_v2_cost",
    "simulate_cost",
    "simulate_frames",
    "simulate_v4",
    "simulate_v3",
    "speedup_vs_cpu",
    "update_time",
    "version_ladder",
]
