"""Closed-form instruction/traffic counts for the Boids kernels.

The emulator measures what a kernel executes, but emulating 4096 agents x
4096 candidates in Python is not feasible for a benchmark sweep.  These
builders reproduce the emulator's accounting *by construction*: each term
mirrors one line of :mod:`repro.gpusteer.kernels_emu`, scaled by the
launch geometry and by two data-dependent quantities:

* ``in_radius_per_agent`` — how many candidates pass the radius test
  (drives the divergent insert path, §6.3.1: "with more agents the number
  of agents within the neighbor search radius increases and therefore the
  times the warp diverges");
* ``full_insert_fraction`` — how many of those hit the scan-and-replace
  path (the neighbor list already held 7).

The test suite validates every builder against the emulator's measured
profile on small populations (see ``tests/gpusteer/test_cost_model.py``);
the benchmarks then evaluate the same formulas at paper scale.

Divergence approximation: an in-radius insert is taken to cost one full
warp issue of its path (sparse-event assumption — inserts rarely line up
across a warp, which the validation tolerances cover).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.simgpu.costs import CostTable, G80_COSTS
from repro.simgpu.perfmodel import KernelCostInputs
from repro.steer.params import BoidsParams

#: Bytes one warp-level uncoalesced read/write of 32 float32 lanes moves
#: (32 threads x 32-byte minimum transaction).
UNCOALESCED_WARP_BYTES = 32 * 32

MAX_NEIGHBORS = 7

#: Issue cost of one instruction (cycles/warp).
C = 4


@dataclass(frozen=True)
class WorkloadStats:
    """Data-dependent inputs to the kernel cost model."""

    n: int
    in_radius_per_agent: float
    full_insert_fraction: float
    #: Mean final neighborhood size, min(in-radius count, 7).
    avg_neighbors: float = float(MAX_NEIGHBORS)

    @staticmethod
    def measure(positions: np.ndarray, params: BoidsParams) -> "WorkloadStats":
        """Exact statistics from an actual agent cloud (kd-tree count)."""
        from scipy.spatial import cKDTree

        tree = cKDTree(positions)
        counts = (
            np.array(tree.query_ball_point(
                positions, params.search_radius, return_length=True
            ))
            - 1  # exclude self
        )
        m = float(counts.mean())
        full = float(np.maximum(counts - MAX_NEIGHBORS, 0).sum()) / max(
            float(counts.sum()), 1.0
        )
        avg = float(np.minimum(counts, MAX_NEIGHBORS).mean())
        return WorkloadStats(positions.shape[0], m, full, avg)

    @staticmethod
    def estimate(
        n: int, params: BoidsParams, clustering: float = 2.0
    ) -> "WorkloadStats":
        """Analytic estimate for a flocked population.

        A uniform population sees ``(n-1) * (r/R)^3`` agents in radius;
        flocking concentrates agents, raising local density by the
        ``clustering`` factor (calibrated against measured runs).
        """
        volume_fraction = (params.search_radius / params.world_radius) ** 3
        m = min(n - 1.0, (n - 1.0) * volume_fraction * clustering)
        full = max(0.0, (m - MAX_NEIGHBORS) / m) if m > 0 else 0.0
        return WorkloadStats(n, m, full, min(m, float(MAX_NEIGHBORS)))

    def insert_issues(self, candidates: int) -> float:
        """Expected warp-level insert-path *issues* over a candidate scan.

        An insert round serializes against the rest of the warp, but all
        threads inserting at the same candidate share one issue group —
        so per candidate the warp pays the path at probability
        ``1 - (1-p)^32`` with ``p`` the per-thread in-radius chance.  At
        paper densities this approaches one issue per event (sparse); at
        dense test clouds simultaneous inserts collapse (§6.3.1's "it is
        expected that only a single thread executes a branch most of the
        time" is exactly the sparse limit).
        """
        if self.n <= 0:
            return 0.0
        p = min(self.in_radius_per_agent / self.n, 1.0)
        return candidates * (1.0 - (1.0 - p) ** 32)

    def insert_events(self, threads: int = 32) -> float:
        """Total per-thread insert *events* across a warp (memory traffic
        is per-thread even when the issue groups collapse)."""
        return threads * self.in_radius_per_agent


@dataclass(frozen=True)
class LaunchGeometry:
    """How a kernel is launched: thread count and block size."""

    threads: int
    threads_per_block: int

    @property
    def blocks(self) -> int:
        return math.ceil(self.threads / self.threads_per_block)

    @property
    def warps(self) -> int:
        return self.blocks * math.ceil(self.threads_per_block / 32)


def _insert_cost_cycles(stats: WorkloadStats) -> float:
    """Warp-issue cycles of one in-radius insert event.

    Cheap path (list not full): compare + branch + iadd.
    Full path: the 7-slot max scan (6 compares + final compare + branch).
    """
    cheap = 3 * C
    full = (1 + 6 + 1) * C + 2 * C
    f = stats.full_insert_fraction
    return (1.0 - f) * cheap + f * full


# ----------------------------------------------------------------------
# Version 1: naive neighbor search
# ----------------------------------------------------------------------
def neighbor_v1_cost(
    geom: LaunchGeometry,
    stats: WorkloadStats,
    costs: CostTable = G80_COSTS,
) -> KernelCostInputs:
    """Version 1: the naive global-memory neighbor search (§6.2.1)."""
    n = stats.n
    w = geom.warps
    # Per-warp, per-candidate: loop (compare+iadd), sub3 (3), length_squared
    # (FMUL+2 FMAD), 2 compares + branch, plus the 3 global-read issues.
    arith_per_candidate = (2 + 3 + 3 + 3) * C
    read_issue_per_candidate = 3 * C
    per_warp = n * (arith_per_candidate + read_issue_per_candidate)
    # Init: my position (3 reads) + r2; results: 7 writes + loop.
    per_warp += 3 * C + 1 * C + MAX_NEIGHBORS * (C + 2 * C)
    # Divergent inserts: issue groups collapse across the warp.
    per_warp += stats.insert_issues(n) * _insert_cost_cycles(stats)

    issue_cycles = int(per_warp * w)
    global_reads = w * (n * 3 + 3)
    # Same-address candidate reads never coalesce: 1 KiB per warp read.
    bytes_moved = (
        w * n * 3 * UNCOALESCED_WARP_BYTES  # candidate loop
        + w * 3 * UNCOALESCED_WARP_BYTES  # own position (stride-3)
        + w * MAX_NEIGHBORS * 32 * 32  # scattered result writes
    )
    return KernelCostInputs(
        blocks=geom.blocks,
        threads_per_block=geom.threads_per_block,
        issue_cycles=issue_cycles,
        global_reads=global_reads,
        bytes_moved=bytes_moved,
        shared_bytes_per_block=0,
        registers_per_thread=12,
    )


# ----------------------------------------------------------------------
# Version 2: shared-memory tiled neighbor search (listings 6.2/6.3)
# ----------------------------------------------------------------------
def neighbor_v2_cost(
    geom: LaunchGeometry,
    stats: WorkloadStats,
    costs: CostTable = G80_COSTS,
) -> KernelCostInputs:
    """Version 2: the shared-memory tiled neighbor search (listing 6.2)."""
    n = stats.n
    w = geom.warps
    tpb = geom.threads_per_block
    tiles = math.ceil(n / tpb)
    # Candidate work now reads from shared memory (3 lds) instead of global.
    arith_per_candidate = (2 + 2 + 3 + 3 + 3) * C  # + tile-index iadds
    shared_per_candidate = 3 * costs.shared_cycles
    per_warp = n * (arith_per_candidate + shared_per_candidate)
    # Per tile: stage one element (3 reads + 3 shared writes), 2 syncs,
    # loop overhead.
    per_warp += tiles * (3 * C + 3 * costs.shared_cycles + 2 * costs.sync_base_cycles + 2 * C)
    per_warp += 3 * C + 1 * C + MAX_NEIGHBORS * (C + 2 * C)
    per_warp += stats.insert_issues(n) * _insert_cost_cycles(stats)

    issue_cycles = int(per_warp * w)
    global_reads = w * (tiles * 3 + 3)
    bytes_moved = (
        w * tiles * 3 * UNCOALESCED_WARP_BYTES  # staging loads (stride 3)
        + w * 3 * UNCOALESCED_WARP_BYTES
        + w * MAX_NEIGHBORS * 32 * 32
    )
    shared_bytes = tpb * 3 * 4
    return KernelCostInputs(
        blocks=geom.blocks,
        threads_per_block=geom.threads_per_block,
        issue_cycles=issue_cycles,
        global_reads=global_reads,
        bytes_moved=bytes_moved,
        shared_bytes_per_block=shared_bytes,
        registers_per_thread=14,
    )


# ----------------------------------------------------------------------
# Versions 3/4: full simulation substage
# ----------------------------------------------------------------------
def _steering_phase_cycles(costs: CostTable, avg_neighbors: float) -> float:
    """Warp cycles of the flocking calculation (the _flocking_steering
    helper), excluding gather.  Per-neighbor work scales with the mean
    neighborhood size."""
    per_neighbor = (
        costs.rsqrt_cycles  # rsqrt(d2)
        + 1 * C  # inv*inv
        + 3 * C  # scale3 contrib
        + 3 * C  # sep update
        + 3 * C  # coh update
        + 3 * C  # ali update
        + 3 * C  # forward read issue
        + 1 * C  # counter
    )
    finalize = (
        3 * C + 3 * C  # scaled_fwd + ali
        + 3 * (2 * C + costs.rsqrt_cycles + 3 * C)  # three normalizes
        + 3 * 3 * C  # three weight scales
        + 2 * 3 * C  # two adds
    )
    return avg_neighbors * per_neighbor + finalize


def simulate_cost(
    geom: LaunchGeometry,
    stats: WorkloadStats,
    *,
    local_cache: bool,
    costs: CostTable = G80_COSTS,
) -> KernelCostInputs:
    """Versions 3 (``local_cache=True``) and 4 (``False``)."""
    base = neighbor_v2_cost(geom, stats, costs)
    w = geom.warps
    extra_issue = 0.0
    extra_reads = 0
    extra_bytes = 0

    # Forward vector load at kernel entry.
    extra_issue += 3 * C * w
    extra_reads += 3 * w
    extra_bytes += 3 * UNCOALESCED_WARP_BYTES * w

    k = stats.avg_neighbors
    if local_cache:
        # v3: 4 spilled stores per kept insert + 4 spilled reads per
        # gathered neighbor.  Kept-insert fraction: everything the full
        # scan did not reject.
        keep_frac = max(1.0 - stats.full_insert_fraction * 0.5, 0.0)
        kept_events = stats.insert_events() * keep_frac  # per warp
        kept_issues = stats.insert_issues(stats.n) * keep_frac
        extra_issue += kept_issues * (4 * C + 3 * C) * w  # stores + offset
        extra_bytes += int(kept_events) * 4 * 32 * w  # per-thread stores
        gather_reads = k * 4
        extra_issue += gather_reads * C * w
        extra_reads += int(gather_reads) * w
        extra_bytes += int(gather_reads) * 32 * 32 * w
    else:
        # v4: re-read positions and recompute offset/d2 per neighbor.
        gather = k * (3 * C + 3 * C + 3 * C)
        extra_issue += gather * w
        extra_reads += int(k * 3) * w
        extra_bytes += int(k * 3 * UNCOALESCED_WARP_BYTES) * w

    # The steering computation itself + the result store.
    extra_issue += _steering_phase_cycles(costs, k) * w
    extra_reads += int(k * 3) * w  # forward reads inside steering
    extra_bytes += int(k * 3 * UNCOALESCED_WARP_BYTES) * w
    extra_issue += 3 * C * w  # st_vec3 steering_out
    extra_bytes += 3 * UNCOALESCED_WARP_BYTES * w

    return KernelCostInputs(
        blocks=base.blocks,
        threads_per_block=base.threads_per_block,
        issue_cycles=int(base.issue_cycles + extra_issue),
        global_reads=int(base.global_reads + extra_reads),
        bytes_moved=int(base.bytes_moved + extra_bytes),
        shared_bytes_per_block=base.shared_bytes_per_block,
        registers_per_thread=18,
    )


# ----------------------------------------------------------------------
# Version 6: grid-bucketed simulation substage (cupp.containers)
# ----------------------------------------------------------------------
def grid_candidates(stats: WorkloadStats) -> float:
    """Expected member-scan candidates per agent under the hash grid.

    With cell_edge = search radius the 3x3x3 neighborhood spans 27 cell
    volumes; in the cube convention of :meth:`WorkloadStats.estimate`
    (``(r/R)^3`` volume fraction) one cell holds about the in-radius
    count, so the scan touches ~``27 * in_radius_per_agent`` candidates
    — the O(n·k) replacement for the all-pairs n.
    """
    return min(float(stats.n), 27.0 * stats.in_radius_per_agent)


#: Expected linear-probe walk per directory lookup (load factor <= 1/2).
GRID_PROBE_WALK = 1.5


def simulate_grid_cost(
    geom: LaunchGeometry,
    stats: WorkloadStats,
    costs: CostTable = G80_COSTS,
) -> KernelCostInputs:
    """Version 6: the fused grid-bucketed simulate kernel.

    Mirrors :func:`repro.gpusteer.kernels_grid.simulate_grid` line by
    line: cell locate, 27 directory probes + CSR bounds, the member
    scan over ``grid_candidates`` agents, then the v4-style gather and
    steering.  Per-warp work uses the *mean* candidate count — threads
    of a warp sit in different cells, so this is the sparse-divergence
    approximation the other builders already make.
    """
    n = stats.n
    w = geom.warps
    cand = grid_candidates(stats)
    k = stats.avg_neighbors

    # Entry: my position + forward loads, r2, cell locate (3 axes of
    # divide + floor-bias + clamp).
    per_warp = (3 + 3) * C + 1 * C + (3 + 3 + 6) * C
    # Per cell of the 27: offset iadds + bounds compares, key pack,
    # probe-start hash, the probe walk (key load + 2 compares + branch
    # each), segment compare + branch, two CSR bounds loads.
    per_cell = (
        (3 + 3) * C
        + 4 * C
        + 2 * C
        + GRID_PROBE_WALK * (1 + 2 + 1) * C
        + 2 * C
        + 2 * C
    )
    per_warp += 27 * per_cell
    # Member scan: loop compare + iadd, member-id load, position load,
    # candidate test (sub3, length_squared, 2 compares + branch).
    per_warp += cand * ((1 + 1) * C + 1 * C + 3 * C + (3 + 3 + 3) * C)
    # Divergent inserts: the grid pre-filters candidates, so the
    # per-candidate in-radius probability is ~1/27, not ~m/n.
    p = min(stats.in_radius_per_agent / cand, 1.0) if cand > 0 else 0.0
    insert_issue_count = cand * (1.0 - (1.0 - p) ** 32)
    per_warp += insert_issue_count * _insert_cost_cycles(stats)
    # Result stores, the v4 recompute gather, the steering itself.
    per_warp += MAX_NEIGHBORS * (C + 2 * C)
    per_warp += k * (3 * C + 3 * C + 3 * C)
    per_warp += _steering_phase_cycles(costs, k)
    per_warp += 3 * C  # st_vec3 steering_out

    reads_per_warp = (
        6  # my position + forward
        + 27 * (GRID_PROBE_WALK + 1 + 2)  # directory keys + vals + CSR
        + cand * (1 + 3)  # member ids + candidate positions
        + k * 3  # gather position re-reads
        + k * 3  # forward reads inside steering
    )
    writes_per_warp = MAX_NEIGHBORS + 3  # result slots + steering store
    return KernelCostInputs(
        blocks=geom.blocks,
        threads_per_block=geom.threads_per_block,
        issue_cycles=int(per_warp * w),
        global_reads=int(reads_per_warp * w),
        # Scattered per-thread accesses: every read/write pays the
        # uncoalesced warp transaction, like the builders above.
        bytes_moved=int(
            (reads_per_warp + writes_per_warp) * UNCOALESCED_WARP_BYTES * w
        ),
        shared_bytes_per_block=0,
        registers_per_thread=22,
    )


# ----------------------------------------------------------------------
# Version 5: the modification kernel
# ----------------------------------------------------------------------
def modify_cost(
    geom: LaunchGeometry,
    costs: CostTable = G80_COSTS,
) -> KernelCostInputs:
    """Version 5's modification kernel (§6.2.3): straight-line vehicle
    model + draw-matrix stores, shared memory as local scratch."""
    w = geom.warps
    # Straight-line vehicle model: parameter loads (6), steering load (3),
    # state loads (7), state stores (7), matrix stores (16), ~60 cycles of
    # arithmetic issues + 3 rsqrts + a handful of branch/compare pairs.
    reads = (6 + 3 + 3 + 1 + 3) * w
    writes = (3 + 3 + 1 + 3 + 16) * w
    arith = (60 * C + 3 * costs.rsqrt_cycles + 10 * C) * w
    issue = arith + (reads + writes) * C
    bytes_moved = (reads + writes) * UNCOALESCED_WARP_BYTES
    return KernelCostInputs(
        blocks=geom.blocks,
        threads_per_block=geom.threads_per_block,
        issue_cycles=int(issue),
        global_reads=int(reads),
        bytes_moved=int(bytes_moved),
        shared_bytes_per_block=geom.threads_per_block * 12,
        registers_per_thread=16,
    )
