"""Double buffering: overlapping the draw and update stages (paper §6.3.2).

Kernel calls are asynchronous (§2.2), so while the host draws simulation
step *n*, the device can already compute step *n+1* — provided the draw
data for step *n* lives in its own buffer.  "Using the CuPP framework,
the implementation was fairly easy.  We only had to add an additional
CuPP vector, so we have two vectors available to store the data required
to draw the agents."

The frame schedule is played out on a :class:`DeviceTimeline` with two
streams, the way the cuda-samples ``asyncAPI`` demo structures overlap:

* a **compute** stream carries the update kernels and the render pass
  (rendering occupies the same silicon as CUDA kernels, so it serializes
  with compute — that bound is why the paper's measured gains top out
  around 32% instead of the naive 2x);
* a **copy** stream carries the draw-matrix fetch, gated on an event
  recorded after the update kernel (``cudaStreamWaitEvent`` semantics:
  the fetch starts at its predecessor's completion) so the DMA rides the
  copy engine *while* the render runs.

* **without** double buffering a frame is strictly serial:
  launch update -> memcpy draw matrices (implicitly waits for the device)
  -> draw; the schedule only ever touches one queue, so it is
  arithmetically identical to the old serial device model.
* **with** double buffering the host draws step *n* (from buffer A) while
  the device computes step *n+1* (into buffer B) and the copy engine
  fetches step *n+1*'s matrices behind the render.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpusteer.versions import DRAW_MATRIX_BYTES, update_time
from repro.simgpu.transfer import DeviceTimeline
from repro.steer.params import BoidsParams


@dataclass(frozen=True)
class FrameTimings:
    """Steady-state frame periods with and without double buffering."""

    n: int
    frame_without_s: float
    frame_with_s: float

    def __post_init__(self) -> None:
        if self.frame_without_s <= 0.0 or self.frame_with_s <= 0.0:
            raise ValueError(
                "frame periods must be positive, got "
                f"without={self.frame_without_s!r} with={self.frame_with_s!r}"
            )

    @property
    def fps_without(self) -> float:
        return 1.0 / self.frame_without_s

    @property
    def fps_with(self) -> float:
        return 1.0 / self.frame_with_s

    @property
    def improvement(self) -> float:
        """Fractional fps gain from double buffering (Fig. 6.4's y-axis)."""
        return self.frame_without_s / self.frame_with_s - 1.0


def _draw_components(
    n: int, calib: Calibration
) -> tuple[float, float]:
    """(host-overlappable, device-render) split of the draw stage."""
    total = calib.cpu_model().draw_seconds(n)
    host = total * calib.draw_overlappable_fraction
    return host, total - host


def simulate_frames(
    n: int,
    params: BoidsParams,
    *,
    double_buffered: bool,
    frames: int = 12,
    calib: Calibration = DEFAULT_CALIBRATION,
    version: int = 5,
    gl_interop: bool = False,
) -> float:
    """Play ``frames`` demo frames on a timeline; return the steady-state
    frame period (warm-up frames excluded; ``frames`` must be >= 1).

    ``gl_interop=True`` models the §3.2 OpenGL-interoperability path the
    paper left unused: the draw matrices stay on the device (the renderer
    reads a mapped buffer object), so fetching draw data costs only the
    map/unmap driver overhead instead of a PCIe transfer.
    """
    from repro.cuda.interop import MAP_OVERHEAD_S

    if frames < 1:
        raise ValueError(f"frames must be >= 1, got {frames}")

    update = update_time(version, n, params, calib=calib)
    draw_host, draw_render = _draw_components(n, calib)
    matrix_bytes = DRAW_MATRIX_BYTES * n

    tl = DeviceTimeline(calib.pcie_model())
    tl.launch_overhead_s = calib.launch_overhead_s
    compute = tl.create_stream()  # update kernels + render, in order
    copy = tl.create_stream()  # draw-matrix fetches on the DMA engine
    update_done = tl.create_event()
    frame_done = tl.create_event()
    stamps: list[float] = []

    def device_update() -> None:
        # Host-resident substages (v1-v4) run on the host clock; kernels
        # are enqueued asynchronously; input transfers block the host
        # (pageable cudaMemcpy, §2.2) and already include their per-call
        # overheads from the version cost model.
        with obs.span(
            "db.update",
            host_compute_s=update.host_compute_s,
            transfer_s=update.transfer_s,
            gpu_kernel_s=update.gpu_kernel_s,
        ):
            tl.host_work(update.host_compute_s)
            if update.transfer_s:
                tl.synchronize()  # implicit sync of input copies
                tl.host_work(update.transfer_s)
            if update.gpu_kernel_s:
                tl.stream_launch(compute, update.gpu_kernel_s)
            tl.record_event(update_done, compute)

    def fetch_draw_data() -> None:
        with obs.span(
            "db.fetch_draw", nbytes=matrix_bytes, gl_interop=gl_interop
        ):
            if gl_interop:
                # Map/unmap a registered buffer object: synchronize, no copy.
                tl.synchronize()
                tl.host_work(2 * MAP_OVERHEAD_S)
            elif double_buffered:
                # The fetch rides the copy engine once the update kernel
                # has produced the matrices — overlapped with the render
                # on the compute stream.  These are the overlapped bytes
                # Fig. 6.4's gain comes from.
                tl.stream_wait_event(copy, update_done)
                obs.record_transfer(
                    "stream-wait",
                    "none",
                    0,
                    moved=False,
                    label="draw-fetch<-update",
                )
                tl.stream_memcpy(copy, matrix_bytes)
                obs.record_transfer(
                    "double-buffer-overlap",
                    "d2h",
                    matrix_bytes,
                    label="draw-matrices",
                )
            else:
                tl.memcpy(matrix_bytes)
                obs.record_transfer(
                    "eager",
                    "d2h",
                    matrix_bytes,
                    label="draw-matrices",
                )

    def draw() -> None:
        with obs.span(
            "db.draw", host_s=draw_host, render_s=draw_render
        ):
            tl.host_work(draw_host)
            # Rendering occupies the device itself: queue it like a
            # kernel, after the in-flight update on the compute stream.
            tl.stream_launch(compute, draw_render)

    if not double_buffered:
        loop_start = tl.host_time
        for frame in range(frames):
            with obs.span("db.frame", frame=frame, double_buffered=False):
                device_update()
                fetch_draw_data()
                draw()
                tl.synchronize()  # frame ends when the render completes
            stamps.append(tl.host_time)
    else:
        device_update()  # pipeline priming: compute step 0
        fetch_draw_data()
        tl.stream_synchronize(copy)  # step 0's matrices before first draw
        loop_start = tl.host_time
        for frame in range(frames):
            with obs.span("db.frame", frame=frame, double_buffered=True):
                device_update()  # step n+1 starts while we draw step n
                draw()
                tl.record_event(frame_done, compute)
                fetch_draw_data()  # step n+1's matrices, behind the render
                tl.event_synchronize(frame_done)  # render complete
                tl.stream_synchronize(copy)  # next buffer filled
            stamps.append(tl.host_time)

    # Steady-state period: average of the later frames.  The window
    # starts at the stamp preceding the tail — or at the loop start when
    # there is no earlier stamp (frames == 1), so a single frame yields
    # its own (warm-up-inclusive) period instead of a zero division.
    half = len(stamps) // 2
    tail = stamps[half:]
    start = stamps[half - 1] if half >= 1 else loop_start
    return (tail[-1] - start) / len(tail)


def compare(
    n: int,
    params: BoidsParams,
    calib: Calibration = DEFAULT_CALIBRATION,
    version: int = 5,
) -> FrameTimings:
    """Fig. 6.4's datapoint for one (population, think-frequency) cell."""
    return FrameTimings(
        n=n,
        frame_without_s=simulate_frames(
            n, params, double_buffered=False, calib=calib, version=version
        ),
        frame_with_s=simulate_frames(
            n, params, double_buffered=True, calib=calib, version=version
        ),
    )
