"""Double buffering: overlapping the draw and update stages (paper §6.3.2).

Kernel calls are asynchronous (§2.2), so while the host draws simulation
step *n*, the device can already compute step *n+1* — provided the draw
data for step *n* lives in its own buffer.  "Using the CuPP framework,
the implementation was fairly easy.  We only had to add an additional
CuPP vector, so we have two vectors available to store the data required
to draw the agents."

The frame schedule is played out on a :class:`DeviceTimeline`:

* **without** double buffering a frame is strictly serial:
  launch update -> memcpy draw matrices (implicitly waits for the device)
  -> draw;
* **with** double buffering the host draws step *n* (from buffer A) while
  the device computes step *n+1* (into buffer B).

Only part of the draw stage overlaps: the GPU renders with the same
silicon that runs CUDA kernels, so render time serializes with compute
and only the host-side submission work (``draw_overlappable_fraction``)
hides kernel execution.  That bound is why the paper's measured gains top
out around 32% instead of the naive 2x.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpusteer.versions import DRAW_MATRIX_BYTES, update_time
from repro.simgpu.transfer import DeviceTimeline
from repro.steer.params import BoidsParams


@dataclass(frozen=True)
class FrameTimings:
    """Steady-state frame periods with and without double buffering."""

    n: int
    frame_without_s: float
    frame_with_s: float

    @property
    def fps_without(self) -> float:
        return 1.0 / self.frame_without_s

    @property
    def fps_with(self) -> float:
        return 1.0 / self.frame_with_s

    @property
    def improvement(self) -> float:
        """Fractional fps gain from double buffering (Fig. 6.4's y-axis)."""
        return self.frame_without_s / self.frame_with_s - 1.0


def _draw_components(
    n: int, calib: Calibration
) -> tuple[float, float]:
    """(host-overlappable, device-render) split of the draw stage."""
    total = calib.cpu_model().draw_seconds(n)
    host = total * calib.draw_overlappable_fraction
    return host, total - host


def simulate_frames(
    n: int,
    params: BoidsParams,
    *,
    double_buffered: bool,
    frames: int = 12,
    calib: Calibration = DEFAULT_CALIBRATION,
    version: int = 5,
    gl_interop: bool = False,
) -> float:
    """Play ``frames`` demo frames on a timeline; return the steady-state
    frame period (warm-up frames excluded).

    ``gl_interop=True`` models the §3.2 OpenGL-interoperability path the
    paper left unused: the draw matrices stay on the device (the renderer
    reads a mapped buffer object), so fetching draw data costs only the
    map/unmap driver overhead instead of a PCIe transfer.
    """
    from repro.cuda.interop import MAP_OVERHEAD_S

    update = update_time(version, n, params, calib=calib)
    draw_host, draw_render = _draw_components(n, calib)
    matrix_bytes = DRAW_MATRIX_BYTES * n

    tl = DeviceTimeline(calib.pcie_model())
    tl.launch_overhead_s = calib.launch_overhead_s
    stamps: list[float] = []

    def device_update() -> None:
        # Host-resident substages (v1-v4) run on the host clock; kernels
        # are enqueued asynchronously; transfers block.
        with obs.span(
            "db.update",
            host_compute_s=update.host_compute_s,
            transfer_s=update.transfer_s,
            gpu_kernel_s=update.gpu_kernel_s,
        ):
            tl.host_work(update.host_compute_s)
            if update.transfer_s:
                tl.memcpy(0)  # implicit sync of input copies
                tl.host_time += update.transfer_s
                tl.device_busy_until = max(tl.device_busy_until, tl.host_time)
            if update.gpu_kernel_s:
                tl.launch_kernel(update.gpu_kernel_s)

    def fetch_draw_data() -> None:
        with obs.span(
            "db.fetch_draw", nbytes=matrix_bytes, gl_interop=gl_interop
        ):
            if gl_interop:
                # Map/unmap a registered buffer object: synchronize, no copy.
                tl.synchronize()
                tl.host_work(2 * MAP_OVERHEAD_S)
            else:
                tl.memcpy(matrix_bytes)
                # With double buffering the fetch lands while the device
                # computes the *next* step — those are the overlapped
                # bytes Fig. 6.4's gain comes from.
                obs.record_transfer(
                    "double-buffer-overlap" if double_buffered else "eager",
                    "d2h",
                    matrix_bytes,
                    label="draw-matrices",
                )

    def draw() -> None:
        with obs.span(
            "db.draw", host_s=draw_host, render_s=draw_render
        ):
            tl.host_work(draw_host)
            # Rendering occupies the device itself: queue it like a kernel.
            tl.launch_kernel(draw_render)

    if not double_buffered:
        for frame in range(frames):
            with obs.span("db.frame", frame=frame, double_buffered=False):
                device_update()
                fetch_draw_data()
                draw()
                tl.synchronize()  # frame ends when the render completes
            stamps.append(tl.host_time)
    else:
        device_update()  # pipeline priming: compute step 0
        fetch_draw_data()
        for frame in range(frames):
            with obs.span("db.frame", frame=frame, double_buffered=True):
                device_update()  # step n+1 starts while we draw step n
                draw()
                tl.synchronize()
                fetch_draw_data()  # step n+1's matrices into the other buffer
            stamps.append(tl.host_time)

    # Steady-state period: average of the later frames.
    tail = stamps[len(stamps) // 2 :]
    head = stamps[len(stamps) // 2 - 1]
    return (tail[-1] - head) / len(tail)


def compare(
    n: int,
    params: BoidsParams,
    calib: Calibration = DEFAULT_CALIBRATION,
    version: int = 5,
) -> FrameTimings:
    """Fig. 6.4's datapoint for one (population, think-frequency) cell."""
    return FrameTimings(
        n=n,
        frame_without_s=simulate_frames(
            n, params, double_buffered=False, calib=calib, version=version
        ),
        frame_with_s=simulate_frames(
            n, params, double_buffered=True, calib=calib, version=version
        ),
    )
