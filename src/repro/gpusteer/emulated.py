"""End-to-end emulated GPU Boids: every version through real CuPP calls.

This is the integration harness: agent state lives in ``cupp.Vector``
objects, kernels are launched through ``cupp.Kernel`` functors onto the
SIMT emulator, and the host-resident substages of versions 1-4 read the
vectors back through the lazy-copy machinery — exactly the data flow of
chapter 6, at populations small enough to emulate.

The paper's observable behaviours fall out and are asserted in the test
suite: version 5 never downloads agent state (only the draw matrices
cross the bus), version 1-2 re-upload positions every frame because the
host modification dirtied them, and the whole pipeline produces the same
flock the pure CPU reference computes.

Version 6 adds the chapter-7 spatial hash: each step downloads the
positions (lazy), rebuilds a ``cupp.containers.HashGrid`` on the host
("fast construction"), and the fused simulate kernel queries only the
27-cell neighborhood — O(n·k) instead of the all-pairs O(n²), with
bit-identical neighbor sets.
"""

from __future__ import annotations

import numpy as np

from repro.cupp.containers import HashGrid
from repro.cupp.device import Device
from repro.cupp.kernel import Kernel
from repro.cupp.vector import Vector
from repro.gpusteer.kernels_grid import simulate_grid
from repro.gpusteer.kernels_emu import (
    MAX_NEIGHBORS,
    find_neighbors_v1,
    find_neighbors_v2,
    modify_kernel,
    simulate_v3,
    simulate_v4,
)
from repro.steer.agent import spawn_agents
from repro.steer.behaviors import flocking_np
from repro.steer.params import BoidsParams, DEFAULT_PARAMS
from repro.steer.simulation import _truncate_rows


class EmulatedBoids:
    """One Boids population driven by emulated device kernels.

    Parameters
    ----------
    n:
        Agent count; must be a multiple of ``threads_per_block`` (the
        paper's kernels share the restriction, §6.2.1).
    version:
        Development version 1-5 (Table 6.1), or 6 — the chapter-7
        grid-bucketed neighbor search over ``cupp.containers``.
    """

    def __init__(
        self,
        n: int,
        version: int,
        params: BoidsParams = DEFAULT_PARAMS,
        seed: int | None = None,
        device: Device | None = None,
        threads_per_block: int = 32,
    ) -> None:
        if n % threads_per_block != 0:
            raise ValueError(
                f"agent count {n} must be a multiple of threads_per_block "
                f"({threads_per_block}) — §6.2.1"
            )
        if version not in (1, 2, 3, 4, 5, 6):
            raise ValueError(f"unknown development version {version}")
        self.version = version
        self.params = params
        self.n = n
        self.tpb = threads_per_block
        self.device = device or Device()
        self.step_count = 0

        agents = spawn_agents(n, params, seed)
        pos = np.array([a.position.as_tuple() for a in agents], np.float32)
        fwd = np.array([a.forward.as_tuple() for a in agents], np.float32)
        self.positions = Vector(pos.reshape(-1), dtype=np.float32)
        self.forwards = Vector(fwd.reshape(-1), dtype=np.float32)
        self.speeds = Vector(
            np.array([a.speed for a in agents], np.float32), dtype=np.float32
        )
        self.smoothed = Vector(np.zeros(3 * n, np.float32), dtype=np.float32)
        self.steering = Vector(np.zeros(3 * n, np.float32), dtype=np.float32)
        self.results = Vector(
            np.full(MAX_NEIGHBORS * n, -1, np.int32), dtype=np.int32
        )
        self.matrices = Vector(np.zeros(16 * n, np.float32), dtype=np.float32)
        p = params
        self.params_packed = Vector(
            np.array(
                [p.max_force, p.max_speed, p.mass, p.dt, p.accel_smoothing,
                 p.world_radius],
                np.float32,
            ),
            dtype=np.float32,
        )

        grid = n // threads_per_block
        self._k_neighbors = Kernel(
            find_neighbors_v1 if version == 1 else find_neighbors_v2,
            grid,
            threads_per_block,
        )
        if version == 6:
            simulate = simulate_grid
        elif version == 3:
            simulate = simulate_v3
        else:
            simulate = simulate_v4
        self._k_simulate = Kernel(simulate, grid, threads_per_block)
        self._k_modify = Kernel(modify_kernel, grid, threads_per_block)
        # v6: cell edge = search radius, so the 3x3x3 neighborhood covers
        # the query sphere; rebuilt each step from the fresh positions.
        self._grid = HashGrid(params.search_radius) if version == 6 else None

    # ------------------------------------------------------------------
    # host-side helpers (versions 1-4)
    # ------------------------------------------------------------------
    def _host_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        pos = self.positions.to_numpy().reshape(self.n, 3).astype(np.float64)
        fwd = self.forwards.to_numpy().reshape(self.n, 3).astype(np.float64)
        return pos, fwd

    def _host_steering_from_results(self) -> None:
        """v1/v2: the host computes the steering vectors from the device's
        neighbor indexes (reading ``results`` triggers the lazy download)."""
        neighbors = (
            self.results.to_numpy().reshape(self.n, MAX_NEIGHBORS).astype(np.int64)
        )
        pos, fwd = self._host_arrays()
        steer = flocking_np(pos, fwd, neighbors, self.params)
        self._write_vec3(self.steering, steer)

    def _host_modification(self) -> None:
        """Versions 1-4: the modification substage on the host (vectorized
        twin of the modify kernel, float64 on the host as in OpenSteer)."""
        p = self.params
        pos, fwd = self._host_arrays()
        speed = self.speeds.to_numpy().astype(np.float64)
        steer = self.steering.to_numpy().reshape(self.n, 3).astype(np.float64)
        smooth_old = (
            self.smoothed.to_numpy().reshape(self.n, 3).astype(np.float64)
        )

        force = _truncate_rows(steer, p.max_force)
        accel = force / p.mass
        if self.step_count == 0:
            smooth = accel
        else:
            smooth = smooth_old * (1.0 - p.accel_smoothing) + accel * p.accel_smoothing
        velocity = fwd * speed[:, None] + smooth * p.dt
        new_speed = np.linalg.norm(velocity, axis=1)
        over = new_speed > p.max_speed
        if over.any():
            velocity[over] *= (p.max_speed / new_speed[over])[:, None]
            new_speed[over] = p.max_speed
        pos = pos + velocity * p.dt
        outside = (pos**2).sum(axis=1) > p.world_radius**2
        if outside.any():
            pos[outside] = -pos[outside]
        moving = new_speed > 1e-12
        fwd[moving] = velocity[moving] / new_speed[moving][:, None]

        self._write_vec3(self.positions, pos)
        self._write_vec3(self.forwards, fwd)
        self._write_vec3(self.smoothed, smooth)
        for i, s in enumerate(new_speed):
            self.speeds[i] = s

    @staticmethod
    def _write_vec3(vec: Vector, rows: np.ndarray) -> None:
        flat = rows.astype(np.float32).reshape(-1)
        for i, v in enumerate(flat):
            vec[i] = v

    # ------------------------------------------------------------------
    def step(self) -> None:
        """One update stage through the version's device/host split."""
        p = self.params
        if self.version in (1, 2):
            self._k_neighbors(
                self.device, self.positions, p.search_radius, self.results
            )
            self._host_steering_from_results()
            self._host_modification()
        elif self.version in (3, 4):
            self._k_simulate(
                self.device,
                self.positions,
                self.forwards,
                p.search_radius,
                p.separation_weight,
                p.alignment_weight,
                p.cohesion_weight,
                self.steering,
            )
            self._host_modification()
        elif self.version == 6:
            # Chapter 7: host rebuild ("fast construction") from the lazy
            # position download, then the grid-bucketed fused kernel.
            self._grid.build(
                self.positions.to_numpy().reshape(self.n, 3)
            )
            self._k_simulate(
                self.device,
                self._grid,
                self.positions,
                self.forwards,
                p.search_radius,
                p.separation_weight,
                p.alignment_weight,
                p.cohesion_weight,
                self.steering,
                self.results,
            )
            self._k_modify(
                self.device,
                self.steering,
                self.positions,
                self.forwards,
                self.speeds,
                self.smoothed,
                self.params_packed,
                self.step_count,
                self.matrices,
            )
        else:  # version 5: the whole update stage on the device
            self._k_simulate(
                self.device,
                self.positions,
                self.forwards,
                p.search_radius,
                p.separation_weight,
                p.alignment_weight,
                p.cohesion_weight,
                self.steering,
            )
            self._k_modify(
                self.device,
                self.steering,
                self.positions,
                self.forwards,
                self.speeds,
                self.smoothed,
                self.params_packed,
                self.step_count,
                self.matrices,
            )
        self.step_count += 1

    def draw_data(self) -> np.ndarray:
        """The per-agent 4x4 matrices — version 5's only device->host
        traffic (§6.2.3)."""
        if self.version in (5, 6):
            return self.matrices.to_numpy().reshape(self.n, 4, 4)
        # Versions 1-4 build the matrices on the host.
        pos, fwd = self._host_arrays()
        mats = np.zeros((self.n, 4, 4), np.float32)
        up_hint = np.where(
            (np.abs(fwd[:, 1]) < 0.99)[:, None],
            np.array([0.0, 1.0, 0.0]),
            np.array([1.0, 0.0, 0.0]),
        )
        side = np.cross(fwd, up_hint)
        side /= np.maximum(np.linalg.norm(side, axis=1, keepdims=True), 1e-12)
        up = np.cross(side, fwd)
        mats[:, 0, :3] = side
        mats[:, 1, :3] = up
        mats[:, 2, :3] = fwd
        mats[:, 3, :3] = pos
        mats[:, 3, 3] = 1.0
        return mats

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, np.ndarray]:
        """Host view of the agent state (triggers lazy downloads)."""
        return {
            "positions": self.positions.to_numpy().reshape(self.n, 3),
            "forwards": self.forwards.to_numpy().reshape(self.n, 3),
            "speeds": self.speeds.to_numpy().copy(),
        }

    def neighbor_sets(self) -> np.ndarray:
        """The device-computed neighbor indexes (versions 1/2 and 6)."""
        return self.results.to_numpy().reshape(self.n, MAX_NEIGHBORS)
