"""Grid-accelerated neighbor search — chapter 7's future work, built.

"Regarding the example application ... spatial data structures could
improve the neighbor search performance.  Data structures must be
constructed at the host, due to the low arithmetic intensity of such a
process, and then be transferred to the GPU.  With CuPP it would be easy
to use two different data representations, the host data structure could
be designed for fast construction, whereas the device data structure
could be designed for fast memory transfer to device memory and fast
neighborhood lookup."

Exactly that:

* :class:`HostGrid` — built on the host in O(n) (append into a
  dict-of-cells; "fast construction");
* :class:`DeviceGrid` — its ``device_type``: two flat CSR arrays ("fast
  memory transfer ... and fast neighborhood lookup");
* :func:`find_neighbors_grid` — the device kernel: each agent scans only
  the 27 cells around it instead of all ``n`` agents.

Cell edge = search radius, so the 3x3x3 neighborhood is guaranteed to
contain every agent within the radius; the kernel therefore returns the
*identical* neighbor sets the brute-force kernels return (asserted in
the test suite), while testing a small fraction of the candidates.
"""

from __future__ import annotations

import pickle

import numpy as np

from repro.cuda.qualifiers import global_
from repro.cupp.device import Device
from repro.cupp.device_reference import DeviceReference
from repro.cupp.memory1d import Memory1D
from repro.cupp.traits import ConstRef, Ref
from repro.cupp.vector import DeviceVector
from repro.simgpu import devicelib as dl
from repro.simgpu.costs import OpClass
from repro.simgpu.isa import ld, op, reconv
from repro.simgpu.memory import DeviceArrayView, DevicePtr

from repro.gpusteer.kernels_emu import (
    _candidate_test,
    _insert_neighbor,
    _write_results,
)


class DeviceGrid:
    """CSR cell lists in global memory + the grid geometry."""

    kernel_arg_size = 16
    host_type: type = None  # bound below (listing 4.6)
    device_type: type = None

    def __init__(
        self,
        starts: DeviceArrayView,
        members: DeviceArrayView,
        cells_per_axis: int,
        extent: float,
    ) -> None:
        self.starts = starts
        self.members = members
        self.cells_per_axis = cells_per_axis
        self.extent = extent

    def pack(self) -> np.ndarray:
        meta = (
            self.starts.ptr.addr,
            self.starts.count,
            self.members.ptr.addr,
            self.members.count,
            self.cells_per_axis,
            self.extent,
        )
        return np.frombuffer(pickle.dumps(meta), dtype=np.uint8).copy()

    @classmethod
    def unpack(cls, blob: np.ndarray, device: Device) -> "DeviceGrid":
        s_addr, s_n, m_addr, m_n, cpa, extent = pickle.loads(blob.tobytes())
        mem = device.sim.memory
        return cls(
            DeviceArrayView(mem, DevicePtr(s_addr), np.dtype(np.int32), s_n),
            DeviceArrayView(mem, DevicePtr(m_addr), np.dtype(np.int32), m_n),
            cpa,
            extent,
        )


class HostGrid:
    """Uniform grid over the world, rebuilt on the host every frame."""

    host_type: type = None
    device_type = DeviceGrid

    def __init__(self, world_radius: float, cell_edge: float) -> None:
        # Positions can overshoot the sphere by one step before wrapping;
        # pad the extent so no point is ever clamped across a cell.
        self.extent = world_radius * 1.05 + cell_edge
        self.cells_per_axis = max(1, int(2 * self.extent / cell_edge))
        self.cell_edge = 2 * self.extent / self.cells_per_axis
        self._starts: np.ndarray | None = None
        self._members: np.ndarray | None = None
        self._blocks: list[Memory1D] = []

    @property
    def total_cells(self) -> int:
        return self.cells_per_axis**3

    def cell_coords(self, positions: np.ndarray) -> np.ndarray:
        scaled = (positions + self.extent) / (2 * self.extent)
        return np.clip(
            (scaled * self.cells_per_axis).astype(np.int64),
            0,
            self.cells_per_axis - 1,
        )

    def build(self, positions: np.ndarray) -> None:
        """O(n) counting-sort build ("fast construction")."""
        ijk = self.cell_coords(positions)
        c = self.cells_per_axis
        flat = ijk[:, 0] + ijk[:, 1] * c + ijk[:, 2] * c * c
        counts = np.bincount(flat, minlength=self.total_cells)
        starts = np.zeros(self.total_cells + 1, dtype=np.int32)
        np.cumsum(counts, out=starts[1:])
        members = np.argsort(flat, kind="stable").astype(np.int32)
        self._starts = starts
        self._members = members

    # --- the CuPP protocol (§4.4/§4.5) ----------------------------------
    def transform(self, device: Device) -> DeviceGrid:
        if self._starts is None:
            raise RuntimeError("HostGrid.build() must run before transfer")
        s = Memory1D.from_host(device, self._starts)
        m = Memory1D.from_host(
            device,
            self._members if self._members.size else np.zeros(1, np.int32),
        )
        self._blocks = [s, m]  # keep allocations alive across the launch
        return DeviceGrid(s.view(), m.view(), self.cells_per_axis, self.extent)

    def get_device_reference(self, device: Device) -> DeviceReference:
        return DeviceReference(device, self.transform(device))


HostGrid.host_type = HostGrid
DeviceGrid.device_type = DeviceGrid
DeviceGrid.host_type = HostGrid


def project_cost(
    profile_small,
    profile_big,
    n_small: int,
    n_big: int,
    n_target: int,
    threads_per_block: int,
    costs=None,
):
    """Extrapolate a kernel's cost to ``n_target`` agents.

    Measures at two emulable populations *in the same world* (so density
    scales with n), fits the per-warp work as ``a + b*n`` (fixed per-agent
    overhead + per-candidate work whose candidate count grows with n), and
    evaluates at the target.  Returns a
    :class:`~repro.simgpu.perfmodel.KernelCostInputs`.
    """
    import math

    from repro.simgpu.costs import G80_COSTS
    from repro.simgpu.perfmodel import KernelCostInputs

    costs = costs or G80_COSTS

    def per_warp(profile, n, extract):
        warps = n / 32
        return extract(profile) / warps

    def fit(extract):
        y1 = per_warp(profile_small, n_small, extract)
        y2 = per_warp(profile_big, n_big, extract)
        b = (y2 - y1) / (n_big - n_small)
        a = y1 - b * n_small
        return max(0.0, a + b * n_target)

    warps_target = math.ceil(n_target / 32)
    blocks = math.ceil(n_target / threads_per_block)
    return KernelCostInputs(
        blocks=blocks,
        threads_per_block=threads_per_block,
        issue_cycles=int(fit(lambda p: p.issue_cycles(costs)) * warps_target),
        global_reads=int(fit(lambda p: p.global_reads) * warps_target),
        bytes_moved=int(
            fit(lambda p: p.bytes_read + p.bytes_written) * warps_target
        ),
        registers_per_thread=14,
    )


@global_
def find_neighbors_grid(
    ctx,
    grid: ConstRef[DeviceGrid],
    positions: ConstRef[DeviceVector],
    search_radius: float,
    results: Ref[DeviceVector],
):
    """Listing 5.2's semantics over the 27-cell neighborhood."""
    i = ctx.global_thread_id
    my_pos = yield from dl.ld_vec3(positions.view, i)
    yield op(OpClass.FMUL)
    r2 = search_radius * search_radius

    # Locate my cell (scale + clamp: a handful of arithmetic issues).
    cpa = grid.cells_per_axis
    yield op(OpClass.FADD, 3)
    yield op(OpClass.FMUL, 3)
    yield op(OpClass.MINMAX, 6)
    ijk = [
        min(max(int((my_pos[a] + grid.extent) / (2 * grid.extent) * cpa), 0), cpa - 1)
        for a in range(3)
    ]

    best: list = []
    for dz in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dx in (-1, 0, 1):
                yield dl.iadd(3)
                yield dl.compare(3)
                x, y, z = ijk[0] + dx, ijk[1] + dy, ijk[2] + dz
                if not (0 <= x < cpa and 0 <= y < cpa and 0 <= z < cpa):
                    yield reconv()
                    continue
                cell = x + y * cpa + z * cpa * cpa
                yield dl.iadd(2)
                start = yield ld(grid.starts, cell)
                stop = yield ld(grid.starts, cell + 1)
                for slot in range(start, stop):
                    yield dl.compare()
                    yield dl.iadd()
                    j = yield ld(grid.members, slot)
                    other = yield from dl.ld_vec3(positions.view, j)
                    in_radius, d2 = yield from _candidate_test(
                        my_pos, other, r2, j, i
                    )
                    if in_radius:
                        yield from _insert_neighbor(best, d2, j)
                    yield reconv()
                yield reconv()
    yield from _write_results(results.view, i, best)
