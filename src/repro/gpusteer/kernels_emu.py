"""The Boids device kernels, written for the SIMT emulator (paper ch. 6).

These are the paper's kernels transcribed into the simulator's
event-generator dialect.  Data layout matches the GPU port: each agent
attribute is a flat float32 array (``positions[3*i .. 3*i+2]`` is agent
``i``'s position), neighbor results are ``7`` int32 slots per agent, and
agent count must be a multiple of ``threads_per_block`` (§6.2.1 — the
paper's kernels have the same restriction, which keeps every barrier
uniform across the block).

Kernel inventory (Table 6.1):

=======  ===========================================================
version  device code
=======  ===========================================================
1        ``find_neighbors_v1`` — naive neighbor search, global memory
2        ``find_neighbors_v2`` — neighbor search with shared-memory tile
3        ``simulate_v3`` — full simulation substage, local-memory cache
4        ``simulate_v4`` — full simulation substage, recompute
5        v4's simulate + ``modify_kernel`` (modification on device,
         shared memory as extra thread-local storage)
=======  ===========================================================
"""

from __future__ import annotations

import numpy as np

from repro.cuda.qualifiers import global_
from repro.cupp.traits import ConstRef, Ref
from repro.cupp.vector import DeviceVector
from repro.simgpu import devicelib as dl
from repro.simgpu.costs import OpClass
from repro.simgpu.isa import ld, op, reconv, st, sync

#: Neighbor-slot count (§5.2.1: "We only consider the 7 nearest").
MAX_NEIGHBORS = 7

NO_NEIGHBOR = -1


# ----------------------------------------------------------------------
# building blocks
# ----------------------------------------------------------------------
def _insert_neighbor(best: list, d2: float, j: int):
    """The listing 5.2 keep-7-nearest insert, with instruction events.

    ``best`` is a register-resident list of (d2, index) pairs (registers
    cost nothing, Table 2.2); the *instructions* — compares, the max-scan
    when full — are what we account.

    Comparisons are lexicographic on ``(d2, index)``, which makes the
    kept set *the* seven smallest (d2, index) pairs regardless of
    insertion order — candidates may arrive in any traversal order (the
    all-pairs scan, the shared-memory tiles, a grid's bucket-by-bucket
    enumeration) and every engine converges on the identical neighbor
    set, ties included.  Tied distances are measure-zero for continuous
    random positions, so the index tiebreak changes no instruction
    count and no non-degenerate result.
    """
    yield dl.compare()  # neighbors_found < 7 ?
    yield dl.branch()
    if len(best) < MAX_NEIGHBORS:
        best.append((d2, j))
        yield dl.iadd()  # ++neighbors_found
    else:
        # Scan the 7 slots for the farthest stored neighbor.
        worst = 0
        for k in range(1, MAX_NEIGHBORS):
            yield dl.compare()
            if best[k] > best[worst]:
                worst = k
        yield dl.compare()  # (d2, index)(worst) > (d2, index)(new) ?
        yield dl.branch()
        if best[worst] > (d2, j):
            best[worst] = (d2, j)


def _candidate_test(my_pos, other_pos, r2: float, j: int, my_index: int):
    """Listing 6.3's per-candidate test: offset, d2, radius + self check.

    Returns (in_radius, d2).
    """
    offset = yield from dl.sub3(my_pos, other_pos)
    d2 = yield from dl.length_squared3(offset)
    yield dl.compare(2)  # d2 < r2 && global_index != my_index
    yield dl.branch()
    return (d2 < r2 and j != my_index), d2


def _flocking_steering(my_fwd, gathered, forwards_view, weights):
    """Device-side listing 5.1 from gathered neighbor data.

    ``gathered`` holds (d2, index, offset) triples already in registers
    (offset = neighbor_position - my_position).  Returns the weighted
    steering vector.
    """
    sep = dl.ZERO3
    coh = dl.ZERO3
    ali_sum = dl.ZERO3
    count = 0
    for d2, j, offset in gathered:
        inv = yield from dl.rsqrt(d2)
        # separation -= offset.normalize() / length  == offset / d2
        yield op(OpClass.FMUL)  # inv * inv
        contrib = yield from dl.scale3(offset, inv * inv)
        sep = yield from dl.sub3(sep, contrib)
        coh = yield from dl.add3(coh, offset)
        fwd_j = yield from dl.ld_vec3(forwards_view, j)
        ali_sum = yield from dl.add3(ali_sum, fwd_j)
        count += 1
        yield dl.iadd()
    yield reconv()  # neighbor counts differ per thread; re-join here
    scaled_fwd = yield from dl.scale3(my_fwd, float(count))
    ali = yield from dl.sub3(ali_sum, scaled_fwd)

    w_sep, w_ali, w_coh = weights
    sep_n = yield from dl.normalize3(sep)
    ali_n = yield from dl.normalize3(ali)
    coh_n = yield from dl.normalize3(coh)
    a = yield from dl.scale3(sep_n, w_sep)
    b = yield from dl.scale3(ali_n, w_ali)
    c = yield from dl.scale3(coh_n, w_coh)
    ab = yield from dl.add3(a, b)
    return (yield from dl.add3(ab, c))


def _write_results(results_view, i: int, best: list):
    """Store the found neighbor indexes (7 int32 per agent), sorted by
    distance so every engine reports the identical canonical order."""
    best = sorted(best)
    for slot in range(MAX_NEIGHBORS):
        value = best[slot][1] if slot < len(best) else NO_NEIGHBOR
        yield st(results_view, i * MAX_NEIGHBORS + slot, value)


# ----------------------------------------------------------------------
# Version 1: naive neighbor search (§6.2.1, "hardly more than copy and
# paste of the CPU code") — every thread reads every position from
# global memory; same-address reads do not coalesce.
# ----------------------------------------------------------------------
@global_
def find_neighbors_v1(
    ctx,
    positions: ConstRef[DeviceVector],
    search_radius: float,
    results: Ref[DeviceVector],
):
    """Listing 5.2 on the device, reading every candidate from global
    memory — same-address warp reads never coalesce (version 1)."""
    i = ctx.global_thread_id
    n = len(positions) // 3
    my_pos = yield from dl.ld_vec3(positions.view, i)
    yield op(OpClass.FMUL)  # r2 = search_radius * search_radius
    r2 = search_radius * search_radius
    best: list = []
    for j in range(n):
        yield dl.compare()  # loop condition
        yield dl.iadd()  # ++j
        other = yield from dl.ld_vec3(positions.view, j)
        in_radius, d2 = yield from _candidate_test(my_pos, other, r2, j, i)
        if in_radius:
            yield from _insert_neighbor(best, d2, j)
        yield reconv()  # post-dominator of the insert branch
    yield from _write_results(results.view, i, best)


# ----------------------------------------------------------------------
# Version 2: shared-memory tiling (listings 6.2 + 6.3) — each thread
# stages one position per tile, the block scans the tile from shared
# memory.  Global reads per block drop from threads_per_block * n to n.
# ----------------------------------------------------------------------
@global_
def find_neighbors_v2(
    ctx,
    positions: ConstRef[DeviceVector],
    search_radius: float,
    results: Ref[DeviceVector],
):
    """Listings 6.2/6.3: the shared-memory tiled neighbor search
    (version 2) — one staged global read per tile element per block."""
    i = ctx.global_thread_id
    tpb = ctx.block_dim.x
    n = len(positions) // 3
    s_positions = ctx.shared_array("s_positions", np.float32, tpb * 3)

    my_pos = yield from dl.ld_vec3(positions.view, i)
    yield op(OpClass.FMUL)
    r2 = search_radius * search_radius
    best: list = []
    for base in range(0, n, tpb):
        yield dl.compare()
        yield dl.iadd()
        # Each thread stages one element of the tile (listing 6.2 line 8).
        staged = yield from dl.ld_vec3(positions.view, base + ctx.thread_idx.x)
        yield from dl.sts_vec3(s_positions, ctx.thread_idx.x, staged)
        yield sync()
        for t in range(tpb):
            yield dl.compare()
            yield dl.iadd()
            j = base + t
            yield dl.iadd()  # global_index = base + i (listing 6.3)
            other = yield from dl.lds_vec3(s_positions, t)
            in_radius, d2 = yield from _candidate_test(my_pos, other, r2, j, i)
            if in_radius:
                yield from _insert_neighbor(best, d2, j)
            yield reconv()  # post-dominator of the insert branch
        yield sync()
    yield from _write_results(results.view, i, best)


# ----------------------------------------------------------------------
# Versions 3 & 4: the full simulation substage on the device (§6.2.2).
# Both do the v2 neighbor search, then compute the flocking steering
# vector.  v3 caches per-neighbor values (distance + offset) in *local*
# memory, which spills to device memory; v4 recomputes them instead and
# turned out faster on the G80.
# ----------------------------------------------------------------------
def _simulate_common(ctx, positions, forwards, search_radius, weights, cache):
    """Shared v3/v4 body.  ``cache`` selects the local-memory variant."""
    i = ctx.global_thread_id
    tpb = ctx.block_dim.x
    n = len(positions) // 3
    s_positions = ctx.shared_array("s_positions", np.float32, tpb * 3)
    local_cache = (
        ctx.local_array("neighbor_cache", np.float32, MAX_NEIGHBORS * 4)
        if cache
        else None
    )

    my_pos = yield from dl.ld_vec3(positions.view, i)
    my_fwd = yield from dl.ld_vec3(forwards.view, i)
    yield op(OpClass.FMUL)
    r2 = search_radius * search_radius
    best: list = []
    for base in range(0, n, tpb):
        yield dl.compare()
        yield dl.iadd()
        staged = yield from dl.ld_vec3(positions.view, base + ctx.thread_idx.x)
        yield from dl.sts_vec3(s_positions, ctx.thread_idx.x, staged)
        yield sync()
        for t in range(tpb):
            yield dl.compare()
            yield dl.iadd(2)
            j = base + t
            other = yield from dl.lds_vec3(s_positions, t)
            in_radius, d2 = yield from _candidate_test(my_pos, other, r2, j, i)
            if in_radius:
                yield from _insert_neighbor(best, d2, j)
                if cache and (d2, j) in best:
                    # v3: the candidate was kept — persist (d2, offset) in
                    # its slot of the *local-memory* cache.  Dynamic slot
                    # indexing forces the array to device memory, so these
                    # are 4 spilled float stores (Table 2.1).
                    slot = best.index((d2, j))
                    yield st(local_cache, slot * 4, d2)
                    yield op(OpClass.FADD, 3)  # offset = other - my_pos
                    yield st(local_cache, slot * 4 + 1, other[0] - my_pos[0])
                    yield st(local_cache, slot * 4 + 2, other[1] - my_pos[1])
                    yield st(local_cache, slot * 4 + 3, other[2] - my_pos[2])
            yield reconv()  # post-dominator of the insert/cache branch
        yield sync()

    # Gather per-neighbor (d2, offset) for the steering calculation.
    # Canonical nearest-first order so all engines agree bit-for-bit.
    order = sorted(range(len(best)), key=lambda k: best[k])
    gathered = []
    for slot in order:
        d2, j = best[slot]
        if cache:
            # v3: read the cached values back from spilled local memory
            # (4 device-memory reads, the cost that makes v3 lose to v4).
            cd2 = yield ld(local_cache, slot * 4)
            ox = yield ld(local_cache, slot * 4 + 1)
            oy = yield ld(local_cache, slot * 4 + 2)
            oz = yield ld(local_cache, slot * 4 + 3)
            gathered.append((cd2, j, (ox, oy, oz)))
        else:
            # v4: recompute from the position data instead.
            npos = yield from dl.ld_vec3(positions.view, j)
            offset = yield from dl.sub3(npos, my_pos)
            rd2 = yield from dl.length_squared3(offset)
            gathered.append((rd2, j, offset))
    yield reconv()  # gather loop length differs per thread
    steering = yield from _flocking_steering(
        my_fwd, gathered, forwards.view, weights
    )
    return i, best, steering


@global_
def simulate_v3(
    ctx,
    positions: ConstRef[DeviceVector],
    forwards: ConstRef[DeviceVector],
    search_radius: float,
    w_sep: float,
    w_ali: float,
    w_coh: float,
    steering_out: Ref[DeviceVector],
):
    """Version 3: the full simulation substage with the per-neighbor
    cache in (spilled) local memory (§6.2.2)."""
    i, _best, steering = yield from _simulate_common(
        ctx, positions, forwards, search_radius, (w_sep, w_ali, w_coh), True
    )
    yield from dl.st_vec3(steering_out.view, i, steering)


@global_
def simulate_v4(
    ctx,
    positions: ConstRef[DeviceVector],
    forwards: ConstRef[DeviceVector],
    search_radius: float,
    w_sep: float,
    w_ali: float,
    w_coh: float,
    steering_out: Ref[DeviceVector],
):
    """Version 4: the full simulation substage, recomputing neighbor
    data instead of caching it — the variant that won on the G80."""
    i, _best, steering = yield from _simulate_common(
        ctx, positions, forwards, search_radius, (w_sep, w_ali, w_coh), False
    )
    yield from dl.st_vec3(steering_out.view, i, steering)


# ----------------------------------------------------------------------
# Version 5: the modification substage on the device (§6.2.3).  Shared
# memory is used as an *extension of thread-local storage* so the vehicle
# state scratch does not spill to device memory.
# ----------------------------------------------------------------------
@global_
def modify_kernel(
    ctx,
    steering: ConstRef[DeviceVector],
    positions: Ref[DeviceVector],
    forwards: Ref[DeviceVector],
    speeds: Ref[DeviceVector],
    smoothed: Ref[DeviceVector],
    params_packed: ConstRef[DeviceVector],
    step_index: int,
    matrices_out: Ref[DeviceVector],
):
    """Version 5: the modification substage on the device (§6.2.3) —
    vehicle model, world wrap, and the 4x4 draw-matrix store, with
    shared memory as extra thread-local scratch."""
    i = ctx.global_thread_id
    tpb = ctx.block_dim.x
    # §6.2.3: shared memory as extra thread-local storage (one float3
    # scratch slot per thread) so the intermediate vector stays on chip.
    scratch = ctx.shared_array("v5_scratch", np.float32, tpb * 3)

    # Unpack the simulation parameters from constant-style global memory.
    max_force = yield ld(params_packed.view, 0)
    max_speed = yield ld(params_packed.view, 1)
    mass = yield ld(params_packed.view, 2)
    dt = yield ld(params_packed.view, 3)
    smoothing = yield ld(params_packed.view, 4)
    world_r = yield ld(params_packed.view, 5)

    steer = yield from dl.ld_vec3(steering.view, i)
    # Clip the steering force to max_force (truncate_length).
    f2 = yield from dl.length_squared3(steer)
    yield dl.compare()
    yield dl.branch()  # division-through-zero guard (§6.3.1)
    if f2 > max_force * max_force:
        inv = yield from dl.rsqrt(f2)
        yield op(OpClass.FMUL)
        steer = yield from dl.scale3(steer, max_force * inv)
    yield reconv()
    yield op(OpClass.FMUL, 3)  # accel = force / mass
    accel = (steer[0] / mass, steer[1] / mass, steer[2] / mass)

    yield dl.compare()
    yield dl.branch()  # "prevent calculation not needed in the first step"
    if step_index == 0:
        smooth = accel
    else:
        old = yield from dl.ld_vec3(smoothed.view, i)
        a = yield from dl.scale3(old, 1.0 - smoothing)
        b = yield from dl.scale3(accel, smoothing)
        smooth = yield from dl.add3(a, b)
    yield reconv()
    yield from dl.st_vec3(smoothed.view, i, smooth)
    # Stage the smoothed acceleration in the shared scratch (on-chip).
    yield from dl.sts_vec3(scratch, ctx.thread_idx.x, smooth)

    fwd = yield from dl.ld_vec3(forwards.view, i)
    speed = yield ld(speeds.view, i)
    vel_base = yield from dl.scale3(fwd, speed)
    smooth = yield from dl.lds_vec3(scratch, ctx.thread_idx.x)
    delta = yield from dl.scale3(smooth, dt)
    velocity = yield from dl.add3(vel_base, delta)

    v2 = yield from dl.length_squared3(velocity)
    yield dl.compare()
    yield dl.branch()
    if v2 > max_speed * max_speed:
        inv = yield from dl.rsqrt(v2)
        yield op(OpClass.FMUL)
        velocity = yield from dl.scale3(velocity, max_speed * inv)
        new_speed = max_speed
    else:
        inv = yield from dl.rsqrt(v2)
        yield op(OpClass.FMUL)
        new_speed = v2 * inv  # sqrt(v2)
    yield reconv()

    pos = yield from dl.ld_vec3(positions.view, i)
    step_vec = yield from dl.scale3(velocity, dt)
    pos = yield from dl.add3(pos, step_vec)
    # Spherical world wrap (§5.1).
    p2 = yield from dl.length_squared3(pos)
    yield dl.compare()
    yield dl.branch()
    if p2 > world_r * world_r:
        yield op(OpClass.FMUL, 3)
        pos = (-pos[0], -pos[1], -pos[2])
    yield reconv()
    yield from dl.st_vec3(positions.view, i, pos)

    yield dl.compare()
    yield dl.branch()  # division-through-zero guard
    if new_speed > 1e-12:
        yield op(OpClass.FMUL, 4)
        fwd = (
            velocity[0] / new_speed,
            velocity[1] / new_speed,
            velocity[2] / new_speed,
        )
    yield reconv()
    yield from dl.st_vec3(forwards.view, i, fwd)
    yield st(speeds.view, i, new_speed)

    # Build the 4x4 draw matrix — the only data the host reads back (§6.2.3).
    up_hint = (0.0, 1.0, 0.0) if abs(fwd[1]) < 0.99 else (1.0, 0.0, 0.0)
    yield dl.compare()
    yield dl.branch()
    yield op(OpClass.FMUL, 6)
    yield op(OpClass.FADD, 3)  # cross product
    side = (
        fwd[1] * up_hint[2] - fwd[2] * up_hint[1],
        fwd[2] * up_hint[0] - fwd[0] * up_hint[2],
        fwd[0] * up_hint[1] - fwd[1] * up_hint[0],
    )
    side = yield from dl.normalize3(side)
    yield op(OpClass.FMUL, 6)
    yield op(OpClass.FADD, 3)
    up = (
        side[1] * fwd[2] - side[2] * fwd[1],
        side[2] * fwd[0] - side[0] * fwd[2],
        side[0] * fwd[1] - side[1] * fwd[0],
    )
    mat = (
        side[0], side[1], side[2], 0.0,
        up[0], up[1], up[2], 0.0,
        fwd[0], fwd[1], fwd[2], 0.0,
        pos[0], pos[1], pos[2], 1.0,
    )
    for c, value in enumerate(mat):
        yield st(matrices_out.view, i * 16 + c, value)
