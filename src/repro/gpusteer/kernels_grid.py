"""Version 6: grid-bucketed neighbor search over ``cupp.containers``.

The chapter-7 sketch, industrialized: agents are bucketed into a
:class:`~repro.cupp.containers.hashgrid.HashGrid` on the host (O(n)
counting sort, "fast construction"), then the device queries only the
27 cells around each agent ("fast neighborhood lookup") — O(n·k)
total instead of the all-pairs O(n²) of versions 1-5.

Two kernels:

* :func:`find_neighbors_hash` — the standalone query pass (the grid
  twin of ``find_neighbors_v1/v2``): probe the cell directory, scan the
  member segments, keep the 7 nearest, store the result slots.
* :func:`simulate_grid` — the fused v6 kernel (the grid twin of
  ``simulate_v4``): the same query, then the flocking steering computed
  in-place from recomputed neighbor data, plus the result slots so the
  neighbor sets stay observable.

Cell edge = search radius guarantees the 3x3x3 neighborhood contains
every agent within the radius, so both kernels return *bit-identical*
neighbor sets to the all-pairs kernels — including under tied
distances, because ``_insert_neighbor`` selects the smallest seven
``(d2, index)`` pairs regardless of traversal order.
"""

from __future__ import annotations

from repro.cuda.qualifiers import global_
from repro.cupp.containers.flatmap import device_map_get
from repro.cupp.containers.hashgrid import (
    _AXIS_MAX,
    CELL_KEY_BITS,
    DeviceHashGrid,
    axis_cell,
)
from repro.cupp.traits import ConstRef, Ref
from repro.cupp.vector import DeviceVector
from repro.simgpu import devicelib as dl
from repro.simgpu.costs import OpClass
from repro.simgpu.isa import ld, op, reconv

from repro.gpusteer.kernels_emu import (
    _candidate_test,
    _flocking_steering,
    _insert_neighbor,
    _write_results,
)


def _grid_scan(grid: DeviceHashGrid, positions_view, my_pos, r2, i):
    """The shared query pass: keep-7 over the 27-cell neighborhood.

    Yields instruction events; returns the ``best`` list of (d2, index)
    pairs.  Candidate enumeration order (cells x-major, members in
    stable index order) matches ``HashGrid.candidates`` — and with the
    lexicographic insert the kept set does not depend on it anyway.
    """
    # Locate my cell (float64 divide + floor + bias/clamp per axis).
    yield op(OpClass.FMUL, 3)
    yield op(OpClass.FADD, 3)
    yield op(OpClass.MINMAX, 6)
    cx = axis_cell(my_pos[0], grid.cell_edge)
    cy = axis_cell(my_pos[1], grid.cell_edge)
    cz = axis_cell(my_pos[2], grid.cell_edge)

    best: list = []
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            for dz in (-1, 0, 1):
                yield dl.iadd(3)
                yield dl.compare(3)
                x, y, z = cx + dx, cy + dy, cz + dz
                if not (
                    0 <= x <= _AXIS_MAX
                    and 0 <= y <= _AXIS_MAX
                    and 0 <= z <= _AXIS_MAX
                ):
                    yield reconv()
                    continue
                # Pack the neighbor cell key (two shifts + two ors).
                yield dl.iadd(4)
                key = (
                    (x << (2 * CELL_KEY_BITS)) | (y << CELL_KEY_BITS) | z
                )
                segment = yield from device_map_get(grid.cells, key)
                yield dl.compare()
                yield dl.branch()
                if segment < 0:
                    yield reconv()
                    continue
                start = yield ld(grid.starts, segment)
                stop = yield ld(grid.starts, segment + 1)
                for slot in range(start, stop):
                    yield dl.compare()
                    yield dl.iadd()
                    j = yield ld(grid.members, slot)
                    other = yield from dl.ld_vec3(positions_view, j)
                    in_radius, d2 = yield from _candidate_test(
                        my_pos, other, r2, j, i
                    )
                    if in_radius:
                        yield from _insert_neighbor(best, d2, j)
                    yield reconv()
                yield reconv()
    return best


@global_
def find_neighbors_hash(
    ctx,
    grid: ConstRef[DeviceHashGrid],
    positions: ConstRef[DeviceVector],
    search_radius: float,
    results: Ref[DeviceVector],
):
    """The standalone grid query pass: listing 5.2's semantics over the
    hash grid's 27-cell neighborhood."""
    i = ctx.global_thread_id
    my_pos = yield from dl.ld_vec3(positions.view, i)
    yield op(OpClass.FMUL)
    r2 = search_radius * search_radius
    best = yield from _grid_scan(grid, positions.view, my_pos, r2, i)
    yield from _write_results(results.view, i, best)


@global_
def simulate_grid(
    ctx,
    grid: ConstRef[DeviceHashGrid],
    positions: ConstRef[DeviceVector],
    forwards: ConstRef[DeviceVector],
    search_radius: float,
    w_sep: float,
    w_ali: float,
    w_coh: float,
    steering_out: Ref[DeviceVector],
    results: Ref[DeviceVector],
):
    """Version 6: the full simulation substage with grid-bucketed
    neighbor search — v4's recompute gather and steering, fed by the
    hash grid instead of the all-pairs tile scan."""
    i = ctx.global_thread_id
    my_pos = yield from dl.ld_vec3(positions.view, i)
    my_fwd = yield from dl.ld_vec3(forwards.view, i)
    yield op(OpClass.FMUL)
    r2 = search_radius * search_radius
    best = yield from _grid_scan(grid, positions.view, my_pos, r2, i)
    yield from _write_results(results.view, i, best)

    # Gather per-neighbor (d2, offset) in canonical nearest-first order,
    # recomputing from the position data (the v4 strategy that won).
    order = sorted(range(len(best)), key=lambda k: best[k])
    gathered = []
    for slot in order:
        _d2, j = best[slot]
        npos = yield from dl.ld_vec3(positions.view, j)
        offset = yield from dl.sub3(npos, my_pos)
        rd2 = yield from dl.length_squared3(offset)
        gathered.append((rd2, j, offset))
    yield reconv()  # gather loop length differs per thread
    steering = yield from _flocking_steering(
        my_fwd, gathered, forwards.view, (w_sep, w_ali, w_coh)
    )
    yield from dl.st_vec3(steering_out.view, i, steering)
