"""Paper-scale GPU Boids runs: functional state + modelled timing.

At benchmark populations (1024-32768 agents) the per-thread emulator is
out of reach, so :class:`GpuBoidsRun` advances the *functional* flock
with the vectorized engines (the same mathematics the kernels execute —
``tests/gpusteer`` proves the equivalence on emulated populations) and
charges every frame its modelled cost: host substages from the CPU cost
model, kernels from the closed-form counts through the analytic SIMT
model, transfers from the PCIe model.

The workload statistics that drive the divergence terms are *measured*
from the live flock each sampling interval, so clustering feeds back into
kernel cost exactly as the paper describes (§6.3: the performance drop at
32768 agents "is not only based on the complexity of the neighbor search,
but also on the number of times a warp diverges").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpusteer.cost_model import WorkloadStats
from repro.gpusteer.double_buffer import compare as compare_double_buffering
from repro.gpusteer.versions import UpdateBreakdown, update_time
from repro.steer.params import BoidsParams, DEFAULT_PARAMS
from repro.steer.simulation import Simulation


@dataclass
class RunResult:
    """Outcome of a modelled GPU Boids run."""

    version: int
    n: int
    updates_per_second: float
    update_breakdown: UpdateBreakdown
    stats: WorkloadStats
    final_positions: np.ndarray


class GpuBoidsRun:
    """Advance a real flock, time it with the version model."""

    def __init__(
        self,
        n: int,
        version: int = 5,
        params: BoidsParams = DEFAULT_PARAMS,
        seed: int | None = None,
        calib: Calibration = DEFAULT_CALIBRATION,
        engine: str = "auto",
    ) -> None:
        self.version = version
        self.params = params
        self.calib = calib
        self.sim = Simulation(
            n, params, seed=seed, engine=engine, cpu_model=calib.cpu_model()
        )

    def run(self, steps: int = 10, measure_stats: bool = True) -> RunResult:
        """Advance ``steps`` frames; model the steady-state update rate
        from the final (clustered) configuration."""
        with obs.span(
            "gpusteer.run", version=self.version, n=self.sim.n, steps=steps
        ) as span:
            for step in range(steps):
                with obs.span("gpusteer.step", step=step):
                    self.sim.update()
            if measure_stats:
                stats = WorkloadStats.measure(self.sim.positions, self.params)
            else:
                stats = WorkloadStats.estimate(
                    self.sim.n, self.params, self.calib.density_clustering
                )
            breakdown = update_time(
                self.version, self.sim.n, self.params, stats, self.calib
            )
            span.set(
                updates_per_second=breakdown.updates_per_second,
                host_compute_s=breakdown.host_compute_s,
                gpu_kernel_s=breakdown.gpu_kernel_s,
                transfer_s=breakdown.transfer_s,
            )
        return RunResult(
            version=self.version,
            n=self.sim.n,
            updates_per_second=breakdown.updates_per_second,
            update_breakdown=breakdown,
            stats=stats,
            final_positions=self.sim.positions.copy(),
        )


def version_ladder(
    n: int = 4096,
    params: BoidsParams = DEFAULT_PARAMS,
    steps: int = 10,
    seed: int | None = None,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> dict[int, RunResult]:
    """Fig. 6.2's dataset: one run per development version, including the
    CPU baseline as version 0, all on the same measured flock."""
    sim = Simulation(n, params, seed=seed, engine="auto", cpu_model=calib.cpu_model())
    with obs.span("gpusteer.version_ladder", n=n, steps=steps):
        for _ in range(steps):
            sim.update()
        stats = WorkloadStats.measure(sim.positions, params)
    out: dict[int, RunResult] = {}
    for version in range(6):
        breakdown = update_time(version, n, params, stats, calib)
        tracer = obs.get_tracer()
        if tracer.enabled:
            # One span per ladder rung, carrying the Fig. 6.2 breakdown
            # so the version story is reconstructible from a trace.
            with tracer.span(
                f"gpusteer.version:{version}",
                n=n,
                updates_per_second=breakdown.updates_per_second,
                host_compute_s=breakdown.host_compute_s,
                gpu_kernel_s=breakdown.gpu_kernel_s,
                transfer_s=breakdown.transfer_s,
                launch_overhead_s=breakdown.launch_overhead_s,
            ):
                pass
        out[version] = RunResult(
            version=version,
            n=n,
            updates_per_second=breakdown.updates_per_second,
            update_breakdown=breakdown,
            stats=stats,
            final_positions=sim.positions,
        )
    return out


__all__ = [
    "GpuBoidsRun",
    "RunResult",
    "compare_double_buffering",
    "version_ladder",
]
