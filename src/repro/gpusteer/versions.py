"""The development versions of the GPU port (paper Table 6.1 + ch. 7).

======== ==================== ==================== ============
version  neighbor search      steering calculation modification
======== ==================== ==================== ============
CPU      host                 host                 host
1        device (global mem)  host                 host
2        device (shared mem)  host                 host
3        device (shared mem)  device (local cache) host
4        device (shared mem)  device (recompute)   host
5        device (shared mem)  device (recompute)   device
6        device (hash grid)   device (recompute)   device
======== ==================== ==================== ============

Version 6 is the chapter-7 extension: the host rebuilds a
``cupp.containers.HashGrid`` each step (O(n) counting sort) and the
device scans only the 27-cell neighborhood — O(n·k) in place of the
all-pairs O(n²).

:class:`VersionSpec` is the feature matrix; :func:`update_time` is the
per-version timing model that combines host work (CPU cost model), kernel
times (closed-form counts -> analytic perf model), and transfers (PCIe
model).  The correctness of each version's *computation* is established
separately, by running the emulated kernels against the pure reference
(``tests/gpusteer/``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpusteer.cost_model import (
    LaunchGeometry,
    WorkloadStats,
    modify_cost,
    neighbor_v1_cost,
    neighbor_v2_cost,
    simulate_cost,
    simulate_grid_cost,
)
from repro.simgpu.arch import ArchSpec, G80_8800GTS
from repro.simgpu.perfmodel import kernel_time
from repro.steer.params import BoidsParams

#: Block size the GPU port launches with (agents padded to a multiple).
THREADS_PER_BLOCK = 128

#: Bytes per agent moved for drawing: a 4x4 float matrix (§6.2.3).
DRAW_MATRIX_BYTES = 64

#: Host elements-equivalents per agent for the O(n) grid rebuild
#: (counting sort, CSR offsets, directory assign), charged at the
#: extraction-loop rate — the ch. 7 "fast construction" cost.
GRID_BUILD_ELEMENTS_PER_AGENT = 12


@dataclass(frozen=True)
class VersionSpec:
    """One row of Table 6.1."""

    number: int
    name: str
    neighbor_on_device: bool
    steering_on_device: bool
    modification_on_device: bool
    uses_shared_memory: bool
    local_mem_caching: bool
    #: Chapter 7: neighbor search through the cupp.containers hash grid.
    grid_neighbors: bool = False


CPU_VERSION = VersionSpec(0, "CPU", False, False, False, False, False)
VERSIONS: dict[int, VersionSpec] = {
    0: CPU_VERSION,
    1: VersionSpec(1, "v1 naive neighbor search", True, False, False, False, False),
    2: VersionSpec(2, "v2 shared-memory neighbor search", True, False, False, True, False),
    3: VersionSpec(3, "v3 simulation substage (local cache)", True, True, False, True, True),
    4: VersionSpec(4, "v4 simulation substage (recompute)", True, True, False, True, False),
    5: VersionSpec(5, "v5 full update on device", True, True, True, True, False),
    6: VersionSpec(
        6,
        "v6 grid-bucketed neighbor search (cupp.containers)",
        True,
        True,
        True,
        False,
        False,
        grid_neighbors=True,
    ),
}


@dataclass(frozen=True)
class UpdateBreakdown:
    """Where one update stage's time goes, per version."""

    version: int
    host_compute_s: float  # CPU-resident substages + extraction loops
    gpu_kernel_s: float  # device execution (runs async; bounded below)
    transfer_s: float  # cudaMemcpy calls (block the host)
    launch_overhead_s: float

    @property
    def total_s(self) -> float:
        """Serial update time (no draw overlap — Fig. 6.2/6.3 metric)."""
        return (
            self.host_compute_s
            + self.gpu_kernel_s
            + self.transfer_s
            + self.launch_overhead_s
        )

    @property
    def updates_per_second(self) -> float:
        return 1.0 / self.total_s


def _cohort_size(n: int, params: BoidsParams) -> int:
    """Thinking agents per step, padded to the block size (the kernels
    require a thread-count multiple of threads_per_block, §6.2.1)."""
    thinkers = max(1, math.ceil(n / params.think_every))
    return THREADS_PER_BLOCK * math.ceil(thinkers / THREADS_PER_BLOCK)


def update_time(
    version: int,
    n: int,
    params: BoidsParams,
    stats: WorkloadStats | None = None,
    calib: Calibration = DEFAULT_CALIBRATION,
    arch: ArchSpec = G80_8800GTS,
) -> UpdateBreakdown:
    """Model one update stage of ``version`` at population ``n``."""
    spec = VERSIONS[version]
    cpu = calib.cpu_model()
    pcie = calib.pcie_model()
    if stats is None:
        stats = WorkloadStats.estimate(n, params, calib.density_clustering)
    thinkers = max(1, n // params.think_every)
    cohort_threads = _cohort_size(n, params)
    geom = LaunchGeometry(cohort_threads, THREADS_PER_BLOCK)
    all_geom = LaunchGeometry(
        THREADS_PER_BLOCK * math.ceil(n / THREADS_PER_BLOCK), THREADS_PER_BLOCK
    )

    host = 0.0
    gpu = 0.0
    transfer = 0.0
    launches = 0

    if not spec.neighbor_on_device:
        # Pure CPU version: everything on the host.
        return UpdateBreakdown(
            version,
            host_compute_s=cpu.seconds(cpu.update_cycles(n, thinkers)),
            gpu_kernel_s=0.0,
            transfer_s=0.0,
            launch_overhead_s=0.0,
        )

    if not spec.steering_on_device:
        # v1/v2: neighbor kernel only.  Host extracts positions each frame
        # (listing 6.1), then finishes steering + modification itself.
        host += calib.extract_seconds(3 * n)  # positions into cupp::vector
        transfer += pcie.transfer_time(12 * n)  # positions upload
        kernel = neighbor_v1_cost if version == 1 else neighbor_v2_cost
        gpu += kernel_time(kernel(geom, stats), arch).total_s
        launches += 1
        transfer += pcie.transfer_time(4 * 7 * thinkers)  # results download
        host += calib.extract_seconds(7 * thinkers)  # results back out
        host += cpu.seconds(cpu.steering_cycles(thinkers))
        host += cpu.seconds(cpu.modification_cycles(n))
    elif not spec.modification_on_device:
        # v3/v4: simulation substage on device; modification on host, so
        # the full agent state crosses the bus both ways every step.
        host += calib.extract_seconds(6 * n)  # positions + forwards out
        transfer += pcie.transfer_time(12 * n)  # positions
        transfer += pcie.transfer_time(12 * n)  # forwards
        gpu += kernel_time(
            simulate_cost(geom, stats, local_cache=spec.local_mem_caching),
            arch,
        ).total_s
        launches += 1
        transfer += pcie.transfer_time(12 * thinkers)  # steering download
        host += calib.extract_seconds(3 * thinkers)
        host += cpu.seconds(cpu.modification_cycles(n))
    elif spec.grid_neighbors:
        # v6: the host rebuilds the spatial hash each step — lazy
        # positions download, O(n) build, CSR + directory upload (the
        # ledger's grid-build cause) — then the grid kernel scans only
        # the 27-cell neighborhood.  Modification stays on the device,
        # so nothing else crosses the bus.
        transfer += pcie.transfer_time(12 * n)  # positions download
        host += calib.extract_seconds(GRID_BUILD_ELEMENTS_PER_AGENT * n)
        per_cell = max(stats.in_radius_per_agent, 1.0)
        segments = max(1, math.ceil(n / per_cell))
        capacity = 8
        while capacity < 2 * segments:
            capacity *= 2
        transfer += pcie.transfer_time(4 * n)  # members
        transfer += pcie.transfer_time(4 * (segments + 1))  # starts
        transfer += pcie.transfer_time(capacity * 12)  # directory
        gpu += kernel_time(simulate_grid_cost(geom, stats), arch).total_s
        gpu += kernel_time(modify_cost(all_geom), arch).total_s
        launches += 2
    else:
        # v5: everything stays on the device; lazy copying (§4.6) means no
        # per-frame uploads at all — only the draw matrices come back
        # (handled in the frame model, not the update stage).
        gpu += kernel_time(
            simulate_cost(geom, stats, local_cache=False), arch
        ).total_s
        gpu += kernel_time(modify_cost(all_geom), arch).total_s
        launches += 2

    return UpdateBreakdown(
        version,
        host_compute_s=host,
        gpu_kernel_s=gpu,
        transfer_s=transfer,
        launch_overhead_s=launches * calib.launch_overhead_s,
    )


def speedup_vs_cpu(
    version: int,
    n: int,
    params: BoidsParams,
    stats: WorkloadStats | None = None,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> float:
    """The Fig. 6.2 metric: CPU update time over version update time."""
    cpu_t = update_time(0, n, params, stats, calib).total_s
    ver_t = update_time(version, n, params, stats, calib).total_s
    return cpu_t / ver_t
