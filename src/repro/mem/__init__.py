"""``repro.mem`` — a caching device-memory allocator (pool + arena).

The paper's memory layer (``memory1d``, ``shared_ptr``, ``vector``) pays
a raw ``cudaMalloc``/``cudaFree`` for every allocation; production GPU
stacks (PyTorch's caching allocator, RMM) interpose a per-device cache
so steady-state churn never reaches the driver.  :class:`MemoryPool` is
that layer for the simulated runtime:

* **small requests** go to size-bucketed free lists (power-of-two bins,
  256-byte minimum — the CUDA 1.0 allocation granule);
* **large requests** go to a segment arena whose blocks are split on
  allocation and coalesced with free neighbours on free;
* **watermark trimming** caps how much the cache may hoard: when cached
  bytes exceed the high watermark they are released back to the driver
  until the low watermark is reached;
* **OOM resilience**: a failed driver allocation flushes the entire
  cache and retries once before raising
  :class:`repro.cupp.exceptions.OutOfMemory` with a fragmentation
  report.

Opt in per device with :meth:`repro.cupp.Device.enable_pool` (the
serving layer and the benchmarks do this by default); raw-driver tests
keep the direct path.  Every cache decision is observable: ledger
causes ``pool-hit``/``pool-miss``/``pool-trim``/``oom-flush``, registry
gauges ``mem.bytes_in_use``/``mem.bytes_reserved``/``mem.fragmentation``
and hit/miss counters, plus :meth:`MemoryPool.stats` /
:meth:`MemoryPool.snapshot` for programmatic consumers.
"""

from repro.mem.pool import MemoryPool, PoolConfig, PoolStats

__all__ = ["MemoryPool", "PoolConfig", "PoolStats"]
