"""The caching device-memory allocator behind :meth:`Device.enable_pool`.

Layout follows the two-tier shape of production caching allocators
(PyTorch's CUDACachingAllocator, RMM's pool resource), scaled down to the
simulated CUDA 1.0 driver:

* Requests up to :attr:`PoolConfig.small_threshold` round up to a
  power-of-two **bin**.  Each bin block is one raw driver allocation of
  exactly the bin size; freeing pushes it onto the bin's free list, and
  the next same-bin request pops it without touching the driver.
* Larger requests go to the **arena**: the pool allocates whole driver
  *segments* (:attr:`PoolConfig.segment_bytes`, or the request size when
  bigger) and sub-divides them into address-ordered blocks.  Allocation
  is best-fit with a split when the remainder is at least one 256-byte
  granule; freeing coalesces with free neighbours, so a drained segment
  collapses back to a single free block and becomes eligible for release.
* When cached (reserved-but-idle) bytes climb past the **high
  watermark**, the pool trims — releasing cached bin blocks and fully
  free segments, largest first — until the **low watermark** is reached.
* A raw driver allocation that fails with :class:`CuppMemoryError`
  triggers the OOM path: flush the entire cache, retry once, and only
  then raise :class:`~repro.cupp.exceptions.OutOfMemory` carrying a
  fragmentation report.

Every decision is attributed: ledger causes ``pool-hit`` / ``pool-miss``
/ ``pool-trim`` / ``oom-flush`` (all ``moved=False`` — nothing crosses
the simulated bus), registry counters ``mem.pool.*`` and gauges
``mem.bytes_in_use`` / ``mem.bytes_reserved`` / ``mem.fragmentation``
labeled by device, and :meth:`MemoryPool.stats` / :meth:`snapshot` for
tests and ``obs.analyze``.

The pool is **not** thread-safe; like the rest of the CuPP layer it
assumes the paper's single host thread per device.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro import obs
from repro.common.units import align_up
from repro.cupp.exceptions import CuppMemoryError, CuppUsageError, OutOfMemory
from repro.simgpu.memory import ALLOC_ALIGN, DevicePtr

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cupp.device import Device

#: Smallest bin: one CUDA 1.0 allocation granule.
MIN_BIN = ALLOC_ALIGN


def bin_size_for(nbytes: int) -> int:
    """The power-of-two bin a small request rounds up to (min 256)."""
    size = MIN_BIN
    n = max(int(nbytes), 1)
    while size < n:
        size <<= 1
    return size


@dataclass(frozen=True)
class PoolConfig:
    """Tuning knobs for :class:`MemoryPool`.

    Defaults suit the simulated parts (64 MiB serve devices, 1 MiB test
    devices): requests up to 1 MiB are binned, arena segments are 2 MiB,
    and the watermarks default to half / a quarter of device capacity.
    """

    #: Requests of at most this many bytes use the power-of-two bins.
    small_threshold: int = 1 << 20
    #: Minimum driver allocation backing an arena segment.
    segment_bytes: int = 1 << 21
    #: Cached bytes above this trigger a trim (default: capacity // 2).
    high_watermark_bytes: "int | None" = None
    #: Trim target (default: capacity // 4).
    low_watermark_bytes: "int | None" = None
    #: Disable to let the cache grow without bound (benchmarks do).
    trim_enabled: bool = True


@dataclass
class PoolStats:
    """A point-in-time summary of pool behaviour (cheap, JSON-friendly)."""

    hits: int
    misses: int
    trims: int
    oom_flushes: int
    #: Flush-and-retry outcomes: retries that then succeeded / failed.
    oom_retries_ok: int
    oom_retries_failed: int
    allocs: int
    frees: int
    bytes_in_use: int
    bytes_reserved: int
    bytes_cached: int
    fragmentation: float

    @property
    def hit_rate(self) -> float:
        """Fraction of allocations served from cache (0 when none)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass
class _Block:
    """One address range inside an arena segment."""

    addr: int
    size: int
    free: bool


@dataclass
class _Segment:
    """A driver allocation the arena sub-divides."""

    ptr: DevicePtr
    size: int
    blocks: list[_Block] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.blocks:
            self.blocks = [_Block(self.ptr.addr, self.size, True)]

    @property
    def fully_free(self) -> bool:
        return len(self.blocks) == 1 and self.blocks[0].free

    @property
    def free_bytes(self) -> int:
        return sum(b.size for b in self.blocks if b.free)

    @property
    def live_blocks(self) -> int:
        return sum(1 for b in self.blocks if not b.free)


@dataclass(frozen=True)
class _Live:
    """Bookkeeping for one live (handed-out) pointer."""

    kind: str  # "small" | "large"
    size: int  # bytes charged to the caller (bin or block size)
    requested: int  # what the caller actually asked for
    segment: "_Segment | None"


class MemoryPool:
    """A per-device caching allocator (see module docstring).

    Construct via :meth:`repro.cupp.Device.enable_pool`, which routes the
    device's ``alloc``/``free`` through :meth:`alloc`/:meth:`free`.  The
    pool reaches the driver only through ``device._raw_alloc`` /
    ``device._raw_free``, so raw driver traffic stays countable.
    """

    def __init__(self, device: "Device", config: "PoolConfig | None" = None) -> None:
        self.device = device
        self.config = config or PoolConfig()
        capacity = device.sim.memory.capacity
        self._high = (
            self.config.high_watermark_bytes
            if self.config.high_watermark_bytes is not None
            else capacity // 2
        )
        self._low = (
            self.config.low_watermark_bytes
            if self.config.low_watermark_bytes is not None
            else capacity // 4
        )
        if self._low > self._high:
            raise CuppUsageError(
                f"low watermark ({self._low}) exceeds high watermark "
                f"({self._high})"
            )
        # Small path: bin size -> LIFO of cached DevicePtr, plus the
        # reverse map so free() can identify a returning bin block.
        self._bins: dict[int, list[DevicePtr]] = {}
        self._cached_small: dict[int, int] = {}  # addr -> bin size
        # Large path: driver segments, each sub-divided into blocks.
        self._segments: list[_Segment] = []
        # Live pointers handed to callers.
        self._live: dict[int, _Live] = {}
        # Accounting.
        self._in_use = 0
        self._reserved = 0
        self._hits = 0
        self._misses = 0
        self._trims = 0
        self._oom_flushes = 0
        self._oom_retries_ok = 0
        self._oom_retries_failed = 0
        self._allocs = 0
        self._frees = 0
        self._publish()

    # ------------------------------------------------------------------
    # accounting & observability
    # ------------------------------------------------------------------
    @property
    def bytes_in_use(self) -> int:
        """Bytes in blocks currently handed out to callers."""
        return self._in_use

    @property
    def bytes_reserved(self) -> int:
        """Bytes the pool holds from the driver (live + cached)."""
        return self._reserved

    @property
    def bytes_cached(self) -> int:
        """Reserved bytes idle in bins or free arena blocks."""
        return self._reserved - self._in_use

    def _fragmentation(self) -> float:
        """External fragmentation of the *driver* heap: the share of free
        device memory unreachable by a single largest allocation."""
        mem = self.device.sim.memory
        free = mem.free_bytes
        if free == 0:
            return 0.0
        return 1.0 - mem.largest_free_bytes / free

    def _publish(self) -> None:
        idx = self.device.index
        obs.gauge("mem.bytes_in_use", device=idx).set(self._in_use)
        obs.gauge("mem.bytes_reserved", device=idx).set(self._reserved)
        obs.gauge("mem.fragmentation", device=idx).set(self._fragmentation())

    def _record(self, cause: str, nbytes: int) -> None:
        obs.record_transfer(
            cause, "none", nbytes, moved=False, label="mem.pool"
        )

    # ------------------------------------------------------------------
    # raw driver traffic (the only way the pool touches the device)
    # ------------------------------------------------------------------
    def _raw_alloc(self, nbytes: int) -> DevicePtr:
        """Driver allocation with the flush-and-retry OOM path."""
        try:
            ptr = self.device._raw_alloc(nbytes)
        except CuppMemoryError:
            released = self.flush(cause="oom-flush")
            self._oom_flushes += 1
            obs.counter("mem.pool.oom_flushes", device=self.device.index).inc()
            try:
                ptr = self.device._raw_alloc(nbytes)
            except CuppMemoryError as exc:
                # Record the retry outcome on the failure path too, so
                # the report always carries the post-flush verdict (not
                # just the happy retry).
                self._oom_retries_failed += 1
                obs.counter(
                    "mem.pool.oom_retries",
                    device=self.device.index,
                    outcome="failed",
                ).inc()
                report = self._oom_report(nbytes, released)
                report["retry_outcome"] = "failed"
                raise OutOfMemory(
                    f"out of device memory allocating {nbytes} bytes on "
                    f"device {self.device.index} even after flushing the "
                    f"cache ({released} cached bytes released): "
                    f"{report['device_free_bytes']} bytes free, largest "
                    f"contiguous {report['device_largest_free_bytes']}, "
                    f"fragmentation {report['fragmentation']:.2f}",
                    report=report,
                ) from exc
            else:
                self._oom_retries_ok += 1
                obs.counter(
                    "mem.pool.oom_retries",
                    device=self.device.index,
                    outcome="ok",
                ).inc()
        self._reserved += self._charged_size(nbytes)
        return ptr

    def _raw_free(self, ptr: DevicePtr, nbytes: int) -> None:
        self.device._raw_free(ptr)
        self._reserved -= self._charged_size(nbytes)

    @staticmethod
    def _charged_size(nbytes: int) -> int:
        """What the driver actually reserves for a request (256-granule)."""
        return align_up(max(int(nbytes), 1), ALLOC_ALIGN)

    def _oom_report(self, requested: int, flushed: int) -> dict:
        mem = self.device.sim.memory
        return {
            "requested": int(requested),
            "device_index": self.device.index,
            "bytes_in_use": self._in_use,
            "bytes_reserved": self._reserved,
            "bytes_cached": self.bytes_cached,
            "flushed_bytes": int(flushed),
            "device_free_bytes": mem.free_bytes,
            "device_largest_free_bytes": mem.largest_free_bytes,
            "fragmentation": self._fragmentation(),
            "bins": {
                size: len(ptrs)
                for size, ptrs in sorted(self._bins.items())
                if ptrs
            },
            "segments": [
                {
                    "size": seg.size,
                    "live_blocks": seg.live_blocks,
                    "free_bytes": seg.free_bytes,
                }
                for seg in self._segments
            ],
        }

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int) -> DevicePtr:
        """Allocate ``nbytes``; cache hit when a fitting block is idle."""
        if nbytes < 0:
            raise CuppUsageError(f"cannot allocate {nbytes} bytes")
        requested = max(int(nbytes), 1)
        self._allocs += 1
        if requested <= self.config.small_threshold:
            ptr = self._alloc_small(requested)
        else:
            ptr = self._alloc_large(requested)
        self._publish()
        return ptr

    def _alloc_small(self, requested: int) -> DevicePtr:
        size = bin_size_for(requested)
        cached = self._bins.get(size)
        if cached:
            ptr = cached.pop()
            del self._cached_small[ptr.addr]
            self._note_hit(size)
        else:
            ptr = self._raw_alloc(size)
            self._note_miss(size)
        self._live[ptr.addr] = _Live("small", size, requested, None)
        self._in_use += size
        return ptr

    def _alloc_large(self, requested: int) -> DevicePtr:
        size = align_up(requested, ALLOC_ALIGN)
        best: "tuple[_Segment, _Block] | None" = None
        for seg in self._segments:
            for block in seg.blocks:
                if block.free and block.size >= size:
                    if best is None or block.size < best[1].size:
                        best = (seg, block)
        if best is not None:
            seg, block = best
            self._split(seg, block, size)
            self._note_hit(size)
        else:
            seg_size = max(self.config.segment_bytes, size)
            seg = _Segment(self._raw_alloc(seg_size), seg_size)
            self._segments.append(seg)
            block = seg.blocks[0]
            self._split(seg, block, size)
            self._note_miss(size)
        block.free = False
        self._live[block.addr] = _Live("large", size, requested, seg)
        self._in_use += size
        return DevicePtr(block.addr)

    @staticmethod
    def _split(seg: _Segment, block: _Block, size: int) -> None:
        """Carve ``size`` bytes off the front of a free block in place."""
        remainder = block.size - size
        if remainder >= ALLOC_ALIGN:
            idx = seg.blocks.index(block)
            seg.blocks.insert(
                idx + 1, _Block(block.addr + size, remainder, True)
            )
            block.size = size

    def _note_hit(self, size: int) -> None:
        self._hits += 1
        obs.counter("mem.pool.hits", device=self.device.index).inc()
        self._record("pool-hit", size)

    def _note_miss(self, size: int) -> None:
        self._misses += 1
        obs.counter("mem.pool.misses", device=self.device.index).inc()
        self._record("pool-miss", size)

    # ------------------------------------------------------------------
    # free
    # ------------------------------------------------------------------
    def free(self, ptr: DevicePtr) -> None:
        """Return a live allocation to the cache (never to the driver —
        watermark trimming and :meth:`flush` handle that)."""
        if not ptr:  # match cudaFree(NULL): a no-op
            return
        live = self._live.pop(ptr.addr, None)
        if live is None:
            from repro.cupp.exceptions import invalid_free

            raise invalid_free(
                ptr.addr,
                self.device.index,
                "not a live pool allocation (double free or foreign pointer)",
            )
        self._frees += 1
        self._in_use -= live.size
        if live.kind == "small":
            self._bins.setdefault(live.size, []).append(ptr)
            self._cached_small[ptr.addr] = live.size
        else:
            self._free_large(live.segment, ptr.addr)
        self._maybe_trim()
        self._publish()

    def _free_large(self, seg: _Segment, addr: int) -> None:
        idx = next(
            i for i, b in enumerate(seg.blocks) if b.addr == addr
        )
        block = seg.blocks[idx]
        block.free = True
        # Coalesce with the successor first so indices stay valid.
        if idx + 1 < len(seg.blocks) and seg.blocks[idx + 1].free:
            block.size += seg.blocks[idx + 1].size
            del seg.blocks[idx + 1]
        if idx > 0 and seg.blocks[idx - 1].free:
            seg.blocks[idx - 1].size += block.size
            del seg.blocks[idx]

    # ------------------------------------------------------------------
    # trimming & flushing
    # ------------------------------------------------------------------
    def _release_candidates(self) -> "list[tuple[int, object]]":
        """Everything releasable right now: (bytes, handle) pairs where
        the handle is a cached bin DevicePtr or a fully free _Segment."""
        out: "list[tuple[int, object]]" = []
        for size, ptrs in self._bins.items():
            out.extend((size, p) for p in ptrs)
        out.extend(
            (seg.size, seg) for seg in self._segments if seg.fully_free
        )
        return out

    def _release_one(self, size: int, handle: object) -> None:
        if isinstance(handle, _Segment):
            self._segments.remove(handle)
            self._raw_free(handle.ptr, size)
        else:
            assert isinstance(handle, DevicePtr)
            self._bins[size].remove(handle)
            del self._cached_small[handle.addr]
            self._raw_free(handle, size)

    def trim(self, target_bytes: int) -> int:
        """Release cached memory, largest blocks first, until at most
        ``target_bytes`` remain cached.  Returns the bytes released."""
        released = 0
        candidates = sorted(
            self._release_candidates(), key=lambda c: c[0], reverse=True
        )
        for size, handle in candidates:
            if self.bytes_cached <= target_bytes:
                break
            self._release_one(size, handle)
            released += size
        if released:
            self._trims += 1
            obs.counter("mem.pool.trims", device=self.device.index).inc()
            self._record("pool-trim", released)
        self._publish()
        return released

    def _maybe_trim(self) -> None:
        if self.config.trim_enabled and self.bytes_cached > self._high:
            self.trim(self._low)

    def flush(self, cause: str = "pool-trim") -> int:
        """Release *everything* releasable (all cached bin blocks and all
        fully free segments).  Returns the bytes released; records one
        ledger entry under ``cause`` (``oom-flush`` on the OOM path)."""
        released = 0
        for size, handle in self._release_candidates():
            self._release_one(size, handle)
            released += size
        if released:
            self._record(cause, released)
        self._publish()
        return released

    # ------------------------------------------------------------------
    # pointer classification (Device.free routing)
    # ------------------------------------------------------------------
    def classify(self, ptr: DevicePtr) -> str:
        """``"live"`` (pool handed it out), ``"cached"`` (pool owns the
        range but it is not live — freeing it is a double free), or
        ``"unknown"`` (not pool memory)."""
        addr = ptr.addr
        if addr in self._live:
            return "live"
        if addr in self._cached_small:
            return "cached"
        for seg in self._segments:
            if seg.ptr.addr <= addr < seg.ptr.addr + seg.size:
                return "cached"
        return "unknown"

    def owns(self, ptr: DevicePtr) -> bool:
        """Does this pointer fall in pool-managed memory?"""
        return self.classify(ptr) != "unknown"

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Forget all state without driver calls.

        :meth:`Device.close` is about to ``free_all()`` at the driver
        level, which would leave every cached pointer dangling; dropping
        the pool's books first keeps the teardown single-sourced.
        """
        self._bins.clear()
        self._cached_small.clear()
        self._segments.clear()
        self._live.clear()
        self._in_use = 0
        self._reserved = 0
        self._publish()

    def release(self) -> int:
        """Return all cached memory to the driver and detach.

        Refuses (``CuppUsageError``) while allocations are live — arena
        pointers are interior to segments and cannot outlive the pool.
        Returns the bytes released.
        """
        if self._in_use > 0:
            raise CuppUsageError(
                f"cannot disable pool with {self._in_use} bytes live "
                f"({len(self._live)} allocations)"
            )
        return self.flush(cause="pool-trim")

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> PoolStats:
        """Counters + byte totals as one cheap value object."""
        return PoolStats(
            hits=self._hits,
            misses=self._misses,
            trims=self._trims,
            oom_flushes=self._oom_flushes,
            oom_retries_ok=self._oom_retries_ok,
            oom_retries_failed=self._oom_retries_failed,
            allocs=self._allocs,
            frees=self._frees,
            bytes_in_use=self._in_use,
            bytes_reserved=self._reserved,
            bytes_cached=self.bytes_cached,
            fragmentation=self._fragmentation(),
        )

    def snapshot(self) -> dict:
        """JSON-serializable detail: stats plus per-bin and per-segment
        occupancy (what ``obs.analyze`` and the bench reports consume)."""
        s = self.stats()
        return {
            "device_index": self.device.index,
            "hits": s.hits,
            "misses": s.misses,
            "hit_rate": s.hit_rate,
            "trims": s.trims,
            "oom_flushes": s.oom_flushes,
            "oom_retries_ok": s.oom_retries_ok,
            "oom_retries_failed": s.oom_retries_failed,
            "allocs": s.allocs,
            "frees": s.frees,
            "bytes_in_use": s.bytes_in_use,
            "bytes_reserved": s.bytes_reserved,
            "bytes_cached": s.bytes_cached,
            "fragmentation": s.fragmentation,
            "watermarks": {"high": self._high, "low": self._low},
            "bins": {
                size: len(ptrs)
                for size, ptrs in sorted(self._bins.items())
                if ptrs
            },
            "segments": [
                {
                    "size": seg.size,
                    "blocks": len(seg.blocks),
                    "live_blocks": seg.live_blocks,
                    "free_bytes": seg.free_bytes,
                }
                for seg in self._segments
            ],
        }

    def check_invariants(self) -> None:
        """Assert internal consistency (exercised by the property tests)."""
        # Small path: the bins and the reverse map agree exactly.
        flat = {
            p.addr: size for size, ptrs in self._bins.items() for p in ptrs
        }
        assert flat == self._cached_small, "bin free lists desync"
        small_live = sum(
            l.size for l in self._live.values() if l.kind == "small"
        )
        small_cached = sum(self._cached_small.values())
        # Arena: each segment's blocks tile it exactly and stay coalesced.
        large_live = 0
        seg_total = 0
        for seg in self._segments:
            cursor = seg.ptr.addr
            prev_free = False
            for block in seg.blocks:
                assert block.addr == cursor, (
                    f"segment gap/overlap at 0x{cursor:x}"
                )
                assert not (prev_free and block.free), (
                    "adjacent free arena blocks not coalesced"
                )
                if block.free:
                    prev_free = True
                else:
                    prev_free = False
                    live = self._live.get(block.addr)
                    assert live is not None and live.kind == "large", (
                        f"arena block 0x{block.addr:x} live but untracked"
                    )
                    assert live.size == block.size
                    large_live += block.size
                cursor += block.size
            assert cursor == seg.ptr.addr + seg.size, "segment size mismatch"
            seg_total += seg.size
        # Every large live entry must sit in some segment (checked above
        # by the per-block walk); counts must reconcile.
        n_large = sum(1 for l in self._live.values() if l.kind == "large")
        n_large_blocks = sum(seg.live_blocks for seg in self._segments)
        assert n_large == n_large_blocks, "live map / arena desync"
        assert self._in_use == small_live + large_live, "in_use drifted"
        assert self._reserved == small_live + small_cached + seg_total, (
            "reserved drifted"
        )
        assert self._in_use <= self._reserved
