"""``repro.obs`` — the unified runtime tracing & metrics layer.

One process-wide trio backs all instrumentation in the runtime:

* a :class:`~repro.obs.tracer.Tracer` of nestable spans and instant
  events (monotonic-clock timed, thread-safe, and a shared no-op when
  disabled — the hot paths pay nothing by default);
* a :class:`~repro.obs.metrics.MetricsRegistry` of labeled counters,
  gauges, and histograms;
* a :class:`~repro.obs.ledger.TransferLedger` attributing every
  host<->device byte to a cause (``eager``, ``lazy-miss``,
  ``copy-back``, ``copy-back-skipped-const``,
  ``double-buffer-overlap``) so the paper's "which copies did CuPP
  avoid?" question has a queryable answer.

Instrumented code calls the module-level conveniences (:func:`span`,
:func:`instant`, :func:`record_transfer`, :func:`counter`); consumers
enable collection with :func:`enable_tracing` or scope it with
:func:`~repro.obs.session.capture` and export via
:mod:`repro.obs.export` (Chrome-trace JSON loadable in
``chrome://tracing`` / Perfetto, plus plain-dict snapshots).

Recording and exporting are deliberately split: recorders decide *what
is kept* (nothing, an in-memory list), exporters decide *how it is
rendered* (Chrome trace, JSON snapshot) — see ``DESIGN.md``.

On top of the producing half sit two consumers (imported on demand, not
re-exported here): :mod:`repro.obs.analyze` digests recorded or
re-loaded traces into per-span statistics, critical paths, and
run-to-run diffs, and :mod:`repro.obs.monitor` evaluates declarative
SLO rules over sliding :class:`~repro.obs.metrics.Window`\\ s while the
workload runs.
"""

from __future__ import annotations

from repro.obs.export import chrome_trace, write_chrome_trace, write_json
from repro.obs.flight import (
    DeviceEvent,
    FlightRecorder,
    FlightSpan,
    SpanLink,
    TraceContext,
    TraceRecord,
    device_chrome_trace,
    device_utilization,
    load_flight,
    render_gantt,
)
from repro.obs.ledger import (
    CAUSES,
    CONTAINER_CAUSES,
    DIRECTIONS,
    FAULT_CAUSES,
    MEMORY_CAUSES,
    STREAM_CAUSES,
    TransferLedger,
    TransferRecord,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry, Window
from repro.obs.session import Capture, capture
from repro.obs.tracer import (
    NULL_SPAN,
    InMemoryRecorder,
    NullRecorder,
    NullSpan,
    Recorder,
    Span,
    TraceEvent,
    Tracer,
    monotonic,
)

__all__ = [
    "CAUSES",
    "CONTAINER_CAUSES",
    "DIRECTIONS",
    "Capture",
    "Counter",
    "DeviceEvent",
    "FAULT_CAUSES",
    "FlightRecorder",
    "FlightSpan",
    "Gauge",
    "Histogram",
    "InMemoryRecorder",
    "MEMORY_CAUSES",
    "MetricsRegistry",
    "NULL_SPAN",
    "NullRecorder",
    "NullSpan",
    "Recorder",
    "STREAM_CAUSES",
    "Span",
    "SpanLink",
    "TraceContext",
    "TraceEvent",
    "TraceRecord",
    "Tracer",
    "TransferLedger",
    "TransferRecord",
    "Window",
    "device_chrome_trace",
    "device_utilization",
    "load_flight",
    "render_gantt",
    "batch_size_histogram",
    "capture",
    "chrome_trace",
    "counter",
    "disable_tracing",
    "enable_tracing",
    "enabled",
    "gauge",
    "get_ledger",
    "get_metrics",
    "get_tracer",
    "histogram",
    "instant",
    "monotonic",
    "queue_depth_gauge",
    "record_transfer",
    "request_latency_histogram",
    "request_outcome_counter",
    "reset",
    "span",
    "write_chrome_trace",
    "write_json",
]

_TRACER = Tracer()
_METRICS = MetricsRegistry()
_LEDGER = TransferLedger()


def get_tracer() -> Tracer:
    """The process-wide tracer all instrumentation reports to."""
    return _TRACER


def get_metrics() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _METRICS


def get_ledger() -> TransferLedger:
    """The process-wide transfer ledger."""
    return _LEDGER


# ----------------------------------------------------------------------
# tracing conveniences
# ----------------------------------------------------------------------
def enabled() -> bool:
    """Is the global tracer currently recording?"""
    return _TRACER.enabled


def enable_tracing(recorder: "Recorder | None" = None) -> Recorder:
    """Turn global tracing on; returns the active recorder."""
    return _TRACER.enable(recorder)


def disable_tracing() -> None:
    """Turn global tracing off (spans become shared no-ops)."""
    _TRACER.disable()


def span(name: str, **args: object):
    """Open a span on the global tracer (no-op context when disabled)."""
    return _TRACER.span(name, **args)


def instant(name: str, **args: object) -> None:
    """Record an instant event on the global tracer."""
    _TRACER.instant(name, **args)


# ----------------------------------------------------------------------
# metrics conveniences
# ----------------------------------------------------------------------
def counter(name: str, **labels: object) -> Counter:
    """A counter from the global registry."""
    return _METRICS.counter(name, **labels)


def gauge(name: str, **labels: object) -> Gauge:
    """A gauge from the global registry."""
    return _METRICS.gauge(name, **labels)


def histogram(name: str, **labels: object) -> Histogram:
    """A histogram from the global registry."""
    return _METRICS.histogram(name, **labels)


def queue_depth_gauge(component: str, **labels: object) -> Gauge:
    """The canonical queue-depth series for ``component``.

    All queue-like structures report into the one ``repro.queue.depth``
    gauge family, distinguished by a ``component`` label, so dashboards
    and tests can find every queue the same way.
    """
    return _METRICS.gauge("repro.queue.depth", component=component, **labels)


def batch_size_histogram(component: str, **labels: object) -> Histogram:
    """The canonical batch-size distribution for ``component``.

    Batching layers (the serving batcher, future request coalescers)
    observe each formed batch's size into ``repro.batch.size`` labeled by
    ``component``; :meth:`~repro.obs.metrics.Histogram.percentile` and
    ``mean`` then answer "how well did batching amortize?".
    """
    return _METRICS.histogram("repro.batch.size", component=component, **labels)


def request_latency_histogram(component: str, **labels: object) -> Histogram:
    """The canonical per-request latency series for ``component``.

    Request-serving layers observe every completed request's end-to-end
    latency **in microseconds** into ``repro.request.latency`` labeled
    by ``component`` — one series family the SLO monitor and dashboards
    find uniformly, instead of reading per-component stats objects.
    """
    return _METRICS.histogram(
        "repro.request.latency", component=component, **labels
    )


def request_outcome_counter(
    component: str, outcome: str, **labels: object
) -> Counter:
    """The canonical request-outcome counter for ``component``.

    Terminal request outcomes (``done``, ``rejected``, ``shed``,
    ``expired``, ...) count into ``repro.request.outcome`` labeled by
    ``component`` and ``outcome``, so deadline-miss ratios are a ratio
    of two uniformly named counters.
    """
    return _METRICS.counter(
        "repro.request.outcome", component=component, outcome=outcome, **labels
    )


# ----------------------------------------------------------------------
# the transfer ledger funnel
# ----------------------------------------------------------------------
def record_transfer(
    cause: str,
    direction: str,
    nbytes: int,
    *,
    moved: bool = True,
    label: str = "",
) -> None:
    """Attribute one transfer everywhere at once.

    Updates the global :class:`TransferLedger`, bumps the aggregate
    ``repro.transfer.bytes``/``repro.transfer.count`` registry series,
    and — when tracing is on — drops an instant event into the trace so
    transfers appear inline with the spans that caused them.

    The ledger entry is always stamped with the monotonic clock (not
    just when tracing is on) so phase attribution in
    :func:`repro.obs.analyze.ledger_rollup` works for metrics-only runs
    too.
    """
    ts = monotonic()
    _LEDGER.record(
        cause, direction, nbytes, moved=moved, label=label, ts=ts
    )
    _METRICS.counter(
        "repro.transfer.bytes", cause=cause, direction=direction
    ).inc(int(nbytes))
    _METRICS.counter(
        "repro.transfer.count", cause=cause, direction=direction
    ).inc()
    if _TRACER.enabled:
        _TRACER.instant(
            f"transfer:{cause}",
            direction=direction,
            nbytes=int(nbytes),
            moved=moved,
            label=label,
        )


def reset() -> None:
    """Reset metrics and ledger and disable tracing (test isolation)."""
    _TRACER.disable()
    _METRICS.reset()
    _LEDGER.reset()
