"""Offline trace & ledger analysis: recorded events -> computed answers.

The tracer (:mod:`repro.obs.tracer`) and ledger (:mod:`repro.obs.ledger`)
*produce* observability; this module *consumes* it.  Given a list of
:class:`~repro.obs.tracer.TraceEvent` (straight from an
``InMemoryRecorder`` or re-loaded from an exported Chrome-trace JSON
file), it answers the questions a human would otherwise squint at
Perfetto for:

* **Where did the time go?**  :func:`analyze` aggregates per-span-name
  statistics — count, total time, *self* time (total minus child spans),
  and exact p50/p95/p99 — plus a self-time breakdown whose top entry is
  the computed bottleneck of the run.
* **What was the critical path?**  :func:`critical_path` rebuilds the
  span forest (by interval containment, so it works on re-loaded traces
  that carry no nesting metadata) and walks the longest root's
  heaviest-child chain — "kernel vs PCIe vs host dispatch" as data.
* **Which bytes moved, and why, and when?**  :func:`ledger_rollup`
  attributes transfer-ledger entries per cause per *phase*, where a
  phase is the enclosing root span at the entry's timestamp.
* **What did the kernels do?**  The ``kernels`` section rolls up the
  instruction profiles riding on ``cuda.launch:*`` spans per kernel
  name — launches, modelled seconds, and every hardware counter — and
  :func:`diff` gives each kernel a regression/improvement verdict, like
  the memory rollup does for allocator causes.
* **Did it get worse?**  :func:`diff` compares two analyses per span
  name and flags regressions/improvements beyond a tolerance.

The command line mirrors the API::

    python -m repro.obs.analyze RUN.trace.json [--metrics RUN.metrics.json]
    python -m repro.obs.analyze --diff A.trace.json B.trace.json
    python -m repro.obs.analyze RUN.trace.json --json report.json

Everything here is offline and allocation-happy by design — the
analyzer runs *after* the workload, so the zero-cost rules that govern
the tracer do not apply.
"""

from __future__ import annotations

import argparse
import json
from dataclasses import dataclass, field

from repro.obs.ledger import TransferRecord
from repro.obs.tracer import TraceEvent

#: Containment slack when rebuilding span nesting from timestamps
#: (spans recorded by one thread never truly interleave, but float
#: round-trips through microsecond JSON can shave an epsilon off).
_EPS = 1e-9


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def events_from_chrome_trace(doc: dict) -> "list[TraceEvent]":
    """Re-hydrate :class:`TraceEvent` rows from an exported Chrome trace.

    Accepts the object :func:`repro.obs.export.chrome_trace` produced
    (or any conforming ``traceEvents`` document): ``ph:"X"`` complete
    events become spans, ``ph:"i"`` instants become instants, metadata
    (``ph:"M"``) is skipped.  Timestamps come back as seconds.  The
    export format carries no nesting metadata, so ``depth``/``parent``
    are left at their defaults — the analyzer rebuilds nesting from
    interval containment either way.
    """
    out: "list[TraceEvent]" = []
    for entry in doc.get("traceEvents", []):
        ph = entry.get("ph")
        if ph not in ("X", "i"):
            continue
        out.append(
            TraceEvent(
                name=entry["name"],
                kind="span" if ph == "X" else "instant",
                ts=entry["ts"] / 1e6,
                dur=entry.get("dur", 0.0) / 1e6,
                tid=entry.get("tid", 0),
                depth=0,
                parent=None,
                args=entry.get("args", {}),
            )
        )
    return out


def load_events(path: str) -> "list[TraceEvent]":
    """Events from a ``*.trace.json`` file written by the exporters."""
    with open(path, "r", encoding="utf-8") as fh:
        return events_from_chrome_trace(json.load(fh))


# ----------------------------------------------------------------------
# the span forest
# ----------------------------------------------------------------------
@dataclass
class SpanNode:
    """One span with its containment-derived children."""

    event: TraceEvent
    children: "list[SpanNode]" = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.event.name

    @property
    def dur(self) -> float:
        return self.event.dur

    @property
    def end(self) -> float:
        return self.event.ts + self.event.dur

    @property
    def self_s(self) -> float:
        """Duration not covered by child spans (floor at zero)."""
        return max(0.0, self.dur - sum(c.dur for c in self.children))


def build_forest(events: "list[TraceEvent]") -> "list[SpanNode]":
    """Span trees per thread, rebuilt from interval containment.

    Spans within one tid are strictly nested (they come from a stack of
    context managers), so a sweep in start order with an open-span stack
    recovers the tree exactly — including for traces re-loaded from
    Chrome JSON, which stores no parent links.  Returns the roots of
    every thread, in start order.
    """
    roots: "list[SpanNode]" = []
    spans = sorted(
        (e for e in events if e.kind == "span"),
        key=lambda e: (e.tid, e.ts, -e.dur),
    )
    stack: "list[SpanNode]" = []
    tid = None
    for event in spans:
        if event.tid != tid:
            stack = []
            tid = event.tid
        node = SpanNode(event)
        while stack and event.ts >= stack[-1].end - _EPS:
            stack.pop()
        if stack:
            stack[-1].children.append(node)
        else:
            roots.append(node)
        stack.append(node)
    return roots


def _walk(nodes: "list[SpanNode]"):
    for node in nodes:
        yield node
        yield from _walk(node.children)


# ----------------------------------------------------------------------
# per-name statistics
# ----------------------------------------------------------------------
@dataclass
class SpanStats:
    """Aggregate statistics for every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    durations: "list[float]" = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Exact ``q``-th percentile (0-100) of the span durations."""
        if not self.durations:
            return 0.0
        ordered = sorted(self.durations)
        if len(ordered) == 1:
            return ordered[0]
        rank = q / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        return ordered[lo] + (ordered[hi] - ordered[lo]) * (rank - lo)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "self_s": self.self_s,
            "mean_s": self.total_s / self.count if self.count else 0.0,
            "p50_s": self.percentile(50),
            "p95_s": self.percentile(95),
            "p99_s": self.percentile(99),
        }


@dataclass
class Analysis:
    """One run, digested: per-name stats + breakdown + critical path."""

    spans: "dict[str, SpanStats]" = field(default_factory=dict)
    #: Per-name self time, heaviest first — the computed bottleneck list.
    breakdown: "list[tuple[str, float]]" = field(default_factory=list)
    #: The heaviest root's heaviest-child chain (name, dur, self time).
    critical_path: "list[tuple[str, float, float]]" = field(
        default_factory=list
    )
    #: Instant events per name (transfers, lazy hits, SLO alerts...).
    instants: "dict[str, int]" = field(default_factory=dict)
    #: Allocator behaviour: ``{cause: {"count", "bytes"}}`` for the
    #: :data:`repro.obs.ledger.MEMORY_CAUSES` found in the trace.
    memory: "dict[str, dict]" = field(default_factory=dict)
    #: Device-container behaviour: the same ``{cause: {"count",
    #: "bytes"}}`` shape for the :data:`repro.obs.ledger.
    #: CONTAINER_CAUSES` (``grid-build`` uploads, ``grid-query``
    #: on-device consumption) found in the trace.
    containers: "dict[str, dict]" = field(default_factory=dict)
    #: Per-kernel counter rollup from the instruction profiles riding on
    #: ``cuda.launch:*`` spans: ``{kernel: {"launches", "modelled_s",
    #: <every profile counter summed>}}``.  Launches without a profile
    #: (plain vectorized native runs) still count launches and time.
    kernels: "dict[str, dict]" = field(default_factory=dict)
    wall_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "wall_s": self.wall_s,
            "spans": {n: s.to_dict() for n, s in sorted(self.spans.items())},
            "self_time_breakdown": [
                {"name": n, "self_s": s} for n, s in self.breakdown
            ],
            "critical_path": [
                {"name": n, "total_s": d, "self_s": s}
                for n, d, s in self.critical_path
            ],
            "instants": dict(sorted(self.instants.items())),
            "memory": {c: dict(v) for c, v in sorted(self.memory.items())},
            "containers": {
                c: dict(v) for c, v in sorted(self.containers.items())
            },
            "kernels": {k: dict(v) for k, v in sorted(self.kernels.items())},
        }


def critical_path(
    roots: "list[SpanNode]",
) -> "list[tuple[str, float, float]]":
    """The heaviest root's chain of heaviest children.

    Each entry is ``(name, total_s, self_s)`` from the root down — the
    chain a wall-clock optimizer should attack first.  Empty when the
    trace has no spans.
    """
    if not roots:
        return []
    node = max(roots, key=lambda n: n.dur)
    chain: "list[tuple[str, float, float]]" = []
    while node is not None:
        chain.append((node.name, node.dur, node.self_s))
        node = max(node.children, key=lambda n: n.dur, default=None)
    return chain


#: Prefix of the spans the kernel rollup consumes.
_LAUNCH_SPAN_PREFIX = "cuda.launch:"


def _kernel_rollup(out: Analysis, event: TraceEvent) -> None:
    """Fold one launch span's profile counters into the kernel rollup."""
    kernel = event.name[len(_LAUNCH_SPAN_PREFIX):]
    row = out.kernels.setdefault(kernel, {"launches": 0, "modelled_s": 0.0})
    row["launches"] += 1
    modelled = event.args.get("modelled_duration_s")
    if isinstance(modelled, (int, float)):
        row["modelled_s"] += float(modelled)
    profile = event.args.get("profile")
    if isinstance(profile, dict):
        for counter, value in profile.items():
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                row[counter] = row.get(counter, 0) + value


def analyze(events: "list[TraceEvent]") -> Analysis:
    """Digest one run's events into an :class:`Analysis`."""
    roots = build_forest(events)
    out = Analysis()
    for node in _walk(roots):
        stats = out.spans.get(node.name)
        if stats is None:
            stats = out.spans[node.name] = SpanStats(node.name)
        stats.count += 1
        stats.total_s += node.dur
        stats.self_s += node.self_s
        stats.durations.append(node.dur)
        if node.name.startswith(_LAUNCH_SPAN_PREFIX):
            _kernel_rollup(out, node.event)
    from repro.obs.ledger import CONTAINER_CAUSES, MEMORY_CAUSES

    memory_names = {f"transfer:{c}": c for c in MEMORY_CAUSES}
    container_names = {f"transfer:{c}": c for c in CONTAINER_CAUSES}
    for event in events:
        if event.kind == "instant":
            # Instants carrying a ``where=`` label split into one row
            # per emission point (e.g. serve.deadline-miss[where=submit]
            # vs [where=dequeue]) so distinct failure modes stay
            # distinguishable in the rollup.
            name = event.name
            where = event.args.get("where")
            if where is not None:
                name = f"{name}[where={where}]"
            out.instants[name] = out.instants.get(name, 0) + 1
            cause = memory_names.get(event.name)
            if cause is not None:
                row = out.memory.setdefault(cause, {"count": 0, "bytes": 0})
                row["count"] += 1
                row["bytes"] += int(event.args.get("nbytes", 0) or 0)
            cause = container_names.get(event.name)
            if cause is not None:
                row = out.containers.setdefault(
                    cause, {"count": 0, "bytes": 0}
                )
                row["count"] += 1
                row["bytes"] += int(event.args.get("nbytes", 0) or 0)
    out.breakdown = sorted(
        ((n, s.self_s) for n, s in out.spans.items()),
        key=lambda item: -item[1],
    )
    out.critical_path = critical_path(roots)
    spans = [e for e in events if e.kind == "span"]
    if spans:
        out.wall_s = max(e.ts + e.dur for e in spans) - min(
            e.ts for e in spans
        )
    return out


# ----------------------------------------------------------------------
# transfer-ledger rollup
# ----------------------------------------------------------------------
def ledger_rollup(
    entries: "list[TransferRecord] | tuple[TransferRecord, ...]",
    events: "list[TraceEvent] | None" = None,
) -> dict:
    """Attribute ledger entries per cause, split moved vs avoided, and —
    when trace events are supplied — per *phase*.

    A phase is the root span covering the entry's timestamp on any
    thread (entries outside every root land in ``"(untraced)"``).  This
    is what turns "8 MB of lazy-miss traffic" into "8 MB of lazy-miss
    traffic, all of it during warmup".
    """
    roots = build_forest(events) if events else []
    by_cause: dict = {}
    for entry in entries:
        cause = by_cause.setdefault(
            entry.cause,
            {"moved_bytes": 0, "avoided_bytes": 0, "count": 0, "phases": {}},
        )
        cause["count"] += 1
        key = "moved_bytes" if entry.moved else "avoided_bytes"
        cause[key] += entry.nbytes
        phase = "(untraced)"
        for root in roots:
            if root.event.ts - _EPS <= entry.ts <= root.end + _EPS:
                phase = root.name
                break
        cause["phases"][phase] = cause["phases"].get(phase, 0) + entry.nbytes
    return by_cause


def memory_rollup(by_cause: dict) -> dict:
    """Split a :func:`ledger_rollup` result into transfer vs memory
    sections.

    The flat per-cause shape of :func:`ledger_rollup` is unchanged (its
    consumers depend on it); this view groups the
    :data:`~repro.obs.ledger.MEMORY_CAUSES` — allocator behaviour, not
    bus traffic — under ``"memory"`` and everything else under
    ``"transfers"``, which is how the text and ``--json`` reports
    present them.
    """
    from repro.obs.ledger import CONTAINER_CAUSES, MEMORY_CAUSES

    memory_set = set(MEMORY_CAUSES)
    container_set = set(CONTAINER_CAUSES)
    return {
        "transfers": {
            c: v
            for c, v in by_cause.items()
            if c not in memory_set and c not in container_set
        },
        "memory": {c: v for c, v in by_cause.items() if c in memory_set},
        "containers": {
            c: v for c, v in by_cause.items() if c in container_set
        },
    }


# ----------------------------------------------------------------------
# run-to-run comparison
# ----------------------------------------------------------------------
def diff(a: Analysis, b: Analysis, tolerance_pct: float = 10.0) -> dict:
    """Compare two analyses per span name (``b`` relative to ``a``).

    For every name in either run: counts, total seconds, p99, and the
    relative total-time change.  Changes beyond ``tolerance_pct`` are
    classified ``regression`` (slower) or ``improvement`` (faster);
    names present in only one run are ``added``/``removed``.
    """
    names = sorted(set(a.spans) | set(b.spans))
    rows = []
    regressions = improvements = 0
    for name in names:
        sa, sb = a.spans.get(name), b.spans.get(name)
        if sa is None or sb is None:
            rows.append(
                {
                    "name": name,
                    "verdict": "added" if sa is None else "removed",
                    "total_a_s": sa.total_s if sa else 0.0,
                    "total_b_s": sb.total_s if sb else 0.0,
                }
            )
            continue
        change = (
            (sb.total_s - sa.total_s) / sa.total_s * 100.0
            if sa.total_s > 0
            else 0.0
        )
        verdict = "unchanged"
        if change > tolerance_pct:
            verdict, regressions = "regression", regressions + 1
        elif change < -tolerance_pct:
            verdict, improvements = "improvement", improvements + 1
        rows.append(
            {
                "name": name,
                "verdict": verdict,
                "count_a": sa.count,
                "count_b": sb.count,
                "total_a_s": sa.total_s,
                "total_b_s": sb.total_s,
                "p99_a_s": sa.percentile(99),
                "p99_b_s": sb.percentile(99),
                "total_change_pct": change,
            }
        )
    memory_rows = []
    for cause in sorted(set(a.memory) | set(b.memory)):
        ma = a.memory.get(cause, {"count": 0, "bytes": 0})
        mb = b.memory.get(cause, {"count": 0, "bytes": 0})
        memory_rows.append(
            {
                "cause": cause,
                "count_a": ma["count"],
                "count_b": mb["count"],
                "bytes_a": ma["bytes"],
                "bytes_b": mb["bytes"],
            }
        )
    kernel_rows = []
    for kernel in sorted(set(a.kernels) | set(b.kernels)):
        ka, kb = a.kernels.get(kernel), b.kernels.get(kernel)
        if ka is None or kb is None:
            kernel_rows.append(
                {
                    "kernel": kernel,
                    "verdict": "added" if ka is None else "removed",
                    "modelled_a_s": (ka or {}).get("modelled_s", 0.0),
                    "modelled_b_s": (kb or {}).get("modelled_s", 0.0),
                }
            )
            continue
        ma_s, mb_s = ka.get("modelled_s", 0.0), kb.get("modelled_s", 0.0)
        change = (mb_s - ma_s) / ma_s * 100.0 if ma_s > 0 else 0.0
        verdict = "unchanged"
        if change > tolerance_pct:
            verdict, regressions = "regression", regressions + 1
        elif change < -tolerance_pct:
            verdict, improvements = "improvement", improvements + 1
        counters = {
            counter: {"a": ka.get(counter, 0), "b": kb.get(counter, 0)}
            for counter in sorted((set(ka) | set(kb)) - {"modelled_s"})
        }
        kernel_rows.append(
            {
                "kernel": kernel,
                "verdict": verdict,
                "modelled_a_s": ma_s,
                "modelled_b_s": mb_s,
                "modelled_change_pct": change,
                "counters": counters,
            }
        )
    return {
        "tolerance_pct": tolerance_pct,
        "regressions": regressions,
        "improvements": improvements,
        "spans": rows,
        "memory": memory_rows,
        "kernels": kernel_rows,
        "critical_path_a": [
            {"name": n, "total_s": d, "self_s": s}
            for n, d, s in a.critical_path
        ],
        "critical_path_b": [
            {"name": n, "total_s": d, "self_s": s}
            for n, d, s in b.critical_path
        ],
    }


# ----------------------------------------------------------------------
# rendering + CLI
# ----------------------------------------------------------------------
def _ms(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}"


def render_analysis(analysis: Analysis) -> str:
    """The human-readable single-run report."""
    from repro.bench.report import format_table

    span_rows = [
        (
            name,
            stats.count,
            _ms(stats.total_s),
            _ms(stats.self_s),
            _ms(stats.percentile(50)),
            _ms(stats.percentile(95)),
            _ms(stats.percentile(99)),
        )
        for name, stats in sorted(
            analysis.spans.items(), key=lambda kv: -kv[1].total_s
        )
    ]
    blocks = [
        format_table(
            f"span statistics (wall {_ms(analysis.wall_s)} ms)",
            ["span", "count", "total ms", "self ms", "p50 ms", "p95 ms",
             "p99 ms"],
            span_rows,
        )
    ]
    wall = max(analysis.wall_s, 1e-12)
    blocks.append(
        format_table(
            "critical-path breakdown (self time, heaviest first)",
            ["span", "self ms", "share"],
            [
                (name, _ms(self_s), f"{self_s / wall * 100:.1f}%")
                for name, self_s in analysis.breakdown[:10]
            ],
        )
    )
    if analysis.critical_path:
        blocks.append(
            format_table(
                "critical path (heaviest chain, root down)",
                ["span", "total ms", "self ms"],
                [
                    (name, _ms(dur), _ms(self_s))
                    for name, dur, self_s in analysis.critical_path
                ],
            )
        )
    if analysis.memory:
        blocks.append(
            format_table(
                "memory (allocator causes)",
                ["cause", "count", "bytes"],
                [
                    (cause, row["count"], f"{row['bytes']:,}")
                    for cause, row in sorted(analysis.memory.items())
                ],
            )
        )
    if analysis.containers:
        blocks.append(
            format_table(
                "containers (device data-structure causes)",
                ["cause", "count", "bytes"],
                [
                    (cause, row["count"], f"{row['bytes']:,}")
                    for cause, row in sorted(analysis.containers.items())
                ],
            )
        )
    if analysis.kernels:
        blocks.append(
            format_table(
                "kernels (launch-span profile rollup)",
                ["kernel", "launches", "instr", "uncoal.ld.tx", "bytes",
                 "modelled ms"],
                [
                    (
                        kernel,
                        row["launches"],
                        row.get("instructions", 0),
                        row.get("uncoalesced_read_transactions", 0),
                        f"{row.get('bytes_read', 0) + row.get('bytes_written', 0):,}",
                        _ms(row.get("modelled_s", 0.0)),
                    )
                    for kernel, row in sorted(analysis.kernels.items())
                ],
            )
        )
    return "\n\n".join(blocks)


def render_diff(result: dict) -> str:
    """The human-readable A-vs-B report."""
    from repro.bench.report import format_table

    rows = [
        (
            row["name"],
            row["verdict"],
            _ms(row.get("total_a_s", 0.0)),
            _ms(row.get("total_b_s", 0.0)),
            f"{row['total_change_pct']:+.1f}%"
            if "total_change_pct" in row
            else "-",
        )
        for row in result["spans"]
    ]
    summary = (
        f"{result['regressions']} regression(s), "
        f"{result['improvements']} improvement(s) beyond "
        f"{result['tolerance_pct']:g}%"
    )
    blocks = [
        format_table(
            "trace diff (B relative to A)",
            ["span", "verdict", "total A ms", "total B ms", "change"],
            rows,
            note=summary,
        )
    ]
    if result.get("memory"):
        blocks.append(
            format_table(
                "memory (allocator causes, A vs B)",
                ["cause", "count A", "count B", "bytes A", "bytes B"],
                [
                    (
                        row["cause"],
                        row["count_a"],
                        row["count_b"],
                        f"{row['bytes_a']:,}",
                        f"{row['bytes_b']:,}",
                    )
                    for row in result["memory"]
                ],
            )
        )
    if result.get("kernels"):
        blocks.append(
            format_table(
                "kernels (launch-span rollup, A vs B)",
                ["kernel", "verdict", "modelled A ms", "modelled B ms",
                 "change"],
                [
                    (
                        row["kernel"],
                        row["verdict"],
                        _ms(row.get("modelled_a_s", 0.0)),
                        _ms(row.get("modelled_b_s", 0.0)),
                        f"{row['modelled_change_pct']:+.1f}%"
                        if "modelled_change_pct" in row
                        else "-",
                    )
                    for row in result["kernels"]
                ],
            )
        )
    return "\n\n".join(blocks)


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.obs.analyze",
        description="Analyze exported Chrome-trace JSON: per-span stats, "
        "critical path, and run-to-run diffs.",
    )
    p.add_argument(
        "traces",
        nargs="+",
        metavar="TRACE.json",
        help="one trace to analyze, or two with --diff",
    )
    p.add_argument(
        "--diff",
        action="store_true",
        help="compare two traces (A then B) instead of analyzing one",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        metavar="PCT",
        help="per-span change classified as regression/improvement",
    )
    p.add_argument(
        "--json", default=None, metavar="PATH", help="also write the report as JSON"
    )
    return p


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.diff:
        if len(args.traces) != 2:
            print("--diff needs exactly two trace files")
            return 2
        a, b = (analyze(load_events(path)) for path in args.traces)
        result = diff(a, b, tolerance_pct=args.tolerance)
        print(render_diff(result))
        payload: dict = result
    else:
        if len(args.traces) != 1:
            print("expected one trace file (or use --diff with two)")
            return 2
        analysis = analyze(load_events(args.traces[0]))
        print(render_analysis(analysis))
        payload = analysis.to_dict()
    if args.json:
        from repro.obs.export import write_json

        write_json(args.json, payload)
        print(f"report written: {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
