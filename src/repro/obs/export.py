"""Exporters: recorded events -> Chrome-trace JSON; registry -> dicts.

The Chrome trace event format (the ``chrome://tracing`` / Perfetto
"JSON Array with metadata" flavour) is the lingua franca of timeline
viewers, so the tracer's spans become ``"ph": "X"`` complete events and
its instants ``"ph": "i"`` instant events.  Timestamps are microseconds
relative to the first event, per-thread tracks come from Python thread
idents, and span attributes ride along in ``args`` — load the file in
Perfetto and the kernel-launch spans nest over their transfer events
exactly as they happened.
"""

from __future__ import annotations

import json
from typing import Iterable

from repro.obs.tracer import TraceEvent

#: The process id stamped on every exported event (one simulated process).
TRACE_PID = 1


def _jsonable(value: object) -> object:
    """Coerce an attribute value to something ``json.dump`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return str(value)


def chrome_trace(
    events: "Iterable[TraceEvent]",
    process_name: str = "repro",
    thread_names: "dict[int, str] | None" = None,
) -> dict:
    """Render events as a Chrome-trace JSON object (not yet serialized).

    The result has the standard ``traceEvents`` array (metadata events
    naming the process and threads, then one entry per span/instant) and
    ``displayTimeUnit``; ``json.dump`` it, or pass it straight to a test
    assertion.

    ``thread_names`` maps a tid to a display name for its track
    (``M``/``thread_name`` metadata) — the device profiler uses it to
    label per-device rows ``device-N``; unmapped tids keep the generic
    positional ``thread-i`` name.

    An event carrying ``args["request"] == -1`` is rejected: ``-1`` is
    the sentinel a :class:`~repro.serve.request.StepRequest` holds
    before admission assigns its id, and exporting it would silently
    attribute work to a request that does not exist.
    """
    events = list(events)
    origin = min((e.ts for e in events), default=0.0)
    tids = sorted({e.tid for e in events})
    trace_events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": process_name},
        }
    ]
    for i, tid in enumerate(tids):
        name = f"thread-{i}"
        if thread_names is not None and tid in thread_names:
            name = thread_names[tid]
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for e in events:
        if e.args.get("request") == -1:
            raise ValueError(
                f"event {e.name!r} at ts={e.ts} carries the unassigned "
                "request id sentinel -1; guard emission at the source"
            )
        ts_us = (e.ts - origin) * 1e6
        entry: dict = {
            "name": e.name,
            "cat": e.kind,
            "pid": TRACE_PID,
            "tid": e.tid,
            "ts": ts_us,
            "args": _jsonable(e.args),
        }
        if e.kind == "span":
            entry["ph"] = "X"
            entry["dur"] = e.dur * 1e6
        else:
            entry["ph"] = "i"
            entry["s"] = "t"  # thread-scoped instant
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    path: str,
    events: "Iterable[TraceEvent]",
    process_name: str = "repro",
    thread_names: "dict[int, str] | None" = None,
) -> dict:
    """Serialize :func:`chrome_trace` to ``path``; returns the object."""
    doc = chrome_trace(events, process_name, thread_names)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def write_json(path: str, payload: dict) -> None:
    """Dump any snapshot dict (metrics, ledger) as pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(_jsonable(payload), fh, indent=1, sort_keys=True)
