"""Request-centric causal tracing: trace contexts, span links, tail
sampling, and the per-device timeline profiler.

The wall-clock tracer (:mod:`repro.obs.tracer`) answers "where did the
*process* spend its time"; it cannot answer the question a serving
operator actually asks: *why was request 4817 slow?*  Once a request is
coalesced into a fused batch, retried after a fault, or failed over to
another device, its identity dissolves into loose ``request=`` instant
annotations with no causal chain.  This module supplies the missing
primitive — a propagated per-request **trace context** on the service's
*virtual* clock:

* :class:`TraceContext` is minted per request at
  :meth:`~repro.serve.service.SimulationService.submit` and rides on the
  request object through admission, batching, scheduling, and every
  retry/failover hop.  Each pipeline stage opens a :class:`FlightSpan`
  against it (``admit`` → ``queue`` → ``attempt-N``).
* **Span links** stitch causality across trace boundaries: one
  ``fused-launch`` span (per sub-batch, its own trace) links to every
  coalesced request's attempt span (``coalesced``), each attempt links
  back to the fused launch it rode (``fused-launch``), and a retried or
  failed-over attempt links to its predecessor (``retry-of`` /
  ``failover-of``) — so one connected graph survives batching, retries,
  and failover.
* **Tail sampling** keeps full-fidelity tracing affordable at
  loadgen scale: the :class:`FlightRecorder` buffers a trace only while
  its request is in flight, then *retains* it only when it was
  interesting (faulted, failed over, deadline-missed, slow) or caught by
  a deterministic 1-in-N head sample.  Retention is capped
  (``max_retained``), evicting head samples before interesting traces,
  oldest first — memory stays bounded no matter how long the run.
* The **per-device timeline profiler** folds the scheduler's device
  events (kernel busy, bus transfers, injected wedges) into utilization
  tracks: Chrome-trace rows on named per-device threads
  (:func:`device_chrome_trace`), a text gantt (:func:`render_gantt`),
  and busy/transfer/wedged/idle shares (:func:`device_utilization`).

Everything here is pure bookkeeping on explicitly passed virtual
timestamps — recording never touches a clock, never draws randomness,
and never perturbs the discrete-event schedule, so a run with flight
recording on produces byte-identical SLO numbers to one without.
``python -m repro.serve.explain`` consumes the recorder (live or
exported via :meth:`FlightRecorder.write`) to reconstruct one request's
full waterfall.
"""

from __future__ import annotations

import json
import os
from collections import deque
from dataclasses import dataclass, field

#: Link kinds the serving layer emits (other producers may add more).
LINK_KINDS = (
    "coalesced",      # fused-launch span -> each rider's attempt span
    "fused-launch",   # attempt span -> the fused-launch span it rode
    "retry-of",       # attempt N+1 -> attempt N after a transient fault
    "failover-of",    # attempt N+1 -> attempt N after eviction/rollback
)

#: Flags that make a finished trace worth retaining in full.
INTERESTING_FLAGS = ("fault", "failover", "failed", "deadline-miss", "slow")

#: The subset of interesting flags that marks a trace *critical*: under
#: retention pressure these evict last, so an incident's fault traces
#: outlive a flood of merely-slow ones.
CRITICAL_FLAGS = ("fault", "failover", "failed")

#: Device-track event kinds, in paint priority (later wins in the gantt).
DEVICE_TRACK_KINDS = ("busy", "transfer", "wedged")


@dataclass(frozen=True)
class SpanLink:
    """A causal edge to a span in (usually) another trace."""

    trace_id: str
    span_id: int
    kind: str

    def to_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id, "kind": self.kind}


@dataclass
class FlightSpan:
    """One timed unit of a request's journey, on the virtual clock."""

    trace_id: str
    span_id: int
    name: str
    start_s: float
    end_s: "float | None" = None
    parent_id: "int | None" = None
    attrs: dict = field(default_factory=dict)
    links: "list[SpanLink]" = field(default_factory=list)

    @property
    def dur_s(self) -> float:
        """Span duration (0.0 while still open)."""
        return 0.0 if self.end_s is None else self.end_s - self.start_s

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "name": self.name,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
            "links": [link.to_dict() for link in self.links],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FlightSpan":
        return cls(
            trace_id=doc["trace_id"],
            span_id=doc["span_id"],
            name=doc["name"],
            start_s=doc["start_s"],
            end_s=doc.get("end_s"),
            parent_id=doc.get("parent_id"),
            attrs=dict(doc.get("attrs", {})),
            links=[SpanLink(**l) for l in doc.get("links", [])],
        )


class TraceContext:
    """The propagated per-request context: identity plus live wiring.

    The service stores one on each :class:`~repro.serve.request
    .StepRequest` and every pipeline stage reads/updates it — the
    ``root``/``queue``/``attempt`` slots hold the currently open spans
    so a stage can close what the previous one opened without a side
    table, and ``prev_attempt`` carries the (span id, link kind) a
    retried attempt must link back to.
    """

    __slots__ = (
        "trace_id", "seq", "flags", "root", "queue", "attempt", "prev_attempt",
    )

    def __init__(self, trace_id: str, seq: int) -> None:
        self.trace_id = trace_id
        self.seq = seq
        #: Retention verdict accumulators (subset of INTERESTING_FLAGS).
        self.flags: "set[str]" = set()
        self.root: "FlightSpan | None" = None
        self.queue: "FlightSpan | None" = None
        self.attempt: "FlightSpan | None" = None
        self.prev_attempt: "tuple[int, str] | None" = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id}, flags={sorted(self.flags)})"


@dataclass
class TraceRecord:
    """One retained (finished) trace."""

    trace_id: str
    request_id: "int | None"
    flags: "set[str]"
    spans: "list[FlightSpan]"
    finished_s: float = 0.0

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "request_id": self.request_id,
            "flags": sorted(self.flags),
            "finished_s": self.finished_s,
            "spans": [span.to_dict() for span in self.spans],
        }


@dataclass
class DeviceEvent:
    """One interval on a device's utilization track.

    ``stream`` tags the interval with the stream that scheduled it
    (``None`` for serial null-stream work); consumers split tagged
    events into per-stream sub-tracks so overlap is visible.
    """

    device: int
    kind: str  # one of DEVICE_TRACK_KINDS
    start_s: float
    end_s: float
    label: str = ""
    stream: "int | None" = None

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "kind": self.kind,
            "start_s": self.start_s,
            "end_s": self.end_s,
            "label": self.label,
            "stream": self.stream,
        }


class FlightRecorder:
    """Bounded-memory tail-sampling store for request flight traces.

    Parameters
    ----------
    head_sample_every:
        Deterministic head sampling: every Nth minted trace is retained
        regardless of verdict (0 disables head sampling).  Head samples
        are what keep the *normal* request shape visible next to the
        outliers tail sampling exists for.
    slow_threshold_s:
        A completed trace whose root span lasted at least this long is
        flagged ``slow`` and retained (``None`` disables the check).
    max_retained:
        Hard cap on retained traces.  Eviction is severity-tiered,
        oldest first within a tier: head samples go first, then
        merely-interesting traces (``slow``/``deadline-miss``), then
        critical ones (:data:`CRITICAL_FLAGS`).
    max_batch_spans / max_device_events:
        Caps on the fused-launch span ring and the device-event ring.
    """

    def __init__(
        self,
        head_sample_every: int = 64,
        slow_threshold_s: "float | None" = None,
        max_retained: int = 256,
        max_batch_spans: int = 4096,
        max_device_events: int = 1 << 17,
    ) -> None:
        if head_sample_every < 0:
            raise ValueError(
                f"head_sample_every must be >= 0, got {head_sample_every}"
            )
        if max_retained <= 0:
            raise ValueError(f"max_retained must be positive, got {max_retained}")
        self.head_sample_every = head_sample_every
        self.slow_threshold_s = slow_threshold_s
        self.max_retained = max_retained
        self.max_batch_spans = max_batch_spans
        self._next_trace = 0
        self._next_span = 0
        self._next_batch = 0
        #: Spans of traces whose request is still in flight.
        self._open: "dict[str, list[FlightSpan]]" = {}
        #: Retained traces, insertion (finish) order, one pool per
        #: severity tier so eviction can drain the least severe first.
        self._crit: "dict[str, TraceRecord]" = {}
        self._warm: "dict[str, TraceRecord]" = {}
        self._head: "dict[str, TraceRecord]" = {}
        #: Fused-launch spans (cross-trace link targets), bounded ring.
        self._batches: "dict[int, FlightSpan]" = {}
        self.device_events: "deque[DeviceEvent]" = deque(maxlen=max_device_events)
        #: Lifetime counters (JSON-friendly via stats()).
        self.minted = 0
        self.finished = 0
        self.dropped = 0
        self.evicted = 0

    # ------------------------------------------------------------------
    # producing
    # ------------------------------------------------------------------
    def mint(self) -> TraceContext:
        """A fresh trace context (deterministic monotone ids)."""
        seq = self._next_trace
        self._next_trace += 1
        self.minted += 1
        ctx = TraceContext(f"t{seq:06d}", seq)
        self._open[ctx.trace_id] = []
        return ctx

    def _new_span_id(self) -> int:
        span_id = self._next_span
        self._next_span += 1
        return span_id

    def start(
        self,
        ctx: TraceContext,
        name: str,
        start_s: float,
        parent: "FlightSpan | None" = None,
        **attrs: object,
    ) -> FlightSpan:
        """Open one span on ``ctx``'s trace at virtual time ``start_s``."""
        span = FlightSpan(
            trace_id=ctx.trace_id,
            span_id=self._new_span_id(),
            name=name,
            start_s=start_s,
            parent_id=None if parent is None else parent.span_id,
            attrs=attrs,
        )
        buffer = self._open.get(ctx.trace_id)
        if buffer is not None:
            buffer.append(span)
        return span

    @staticmethod
    def end(span: FlightSpan, end_s: float, **attrs: object) -> FlightSpan:
        """Close ``span`` at ``end_s``, merging final attributes."""
        span.end_s = end_s
        if attrs:
            span.attrs.update(attrs)
        return span

    @staticmethod
    def link(
        span: FlightSpan, trace_id: str, span_id: int, kind: str
    ) -> None:
        """Add a causal edge from ``span`` to another span."""
        span.links.append(SpanLink(trace_id, span_id, kind))

    def start_batch(self, start_s: float, **attrs: object) -> FlightSpan:
        """Open a ``fused-launch`` span in its own (batch) trace.

        Batch spans are cross-trace link targets; they live in a bounded
        ring keyed by span id rather than in any request's trace.
        """
        seq = self._next_batch
        self._next_batch += 1
        span = FlightSpan(
            trace_id=f"b{seq:06d}",
            span_id=self._new_span_id(),
            name="fused-launch",
            start_s=start_s,
            attrs=attrs,
        )
        self._batches[span.span_id] = span
        while len(self._batches) > self.max_batch_spans:
            self._batches.pop(next(iter(self._batches)))
        return span

    def device_event(
        self,
        device: int,
        kind: str,
        start_s: float,
        end_s: float,
        label: str = "",
        stream: "int | None" = None,
    ) -> None:
        """Record one interval on a device's utilization track (tagged
        with its scheduling ``stream`` for overlapped work)."""
        if kind not in DEVICE_TRACK_KINDS:
            raise ValueError(
                f"unknown device track kind {kind!r}; one of {DEVICE_TRACK_KINDS}"
            )
        self.device_events.append(
            DeviceEvent(device, kind, start_s, end_s, label, stream)
        )

    # ------------------------------------------------------------------
    # the tail-sampling verdict
    # ------------------------------------------------------------------
    def finish(self, ctx: TraceContext, end_s: float) -> bool:
        """Seal ``ctx``'s trace and decide retention; True when kept.

        Interesting traces (any :data:`INTERESTING_FLAGS` flag, the
        ``slow`` check applied here from the root span's duration) are
        always retained; otherwise the deterministic head sample
        decides.  Dropped traces free their buffered spans immediately.
        """
        spans = self._open.pop(ctx.trace_id, [])
        self.finished += 1
        if (
            self.slow_threshold_s is not None
            and ctx.root is not None
            and ctx.root.end_s is not None
            and ctx.root.dur_s >= self.slow_threshold_s
        ):
            ctx.flags.add("slow")
        interesting = bool(ctx.flags)
        head = (
            self.head_sample_every > 0
            and ctx.seq % self.head_sample_every == 0
        )
        if not interesting and not head:
            self.dropped += 1
            return False
        if head and not interesting:
            ctx.flags.add("head")
        request_id = None
        if ctx.root is not None:
            request_id = ctx.root.attrs.get("request")
        record = TraceRecord(
            trace_id=ctx.trace_id,
            request_id=request_id,
            flags=set(ctx.flags),
            spans=spans,
            finished_s=end_s,
        )
        if not interesting:
            pool = self._head
        elif any(flag in ctx.flags for flag in CRITICAL_FLAGS):
            pool = self._crit
        else:
            pool = self._warm
        pool[ctx.trace_id] = record
        while self.retained_count > self.max_retained:
            victim_pool = self._head or self._warm or self._crit
            victim_pool.pop(next(iter(victim_pool)))
            self.evicted += 1
        return True

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    @property
    def retained_count(self) -> int:
        """Retained traces currently held (always <= ``max_retained``)."""
        return len(self._crit) + len(self._warm) + len(self._head)

    @property
    def open_count(self) -> int:
        """Traces still buffering (their request is in flight)."""
        return len(self._open)

    def trace(self, trace_id: str) -> "TraceRecord | None":
        """A retained trace by id (``None`` when dropped or unknown)."""
        return (
            self._crit.get(trace_id)
            or self._warm.get(trace_id)
            or self._head.get(trace_id)
        )

    def trace_for_request(self, request_id: int) -> "TraceRecord | None":
        """The retained trace whose root carries ``request_id``."""
        for pool in (self._crit, self._warm, self._head):
            for record in pool.values():
                if record.request_id == request_id:
                    return record
        return None

    def retained(self, flag: "str | None" = None) -> "list[TraceRecord]":
        """Retained traces (optionally only those carrying ``flag``),
        oldest first."""
        records = (
            list(self._crit.values())
            + list(self._warm.values())
            + list(self._head.values())
        )
        records.sort(key=lambda r: r.trace_id)
        if flag is None:
            return records
        return [r for r in records if flag in r.flags]

    def request_ids(self, flag: "str | None" = None) -> "list[int]":
        """Request ids of retained traces (optionally filtered by flag)."""
        return [
            r.request_id
            for r in self.retained(flag)
            if r.request_id is not None
        ]

    def batch_span(self, span_id: int) -> "FlightSpan | None":
        """A fused-launch span by id (``None`` once evicted)."""
        return self._batches.get(span_id)

    def stats(self) -> dict:
        """Lifetime counters plus current occupancy."""
        return {
            "minted": self.minted,
            "finished": self.finished,
            "retained": self.retained_count,
            "retained_interesting": len(self._crit) + len(self._warm),
            "retained_critical": len(self._crit),
            "retained_head": len(self._head),
            "dropped": self.dropped,
            "evicted": self.evicted,
            "open": self.open_count,
            "cap": self.max_retained,
        }

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """The whole recorder as one JSON-serializable document."""
        return {
            "config": {
                "head_sample_every": self.head_sample_every,
                "slow_threshold_s": self.slow_threshold_s,
                "max_retained": self.max_retained,
            },
            "stats": self.stats(),
            "traces": [r.to_dict() for r in self.retained()],
            "batch_spans": [s.to_dict() for s in self._batches.values()],
            "device_events": [e.to_dict() for e in self.device_events],
        }

    def write(self, path: str) -> dict:
        """Serialize :meth:`to_dict` to ``path``; returns the document."""
        doc = self.to_dict()
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=1, sort_keys=True)
        return doc


def load_flight(path: str) -> dict:
    """Re-load a document written by :meth:`FlightRecorder.write`."""
    with open(path, "r", encoding="utf-8") as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# the per-device timeline profiler
# ----------------------------------------------------------------------
def device_utilization(
    events: "list[DeviceEvent]",
    t0: "float | None" = None,
    t1: "float | None" = None,
    by_stream: bool = False,
) -> dict:
    """Fold device events into per-device busy/transfer/wedged/idle time.

    The horizon defaults to the events' own extent; idle is whatever
    the horizon does not cover (floored at zero).  With streams the
    copy-engine and compute tracks may overlap, so a device's covered
    time can exceed the horizon — pass ``by_stream=True`` to key rows
    by ``(device, stream)`` instead and see each track's share.
    """
    if not events:
        return {}
    lo = min(e.start_s for e in events) if t0 is None else t0
    hi = max(e.end_s for e in events) if t1 is None else t1
    horizon = max(hi - lo, 0.0)
    out: dict = {}
    for event in events:
        key = (event.device, event.stream) if by_stream else event.device
        row = out.setdefault(
            key,
            {kind: 0.0 for kind in DEVICE_TRACK_KINDS},
        )
        row[event.kind] += max(0.0, event.end_s - event.start_s)
    for key, row in out.items():
        covered = sum(row.values())
        row["idle"] = max(0.0, horizon - covered)
        row["horizon_s"] = horizon
        row["utilization"] = (
            row["busy"] / horizon if horizon > 0 else 0.0
        )
    if by_stream:
        return dict(
            sorted(
                out.items(),
                key=lambda kv: (
                    kv[0][0],
                    -1 if kv[0][1] is None else kv[0][1],
                ),
            )
        )
    return dict(sorted(out.items()))


def device_chrome_trace(
    events: "list[DeviceEvent]",
    device_names: "dict[int, str] | None" = None,
) -> dict:
    """Device utilization tracks as a Chrome-trace document.

    One named thread row per device (``device-N``, satisfying
    Perfetto's need for ``M`` metadata to label tracks), one ``X``
    event per interval, timestamps in virtual microseconds.  Events
    tagged with a stream get their own sub-row (``device-N/sK``) so
    overlapped copy/compute intervals render side by side instead of
    stacking on one thread.
    """
    from repro.obs.export import chrome_trace
    from repro.obs.tracer import TraceEvent

    has_streams = any(e.stream is not None for e in events)

    def _tid(e: DeviceEvent) -> int:
        if not has_streams:
            return e.device
        # 64 sub-rows per device: row 0 is the null stream.
        return e.device * 64 + (0 if e.stream is None else e.stream + 1)

    def _name(e: DeviceEvent) -> str:
        base = (
            device_names.get(e.device, f"device-{e.device}")
            if device_names
            else f"device-{e.device}"
        )
        if not has_streams or e.stream is None:
            return base
        return f"{base}/s{e.stream}"

    rows = [
        TraceEvent(
            name=f"device.{e.kind}",
            kind="span",
            ts=e.start_s,
            dur=max(0.0, e.end_s - e.start_s),
            tid=_tid(e),
            depth=0,
            parent=None,
            args={"device": e.device, "label": e.label} if e.label else {"device": e.device},
        )
        for e in events
    ]
    names = {_tid(e): _name(e) for e in events}
    return chrome_trace(rows, process_name="devices", thread_names=names)


#: Gantt glyphs per track kind (idle is the background).
_GANTT_GLYPHS = {"busy": "#", "transfer": "=", "wedged": "X"}


def render_gantt(events: "list[DeviceEvent]", width: int = 72) -> str:
    """A fixed-width text gantt of the device utilization tracks.

    One line per device; each column is one time bin painted with the
    highest-priority kind overlapping it (wedged > transfer > busy),
    ``.`` when idle.  A scale line anchors the virtual-time extent.
    """
    if not events:
        return "(no device events)"
    lo = min(e.start_s for e in events)
    hi = max(e.end_s for e in events)
    span = max(hi - lo, 1e-12)
    bin_s = span / width
    # One line per device for serial traces; one per (device, stream)
    # track when any event is stream-tagged, so overlap is visible.
    has_streams = any(e.stream is not None for e in events)
    if has_streams:
        tracks = sorted(
            {(e.device, e.stream) for e in events},
            key=lambda t: (t[0], -1 if t[1] is None else t[1]),
        )
    else:
        tracks = [(d, None) for d in sorted({e.device for e in events})]
    priority = {kind: i for i, kind in enumerate(DEVICE_TRACK_KINDS)}
    lines = [
        f"device timeline  [{lo * 1e3:.3f} ms .. {hi * 1e3:.3f} ms]  "
        f"({bin_s * 1e6:.1f} us/col; #=busy ==transfer X=wedged .=idle)"
    ]
    for device, stream in tracks:
        cells = [-1] * width
        for event in events:
            if event.device != device:
                continue
            if has_streams and event.stream != stream:
                continue
            first = int((event.start_s - lo) / bin_s)
            last = int((event.end_s - lo) / bin_s)
            rank = priority[event.kind]
            for col in range(max(0, first), min(width - 1, last) + 1):
                if rank > cells[col]:
                    cells[col] = rank
        row = "".join(
            "." if c < 0 else _GANTT_GLYPHS[DEVICE_TRACK_KINDS[c]]
            for c in cells
        )
        label = (
            f"device-{device}"
            if not has_streams
            else f"device-{device}{'' if stream is None else f'/s{stream}'}"
        )
        lines.append(f"{label} |{row}|")
    return "\n".join(lines)
