"""The transfer ledger: every host<->device byte, attributed to a cause.

CuPP's performance story (paper §4.6, §6.3) is a story about transfers
that *didn't* happen — the lazy protocol skipping a re-upload, the const
analysis eliding a copy-back, double buffering hiding a draw-data fetch
behind compute.  Plain byte counters cannot express "bytes that would
have moved"; the ledger can, because every entry carries both an
attributed size and a ``moved`` bit:

========================== ====================================================
cause                      meaning
========================== ====================================================
``eager``                  unconditional copy (``memory1d``, constant mirrors)
``lazy-miss``              the §4.6 lazy protocol found stale data and copied
``copy-back``              post-kernel writeback of a mutable reference
``copy-back-skipped-const`` writeback elided because the parameter was const
                           (recorded with ``moved=False`` — bytes *saved*)
``double-buffer-overlap``  draw-data fetch overlapped with compute (§6.3.2)
``batch-concat``           bytes assembled into a fused batch input: downloads
                           forced by ``Vector.concat`` plus the coalesced
                           upload of cold session state (``repro.serve``)
``batch-split``            bytes demultiplexed out of a fused batch result:
                           the coalesced device->host fetch plus downloads
                           forced by ``Vector.split_at``
``vector-realloc``         a ``cupp.Vector`` outgrew its device block: the old
                           block is freed and the full contents re-uploaded
                           (growth churn, attributable per §4.6)
``pool-hit``               an allocation served from the ``repro.mem`` cache —
                           the simulated ``cudaMalloc`` that *didn't* run
                           (``moved=False``, direction ``none``)
``pool-miss``              the pool had no cached block and paid a raw driver
                           allocation (``moved=False`` — nothing crossed the
                           bus, the bytes are reserved capacity)
``pool-trim``              cached bytes released back to the driver by
                           high/low watermark trimming (``moved=False``)
``oom-flush``              the entire cache flushed on allocation failure
                           before the retry (``moved=False``)
``fault-inject``           a fault fired from :mod:`repro.fault` (the size is
                           the payload the fault poisoned, 0 for control-path
                           faults; always ``moved=False``)
``retry``                  a failed request re-queued with backoff by the
                           serving layer (``moved=False`` — bookkeeping, not
                           bytes)
``failover-restore``       a session restored from its host-side checkpoint
                           and migrated off a dead device; the size is the
                           session state that must re-upload (``moved=False``
                           here — the actual upload is attributed
                           ``batch-concat`` when the next batch launches)
``device-evict``           a device removed from the serving group by the
                           health machinery (``moved=False``, size 0)
``grid-build``             a ``cupp.containers`` structure (hash grid / flat
                           map) uploaded its freshly (re)built arrays to the
                           device — host-side construction, device-side
                           lookup (paper ch. 7)
``grid-query``             a kernel consumed a device-resident container: the
                           size is the structure's device footprint the query
                           pass reads, recorded ``moved=False`` with
                           direction ``d2d`` (on-device traffic, not bus
                           bytes); a lazy re-use of a still-valid grid is
                           visible as a ``grid-query`` without a paired
                           ``grid-build``
``async-h2d``              a ``cudaMemcpyAsync`` upload enqueued on a stream:
                           the bytes ride the copy-engine track and may
                           overlap compute on other streams
``async-d2h``              a ``cudaMemcpyAsync`` download enqueued on a
                           stream (the deferred fetch double buffering hides)
``stream-wait``            a ``cudaStreamWaitEvent`` dependency edge: one
                           stream's work gated on another's event
                           (``moved=False``, size 0 — scheduling, not bytes)
========================== ====================================================

Totals accumulate unconditionally (a handful of dict updates per
transfer); the per-entry log is only kept while :attr:`TransferLedger.
keep_entries` is set, which :func:`repro.obs.session.capture` toggles.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

#: The attribution vocabulary: the paper's causes in the order it
#: introduces them, then the serving layer's batching data path.
CAUSES = (
    "eager",
    "lazy-miss",
    "copy-back",
    "copy-back-skipped-const",
    "double-buffer-overlap",
    "batch-concat",
    "batch-split",
    "vector-realloc",
    "pool-hit",
    "pool-miss",
    "pool-trim",
    "oom-flush",
    "fault-inject",
    "retry",
    "failover-restore",
    "device-evict",
    "grid-build",
    "grid-query",
    "async-h2d",
    "async-d2h",
    "stream-wait",
)

#: The stream/overlap subset of :data:`CAUSES` — ``cudaMemcpyAsync``
#: traffic on the copy-engine track plus ``cudaStreamWaitEvent``
#: dependency edges.  The async causes are genuine bus bytes; a
#: ``stream-wait`` is pure scheduling (``moved=False``, size 0).
STREAM_CAUSES = (
    "async-h2d",
    "async-d2h",
    "stream-wait",
)

#: The fault/recovery subset of :data:`CAUSES` — injected faults and
#: the serving layer's recovery actions.  All entries are
#: ``moved=False``: they attribute chaos and its repair, not bus bytes.
FAULT_CAUSES = (
    "fault-inject",
    "retry",
    "failover-restore",
    "device-evict",
)

#: The allocator-behaviour subset of :data:`CAUSES` — what
#: :mod:`repro.obs.analyze` groups under its "memory" section.  Pool
#: entries are always ``moved=False`` (no bytes cross the bus; the size
#: is the block the cache served, reserved, or released), while
#: ``vector-realloc`` is a genuine h2d transfer that also belongs to the
#: allocation-churn story.
MEMORY_CAUSES = (
    "vector-realloc",
    "pool-hit",
    "pool-miss",
    "pool-trim",
    "oom-flush",
)

#: The ``cupp.containers`` subset of :data:`CAUSES` — device data
#: structure (hash grid / flat map) traffic, which
#: :mod:`repro.obs.analyze` groups under its "containers" section.
#: ``grid-build`` is a genuine h2d upload; ``grid-query`` attributes the
#: on-device bytes a query pass reads (``moved=False``).
CONTAINER_CAUSES = (
    "grid-build",
    "grid-query",
)

#: Transfer directions (``none`` for entries that moved nothing).
DIRECTIONS = ("h2d", "d2h", "d2d", "none")


@dataclass(frozen=True)
class TransferRecord:
    """One attributed transfer (or elided transfer, when not ``moved``)."""

    cause: str
    direction: str
    nbytes: int
    moved: bool
    label: str
    ts: float


class TransferLedger:
    """Accumulates attributed transfer totals (and optionally entries).

    Thread-safe; one process-wide instance lives in :mod:`repro.obs`.
    """

    def __init__(self, keep_entries: bool = False) -> None:
        self._lock = threading.Lock()
        #: When true, individual :class:`TransferRecord` rows are retained.
        self.keep_entries = keep_entries
        self._bytes = {c: 0 for c in CAUSES}
        self._counts = {c: 0 for c in CAUSES}
        self._moved = {d: 0 for d in DIRECTIONS}
        self._saved = 0
        self._entries: list[TransferRecord] = []

    # ------------------------------------------------------------------
    def record(
        self,
        cause: str,
        direction: str,
        nbytes: int,
        *,
        moved: bool = True,
        label: str = "",
        ts: float = 0.0,
    ) -> None:
        """Attribute ``nbytes`` to ``cause``.

        ``moved=False`` marks an *elided* transfer: the bytes count
        toward the cause's attributed total and toward
        :attr:`bytes_saved`, but not toward any direction's moved total.
        """
        if cause not in self._bytes:
            raise ValueError(f"unknown transfer cause {cause!r}; one of {CAUSES}")
        if direction not in self._moved:
            raise ValueError(
                f"unknown transfer direction {direction!r}; one of {DIRECTIONS}"
            )
        nbytes = int(nbytes)
        with self._lock:
            self._bytes[cause] += nbytes
            self._counts[cause] += 1
            if moved:
                self._moved[direction] += nbytes
            else:
                self._saved += nbytes
            if self.keep_entries:
                self._entries.append(
                    TransferRecord(cause, direction, nbytes, moved, label, ts)
                )

    # ------------------------------------------------------------------
    def bytes_for(self, cause: str) -> int:
        """Bytes attributed to ``cause`` (moved or elided)."""
        return self._bytes[cause]

    def count_for(self, cause: str) -> int:
        """Number of entries attributed to ``cause``."""
        return self._counts[cause]

    def moved_bytes(self, direction: "str | None" = None) -> int:
        """Bytes that actually crossed the bus (optionally one direction)."""
        with self._lock:
            if direction is None:
                return sum(self._moved.values())
            return self._moved[direction]

    @property
    def bytes_saved(self) -> int:
        """Bytes attributed but never moved (the paper's elisions)."""
        return self._saved

    @property
    def entries(self) -> "tuple[TransferRecord, ...]":
        """Retained per-entry rows (empty unless ``keep_entries``)."""
        with self._lock:
            return tuple(self._entries)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-serializable totals (the bench/report consumable)."""
        with self._lock:
            return {
                "bytes_by_cause": dict(self._bytes),
                "count_by_cause": dict(self._counts),
                "moved_bytes_by_direction": dict(self._moved),
                "bytes_saved": self._saved,
                "entries_retained": len(self._entries),
            }

    def delta_since(self, before: dict) -> dict:
        """Totals accumulated since a previous :meth:`snapshot`."""
        now = self.snapshot()
        return {
            "bytes_by_cause": {
                c: now["bytes_by_cause"][c] - before["bytes_by_cause"].get(c, 0)
                for c in CAUSES
            },
            "count_by_cause": {
                c: now["count_by_cause"][c] - before["count_by_cause"].get(c, 0)
                for c in CAUSES
            },
            "moved_bytes_by_direction": {
                d: now["moved_bytes_by_direction"][d]
                - before["moved_bytes_by_direction"].get(d, 0)
                for d in DIRECTIONS
            },
            "bytes_saved": now["bytes_saved"] - before.get("bytes_saved", 0),
        }

    def reset(self) -> None:
        """Zero all totals and drop retained entries."""
        with self._lock:
            self._bytes = {c: 0 for c in CAUSES}
            self._counts = {c: 0 for c in CAUSES}
            self._moved = {d: 0 for d in DIRECTIONS}
            self._saved = 0
            self._entries.clear()
