"""Counters, gauges, histograms, and the labeled registry behind them.

Instruments are deliberately tiny mutable objects — a hot path holds a
direct reference to its :class:`Counter` and calls :meth:`Counter.inc`,
paying one attribute store per event.  The :class:`MetricsRegistry`
interns instruments by ``(name, labels)`` so every caller asking for the
same series gets the same object, and renders everything into a plain
dict via :meth:`MetricsRegistry.snapshot` (the format
``repro.bench.report`` and the JSON exporters consume).

Instrument classes are also usable standalone (unregistered): per-object
statistics such as a single ``cupp.Vector``'s upload count are backed by
private ``Counter`` instances, while the registry keeps the process-wide
aggregate series — that split keeps the registry's cardinality bounded
no matter how many vectors a workload creates.
"""

from __future__ import annotations

import threading
from collections import deque


class Counter:
    """A monotonically increasing count (events, bytes, launches)."""

    __slots__ = ("value",)

    def __init__(self, value: "int | float" = 0) -> None:
        self.value = value

    def inc(self, n: "int | float" = 1) -> None:
        """Add ``n`` (defaults to 1) to the count."""
        self.value += n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.value})"


class Gauge:
    """A value that can go up and down (live allocations, queue depth)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        """Overwrite the gauge."""
        self.value = value

    def inc(self, n: float = 1) -> None:
        """Move the gauge up by ``n``."""
        self.value += n

    def dec(self, n: float = 1) -> None:
        """Move the gauge down by ``n``."""
        self.value -= n

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Gauge({self.value})"


class Histogram:
    """Distribution summary: count/sum/min/max plus power-of-two buckets.

    The bucket layout (upper bounds ``1, 2, 4, ...``) suits the layer's
    dominant distributions — transfer sizes in bytes and durations in
    microseconds — without per-series configuration.
    """

    __slots__ = ("count", "total", "min", "max", "buckets", "exemplars")

    #: Number of power-of-two buckets (the last one is unbounded).
    BUCKETS = 40

    #: Exemplar reservoir depth per bucket.
    EXEMPLARS_PER_BUCKET = 4

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: "float | None" = None
        self.max: "float | None" = None
        self.buckets = [0] * self.BUCKETS
        # Lazy: bucket index -> [(value, trace_id), ...]; allocated only
        # when a caller actually passes trace ids, so plain histograms
        # stay four-slot cheap.
        self.exemplars: "dict[int, list] | None" = None

    def observe(self, value: float, trace_id: "str | None" = None) -> None:
        """Record one sample, optionally tagged with a trace exemplar."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        b = 0
        bound = 1.0
        while value > bound and b < self.BUCKETS - 1:
            bound *= 2.0
            b += 1
        self.buckets[b] += 1
        if trace_id is not None:
            if self.exemplars is None:
                self.exemplars = {}
            slots = self.exemplars.setdefault(b, [])
            entry = (value, trace_id)
            if len(slots) < self.EXEMPLARS_PER_BUCKET:
                slots.append(entry)
            else:
                # Deterministic rotating overwrite (no RNG: runs must be
                # bit-identical per seed) — keeps the reservoir fresh so
                # late spikes displace stale exemplars.
                slots[(self.buckets[b] - 1) % self.EXEMPLARS_PER_BUCKET] = entry

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-th percentile (0-100) from the buckets.

        Linear interpolation inside the first bucket whose cumulative
        count reaches the target rank, clamped to the observed min/max so
        the coarse power-of-two bounds never over- or under-shoot the
        data.  Returns 0.0 when the histogram is empty.
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return 0.0
        rank = q / 100.0 * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if seen + n >= rank:
                lo = 0.0 if i == 0 else float(2 ** (i - 1))
                hi = float(2**i)
                frac = (rank - seen) / n
                est = lo + (hi - lo) * frac
                return min(max(est, self.min), self.max)
            seen += n
        return float(self.max)

    def percentile_bucket(self, q: float) -> "int | None":
        """Index of the bucket holding the ``q``-th percentile rank.

        ``None`` when the histogram is empty.  This is the bucket whose
        exemplars explain a percentile spike (see :meth:`exemplars_for`).
        """
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if not self.count:
            return None
        rank = q / 100.0 * self.count
        seen = 0
        for i, n in enumerate(self.buckets):
            if n and seen + n >= rank:
                return i
            seen += n
        return self.BUCKETS - 1

    def exemplars_for(self, q: float) -> "list[tuple[float, str]]":
        """Exemplars from the bucket that contains the ``q``-th percentile.

        The resolution path for "p99 spiked — which requests?": find the
        percentile's bucket, return its retained ``(value, trace_id)``
        samples (empty when no exemplars were ever recorded there).
        """
        if self.exemplars is None:
            return []
        bucket = self.percentile_bucket(q)
        if bucket is None:
            return []
        return list(self.exemplars.get(bucket, []))

    def summary(self) -> dict:
        """Plain-dict rendering (non-empty buckets only)."""
        out = {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": {
                f"le_{2 ** i}": n for i, n in enumerate(self.buckets) if n
            },
        }
        if self.exemplars:
            out["exemplars"] = {
                f"le_{2 ** i}": [
                    {"value": v, "trace_id": t} for v, t in slots
                ]
                for i, slots in sorted(self.exemplars.items())
                if slots
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Histogram(count={self.count}, sum={self.total})"


class Window:
    """A sliding window of explicitly timestamped samples.

    Cumulative instruments (:class:`Counter`, :class:`Histogram`) cannot
    answer "what was the p99 over the *last 50 ms*" — windows can,
    because every observation carries its own timestamp (virtual or
    wall, the window does not care) and old samples age out as newer
    ones arrive.  This is the store the SLO monitor
    (:mod:`repro.obs.monitor`) evaluates rules against.

    Pruning happens on :meth:`observe` and on every read, driven by the
    newest timestamp seen (``now`` may be passed explicitly to read
    "as of" a later time).  Timestamps must be non-decreasing, which
    both the virtual-time serving clock and the monotonic wall clock
    guarantee.
    """

    __slots__ = ("horizon_s", "_samples", "_now")

    def __init__(self, horizon_s: float) -> None:
        if horizon_s <= 0:
            raise ValueError(f"window horizon must be positive, got {horizon_s}")
        self.horizon_s = horizon_s
        self._samples: "deque[tuple[float, float, object]]" = deque()
        self._now = 0.0

    def observe(
        self, ts: float, value: float, trace_id: "str | None" = None
    ) -> None:
        """Record one sample at time ``ts`` (non-decreasing), optionally
        tagged with the trace that produced it."""
        self._samples.append((ts, float(value), trace_id))
        self._prune(ts)

    def _prune(self, now: float) -> None:
        self._now = max(self._now, now)
        cutoff = self._now - self.horizon_s
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    # ------------------------------------------------------------------
    def values(self, now: "float | None" = None) -> "list[float]":
        """Samples currently inside the window, oldest first."""
        if now is not None:
            self._prune(now)
        return [v for _, v, _ in self._samples]

    def exemplars(
        self, k: int = 4, now: "float | None" = None
    ) -> "list[tuple[float, str]]":
        """The ``k`` largest tagged in-window samples as
        ``(value, trace_id)``, worst first — the traces to pull when a
        window-based SLO rule fires."""
        if now is not None:
            self._prune(now)
        tagged = [(v, t) for _, v, t in self._samples if t is not None]
        tagged.sort(key=lambda e: -e[0])
        return tagged[:k]

    def count(self, now: "float | None" = None) -> int:
        """Number of in-window samples."""
        return len(self.values(now))

    def mean(self, now: "float | None" = None) -> float:
        """Arithmetic mean of in-window samples (0.0 when empty)."""
        values = self.values(now)
        return sum(values) / len(values) if values else 0.0

    def max(self, now: "float | None" = None) -> float:
        """Largest in-window sample (0.0 when empty)."""
        values = self.values(now)
        return max(values) if values else 0.0

    def percentile(self, q: float, now: "float | None" = None) -> float:
        """Exact ``q``-th percentile (0-100) of in-window samples."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        values = sorted(self.values(now))
        if not values:
            return 0.0
        if len(values) == 1:
            return values[0]
        rank = q / 100.0 * (len(values) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(values) - 1)
        return values[lo] + (values[hi] - values[lo]) * (rank - lo)

    def __len__(self) -> int:
        return len(self._samples)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Window(horizon_s={self.horizon_s}, samples={len(self._samples)})"


def _series_key(name: str, labels: dict) -> "tuple[str, tuple]":
    return name, tuple(sorted(labels.items()))


def _series_name(name: str, labels: "tuple[tuple[str, object], ...]") -> str:
    if not labels:
        return name
    rendered = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Interned, labeled instruments plus a snapshot renderer.

    ``counter``/``gauge``/``histogram`` get-or-create a series; asking
    twice with the same name and labels returns the same instrument, so
    instrumented code can cache the handle or re-resolve it each time.
    """

    def __init__(self) -> None:
        # Reentrant: a GC pass can run ``Device.__del__`` (which
        # publishes pool gauges) while this thread already holds the
        # lock inside ``_get`` — a plain Lock deadlocks the process.
        self._lock = threading.RLock()
        self._counters: dict = {}
        self._gauges: dict = {}
        self._histograms: dict = {}

    # ------------------------------------------------------------------
    def _get(self, table: dict, factory, name: str, labels: dict):
        key = _series_key(name, labels)
        with self._lock:
            inst = table.get(key)
            if inst is None:
                inst = table[key] = factory()
            return inst

    def counter(self, name: str, **labels: object) -> Counter:
        """The :class:`Counter` for ``name`` + ``labels`` (created once)."""
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The :class:`Gauge` for ``name`` + ``labels`` (created once)."""
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> Histogram:
        """The :class:`Histogram` for ``name`` + ``labels`` (created once)."""
        return self._get(self._histograms, Histogram, name, labels)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything, as a JSON-serializable dict.

        Series names render as ``name{label=value,...}``; counters and
        gauges map to their value, histograms to their summary dict.
        """
        with self._lock:
            return {
                "counters": {
                    _series_name(n, l): c.value
                    for (n, l), c in sorted(self._counters.items())
                },
                "gauges": {
                    _series_name(n, l): g.value
                    for (n, l), g in sorted(self._gauges.items())
                },
                "histograms": {
                    _series_name(n, l): h.summary()
                    for (n, l), h in sorted(self._histograms.items())
                },
            }

    def reset(self) -> None:
        """Drop every series (test isolation; existing handles detach)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
