"""Live SLO monitoring: declarative rules over sliding metric windows.

The serving layer produces canonical series (request latency, request
outcomes, queue depth); this module *enforces* objectives over them
while the workload runs.  A :class:`SloRule` names a series, a windowed
statistic, and a threshold ("p99 of ``repro.request.latency`` over the
last 50 ms must stay under 5000 µs"); an :class:`SloMonitor` holds the
rules, ingests observations (virtual-time stamped — the monitor never
reads a clock), and turns threshold breaches into :class:`Alert`
transitions with an exportable log.

Burn-rate alerting follows the SRE playbook: a rule may carry a
*short* window alongside its long one, and then fires only when **both**
breach — the long window proves the problem is sustained, the short one
proves it is still happening (and lets the alert clear quickly once the
breach ends).

Firing is edge-triggered: :meth:`SloMonitor.evaluate` returns only the
rules that newly fired or cleared at that evaluation, and listeners
(e.g. the serving layer's admission controller switching to a
load-shedding policy) are invoked exactly once per transition.  The
full history stays in :attr:`SloMonitor.log`, which exports alongside
the trace so "did we degrade gracefully?" is machine-checkable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.metrics import Window

#: Windowed statistics a rule may evaluate.  ``ratio`` is the mean of
#: 0/1-valued samples (e.g. deadline misses over terminal outcomes).
STATS = ("p50", "p95", "p99", "mean", "max", "count", "ratio")


@dataclass(frozen=True)
class SloRule:
    """One objective: ``stat(series over window_s) <= threshold``.

    Parameters
    ----------
    name:
        Stable identifier for alerts and the log.
    series:
        The observation stream the rule consumes (by convention a
        canonical registry series name, e.g. ``repro.request.latency``).
    stat:
        One of :data:`STATS`, evaluated over the window.
    threshold:
        The objective; the rule breaches when the statistic *exceeds* it.
    window_s:
        The (long) sliding-window horizon.
    short_window_s:
        Optional burn-rate fast window; when set, the rule fires only
        while both windows breach.
    min_count:
        Samples required in the long window before the rule is
        evaluated at all (keeps one slow request from paging at t=0).
    """

    name: str
    series: str
    stat: str
    threshold: float
    window_s: float
    short_window_s: "float | None" = None
    min_count: int = 1

    def __post_init__(self) -> None:
        if self.stat not in STATS:
            raise ValueError(f"unknown stat {self.stat!r}; one of {STATS}")
        if self.window_s <= 0:
            raise ValueError(f"window_s must be positive, got {self.window_s}")
        if self.short_window_s is not None and not (
            0 < self.short_window_s <= self.window_s
        ):
            raise ValueError(
                "short_window_s must be positive and no longer than window_s"
            )


@dataclass
class Alert:
    """One firing of one rule, from breach to (eventual) clearance."""

    rule: str
    series: str
    fired_at: float
    value: float
    threshold: float
    cleared_at: "float | None" = None
    #: Worst in-window ``(value, trace_id)`` samples captured when the
    #: alert fired — the traces to pull to explain the breach.
    exemplars: "list[tuple[float, str]]" = field(default_factory=list)

    @property
    def active(self) -> bool:
        """Still firing (not yet cleared)?"""
        return self.cleared_at is None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "series": self.series,
            "fired_at_s": self.fired_at,
            "value": self.value,
            "threshold": self.threshold,
            "cleared_at_s": self.cleared_at,
            "exemplars": [
                {"value": v, "trace_id": t} for v, t in self.exemplars
            ],
        }


def _stat(window: Window, stat: str, now: float) -> float:
    if stat == "p50":
        return window.percentile(50, now)
    if stat == "p95":
        return window.percentile(95, now)
    if stat == "p99":
        return window.percentile(99, now)
    if stat == "mean" or stat == "ratio":
        return window.mean(now)
    if stat == "max":
        return window.max(now)
    return float(window.count(now))


class SloMonitor:
    """Evaluates :class:`SloRule` objectives over live observations.

    Drive it with :meth:`observe` (one call per sample, explicitly
    timestamped) and :meth:`evaluate` (at natural decision points — the
    serving event loop calls it after every event).  Subscribe with
    :meth:`on_fire`/:meth:`on_clear` to react; read :attr:`log` or
    :meth:`to_dict` to audit.
    """

    def __init__(self, rules: "list[SloRule]") -> None:
        names = [r.name for r in rules]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate rule names in {names}")
        self.rules = list(rules)
        self._windows: "dict[str, Window]" = {}
        self._short: "dict[str, Window]" = {}
        for rule in self.rules:
            self._windows[rule.name] = Window(rule.window_s)
            if rule.short_window_s is not None:
                self._short[rule.name] = Window(rule.short_window_s)
        self._active: "dict[str, Alert]" = {}
        #: Every alert ever fired, in firing order (active ones included).
        self.log: "list[Alert]" = []
        self._fire_listeners: "list" = []
        self._clear_listeners: "list" = []

    # ------------------------------------------------------------------
    def on_fire(self, listener) -> None:
        """Call ``listener(alert)`` when a rule newly fires."""
        self._fire_listeners.append(listener)

    def on_clear(self, listener) -> None:
        """Call ``listener(alert)`` when a firing rule clears."""
        self._clear_listeners.append(listener)

    # ------------------------------------------------------------------
    def observe(
        self, series: str, ts: float, value: float,
        trace_id: "str | None" = None,
    ) -> None:
        """Feed one sample to every rule watching ``series``.

        An optional ``trace_id`` tags the sample so that, should the
        rule fire, the alert carries the offending traces as exemplars.
        """
        for rule in self.rules:
            if rule.series != series:
                continue
            self._windows[rule.name].observe(ts, value, trace_id)
            short = self._short.get(rule.name)
            if short is not None:
                short.observe(ts, value, trace_id)

    def _breaching(self, rule: SloRule, now: float) -> "float | None":
        """The rule's current long-window value when breaching, else None."""
        window = self._windows[rule.name]
        if window.count(now) < rule.min_count:
            return None
        value = _stat(window, rule.stat, now)
        if value <= rule.threshold:
            return None
        short = self._short.get(rule.name)
        if short is not None and _stat(short, rule.stat, now) <= rule.threshold:
            return None  # sustained breach but the fast burn has ended
        return value

    def evaluate(self, now: float) -> "list[Alert]":
        """Fire/clear transitions at virtual time ``now``.

        Returns the alerts that *changed state* in this evaluation
        (newly fired, or newly cleared); steady states return nothing.
        """
        transitions: "list[Alert]" = []
        for rule in self.rules:
            value = self._breaching(rule, now)
            active = self._active.get(rule.name)
            if value is not None and active is None:
                alert = Alert(
                    rule=rule.name,
                    series=rule.series,
                    fired_at=now,
                    value=value,
                    threshold=rule.threshold,
                    exemplars=self._windows[rule.name].exemplars(now=now),
                )
                self._active[rule.name] = alert
                self.log.append(alert)
                transitions.append(alert)
                for listener in self._fire_listeners:
                    listener(alert)
            elif value is None and active is not None:
                active.cleared_at = now
                del self._active[rule.name]
                transitions.append(active)
                for listener in self._clear_listeners:
                    listener(active)
        return transitions

    # ------------------------------------------------------------------
    @property
    def active(self) -> "list[Alert]":
        """Currently firing alerts, in rule order."""
        return [
            self._active[r.name] for r in self.rules if r.name in self._active
        ]

    def fired(self, rule_name: str) -> bool:
        """Has ``rule_name`` fired at any point so far?"""
        return any(alert.rule == rule_name for alert in self.log)

    def to_dict(self) -> dict:
        """JSON-exportable alert log (written next to the trace)."""
        return {
            "rules": [
                {
                    "name": r.name,
                    "series": r.series,
                    "stat": r.stat,
                    "threshold": r.threshold,
                    "window_s": r.window_s,
                    "short_window_s": r.short_window_s,
                }
                for r in self.rules
            ],
            "alerts": [alert.to_dict() for alert in self.log],
            "active": [alert.rule for alert in self.active],
        }
