"""Capture sessions: scoped collection of trace + metrics + ledger.

:func:`capture` is how a benchmark or test grabs one experiment's worth
of observability data without caring about global recorder state: it
installs a fresh in-memory recorder (nesting-safe — an outer capture
still sees the inner events), turns on ledger entry retention, and on
exit freezes everything into a :class:`Capture` bundle that can be
asserted on or dumped next to the experiment's results.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.obs.export import chrome_trace, write_chrome_trace, write_json
from repro.obs.tracer import InMemoryRecorder, TraceEvent


@dataclass
class Capture:
    """A frozen bundle of one capture session's observability data."""

    events: "list[TraceEvent]" = field(default_factory=list)
    metrics: dict = field(default_factory=dict)
    ledger: dict = field(default_factory=dict)

    def chrome_trace(self, process_name: str = "repro") -> dict:
        """The captured events as a Chrome-trace JSON object."""
        return chrome_trace(self.events, process_name)

    def write(self, directory: str, stem: str = "capture") -> "list[str]":
        """Write ``<stem>.trace.json`` and ``<stem>.metrics.json`` into
        ``directory``; returns the paths written."""
        import os

        os.makedirs(directory, exist_ok=True)
        trace_path = os.path.join(directory, f"{stem}.trace.json")
        metrics_path = os.path.join(directory, f"{stem}.metrics.json")
        write_chrome_trace(trace_path, self.events, process_name=stem)
        write_json(
            metrics_path, {"metrics": self.metrics, "transfer_ledger": self.ledger}
        )
        return [trace_path, metrics_path]


@contextlib.contextmanager
def capture(process_name: str = "repro"):
    """Collect trace events, a metrics snapshot, and ledger deltas for
    the duration of the ``with`` block.

    Enables tracing into a fresh recorder for the block (restoring the
    previous recorder afterwards — events are replayed into an enclosing
    in-memory recorder so nested captures compose) and retains ledger
    entries while active.  Yields a :class:`Capture` that is filled in
    at block exit.
    """
    from repro import obs

    tracer = obs.get_tracer()
    ledger = obs.get_ledger()
    registry = obs.get_metrics()

    prev_recorder = tracer.recorder
    recorder = InMemoryRecorder()
    tracer.enable(recorder)
    prev_keep = ledger.keep_entries
    ledger.keep_entries = True
    ledger_before = ledger.snapshot()

    cap = Capture()
    try:
        yield cap
    finally:
        cap.events = recorder.drain()
        cap.metrics = registry.snapshot()
        cap.ledger = ledger.delta_since(ledger_before)
        ledger.keep_entries = prev_keep
        if isinstance(prev_recorder, InMemoryRecorder):
            for event in cap.events:
                prev_recorder.record(event)
            tracer.enable(prev_recorder)
        else:
            tracer.disable()
