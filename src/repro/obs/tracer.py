"""Nestable spans and instant events on a monotonic clock.

The tracer is the event-producing half of the observability layer
(:mod:`repro.obs`): instrumented code opens :class:`Span` context
managers around units of work (a kernel launch, a pipeline stage) and
drops :meth:`Tracer.instant` markers for point-in-time facts (a dirty
flag flipping, a memcpy).  Events land in a :class:`Recorder`; the
exporters (:mod:`repro.obs.export`) turn recorded events into
Chrome-trace JSON.

Two design rules keep tracing safe to leave compiled into every hot
path:

* **Zero-cost when disabled.**  A disabled tracer hands out one shared
  :class:`NullSpan` singleton and never touches a clock, a lock, or a
  list.  Call sites that would build attribute dictionaries should
  guard on :attr:`Tracer.enabled` first.
* **Thread safety.**  The span stack is thread-local (so nesting is
  per-thread, like Chrome's ``tid`` tracks), and recorders serialize
  appends with a lock.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

#: The monotonic time source for every event (seconds, arbitrary epoch).
monotonic = time.perf_counter


@dataclass
class TraceEvent:
    """One finished span or instant event.

    ``ts``/``dur`` are seconds on the monotonic clock; ``depth`` and
    ``parent`` describe the span nesting at record time (instants adopt
    the depth of their enclosing span plus one).
    """

    name: str
    kind: str  # "span" | "instant"
    ts: float
    dur: float
    tid: int
    depth: int
    parent: "str | None"
    args: dict = field(default_factory=dict)


class Recorder:
    """Where trace events go.  Subclasses override :meth:`record`."""

    def record(self, event: TraceEvent) -> None:
        """Accept one finished event (base implementation drops it)."""


class NullRecorder(Recorder):
    """Discards everything — the disabled-tracing recorder."""


class InMemoryRecorder(Recorder):
    """Collects events in a list under a lock (the default when
    tracing is enabled); :meth:`drain` hands them to an exporter."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: list[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        """Append one event (thread-safe)."""
        with self._lock:
            self._events.append(event)

    def events(self) -> "list[TraceEvent]":
        """A snapshot copy of everything recorded so far."""
        with self._lock:
            return list(self._events)

    def drain(self) -> "list[TraceEvent]":
        """Return all events and clear the buffer."""
        with self._lock:
            out, self._events = self._events, []
            return out

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class NullSpan:
    """The span handed out while tracing is disabled: a reusable no-op
    context manager.  One shared instance exists per process, so the
    disabled path allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None

    def set(self, **attrs: object) -> None:
        """Ignore attributes (disabled tracing)."""


#: The process-wide disabled span (identity-checkable by tests).
NULL_SPAN = NullSpan()


class Span:
    """A live, timed unit of work.

    Use as a context manager; :meth:`set` attaches attributes that are
    only known mid-flight (e.g. the instruction profile of a kernel
    launch, available only after the launch returns).
    """

    __slots__ = ("_tracer", "name", "args", "_start", "depth", "parent")

    def __init__(self, tracer: "Tracer", name: str, args: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.args = args
        self._start = 0.0
        self.depth = 0
        self.parent: "str | None" = None

    def set(self, **attrs: object) -> None:
        """Merge ``attrs`` into the span's attributes."""
        self.args.update(attrs)

    def __enter__(self) -> "Span":
        stack = self._tracer._stack()
        self.depth = len(stack)
        self.parent = stack[-1].name if stack else None
        stack.append(self)
        self._start = monotonic()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = monotonic()
        stack = self._tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        self._tracer._recorder.record(
            TraceEvent(
                name=self.name,
                kind="span",
                ts=self._start,
                dur=end - self._start,
                tid=threading.get_ident(),
                depth=self.depth,
                parent=self.parent,
                args=self.args,
            )
        )


class Tracer:
    """The span/instant event source.

    Starts disabled (recording into a :class:`NullRecorder`); call
    :meth:`enable` to start collecting.  One process-wide instance lives
    in :mod:`repro.obs`; creating private tracers is supported for
    tests.
    """

    def __init__(self, recorder: "Recorder | None" = None) -> None:
        # Explicit None check: an empty InMemoryRecorder is falsy (__len__).
        self._recorder: Recorder = (
            recorder if recorder is not None else NullRecorder()
        )
        self._local = threading.local()

    # ------------------------------------------------------------------
    def _stack(self) -> "list[Span]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    @property
    def enabled(self) -> bool:
        """True when events are being kept (non-null recorder)."""
        return not isinstance(self._recorder, NullRecorder)

    @property
    def recorder(self) -> Recorder:
        """The active recorder (a :class:`NullRecorder` when disabled)."""
        return self._recorder

    def enable(self, recorder: "Recorder | None" = None) -> Recorder:
        """Start recording (into ``recorder`` or a fresh in-memory one);
        returns the active recorder."""
        # Explicit None check: an empty InMemoryRecorder is falsy (__len__).
        if recorder is None:
            recorder = InMemoryRecorder()
        self._recorder = recorder
        return self._recorder

    def disable(self) -> None:
        """Stop recording; subsequent spans are shared no-ops."""
        self._recorder = NullRecorder()

    # ------------------------------------------------------------------
    def span(self, name: str, **args: object) -> "Span | NullSpan":
        """A context manager timing one unit of work.

        When disabled this returns the shared :data:`NULL_SPAN` without
        touching the clock — the zero-cost path.
        """
        if isinstance(self._recorder, NullRecorder):
            return NULL_SPAN
        return Span(self, name, args)

    def instant(self, name: str, **args: object) -> None:
        """Record a point-in-time event at the current nesting depth."""
        if isinstance(self._recorder, NullRecorder):
            return
        stack = self._stack()
        self._recorder.record(
            TraceEvent(
                name=name,
                kind="instant",
                ts=monotonic(),
                dur=0.0,
                tid=threading.get_ident(),
                depth=len(stack),
                parent=stack[-1].name if stack else None,
                args=args,
            )
        )

    def events(self) -> "list[TraceEvent]":
        """Events collected so far (empty unless the recorder keeps them)."""
        rec = self._recorder
        if isinstance(rec, InMemoryRecorder):
            return rec.events()
        return []
