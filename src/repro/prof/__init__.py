"""``repro.prof`` — Nsight-Compute-style kernel profiling.

Counter capture (:class:`ProfSession` + the global hook), roofline
analysis, a guided performance advisor, and the ``python -m repro.prof``
CLI.  The package ``__init__`` stays import-light: the CUDA runtime
imports :mod:`repro.prof.hook` on its hot path, and that must not drag
the rest of the profiler (perf model, bench reporting) into every
process that merely *could* be profiled.
"""

from __future__ import annotations

from repro.prof import hook

__all__ = [
    "Finding",
    "KernelCounters",
    "ProfSession",
    "RooflinePoint",
    "advise",
    "diff_reports",
    "hook",
    "render_diff",
    "render_report",
    "roofline",
    "roofline_point",
    "session_report",
]

_LAZY = {
    "Finding": ("repro.prof.advisor", "Finding"),
    "advise": ("repro.prof.advisor", "advise"),
    "KernelCounters": ("repro.prof.counters", "KernelCounters"),
    "ProfSession": ("repro.prof.session", "ProfSession"),
    "RooflinePoint": ("repro.prof.roofline", "RooflinePoint"),
    "roofline": ("repro.prof.roofline", "roofline"),
    "roofline_point": ("repro.prof.roofline", "roofline_point"),
    "session_report": ("repro.prof.report", "session_report"),
    "render_report": ("repro.prof.report", "render_report"),
    "diff_reports": ("repro.prof.report", "diff_reports"),
    "render_diff": ("repro.prof.report", "render_diff"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module 'repro.prof' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value
