"""``python -m repro.prof`` — profile a pipeline version or a serve run.

Targets are ``v1`` .. ``v5`` (the Table 6.1 development versions, run
through the emulated pipeline) or ``serve`` (a short loadgen run whose
modelled kernel costs the scheduler records).  Prefix a target with a
backend kind to choose the substrate: ``native:v1`` profiles the
vectorized backend (counters derived by SIMT replay), plain ``v1`` the
cycle simulator.

Examples::

    python -m repro.prof v1                  # counters+roofline+advisor
    python -m repro.prof --diff v1 v5        # what explains the speedup?
    python -m repro.prof --diff v1 native:v1 # sim vs native, same kernels
    python -m repro.prof serve --json out.json

The pipeline targets default to a deliberately small machine (2
multiprocessors) and population (128 agents): block-size advice is only
honest when a config change cannot silently change how many MPs the
grid covers, and the SIMT emulation of v1's O(n^2) neighbor search is
Python-speed.  Both are tunable.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.prof.report import (
    diff_reports,
    render_diff,
    render_report,
    session_report,
)
from repro.prof.session import ProfSession

PIPELINE_VERSIONS = (1, 2, 3, 4, 5, 6)


def parse_target(raw: str) -> "tuple[str, object]":
    """``[backend:]vN`` or ``[backend:]serve`` -> (backend, version|"serve")."""
    backend, _, rest = raw.rpartition(":")
    backend = backend or "sim"
    if backend not in ("sim", "native"):
        raise ValueError(f"unknown backend {backend!r} in target {raw!r}")
    if rest == "serve":
        return backend, "serve"
    if rest.startswith("v") and rest[1:].isdigit():
        version = int(rest[1:])
        if version in PIPELINE_VERSIONS:
            return backend, version
    raise ValueError(
        f"unknown target {raw!r}; expected v1..v6 or serve, "
        "optionally prefixed sim:/native:"
    )


def profile_pipeline(
    version: int,
    backend: str = "sim",
    agents: int = 128,
    steps: int = 1,
    threads_per_block: int = 32,
    multiprocessors: int = 2,
    seed: int = 7,
) -> ProfSession:
    """Profile ``steps`` frames of one pipeline version's kernels."""
    from repro.cuda.runtime import CudaMachine
    from repro.cupp.device import Device
    from repro.gpusteer.emulated import EmulatedBoids
    from repro.simgpu.arch import scaled_arch

    arch = scaled_arch(f"prof-G80/{multiprocessors}mp", multiprocessors)
    device = Device(machine=CudaMachine([arch], backend=backend))
    boids = EmulatedBoids(
        agents,
        version,
        seed=seed,
        device=device,
        threads_per_block=threads_per_block,
    )
    session = ProfSession()
    with session:
        for _ in range(steps):
            boids.step()
    return session


def profile_serve(
    backend: str = "sim",
    clients: int = 8,
    duration_s: float = 0.05,
    rate_rps: float = 2000.0,
    agents: int = 128,
    seed: int = 0,
) -> ProfSession:
    """Profile a short serve/loadgen run (modelled kernel cost rows)."""
    from repro.serve.loadgen import run_load
    from repro.serve.service import ServeConfig

    session = ProfSession()
    run_load(
        clients=clients,
        duration_s=duration_s,
        rate_rps=rate_rps,
        seed=seed,
        config=ServeConfig(
            physics=False, backend=backend, agents_per_session=agents
        ),
        prof=session,
    )
    return session


def profile_target(raw: str, args: argparse.Namespace) -> dict:
    """Profile one CLI target and build its report dict."""
    backend, what = parse_target(raw)
    if what == "serve":
        session = profile_serve(
            backend=backend, agents=args.agents, seed=args.seed
        )
    else:
        session = profile_pipeline(
            what,
            backend=backend,
            agents=args.agents,
            steps=args.steps,
            threads_per_block=args.tpb,
            multiprocessors=args.mps,
            seed=args.seed,
        )
    return session_report(session, label=raw)


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.prof",
        description="Kernel profiler: hardware counters, roofline, advisor.",
    )
    p.add_argument(
        "targets",
        nargs="+",
        help="what to profile: v1..v5 or serve, optionally "
        "sim:/native:-prefixed (default backend: sim)",
    )
    p.add_argument(
        "--diff",
        action="store_true",
        help="compare exactly two targets (first = baseline)",
    )
    p.add_argument(
        "--json", default=None, metavar="PATH", help="write report JSON here"
    )
    p.add_argument(
        "--agents", type=int, default=128, help="agents per flock/session"
    )
    p.add_argument(
        "--steps", type=int, default=1, help="pipeline frames to profile"
    )
    p.add_argument(
        "--tpb", type=int, default=32, help="threads per block (pipeline)"
    )
    p.add_argument(
        "--mps",
        type=int,
        default=2,
        help="multiprocessors of the profiled device (small keeps MP "
        "coverage fixed across block-size what-ifs)",
    )
    p.add_argument("--seed", type=int, default=7, help="flock spawn seed")
    return p


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: profile targets, optionally diff a pair.

    Returns the process exit code; raises ``SystemExit`` on usage
    errors (unknown target, ``--diff`` without exactly two targets).
    """
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        for raw in args.targets:
            parse_target(raw)  # validate before any slow profiling
    except ValueError as exc:
        parser.error(str(exc))
    if args.diff and len(args.targets) != 2:
        parser.error("--diff needs exactly two targets (baseline, candidate)")

    reports = [profile_target(raw, args) for raw in args.targets]

    if args.diff:
        diff = diff_reports(reports[0], reports[1])
        print(render_diff(diff))
        payload: object = {"a": reports[0], "b": reports[1], "diff": diff}
    else:
        for report in reports:
            print(render_report(report))
            print()
        payload = reports[0] if len(reports) == 1 else reports

    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"profile JSON written: {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
