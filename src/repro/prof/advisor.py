"""The guided advisor: counter evidence -> ranked findings with speedups.

Each rule looks at one kernel's aggregated counters, builds a
counterfactual (what if the accesses coalesced / the block size changed
/ the divergence vanished / the bank conflicts vanished), runs *both*
worlds through the same analytic performance model that is the sim
backend's clock, and reports the ratio as the estimated speedup.  A
finding therefore never claims more than the machine model can deliver
— the model that also produced the kernel's measured virtual time — and
every finding carries the counters that triggered it.

Thresholds are deliberately asymmetric: structural problems with a real
time cost (uncoalesced loads worth >=15%, occupancy headroom worth
>=2%) fire; the same counters at negligible modelled cost stay quiet.
In this CC 1.0 model nearly *every* float3 access is uncoalesced — what
separates v1 from v5 is not the presence of uncoalesced transactions
but whether uncoalesced *loads* dominate the kernel's traffic and
fixing them would still buy anything: v1's neighbor search is wall-to-
wall strided reads, while v5's remaining scatter is the draw-matrix
store format the host asked for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

from repro.prof.counters import KernelCounters
from repro.simgpu.arch import ArchSpec
from repro.simgpu.costs import CostTable, G80_COSTS
from repro.simgpu.multiprocessor import KernelLimits, suggest_block_size
from repro.simgpu.perfmodel import KernelCostInputs, kernel_time

#: A coalesced half-warp transaction: 16 lanes x 4 bytes.
COALESCED_GROUP_BYTES = 64

#: Minimum estimated speedups for a rule to fire.
UNCOALESCED_MIN_SPEEDUP = 1.15
OCCUPANCY_MIN_SPEEDUP = 1.02
DIVERGENCE_MIN_SPEEDUP = 1.05
BANK_CONFLICT_MIN_SPEEDUP = 1.02

#: The coalescing rule targets *loads*: it fires only when uncoalesced
#: read transactions are the majority of the kernel's global traffic, so
#: that re-laying-out the inputs actually addresses the dominant cost.
#: Uncoalesced stores (the v5 draw-matrix writes) are the output format
#: the host asked for — scatter they must.
UNCOALESCED_READ_DOMINANCE = 0.5

#: Occupancy below this fraction of max resident warps is "low".
LOW_OCCUPANCY = 0.5


@dataclass(frozen=True)
class Finding:
    """One advisor rule's verdict on one kernel."""

    rule: str
    kernel: str
    estimated_speedup: float
    message: str
    #: The counters that triggered the rule.
    evidence: "dict[str, object]"
    #: Concrete configuration change, when the rule has one.
    suggestion: "dict[str, object] | None" = None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "kernel": self.kernel,
            "estimated_speedup": self.estimated_speedup,
            "message": self.message,
            "evidence": self.evidence,
            "suggestion": self.suggestion,
        }


def advise(session) -> "list[Finding]":
    """Run every rule over a session's kernels, best speedup first."""
    findings: "list[Finding]" = []
    for name, kc in session.kernels.items():
        arch = session.archs[name]
        if kc.modelled_only:
            continue  # closed-form rows carry no per-op evidence
        findings += _uncoalesced_loads(kc, arch, session.costs)
        findings += _low_occupancy(kc, arch, session.costs)
        findings += _divergence(kc, arch, session.costs)
        findings += _bank_conflicts(kc, arch, session.costs)
    findings.sort(key=lambda f: f.estimated_speedup, reverse=True)
    return findings


# ----------------------------------------------------------------------
def _per_launch_inputs(kc: KernelCounters) -> KernelCostInputs:
    """Average one launch's cost inputs out of the aggregate record."""
    launches = max(1, kc.launches)
    return KernelCostInputs(
        blocks=max(1, round(kc.blocks / launches)),
        threads_per_block=kc.threads_per_block,
        issue_cycles=round(kc.issue_cycles / launches),
        global_reads=round(kc.global_reads / launches),
        bytes_moved=round(kc.bytes_moved / launches),
        shared_bytes_per_block=kc.shared_bytes_per_block,
        registers_per_thread=kc.registers_per_thread,
    )


def _speedup(
    base: KernelCostInputs,
    improved: KernelCostInputs,
    arch: ArchSpec,
    costs: CostTable,
) -> float:
    old = kernel_time(base, arch, costs).total_s
    new = kernel_time(improved, arch, costs).total_s
    if new <= 0.0:
        return 1.0
    return old / new


def _uncoalesced_loads(
    kc: KernelCounters, arch: ArchSpec, costs: CostTable
) -> "list[Finding]":
    if kc.uncoalesced_read_groups == 0 or kc.total_transactions == 0:
        return []
    read_share = kc.uncoalesced_read_transactions / kc.total_transactions
    if read_share < UNCOALESCED_READ_DOMINANCE:
        return []
    launches = max(1, kc.launches)
    # A perfectly coalesced access pattern turns each failed half-warp
    # load group into one 64-byte transaction (CC 1.0, 16 lanes x 4 bytes).
    saved_bytes = max(
        0,
        kc.uncoalesced_read_bytes
        - COALESCED_GROUP_BYTES * kc.uncoalesced_read_groups,
    )
    saved_transactions = (
        kc.uncoalesced_read_transactions - kc.uncoalesced_read_groups
    )
    if saved_bytes == 0:
        return []
    base = _per_launch_inputs(kc)
    improved = replace(
        base, bytes_moved=max(0, base.bytes_moved - round(saved_bytes / launches))
    )
    speedup = _speedup(base, improved, arch, costs)
    if speedup < UNCOALESCED_MIN_SPEEDUP:
        return []
    return [
        Finding(
            rule="uncoalesced-loads",
            kernel=kc.name,
            estimated_speedup=speedup,
            message=(
                f"{kc.name}: {kc.uncoalesced_read_transactions} of "
                f"{kc.total_transactions} global transactions are "
                f"uncoalesced loads ({kc.uncoalesced_read_bytes} bytes "
                f"across {kc.uncoalesced_read_groups} half-warp groups); a "
                f"coalesced access pattern (SoA layout / aligned stride-1 "
                f"indexing, paper §2.4) would cut {saved_transactions} "
                f"transactions and {saved_bytes} bytes for an estimated "
                f"{speedup:.2f}x kernel speedup"
            ),
            evidence={
                "uncoalesced_read_transactions": kc.uncoalesced_read_transactions,
                "uncoalesced_read_groups": kc.uncoalesced_read_groups,
                "uncoalesced_read_bytes": kc.uncoalesced_read_bytes,
                "uncoalesced_transactions": kc.uncoalesced_transactions,
                "total_transactions": kc.total_transactions,
                "uncoalesced_read_share": read_share,
                "bytes_moved": kc.bytes_moved,
                "bound_by": kc.bound_by,
            },
            suggestion={
                "saved_transactions": saved_transactions,
                "saved_bytes": saved_bytes,
            },
        )
    ]


def _low_occupancy(
    kc: KernelCounters, arch: ArchSpec, costs: CostTable
) -> "list[Finding]":
    if kc.achieved_occupancy >= LOW_OCCUPANCY or kc.threads_per_block <= 0:
        return []
    launches = max(1, kc.launches)
    threads_per_launch = max(1, kc.threads // launches)
    # Candidate blocks must keep the kernel's thread count expressible
    # (the pipelines require block-size-multiple populations) and must
    # not shrink multiprocessor coverage: fewer blocks than the MPs the
    # launch currently spreads over would trade issue throughput for
    # occupancy, which the model would (rightly) punish.
    min_blocks = max(1, min(kc.mps_used, arch.multiprocessors))
    candidates = tuple(
        tpb
        for tpb in range(
            arch.warp_size, arch.max_threads_per_block + 1, arch.warp_size
        )
        if threads_per_launch % tpb == 0
        and threads_per_launch // tpb >= min_blocks
    )
    if not candidates:
        return []
    shared_per_thread = (
        math.ceil(kc.shared_bytes_per_block / kc.threads_per_block)
        if kc.shared_bytes_per_block
        else 0
    )
    limits = KernelLimits(
        registers_per_thread=kc.registers_per_thread,
        shared_bytes_per_thread=shared_per_thread,
    )
    best_tpb, best_occ = suggest_block_size(arch, limits, candidates)
    if best_occ.warps_per_mp <= kc.occupancy_warps_per_mp:
        return []
    base = _per_launch_inputs(kc)
    improved = replace(
        base,
        threads_per_block=best_tpb,
        blocks=threads_per_launch // best_tpb,
        shared_bytes_per_block=shared_per_thread * best_tpb,
    )
    speedup = _speedup(base, improved, arch, costs)
    if speedup < OCCUPANCY_MIN_SPEEDUP:
        return []
    return [
        Finding(
            rule="low-occupancy",
            kernel=kc.name,
            estimated_speedup=speedup,
            message=(
                f"{kc.name}: {kc.occupancy_warps_per_mp} resident warps/MP "
                f"({kc.achieved_occupancy:.0%} occupancy, limited by "
                f"{kc.occupancy_limited_by}) leaves device-memory latency "
                f"exposed; {best_tpb} threads/block reaches "
                f"{best_occ.warps_per_mp} warps/MP for an estimated "
                f"{speedup:.2f}x kernel speedup"
            ),
            evidence={
                "threads_per_block": kc.threads_per_block,
                "occupancy_warps_per_mp": kc.occupancy_warps_per_mp,
                "achieved_occupancy": kc.achieved_occupancy,
                "occupancy_limited_by": kc.occupancy_limited_by,
                "global_reads": kc.global_reads,
            },
            suggestion={
                "threads_per_block": best_tpb,
                "warps_per_mp": best_occ.warps_per_mp,
                "limited_by": best_occ.limited_by,
            },
        )
    ]


def _divergence(
    kc: KernelCounters, arch: ArchSpec, costs: CostTable
) -> "list[Finding]":
    if kc.serialized_groups == 0 or kc.instructions == 0:
        return []
    launches = max(1, kc.launches)
    # Serialized groups re-issue their round's instructions; charge each
    # the kernel's average issue cost.
    avg_issue = kc.issue_cycles / kc.instructions
    saved_cycles = round(kc.serialized_groups * avg_issue)
    base = _per_launch_inputs(kc)
    improved = replace(
        base,
        issue_cycles=max(0, base.issue_cycles - round(saved_cycles / launches)),
    )
    speedup = _speedup(base, improved, arch, costs)
    if speedup < DIVERGENCE_MIN_SPEEDUP:
        return []
    return [
        Finding(
            rule="divergent-execution",
            kernel=kc.name,
            estimated_speedup=speedup,
            message=(
                f"{kc.name}: {kc.divergent_rounds} divergent warp rounds "
                f"serialized {kc.serialized_groups} extra groups "
                f"(~{saved_cycles} issue cycles); restructuring the branch "
                f"so warps stay converged (§2.3) is worth an estimated "
                f"{speedup:.2f}x kernel speedup"
            ),
            evidence={
                "divergent_rounds": kc.divergent_rounds,
                "serialized_groups": kc.serialized_groups,
                "issue_cycles": kc.issue_cycles,
            },
            suggestion={"saved_issue_cycles": saved_cycles},
        )
    ]


def _bank_conflicts(
    kc: KernelCounters, arch: ArchSpec, costs: CostTable
) -> "list[Finding]":
    if kc.shared_bank_conflicts == 0:
        return []
    launches = max(1, kc.launches)
    saved_cycles = kc.shared_bank_conflicts * costs.shared_cycles
    base = _per_launch_inputs(kc)
    improved = replace(
        base,
        issue_cycles=max(0, base.issue_cycles - round(saved_cycles / launches)),
    )
    speedup = _speedup(base, improved, arch, costs)
    if speedup < BANK_CONFLICT_MIN_SPEEDUP:
        return []
    return [
        Finding(
            rule="shared-bank-conflicts",
            kernel=kc.name,
            estimated_speedup=speedup,
            message=(
                f"{kc.name}: {kc.shared_bank_conflicts} shared-memory bank "
                f"conflicts serialized ~{saved_cycles} cycles; padding or "
                f"re-striding the shared layout (Table 2.2's '>= 4') is "
                f"worth an estimated {speedup:.2f}x kernel speedup"
            ),
            evidence={
                "shared_bank_conflicts": kc.shared_bank_conflicts,
                "shared_accesses": kc.shared_accesses,
            },
            suggestion={"saved_issue_cycles": saved_cycles},
        )
    ]
