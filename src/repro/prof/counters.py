"""Per-kernel hardware counters, Nsight Compute style.

:class:`KernelCounters` is the profiler's unit of record: everything one
kernel did on the device, either measured by the SIMT emulator (an
:class:`~repro.simgpu.profile.InstructionProfile` plus launch geometry)
or modelled by the closed-form serve cost oracle
(:class:`~repro.simgpu.perfmodel.KernelCostInputs`).  Records aggregate
per kernel name across the launches of a session, exactly like a
counter-collection pass over a real workload.

Both builders run the counters through the same analytic performance
model that is the sim backend's clock, so ``modelled_s`` means the same
thing everywhere; ``measured_s`` is the backend clock — identical to the
model on the simulator, wall-clock on the native backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simgpu.arch import ArchSpec
from repro.simgpu.costs import CostTable, G80_COSTS
from repro.simgpu.perfmodel import (
    KernelCostInputs,
    KernelTimeBreakdown,
    kernel_time,
)
from repro.simgpu.profile import InstructionProfile


@dataclass
class KernelCounters:
    """Aggregated counters for one kernel name on one backend."""

    name: str
    backend: str
    launches: int = 0
    #: Grid geometry, summed over launches (threads_per_block is the
    #: launch configuration and must agree across launches of a name).
    blocks: int = 0
    threads: int = 0
    threads_per_block: int = 0
    shared_bytes_per_block: int = 0
    registers_per_thread: int = 10
    warp_size: int = 32
    #: Issue slots by op class (warp instruction issues, Table 2.2).
    op_issues: "dict[str, int]" = field(default_factory=dict)
    issue_cycles: int = 0
    instructions: int = 0
    #: Warp-level FLOP issues (FMAD counts twice); thread-level FLOPs
    #: are ``flops * warp_size`` — an overestimate under divergence,
    #: where inactive lanes still occupy the issue slot.
    flops: int = 0
    global_reads: int = 0
    global_writes: int = 0
    read_transactions: int = 0
    write_transactions: int = 0
    coalesced_transactions: int = 0
    uncoalesced_transactions: int = 0
    uncoalesced_groups: int = 0
    uncoalesced_bytes: int = 0
    uncoalesced_read_transactions: int = 0
    uncoalesced_read_groups: int = 0
    uncoalesced_read_bytes: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    bytes_moved: int = 0
    shared_accesses: int = 0
    shared_bank_conflicts: int = 0
    divergent_rounds: int = 0
    serialized_groups: int = 0
    syncs: int = 0
    warps: int = 0
    constant_hits: int = 0
    constant_misses: int = 0
    texture_hits: int = 0
    texture_misses: int = 0
    #: Occupancy of the launch configuration (achieved == occupancy on
    #: this hardware model: blocks are resident for the whole launch).
    occupancy_warps_per_mp: int = 0
    occupancy_limited_by: str = ""
    achieved_occupancy: float = 0.0
    mps_used: int = 0
    bound_by: str = ""
    #: Analytic perf-model seconds, summed over launches.
    modelled_s: float = 0.0
    #: Backend-clock seconds (== modelled on sim, wall-clock on native).
    measured_s: float = 0.0
    #: True when the record came from the closed-form cost model (serve
    #: plane) — no instruction stream, so per-op and coalescing counters
    #: are absent rather than zero-by-measurement.
    modelled_only: bool = False
    #: Device roofline constants captured at record time.
    peak_gflops: float = 0.0
    memory_bandwidth_bytes_per_s: float = 0.0

    # ------------------------------------------------------------------
    @property
    def thread_flops(self) -> int:
        return self.flops * self.warp_size

    @property
    def total_transactions(self) -> int:
        return self.read_transactions + self.write_transactions

    @property
    def coalesced_fraction(self) -> float:
        """Fraction of coalescer-analysed transactions that coalesced."""
        analysed = self.coalesced_transactions + self.uncoalesced_transactions
        if analysed == 0:
            return 1.0
        return self.coalesced_transactions / analysed

    @property
    def constant_hit_rate(self) -> "float | None":
        total = self.constant_hits + self.constant_misses
        return None if total == 0 else self.constant_hits / total

    @property
    def texture_hit_rate(self) -> "float | None":
        total = self.texture_hits + self.texture_misses
        return None if total == 0 else self.texture_hits / total

    # ------------------------------------------------------------------
    def merge(self, other: "KernelCounters") -> None:
        """Accumulate another record of the same kernel name."""
        self.launches += other.launches
        self.blocks += other.blocks
        self.threads += other.threads
        self.threads_per_block = other.threads_per_block or self.threads_per_block
        self.shared_bytes_per_block = max(
            self.shared_bytes_per_block, other.shared_bytes_per_block
        )
        self.registers_per_thread = other.registers_per_thread
        for op, n in other.op_issues.items():
            self.op_issues[op] = self.op_issues.get(op, 0) + n
        for f in (
            "issue_cycles", "instructions", "flops",
            "global_reads", "global_writes",
            "read_transactions", "write_transactions",
            "coalesced_transactions", "uncoalesced_transactions",
            "uncoalesced_groups", "uncoalesced_bytes",
            "uncoalesced_read_transactions", "uncoalesced_read_groups",
            "uncoalesced_read_bytes",
            "bytes_read", "bytes_written", "bytes_moved",
            "shared_accesses", "shared_bank_conflicts",
            "divergent_rounds", "serialized_groups",
            "syncs", "warps",
            "constant_hits", "constant_misses",
            "texture_hits", "texture_misses",
        ):
            setattr(self, f, getattr(self, f) + getattr(other, f))
        self.modelled_s += other.modelled_s
        self.measured_s += other.measured_s
        # Config-level facts track the latest launch (same-name launches
        # share a configuration in every pipeline we profile).
        self.occupancy_warps_per_mp = other.occupancy_warps_per_mp
        self.occupancy_limited_by = other.occupancy_limited_by
        self.achieved_occupancy = other.achieved_occupancy
        self.mps_used = max(self.mps_used, other.mps_used)
        self.bound_by = other.bound_by
        self.modelled_only = self.modelled_only and other.modelled_only
        self.peak_gflops = other.peak_gflops or self.peak_gflops
        self.memory_bandwidth_bytes_per_s = (
            other.memory_bandwidth_bytes_per_s
            or self.memory_bandwidth_bytes_per_s
        )
        if other.backend != self.backend:
            self.backend = "mixed"

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-ready dict (derived rates included, like ``ncu`` output)."""
        return {
            "name": self.name,
            "backend": self.backend,
            "launches": self.launches,
            "blocks": self.blocks,
            "threads": self.threads,
            "threads_per_block": self.threads_per_block,
            "shared_bytes_per_block": self.shared_bytes_per_block,
            "registers_per_thread": self.registers_per_thread,
            "warp_size": self.warp_size,
            "op_issues": dict(sorted(self.op_issues.items())),
            "issue_cycles": self.issue_cycles,
            "instructions": self.instructions,
            "flops": self.flops,
            "thread_flops": self.thread_flops,
            "global_reads": self.global_reads,
            "global_writes": self.global_writes,
            "read_transactions": self.read_transactions,
            "write_transactions": self.write_transactions,
            "coalesced_transactions": self.coalesced_transactions,
            "uncoalesced_transactions": self.uncoalesced_transactions,
            "uncoalesced_groups": self.uncoalesced_groups,
            "uncoalesced_bytes": self.uncoalesced_bytes,
            "uncoalesced_read_transactions": self.uncoalesced_read_transactions,
            "uncoalesced_read_groups": self.uncoalesced_read_groups,
            "uncoalesced_read_bytes": self.uncoalesced_read_bytes,
            "coalesced_fraction": self.coalesced_fraction,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "bytes_moved": self.bytes_moved,
            "shared_accesses": self.shared_accesses,
            "shared_bank_conflicts": self.shared_bank_conflicts,
            "divergent_rounds": self.divergent_rounds,
            "serialized_groups": self.serialized_groups,
            "syncs": self.syncs,
            "warps": self.warps,
            "constant_hits": self.constant_hits,
            "constant_misses": self.constant_misses,
            "texture_hits": self.texture_hits,
            "texture_misses": self.texture_misses,
            "constant_hit_rate": self.constant_hit_rate,
            "texture_hit_rate": self.texture_hit_rate,
            "occupancy_warps_per_mp": self.occupancy_warps_per_mp,
            "occupancy_limited_by": self.occupancy_limited_by,
            "achieved_occupancy": self.achieved_occupancy,
            "mps_used": self.mps_used,
            "bound_by": self.bound_by,
            "modelled_s": self.modelled_s,
            "measured_s": self.measured_s,
            "modelled_only": self.modelled_only,
            "peak_gflops": self.peak_gflops,
            "memory_bandwidth_bytes_per_s": self.memory_bandwidth_bytes_per_s,
        }


def _max_warps_per_mp(arch: ArchSpec) -> int:
    return arch.max_threads_per_mp // arch.warp_size


def counters_from_profile(
    name: str,
    backend: str,
    profile: InstructionProfile,
    *,
    blocks: int,
    threads_per_block: int,
    shared_bytes_per_block: int = 0,
    registers_per_thread: int = 10,
    arch: ArchSpec,
    costs: CostTable = G80_COSTS,
    measured_s: "float | None" = None,
) -> KernelCounters:
    """One launch's counters from a measured instruction profile.

    The perf model is applied to the profile exactly as the sim
    backend's ``duration_s`` does, so on the simulator
    ``modelled_s == measured_s`` by construction.
    """
    inputs = KernelCostInputs.from_profile(
        profile,
        blocks,
        threads_per_block,
        shared_bytes_per_block,
        registers_per_thread,
        costs,
    )
    breakdown = kernel_time(inputs, arch, costs)
    kc = _from_breakdown(
        name, backend, inputs, breakdown, arch, measured_s=measured_s
    )
    summary = profile.summary()
    kc.op_issues = {
        op.value: n for op, n in sorted(
            profile.op_counts.items(), key=lambda kv: kv[0].value
        ) if n
    }
    kc.instructions = summary["instructions"]
    kc.flops = summary["flops"]
    kc.global_reads = summary["global_reads"]
    kc.global_writes = summary["global_writes"]
    kc.read_transactions = summary["read_transactions"]
    kc.write_transactions = summary["write_transactions"]
    kc.coalesced_transactions = summary["coalesced_transactions"]
    kc.uncoalesced_transactions = summary["uncoalesced_transactions"]
    kc.uncoalesced_groups = summary["uncoalesced_groups"]
    kc.uncoalesced_bytes = summary["uncoalesced_bytes"]
    kc.uncoalesced_read_transactions = summary["uncoalesced_read_transactions"]
    kc.uncoalesced_read_groups = summary["uncoalesced_read_groups"]
    kc.uncoalesced_read_bytes = summary["uncoalesced_read_bytes"]
    kc.bytes_read = summary["bytes_read"]
    kc.bytes_written = summary["bytes_written"]
    kc.shared_accesses = summary["shared_accesses"]
    kc.shared_bank_conflicts = summary["shared_bank_conflicts"]
    kc.divergent_rounds = summary["divergent_rounds"]
    kc.serialized_groups = summary["serialized_groups"]
    kc.syncs = summary["syncs"]
    kc.warps = summary["warps"]
    kc.constant_hits = summary["constant_hits"]
    kc.constant_misses = summary["constant_misses"]
    kc.texture_hits = summary["texture_hits"]
    kc.texture_misses = summary["texture_misses"]
    kc.modelled_only = False
    return kc


def counters_from_cost_inputs(
    name: str,
    backend: str,
    inputs: KernelCostInputs,
    *,
    arch: ArchSpec,
    costs: CostTable = G80_COSTS,
    modelled_s: "float | None" = None,
) -> KernelCounters:
    """One modelled launch's counters from closed-form cost inputs.

    This is the serve plane's path: the scheduler never executes real
    kernels (it plays modelled costs on device timelines), so only the
    aggregate counters the cost model knows — issue cycles, warp-level
    reads, bytes moved, geometry, occupancy — are populated, flagged
    ``modelled_only``.
    """
    breakdown = kernel_time(inputs, arch, costs)
    kc = _from_breakdown(
        name, backend, inputs, breakdown, arch, measured_s=modelled_s
    )
    if modelled_s is not None:
        kc.modelled_s = float(modelled_s)
    kc.modelled_only = True
    return kc


def _from_breakdown(
    name: str,
    backend: str,
    inputs: KernelCostInputs,
    breakdown: KernelTimeBreakdown,
    arch: ArchSpec,
    measured_s: "float | None",
) -> KernelCounters:
    occ = breakdown.occupancy
    max_warps = max(1, _max_warps_per_mp(arch))
    modelled = breakdown.total_s
    return KernelCounters(
        name=name,
        backend=backend,
        launches=1,
        blocks=inputs.blocks,
        threads=inputs.blocks * inputs.threads_per_block,
        threads_per_block=inputs.threads_per_block,
        shared_bytes_per_block=inputs.shared_bytes_per_block,
        registers_per_thread=inputs.registers_per_thread,
        warp_size=arch.warp_size,
        issue_cycles=inputs.issue_cycles,
        global_reads=inputs.global_reads,
        bytes_moved=inputs.bytes_moved,
        occupancy_warps_per_mp=occ.warps_per_mp,
        occupancy_limited_by=occ.limited_by,
        achieved_occupancy=occ.warps_per_mp / max_warps,
        mps_used=breakdown.mps_used,
        bound_by=breakdown.bound_by,
        modelled_s=modelled,
        measured_s=modelled if measured_s is None else float(measured_s),
        peak_gflops=arch.peak_gflops,
        memory_bandwidth_bytes_per_s=arch.memory_bandwidth_bytes_per_s,
    )
