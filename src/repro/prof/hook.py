"""The global profiling hook: where launch paths find the active session.

This module is the *only* coupling between the hot launch paths
(:meth:`repro.cuda.runtime.CudaRuntime.cudaLaunch`, the native backend's
replay, the serve scheduler) and the profiler: they call :func:`active`
— a module-global read — and do nothing when it returns ``None``.  It
must therefore stay dependency-free so importing it from the CUDA
runtime costs nothing and cannot cycle.

The same pattern as the flight recorder's ``self.flight is not None``
guard, made global because kernel launches have no single owner object
the way the serving loop does.
"""

from __future__ import annotations

_active = None


def active():
    """The currently attached :class:`~repro.prof.session.ProfSession`,
    or ``None`` — the common case, and the whole inertness guarantee:
    every instrumentation point is one module-global read away from
    doing nothing at all."""
    return _active


def activate(session) -> None:
    """Attach a session; only one can be active at a time."""
    global _active
    if _active is not None:
        raise RuntimeError(
            "a ProfSession is already active; nest-free by design "
            "(deactivate the outer session first)"
        )
    _active = session


def deactivate(session) -> None:
    """Detach ``session`` if it is the active one (idempotent)."""
    global _active
    if _active is session:
        _active = None
