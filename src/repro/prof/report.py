"""Profiler reports: JSON dicts, text rendering, and A/B diffs.

A report is a plain dict (``--json`` writes it verbatim) built from a
:class:`~repro.prof.session.ProfSession`: the per-kernel counter table,
the roofline placement, the advisor's findings, and session totals.
Diffs compare two reports kernel-by-kernel, attach verdicts like the
trace analyzer's, and *attribute* the total speedup to the counters
that moved — the "why", not just the "how much".
"""

from __future__ import annotations

from repro.bench.report import format_table
from repro.prof.advisor import advise
from repro.prof.roofline import roofline

#: Counters a diff attributes speedups to, with display labels.
ATTRIBUTION_COUNTERS = (
    ("uncoalesced_read_transactions", "uncoalesced load transactions"),
    ("uncoalesced_transactions", "uncoalesced transactions"),
    ("read_transactions", "read transactions"),
    ("bytes_moved", "bytes moved"),
    ("divergent_rounds", "divergent rounds"),
    ("serialized_groups", "serialized groups"),
    ("issue_cycles", "issue cycles"),
    ("instructions", "instructions"),
    ("global_reads", "global reads"),
    ("shared_bank_conflicts", "bank conflicts"),
)

#: Relative change below this is "same" in diff verdicts.
DIFF_TOLERANCE = 0.01


def session_report(session, label: str) -> dict:
    """Build the full JSON-ready report for one profiled run."""
    kernels = {
        name: kc.to_dict() for name, kc in sorted(session.kernels.items())
    }
    points = {
        name: point.to_dict()
        for name, point in sorted(roofline(session.kernels).items())
    }
    findings = [f.to_dict() for f in advise(session)]
    return {
        "label": label,
        "launches": session.launch_count,
        "totals": {
            "modelled_s": session.total_modelled_s,
            "measured_s": session.total_measured_s,
        },
        "kernels": kernels,
        "roofline": points,
        "findings": findings,
    }


# ----------------------------------------------------------------------
# text rendering
# ----------------------------------------------------------------------
def render_report(report: dict) -> str:
    """Human-readable report: counters, roofline, findings."""
    sections = [f"### repro.prof — {report['label']} ###", ""]
    rows = []
    for name, kc in report["kernels"].items():
        rows.append(
            [
                name,
                kc["backend"],
                kc["launches"],
                kc["blocks"],
                kc["threads_per_block"],
                f"{kc['achieved_occupancy']:.0%}",
                kc["instructions"],
                kc["uncoalesced_transactions"],
                kc["divergent_rounds"],
                kc["bytes_moved"],
                kc["bound_by"] or "-",
                kc["modelled_s"] * 1e3,
                kc["measured_s"] * 1e3,
            ]
        )
    sections.append(
        format_table(
            "kernel counters",
            [
                "kernel", "backend", "launches", "blocks", "tpb", "occ",
                "instr", "uncoal.tx", "div.rounds", "bytes",
                "bound", "modelled ms", "measured ms",
            ],
            rows,
        )
    )
    if report["roofline"]:
        sections.append("")
        sections.append(
            format_table(
                "roofline",
                [
                    "kernel", "AI flop/B", "achieved GF/s",
                    "attainable GF/s", "% roofline", "bound",
                ],
                [
                    [
                        name,
                        point["arithmetic_intensity"],
                        point["achieved_gflops"],
                        point["attainable_gflops"],
                        f"{point['efficiency']:.1%}",
                        point["bound"],
                    ]
                    for name, point in report["roofline"].items()
                ],
                note=(
                    "ridge at "
                    f"{next(iter(report['roofline'].values()))['ridge_intensity']:.2f}"
                    " flop/B; peak "
                    f"{next(iter(report['roofline'].values()))['peak_gflops']:.0f}"
                    " GFLOP/s"
                ),
            )
        )
    sections.append("")
    if report["findings"]:
        sections.append("== advisor findings ==")
        for i, f in enumerate(report["findings"], 1):
            sections.append(
                f"  {i}. [{f['rule']}] est {f['estimated_speedup']:.2f}x — "
                f"{f['message']}"
            )
    else:
        sections.append("== advisor findings ==\n  (none)")
    sections.append("")
    totals = report["totals"]
    sections.append(
        f"total: {report['launches']} launches, "
        f"{totals['modelled_s'] * 1e3:.3f} ms modelled, "
        f"{totals['measured_s'] * 1e3:.3f} ms measured"
    )
    return "\n".join(sections)


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def _verdict(base: float, new: float, smaller_is_better: bool = True) -> str:
    if base == 0 and new == 0:
        return "same"
    ref = base if base != 0 else new
    change = (new - base) / abs(ref)
    if abs(change) <= DIFF_TOLERANCE:
        return "same"
    improved = change < 0 if smaller_is_better else change > 0
    return "improved" if improved else "regressed"


def diff_reports(a: dict, b: dict) -> dict:
    """Compare two reports (``a`` = baseline, ``b`` = candidate).

    Per shared kernel: counter deltas with verdicts.  Overall: total
    modelled speedup plus an *attribution* list — the counters whose
    reduction explains the win, ordered by relative change.
    """
    a_kernels, b_kernels = a["kernels"], b["kernels"]
    shared = sorted(set(a_kernels) & set(b_kernels))
    kernels = {}
    for name in shared:
        ka, kb = a_kernels[name], b_kernels[name]
        counters = {}
        for key, _label in ATTRIBUTION_COUNTERS:
            counters[key] = {
                "a": ka[key],
                "b": kb[key],
                "verdict": _verdict(ka[key], kb[key]),
            }
        kernels[name] = {
            "modelled_s": {
                "a": ka["modelled_s"],
                "b": kb["modelled_s"],
                "verdict": _verdict(ka["modelled_s"], kb["modelled_s"]),
            },
            "counters": counters,
        }

    a_total = a["totals"]["modelled_s"]
    b_total = b["totals"]["modelled_s"]
    speedup = a_total / b_total if b_total > 0 else float("inf")

    # Attribution: aggregate counter movement across every kernel of
    # each report (shared names or not — a rewrite that renames kernels
    # must still be explainable), largest relative reduction first.
    attribution = []
    for key, label in ATTRIBUTION_COUNTERS:
        a_sum = sum(k[key] for k in a_kernels.values())
        b_sum = sum(k[key] for k in b_kernels.values())
        if a_sum == 0 and b_sum == 0:
            continue
        ref = a_sum if a_sum != 0 else b_sum
        change = (b_sum - a_sum) / abs(ref)
        attribution.append(
            {
                "counter": key,
                "label": label,
                "a": a_sum,
                "b": b_sum,
                "change": change,
            }
        )
    attribution.sort(key=lambda row: row["change"])

    findings_a = {(f["rule"], f["kernel"]) for f in a["findings"]}
    findings_b = {(f["rule"], f["kernel"]) for f in b["findings"]}
    return {
        "a": a["label"],
        "b": b["label"],
        "totals": {
            "a_modelled_s": a_total,
            "b_modelled_s": b_total,
            "speedup": speedup,
            "verdict": _verdict(a_total, b_total),
        },
        "kernels": kernels,
        "only_in_a": sorted(set(a_kernels) - set(b_kernels)),
        "only_in_b": sorted(set(b_kernels) - set(a_kernels)),
        "attribution": attribution,
        "findings_resolved": sorted(
            f"{rule}:{kernel}" for rule, kernel in findings_a - findings_b
        ),
        "findings_introduced": sorted(
            f"{rule}:{kernel}" for rule, kernel in findings_b - findings_a
        ),
    }


def render_diff(diff: dict) -> str:
    """Human-readable A/B diff with speedup attribution."""
    totals = diff["totals"]
    lines = [
        f"### repro.prof diff — {diff['a']} vs {diff['b']} ###",
        "",
        f"modelled kernel time: {totals['a_modelled_s'] * 1e3:.3f} ms -> "
        f"{totals['b_modelled_s'] * 1e3:.3f} ms  "
        f"({totals['speedup']:.2f}x, {totals['verdict']})",
        "",
    ]
    rows = []
    for name, entry in diff["kernels"].items():
        m = entry["modelled_s"]
        rows.append(
            [
                name,
                m["a"] * 1e3,
                m["b"] * 1e3,
                (m["a"] / m["b"]) if m["b"] > 0 else float("inf"),
                m["verdict"],
            ]
        )
    for name in diff["only_in_a"]:
        rows.append([name, "-", "-", "-", "only in " + diff["a"]])
    for name in diff["only_in_b"]:
        rows.append([name, "-", "-", "-", "only in " + diff["b"]])
    if rows:
        lines.append(
            format_table(
                "per-kernel modelled time",
                ["kernel", "a ms", "b ms", "speedup", "verdict"],
                rows,
            )
        )
        lines.append("")
    if diff["attribution"]:
        lines.append(
            format_table(
                "speedup attribution (counter movement, a -> b)",
                ["counter", "a", "b", "change"],
                [
                    [
                        row["label"],
                        row["a"],
                        row["b"],
                        f"{row['change']:+.1%}",
                    ]
                    for row in diff["attribution"]
                ],
            )
        )
        lines.append("")
    if diff["findings_resolved"]:
        lines.append("findings resolved: " + ", ".join(diff["findings_resolved"]))
    if diff["findings_introduced"]:
        lines.append(
            "findings introduced: " + ", ".join(diff["findings_introduced"])
        )
    return "\n".join(lines)
