"""Roofline analysis: arithmetic intensity vs the machine's two peaks.

The roofline model bounds a kernel's attainable FLOP rate by
``min(peak_flops, AI * memory_bandwidth)`` where AI (arithmetic
intensity) is FLOPs per byte of device-memory traffic.  Kernels left of
the ridge point are memory-bound — more FLOPs per byte would come for
free; kernels right of it are compute-bound.

FLOPs are thread-level: warp-level FLOP issues times the warp size,
which *overestimates* under divergence (inactive lanes still occupy the
issue slot) — the same convention Table 2.2 costs use, so the roofline
and the perf model agree about what an issue slot is worth.  Achieved
rate uses the analytic ``modelled_s`` on both backends: the roofline
describes the modelled G80, and native wall-clock seconds say nothing
about that machine's ceilings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.prof.counters import KernelCounters


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel's position against the device roofline."""

    kernel: str
    #: Thread-level FLOPs per byte of device-memory traffic.
    arithmetic_intensity: float
    achieved_gflops: float
    attainable_gflops: float
    peak_gflops: float
    #: AI at which the memory roof meets the compute roof.
    ridge_intensity: float
    #: ``"memory"`` left of the ridge, ``"compute"`` right of it.
    bound: str
    #: Achieved as a fraction of attainable (% of roofline).
    efficiency: float

    def to_dict(self) -> dict:
        return {
            "kernel": self.kernel,
            "arithmetic_intensity": self.arithmetic_intensity,
            "achieved_gflops": self.achieved_gflops,
            "attainable_gflops": self.attainable_gflops,
            "peak_gflops": self.peak_gflops,
            "ridge_intensity": self.ridge_intensity,
            "bound": self.bound,
            "efficiency": self.efficiency,
        }


def roofline_point(kc: KernelCounters) -> "RooflinePoint | None":
    """Place one kernel's counters on its device's roofline.

    Returns ``None`` for records that cannot be placed: modelled-only
    rows (the closed-form model has no FLOP classes) and kernels that
    did no FLOPs or took no time.
    """
    if kc.modelled_only or kc.modelled_s <= 0.0 or kc.peak_gflops <= 0.0:
        return None
    flops = kc.thread_flops
    if flops <= 0:
        return None
    bw = kc.memory_bandwidth_bytes_per_s
    ridge = kc.peak_gflops * 1e9 / bw if bw > 0 else 0.0
    if kc.bytes_moved > 0 and bw > 0:
        ai = flops / kc.bytes_moved
        attainable = min(kc.peak_gflops, ai * bw / 1e9)
    else:
        # No device-memory traffic: the memory roof is not in play.
        ai = float("inf")
        attainable = kc.peak_gflops
    achieved = flops / kc.modelled_s / 1e9
    return RooflinePoint(
        kernel=kc.name,
        arithmetic_intensity=ai,
        achieved_gflops=achieved,
        attainable_gflops=attainable,
        peak_gflops=kc.peak_gflops,
        ridge_intensity=ridge,
        bound="memory" if ai < ridge else "compute",
        efficiency=achieved / attainable if attainable > 0 else 0.0,
    )


def roofline(kernels: "dict[str, KernelCounters]") -> "dict[str, RooflinePoint]":
    """Roofline points for every placeable kernel in a session."""
    points = {}
    for name, kc in kernels.items():
        point = roofline_point(kc)
        if point is not None:
            points[name] = point
    return points
