"""The profiling session: attach, capture launches, aggregate.

A :class:`ProfSession` is a context manager that registers itself with
the global hook (:mod:`repro.prof.hook`); while it is active:

* :meth:`~repro.cuda.runtime.CudaRuntime.cudaLaunch` calls
  :meth:`record_launch` with the backend's launch result — on the sim
  backend that carries the measured :class:`InstructionProfile`; on the
  native backend the device *replays* the kernel through the SIMT
  emulator first (Nsight-style replay: snapshot memory, emulate for
  counters, restore, then run the timed vectorized pass), so both
  backends hand the session the identical instruction stream;
* the serve scheduler calls :meth:`record_modelled` with the closed-form
  cost-model inputs of each modelled kernel, since the serving plane
  plays costs on timelines instead of executing kernels.

Everything aggregates per kernel name; the device :class:`ArchSpec`
each kernel ran on is kept alongside so the roofline and the advisor's
occupancy sweeps reason about the right hardware.
"""

from __future__ import annotations

from repro.prof import hook
from repro.prof.counters import (
    KernelCounters,
    counters_from_cost_inputs,
    counters_from_profile,
)
from repro.simgpu.arch import ArchSpec
from repro.simgpu.costs import CostTable, G80_COSTS


class ProfSession:
    """Collects per-kernel counters for everything launched while active."""

    def __init__(self, costs: CostTable = G80_COSTS) -> None:
        self.costs = costs
        self.kernels: "dict[str, KernelCounters]" = {}
        self.archs: "dict[str, ArchSpec]" = {}
        self.launch_count = 0

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProfSession":
        hook.activate(self)
        return self

    def __exit__(self, *exc) -> None:
        hook.deactivate(self)

    # ------------------------------------------------------------------
    def record_launch(
        self,
        name: str,
        backend: str,
        result,
        duration_s: float,
        arch: ArchSpec,
        registers_per_thread: int = 10,
    ) -> None:
        """Record one executed launch (called from ``cudaLaunch``).

        ``result`` is the backend launch result; its profile is the
        instruction stream (the native backend attaches a replay-derived
        profile while a session is active).  A result without a profile
        is recorded as timing-only modelled counters — it should not
        happen on either built-in backend, but a third substrate without
        replay support must not crash the profiler.
        """
        profile = getattr(result, "profile", None)
        if profile is None:
            return
        kc = counters_from_profile(
            name,
            backend,
            profile,
            blocks=result.blocks,
            threads_per_block=result.block_dim.volume,
            shared_bytes_per_block=getattr(result, "shared_bytes_per_block", 0),
            registers_per_thread=registers_per_thread,
            arch=arch,
            costs=self.costs,
            measured_s=duration_s,
        )
        self._merge(kc, arch)

    def record_modelled(
        self,
        name: str,
        backend: str,
        inputs,
        arch: ArchSpec,
        modelled_s: "float | None" = None,
    ) -> None:
        """Record one closed-form modelled launch (serve scheduler)."""
        kc = counters_from_cost_inputs(
            name,
            backend,
            inputs,
            arch=arch,
            costs=self.costs,
            modelled_s=modelled_s,
        )
        self._merge(kc, arch)

    # ------------------------------------------------------------------
    def _merge(self, kc: KernelCounters, arch: ArchSpec) -> None:
        self.launch_count += 1
        self.archs.setdefault(kc.name, arch)
        current = self.kernels.get(kc.name)
        if current is None:
            self.kernels[kc.name] = kc
        else:
            current.merge(kc)

    # ------------------------------------------------------------------
    @property
    def total_modelled_s(self) -> float:
        return sum(k.modelled_s for k in self.kernels.values())

    @property
    def total_measured_s(self) -> float:
        return sum(k.measured_s for k in self.kernels.values())
