"""repro.serve — multi-tenant simulation serving on the CuPP stack.

The serving subsystem turns the repo's boids pipeline into a service:
many client *sessions*, each owning a flock held in a ``cupp.Vector``
with §4.6 lazy-copy reuse across requests, step on a shared pool of
simulated GPUs.  Requests pass through admission control (bounded
queue, reject/shed-oldest/block backpressure, deadlines), a dynamic
batcher that coalesces them into fused kernel launches, and a
multi-device scheduler that places batches on a
:class:`~repro.cupp.multidevice.DeviceGroup` while overlapping transfer
with compute on the :class:`~repro.simgpu.transfer.DeviceTimeline`
model.  Everything runs in deterministic virtual time; the load
generator (``python -m repro.serve.loadgen``) reports p50/p95/p99
latency, throughput, and batch/launch statistics.
"""

from repro.serve.admission import POLICIES, AdmissionController
from repro.serve.batcher import Batch, DynamicBatcher
from repro.serve.engine import LAUNCHES_PER_BATCH, StepEngine
from repro.serve.request import (
    FAILED_STATUSES,
    TERMINAL_STATUSES,
    RequestStatus,
    StepRequest,
)
from repro.serve.scheduler import DeviceScheduler, SubBatch, make_group
from repro.serve.service import (
    RetryPolicy,
    ServeConfig,
    ServiceStats,
    SimulationService,
)
from repro.serve.sessions import (
    STATE_FLOATS_PER_AGENT,
    Session,
    SessionStore,
)

__all__ = [
    "AdmissionController",
    "Batch",
    "DeviceScheduler",
    "DynamicBatcher",
    "FAILED_STATUSES",
    "LAUNCHES_PER_BATCH",
    "POLICIES",
    "RequestStatus",
    "RetryPolicy",
    "STATE_FLOATS_PER_AGENT",
    "ServeConfig",
    "TERMINAL_STATUSES",
    "ServiceStats",
    "Session",
    "SessionStore",
    "SimulationService",
    "StepEngine",
    "StepRequest",
    "SubBatch",
    "make_group",
]
