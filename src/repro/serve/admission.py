"""Admission control: the bounded queue in front of the batcher.

A serving system that accepts everything melts down from the queue, not
the device — so admission is explicit.  The controller owns a bounded
FIFO of admitted requests plus one of three backpressure policies for a
full queue:

``reject``
    Turn the new arrival away immediately (fail fast; the client sees
    the overload).
``shed-oldest``
    Evict the oldest *queued* request to make room (freshest-first under
    overload; the evicted request has waited longest and is most likely
    to be past its deadline anyway).
``block``
    Park the new arrival in an unbounded blocked list; it is admitted —
    in arrival order — as launches free queue slots.  Blocked time
    counts toward the request's latency, which is exactly the
    backpressure signal an open-loop client would measure.

Queue depth is reported through the canonical
:func:`repro.obs.queue_depth_gauge` series (live value) and a sampled
histogram (distribution over every admission event).
"""

from __future__ import annotations

from collections import deque

from repro import obs
from repro.cupp.exceptions import CuppUsageError
from repro.serve.request import RequestStatus, StepRequest

#: The recognized backpressure policies.
POLICIES = ("reject", "shed-oldest", "block")


class AdmissionController:
    """Bounded request queue with a configurable overflow policy."""

    def __init__(self, capacity: int, policy: str = "reject") -> None:
        if capacity <= 0:
            raise CuppUsageError(
                f"queue capacity must be positive, got {capacity}"
            )
        if policy not in POLICIES:
            raise CuppUsageError(
                f"unknown admission policy {policy!r}; one of {POLICIES}"
            )
        self.capacity = capacity
        self.policy = policy
        self.queue: "deque[StepRequest]" = deque()
        self.blocked: "deque[StepRequest]" = deque()
        self._depth = obs.queue_depth_gauge("serve")
        self._depth_samples = obs.histogram("repro.serve.queue_depth.samples")
        #: Optional ``listener(request, outcome, now)`` the service
        #: installs to feed the live SLO monitor terminal outcomes.
        self.outcome_listener = None

    # ------------------------------------------------------------------
    def _outcome(self, request: StepRequest, name: str, now: float) -> None:
        obs.counter("repro.serve.requests", outcome=name).inc()
        obs.request_outcome_counter("serve", name).inc()
        if self.outcome_listener is not None:
            self.outcome_listener(request, name, now)

    @staticmethod
    def _request_args(request: StepRequest, **extra: object) -> dict:
        """Instant args for ``request`` — the ``request=`` id is attached
        only once admission has assigned one, so the ``-1`` placeholder
        never leaks into exported traces (the exporter asserts this)."""
        if request.request_id >= 0:
            extra["request"] = request.request_id
        return extra

    def _note_depth(self, trace_id: "str | None" = None) -> None:
        depth = len(self.queue)
        self._depth.set(depth)
        # The arriving request's trace tags the sample, so a queue-depth
        # spike in the histogram resolves to a trace that saw it.
        self._depth_samples.observe(depth, trace_id)

    def _admit(self, request: StepRequest, now: float) -> None:
        request.status = RequestStatus.QUEUED
        request.admit_s = now
        self.queue.append(request)
        self._outcome(request, "admitted", now)

    # ------------------------------------------------------------------
    def submit(self, request: StepRequest, now: float) -> RequestStatus:
        """Offer a new arrival; returns the resulting status.

        A full queue triggers the configured policy; the returned status
        is one of QUEUED, REJECTED, or BLOCKED (shedding evicts an *old*
        request, so the new arrival still lands QUEUED).  A request
        whose deadline has already passed is refused outright as
        EXPIRED — queuing work that cannot meet its deadline only
        steals a slot from work that can.
        """
        trace_id = getattr(request.ctx, "trace_id", None)
        if request.expired(now):
            request.status = RequestStatus.EXPIRED
            self._outcome(request, "expired", now)
            obs.instant(
                "serve.deadline-miss",
                **self._request_args(request, where="submit"),
            )
            self._note_depth(trace_id)
            return request.status
        if len(self.queue) < self.capacity and not self.blocked:
            self._admit(request, now)
        elif self.policy == "reject":
            request.status = RequestStatus.REJECTED
            self._outcome(request, "rejected", now)
            obs.instant("serve.reject", **self._request_args(request))
        elif self.policy == "shed-oldest":
            if len(self.queue) >= self.capacity:
                victim = self.queue.popleft()
                victim.status = RequestStatus.SHED
                self._outcome(victim, "shed", now)
                obs.instant(
                    "serve.shed",
                    **self._request_args(
                        victim, waited_s=now - (victim.admit_s or now)
                    ),
                )
            self._admit(request, now)
        else:  # block
            request.status = RequestStatus.BLOCKED
            self.blocked.append(request)
            self._outcome(request, "blocked", now)
        self._note_depth(trace_id)
        return request.status

    def on_slots_freed(self, now: float) -> int:
        """Admit blocked requests into freshly freed queue slots.

        Called after a batch launch removes requests from the queue;
        returns how many blocked requests were admitted (FIFO order).
        """
        moved = 0
        while self.blocked and len(self.queue) < self.capacity:
            request = self.blocked.popleft()
            if request.expired(now):
                request.status = RequestStatus.EXPIRED
                self._outcome(request, "expired", now)
                continue
            self._admit(request, now)
            moved += 1
        if moved:
            self._note_depth()
        return moved

    # ------------------------------------------------------------------
    def drop_expired(self, now: float) -> "list[StepRequest]":
        """Remove queued requests whose deadline has passed."""
        expired = [r for r in self.queue if r.expired(now)]
        if expired:
            for request in expired:
                request.status = RequestStatus.EXPIRED
                self._outcome(request, "expired", now)
                obs.instant(
                    "serve.deadline-miss",
                    **self._request_args(request, where="dequeue"),
                )
            survivors = [r for r in self.queue if not r.expired(now)]
            self.queue.clear()
            self.queue.extend(survivors)
            self._note_depth()
        return expired

    def remove(self, requests: "list[StepRequest]") -> None:
        """Take launched requests out of the queue (batcher callback)."""
        taken = set(id(r) for r in requests)
        survivors = [r for r in self.queue if id(r) not in taken]
        self.queue.clear()
        self.queue.extend(survivors)
        self._note_depth()

    @property
    def depth(self) -> int:
        """Current number of queued (admitted, unlaunched) requests."""
        return len(self.queue)

    @property
    def pending(self) -> int:
        """Queued plus blocked requests still owed a launch."""
        return len(self.queue) + len(self.blocked)
