"""Dynamic batching: coalesce queued step requests into fused launches.

Per-request kernel launches waste the two fixed costs the paper spends
chapters minimizing: the driver's launch overhead (§2.2) and the PCIe
per-call transfer overhead (§6.3).  The batcher amortizes both by
grouping requests that arrive close together into one *fused* launch
over the concatenation of their sessions' agent vectors.

The window/size rule is the classic inference-serving one:

* launch immediately once ``max_batch`` eligible requests wait, else
* launch when the oldest eligible request has waited ``window_s``.

Two sequencing constraints shape eligibility: a session cannot appear
twice in one batch (a flock cannot step twice in one frame), and a
session with a step already in flight must wait for it (per-session
order).  Ineligible requests simply stay queued for the next batch.

With batching disabled the same machinery degenerates to
``max_batch=1, window=0`` — one launch per request — which is what the
load generator's ``--no-batching`` baseline measures against.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.cupp.exceptions import CuppUsageError
from repro.serve.request import StepRequest


@dataclass
class Batch:
    """One formed batch: the requests that will share a fused launch."""

    batch_id: int
    requests: "list[StepRequest]" = field(default_factory=list)
    formed_s: float = 0.0

    def __len__(self) -> int:
        return len(self.requests)


class DynamicBatcher:
    """Window/size batch former over the admission queue."""

    def __init__(
        self,
        max_batch: int = 32,
        window_s: float = 2e-3,
        enabled: bool = True,
    ) -> None:
        if max_batch <= 0:
            raise CuppUsageError(f"max_batch must be positive, got {max_batch}")
        if window_s < 0:
            raise CuppUsageError(f"window must be non-negative, got {window_s}")
        self.enabled = enabled
        self.max_batch = max_batch if enabled else 1
        self.window_s = window_s if enabled else 0.0
        self._sizes = obs.batch_size_histogram("serve")
        self._next_id = 0

    # ------------------------------------------------------------------
    def _eligible(
        self, queue, busy: "set[str]", placeable=None
    ) -> "list[StepRequest]":
        """Queued requests launchable now: first per session, none busy.

        ``placeable`` is an optional per-request predicate the scheduler
        supplies for device affinity — e.g. "this session's resident
        device is free".  Requests that fail it stay queued untouched.
        """
        seen: "set[str]" = set()
        out = []
        for request in queue:
            if request.session_id in busy or request.session_id in seen:
                continue
            if placeable is not None and not placeable(request):
                continue
            seen.add(request.session_id)
            out.append(request)
        return out

    def ready_time(
        self, queue, busy: "set[str]", now: float, placeable=None
    ) -> "float | None":
        """Earliest virtual time the current queue justifies a launch.

        ``None`` when nothing is eligible (empty queue, or every queued
        session already has a step in flight).  Otherwise ``now`` if the
        size trigger is met, else the oldest eligible admission plus the
        window.
        """
        eligible = self._eligible(queue, busy, placeable)
        if not eligible:
            return None
        if len(eligible) >= self.max_batch:
            return now
        # A retried request already paid its window (and a fault) on an
        # earlier attempt — it rides the next launch immediately rather
        # than aging a second time.
        if any(r.attempts for r in eligible):
            return now
        return max(now, eligible[0].admit_s + self.window_s)

    def take(
        self, queue, busy: "set[str]", now: float, placeable=None
    ) -> "Batch | None":
        """Form a batch at time ``now`` (up to ``max_batch``, FIFO).

        Returns ``None`` when no eligible request is ready.  The caller
        removes the batch's requests from the queue and marks their
        sessions in flight.
        """
        eligible = self._eligible(queue, busy, placeable)
        if not eligible:
            return None
        picked = eligible[: self.max_batch]
        batch = Batch(self._next_id, picked, formed_s=now)
        self._next_id += 1
        self._sizes.observe(len(picked))
        obs.counter("repro.serve.batches").inc()
        return batch

    @staticmethod
    def agents_in(batch: Batch, store) -> int:
        """Total agents covered by a batch's fused launch."""
        return sum(store.get(r.session_id).n for r in batch.requests)
