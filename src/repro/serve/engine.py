"""The step engine: what one fused launch costs and computes.

A fused serving launch is the v5 update stage (Table 6.1: everything on
the device) applied to every session in the batch.  The sessions are
separate worlds — neighbor searches never cross session boundaries — so
the fused kernel's execution time is the *sum* of the per-session kernel
times from :func:`repro.gpusteer.versions.update_time`, while the fixed
costs (two kernel launches, one result transfer) are paid once per
batch.  That additivity is precisely the amortization the batcher
exploits; it is also why the modelled numbers stay honest: batching
never makes the compute itself cheaper, only the overhead.

Kernel seconds are cached per population size — a serving process sees
the same session sizes over and over.
"""

from __future__ import annotations

from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpusteer.versions import DRAW_MATRIX_BYTES, update_time
from repro.serve.sessions import Session
from repro.steer.params import BoidsParams, DEFAULT_PARAMS

#: Kernel launches per fused batch: the v5 simulation substage kernel
#: plus the modification kernel (§6.3.1).
LAUNCHES_PER_BATCH = 2


class StepEngine:
    """Modelled cost oracle + state advancer for serving launches."""

    def __init__(
        self,
        params: BoidsParams = DEFAULT_PARAMS,
        calib: Calibration = DEFAULT_CALIBRATION,
        version: int = 5,
    ) -> None:
        self.params = params
        self.calib = calib
        self.version = version
        self._kernel_cache: "dict[int, float]" = {}

    # ------------------------------------------------------------------
    def kernel_seconds(self, n: int) -> float:
        """Device seconds for one session of ``n`` agents (v5 kernels)."""
        cached = self._kernel_cache.get(n)
        if cached is None:
            breakdown = update_time(self.version, n, self.params, calib=self.calib)
            cached = self._kernel_cache[n] = breakdown.gpu_kernel_s
        return cached

    def batch_kernel_seconds(self, sessions: "list[Session]") -> float:
        """Fused execution time: per-session kernel times, summed."""
        return sum(self.kernel_seconds(s.n) for s in sessions)

    @staticmethod
    def result_bytes(sessions: "list[Session]") -> int:
        """Device->host payload of one fused launch: the draw matrices
        of every agent in the batch (§6.2.3's 64 bytes per agent)."""
        return DRAW_MATRIX_BYTES * sum(s.n for s in sessions)

    # ------------------------------------------------------------------
    @staticmethod
    def advance(session: Session) -> None:
        """Run one frame of a session (functional state, v5 semantics)."""
        session.step()
