"""The step engine: what one fused launch costs and computes.

A fused serving launch is the v5 update stage (Table 6.1: everything on
the device) applied to every session in the batch.  The sessions are
separate worlds — neighbor searches never cross session boundaries — so
the fused kernel's execution time is the *sum* of the per-session kernel
times from :func:`repro.gpusteer.versions.update_time`, while the fixed
costs (two kernel launches, one result transfer) are paid once per
batch.  That additivity is precisely the amortization the batcher
exploits; it is also why the modelled numbers stay honest: batching
never makes the compute itself cheaper, only the overhead.

Kernel seconds are cached per population size — a serving process sees
the same session sizes over and over.
"""

from __future__ import annotations

from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.gpusteer.versions import DRAW_MATRIX_BYTES, update_time
from repro.serve.sessions import Session
from repro.steer.params import BoidsParams, DEFAULT_PARAMS

#: Kernel launches per fused batch: the v5 simulation substage kernel
#: plus the modification kernel (§6.3.1).
LAUNCHES_PER_BATCH = 2


class StepEngine:
    """Modelled cost oracle + state advancer for serving launches."""

    def __init__(
        self,
        params: BoidsParams = DEFAULT_PARAMS,
        calib: Calibration = DEFAULT_CALIBRATION,
        version: int = 5,
    ) -> None:
        self.params = params
        self.calib = calib
        self.version = version
        self._kernel_cache: "dict[int, float]" = {}
        self._cost_rows_cache: "dict[int, list]" = {}

    # ------------------------------------------------------------------
    def kernel_seconds(self, n: int) -> float:
        """Device seconds for one session of ``n`` agents (v5 kernels)."""
        cached = self._kernel_cache.get(n)
        if cached is None:
            breakdown = update_time(self.version, n, self.params, calib=self.calib)
            cached = self._kernel_cache[n] = breakdown.gpu_kernel_s
        return cached

    def batch_kernel_seconds(self, sessions: "list[Session]") -> float:
        """Fused execution time: per-session kernel times, summed."""
        return sum(self.kernel_seconds(s.n) for s in sessions)

    def kernel_cost_rows(self, n: int) -> "list[tuple[str, object, float]]":
        """Per-kernel cost rows for one session of ``n`` agents.

        Splits :meth:`kernel_seconds` into the individual kernels the
        version launches — ``(kernel_name, KernelCostInputs, seconds)``
        per row, exactly the geometry :func:`update_time` models — so an
        attached :class:`repro.prof.session.ProfSession` can attribute
        serve-plane device time per kernel.  Cached per population size
        like the kernel-seconds cache.
        """
        rows = self._cost_rows_cache.get(n)
        if rows is None:
            import math

            from repro.gpusteer.cost_model import (
                LaunchGeometry,
                WorkloadStats,
                modify_cost,
                neighbor_v1_cost,
                neighbor_v2_cost,
                simulate_cost,
                simulate_grid_cost,
            )
            from repro.gpusteer.versions import THREADS_PER_BLOCK, _cohort_size
            from repro.simgpu.perfmodel import kernel_time

            stats = WorkloadStats.estimate(
                n, self.params, self.calib.density_clustering
            )
            geom = LaunchGeometry(
                _cohort_size(n, self.params), THREADS_PER_BLOCK
            )
            all_geom = LaunchGeometry(
                THREADS_PER_BLOCK * math.ceil(n / THREADS_PER_BLOCK),
                THREADS_PER_BLOCK,
            )
            by_version = {
                1: [("find_neighbors_v1", neighbor_v1_cost(geom, stats))],
                2: [("find_neighbors_v2", neighbor_v2_cost(geom, stats))],
                3: [("simulate_v3", simulate_cost(geom, stats, local_cache=True))],
                4: [("simulate_v4", simulate_cost(geom, stats, local_cache=False))],
                5: [
                    ("simulate_v4", simulate_cost(geom, stats, local_cache=False)),
                    ("modify_kernel", modify_cost(all_geom)),
                ],
                6: [
                    ("simulate_grid", simulate_grid_cost(geom, stats)),
                    ("modify_kernel", modify_cost(all_geom)),
                ],
            }
            rows = self._cost_rows_cache[n] = [
                (name, inputs, kernel_time(inputs).total_s)
                for name, inputs in by_version[self.version]
            ]
        return rows

    @staticmethod
    def result_bytes(sessions: "list[Session]") -> int:
        """Device->host payload of one fused launch: the draw matrices
        of every agent in the batch (§6.2.3's 64 bytes per agent)."""
        return DRAW_MATRIX_BYTES * sum(s.n for s in sessions)

    # ------------------------------------------------------------------
    @staticmethod
    def advance(session: Session) -> None:
        """Run one frame of a session (functional state, v5 semantics)."""
        session.step()
