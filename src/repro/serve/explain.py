"""``python -m repro.serve.explain`` — one request's full waterfall.

The flight recorder retains causally complete traces; this tool answers
the operator question those traces exist for: *why was request N slow?*
Given an exported flight file (``repro.serve.loadgen --flight``) or a
live :class:`~repro.obs.flight.FlightRecorder`, it reconstructs one
request's journey as an ordered list of **hops** — admit → queue →
every launch attempt (each linked to the fused-launch span it rode in,
with its coalesced peer traces) → retry/failover hops → completion —
and renders it as a text waterfall or JSON.

Usage::

    python -m repro.serve.explain serve.flight.json 4817
    python -m repro.serve.explain serve.flight.json t000012 --json out.json
    python -m repro.serve.explain serve.flight.json 4817 --gantt

The identifier may be a trace id (``t000012``) or a bare request id;
``--gantt`` appends the per-device utilization timeline around the
request's lifetime.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.flight import (
    DeviceEvent,
    FlightRecorder,
    load_flight,
    render_gantt,
)

#: Link kinds that mark a hop as a recovery step.
_RECOVERY_KINDS = ("retry-of", "failover-of")


def _as_document(source) -> dict:
    """Normalize a recorder / document / path into the export format."""
    if isinstance(source, FlightRecorder):
        return source.to_dict()
    if isinstance(source, dict):
        return source
    return load_flight(source)


def _find_trace(doc: dict, ident: "str | int") -> "dict | None":
    """Locate a retained trace by trace id or request id."""
    for trace in doc.get("traces", []):
        if trace["trace_id"] == ident:
            return trace
    try:
        request_id = int(ident)
    except (TypeError, ValueError):
        return None
    for trace in doc.get("traces", []):
        if trace.get("request_id") == request_id:
            return trace
    return None


def waterfall(source, ident: "str | int") -> dict:
    """Reconstruct one request's journey from a flight source.

    Returns a JSON-friendly dict: the trace's identity and flags, one
    ``hops`` entry per span in start order (recovery hops carry their
    ``kind`` — ``retry-of``/``failover-of`` — and launch hops their
    fused-launch span plus coalesced ``peers``), and ``connected`` —
    True when every attempt past the first links back to a predecessor
    (the property the chaos tests assert).

    Raises ``KeyError`` when the id names no retained trace (it may
    have been tail-sampled away — only interesting and head-sampled
    traces survive).
    """
    doc = _as_document(source)
    trace = _find_trace(doc, ident)
    if trace is None:
        raise KeyError(
            f"no retained trace for {ident!r} — the request may have been "
            "dropped by tail sampling (only interesting or head-sampled "
            "traces are kept)"
        )
    batch_spans = {
        span["span_id"]: span for span in doc.get("batch_spans", [])
    }
    spans = sorted(
        trace["spans"], key=lambda s: (s["start_s"], s["span_id"])
    )
    hops: "list[dict]" = []
    attempts = 0
    linked_attempts = 0
    fused_links = 0
    for span in spans:
        hop = {
            "name": span["name"],
            "start_s": span["start_s"],
            "end_s": span.get("end_s"),
            "dur_s": (
                None
                if span.get("end_s") is None
                else span["end_s"] - span["start_s"]
            ),
            "outcome": span.get("attrs", {}).get("outcome"),
            "attrs": dict(span.get("attrs", {})),
            "kind": None,
            "links": [dict(link) for link in span.get("links", [])],
        }
        is_attempt = span["name"].startswith("attempt-")
        if is_attempt:
            attempts += 1
        for link in span.get("links", []):
            if link["kind"] in _RECOVERY_KINDS:
                hop["kind"] = link["kind"]
                if is_attempt:
                    linked_attempts += 1
            elif link["kind"] == "fused-launch":
                fused_links += 1
                hop["fused_span"] = link["span_id"]
                fused = batch_spans.get(link["span_id"])
                if fused is not None:
                    hop["fused"] = {
                        "trace_id": fused["trace_id"],
                        "batch": fused.get("attrs", {}).get("batch"),
                        "device": fused.get("attrs", {}).get("device"),
                        "size": fused.get("attrs", {}).get("size"),
                        "outcome": fused.get("attrs", {}).get("outcome"),
                    }
                    # Coalesced peers: every rider of the same fused
                    # launch except this request's own trace.
                    hop["peers"] = sorted(
                        {
                            peer["trace_id"]
                            for peer in fused.get("links", [])
                            if peer["kind"] == "coalesced"
                            and peer["trace_id"] != trace["trace_id"]
                        }
                    )
        hops.append(hop)
    return {
        "trace_id": trace["trace_id"],
        "request_id": trace.get("request_id"),
        "flags": list(trace.get("flags", [])),
        "hops": hops,
        "attempts": attempts,
        "fused_links": fused_links,
        # Connected: the causal chain has no gaps — attempt k+1 always
        # links back to attempt k, and every launch linked its batch.
        "connected": (
            attempts > 0
            and linked_attempts == attempts - 1
            and fused_links == attempts
        ),
    }


def _fmt_ms(seconds: "float | None") -> str:
    return "  open" if seconds is None else f"{seconds * 1e3:8.3f}"


def render_waterfall(explained: dict) -> str:
    """The waterfall as aligned text, one line per hop."""
    lines = [
        f"trace {explained['trace_id']}  request "
        f"{explained['request_id']}  flags: "
        f"{', '.join(sorted(explained['flags'])) or '-'}"
    ]
    lines.append(
        f"  {'start ms':>10}  {'dur ms':>8}  hop"
    )
    origin = explained["hops"][0]["start_s"] if explained["hops"] else 0.0
    for hop in explained["hops"]:
        start_ms = (hop["start_s"] - origin) * 1e3
        label = hop["name"]
        if hop.get("kind"):
            label += f"  [{hop['kind']}]"
        if hop.get("outcome"):
            label += f"  -> {hop['outcome']}"
        detail = []
        fused = hop.get("fused")
        if fused is not None:
            detail.append(
                f"fused batch={fused['batch']} device={fused['device']} "
                f"size={fused['size']}"
            )
        if hop.get("peers"):
            detail.append(f"peers: {', '.join(hop['peers'])}")
        lines.append(
            f"  {start_ms:10.3f}  {_fmt_ms(hop['dur_s'])}  {label}"
        )
        for extra in detail:
            lines.append(f"  {'':10}  {'':8}    {extra}")
    lines.append(
        f"  attempts: {explained['attempts']}  "
        f"connected: {explained['connected']}"
    )
    return "\n".join(lines)


def _gantt_for(doc: dict, explained: dict, width: int = 72) -> str:
    """The device timeline clipped to the request's lifetime."""
    hops = explained["hops"]
    if not hops:
        return "(no hops)"
    t0 = min(h["start_s"] for h in hops)
    t1 = max(
        (h["end_s"] for h in hops if h["end_s"] is not None), default=t0
    )
    events = [
        DeviceEvent(**e)
        for e in doc.get("device_events", [])
        if e["end_s"] >= t0 and e["start_s"] <= t1
    ]
    return render_gantt(events, width=width)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve.explain",
        description="Reconstruct one request's waterfall from a flight file.",
    )
    parser.add_argument("flight", help="flight JSON written by loadgen --flight")
    parser.add_argument(
        "ident", help="trace id (t000012) or request id (4817)"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="also write the waterfall as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--gantt", action="store_true",
        help="append the per-device timeline around the request",
    )
    return parser


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    doc = load_flight(args.flight)
    try:
        explained = waterfall(doc, args.ident)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 1
    print(render_waterfall(explained))
    if args.gantt:
        print()
        print(_gantt_for(doc, explained))
    if args.json is not None:
        payload = json.dumps(explained, indent=1, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                fh.write(payload + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
