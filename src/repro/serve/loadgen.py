"""Open-loop load generator + SLO report for the serving subsystem.

``python -m repro.serve.loadgen`` drives a :class:`SimulationService`
with Poisson arrivals at a configured offered rate, spread over a set of
client sessions, then reports the SLO numbers a serving team would put
on a dashboard: p50/p95/p99 latency, completed throughput, outcome
counts, mean batch size, and modelled kernel-launch totals.

The arrival process is **open-loop** (arrivals do not wait for earlier
responses), which is what makes overload visible: when the service
cannot keep up, the queue — not the client — absorbs the excess, and the
admission policy decides who pays.  All times are virtual seconds on the
service's modelled clock, so every run is deterministic for a given
seed and free of wall-clock noise; with ``--physics`` the flocks really
move (slower, identical timing numbers).

``--compare`` runs the same offered load twice — batching on, then off —
and prints both reports plus the headline ratios (throughput, p99,
launches).  ``--trace DIR`` additionally writes Chrome-trace and metrics
JSON via :func:`repro.obs.capture`.

SLO rules can ride along: ``--slo-p99-ms`` / ``--slo-miss-ratio`` /
``--slo-queue-depth`` build an :class:`repro.obs.monitor.SloMonitor`
that evaluates in virtual time inside the service, ``--slo-degrade``
lets admission switch policy while an alert fires, and the alert log
lands in the report (and as ``*.alerts.json`` next to the trace).
"""

from __future__ import annotations

import argparse
import contextlib
import json
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.backend.base import normalize_backends
from repro.common.errors import ConfigurationError
from repro.fault import FaultConfig
from repro.serve.request import (
    FAILED_STATUSES,
    TERMINAL_STATUSES,
    RequestStatus,
    StepRequest,
)
from repro.serve.service import ServeConfig, SimulationService


@dataclass
class LoadReport:
    """One load run's SLO summary (all times virtual seconds)."""

    batching: bool
    offered: int
    offered_rate: float
    duration_s: float
    completed: int
    rejected: int
    shed: int
    expired: int
    finished_at_s: float
    p50_ms: float
    p95_ms: float
    p99_ms: float
    mean_batch_size: float
    batches: int
    launches: int
    max_queue_depth: int
    #: Resilience outcomes (all zero / ``None`` on fault-free runs).
    failed: int = 0
    stranded: int = 0
    retries: int = 0
    timeouts: int = 0
    evictions: int = 0
    failovers: int = 0
    #: The injector's counters (``None`` when chaos was off).
    faults: "dict | None" = None
    latencies_ms: "list[float]" = field(default_factory=list, repr=False)
    #: Alert log from an attached SLO monitor (empty when none ran).
    alerts: "list[dict]" = field(default_factory=list, repr=False)
    #: Flight-recorder summary (``None`` when flight tracing was off —
    #: the key is always present so reports with and without tracing
    #: stay structurally identical).
    flight: "dict | None" = None
    #: Execution backend(s) the run used (``sim``/``native``/``mixed``).
    #: Kept a string so the perf gate's numeric flattening ignores it.
    backend: str = "sim"
    #: Kernel profiler report (``None`` when no ProfSession was
    #: attached — the default, keeping the report byte-identical to
    #: unprofiled runs).
    prof: "dict | None" = None

    @property
    def throughput_rps(self) -> float:
        """Completed requests per virtual second of the run."""
        horizon = max(self.finished_at_s, self.duration_s, 1e-9)
        return self.completed / horizon

    @property
    def launches_per_request(self) -> float:
        """Modelled kernel launches per completed request."""
        return self.launches / max(1, self.completed)

    def to_dict(self) -> dict:
        """JSON-friendly form (sans the raw latency samples)."""
        return {
            "batching": self.batching,
            "backend": self.backend,
            "offered": self.offered,
            "offered_rate_rps": self.offered_rate,
            "duration_s": self.duration_s,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "expired": self.expired,
            "throughput_rps": self.throughput_rps,
            "p50_ms": self.p50_ms,
            "p95_ms": self.p95_ms,
            "p99_ms": self.p99_ms,
            "mean_batch_size": self.mean_batch_size,
            "batches": self.batches,
            "launches": self.launches,
            "launches_per_request": self.launches_per_request,
            "max_queue_depth": self.max_queue_depth,
            "failed": self.failed,
            "stranded": self.stranded,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "evictions": self.evictions,
            "failovers": self.failovers,
            "faults": self.faults,
            "alerts_fired": len(self.alerts),
            "alerts": self.alerts,
            "flight": self.flight,
            "prof": self.prof,
        }

    def lines(self) -> "list[str]":
        """The human-readable report block."""
        mode = "batching on" if self.batching else "batching OFF"
        return [
            f"--- serve loadgen ({mode}, backend {self.backend}) ---",
            f"offered     {self.offered} requests "
            f"({self.offered_rate:.0f} req/s over {self.duration_s:g} s)",
            f"completed   {self.completed}  "
            f"(rejected {self.rejected}, shed {self.shed}, "
            f"expired {self.expired})",
            f"throughput  {self.throughput_rps:,.0f} req/s (virtual)",
            f"latency     p50 {self.p50_ms:.3f} ms   "
            f"p95 {self.p95_ms:.3f} ms   p99 {self.p99_ms:.3f} ms",
            f"batches     {self.batches}  "
            f"(mean size {self.mean_batch_size:.1f}, "
            f"max queue depth {self.max_queue_depth})",
            f"launches    {self.launches} modelled kernel launches "
            f"({self.launches_per_request:.3f} per completed request)",
        ] + (
            [
                f"chaos       {self.faults['injected']} faults injected "
                f"over {self.faults['consults']} consults "
                f"({', '.join(f'{k} {v}' for k, v in sorted(self.faults['by_kind'].items()) if v)})"
                if self.faults["injected"]
                else f"chaos       0 faults injected over "
                f"{self.faults['consults']} consults",
                f"recovery    {self.retries} retries, {self.timeouts} timeouts, "
                f"{self.evictions} evictions, {self.failovers} failovers, "
                f"{self.failed} failed, {self.stranded} stranded",
            ]
            if self.faults is not None
            else []
        ) + (
            [
                f"slo alerts  {len(self.alerts)} fired "
                f"({', '.join(sorted({a['rule'] for a in self.alerts}))})"
            ]
            if self.alerts
            else []
        ) + (
            [
                f"flight      {self.flight['retained']} traces retained "
                f"(cap {self.flight['cap']}; "
                f"{self.flight['retained_interesting']} interesting, "
                f"{self.flight['retained_head']} head-sampled, "
                f"{self.flight['dropped']} dropped)"
            ]
            if self.flight is not None
            else []
        ) + (
            [
                f"prof        {len(self.prof['kernels'])} kernels profiled "
                f"({self.prof['launches']} modelled launches, "
                f"{self.prof['totals']['modelled_s'] * 1e3:.3f} ms kernel time)"
            ]
            if self.prof is not None
            else []
        )


def _percentile(samples: "list[float]", q: float) -> float:
    """Exact percentile of collected samples (0 when empty)."""
    if not samples:
        return 0.0
    return float(np.percentile(np.asarray(samples), q))


def slo_monitor(
    p99_ms: "float | None" = None,
    miss_ratio: "float | None" = None,
    queue_depth: "float | None" = None,
    fault_count: "float | None" = None,
    window_s: float = 0.05,
):
    """Build an :class:`~repro.obs.monitor.SloMonitor` from thresholds.

    The rule vocabulary the serving layer cares about, over the
    canonical series the service feeds: p99 completed-request latency
    (``p99_ms``, milliseconds), terminal-failure ratio (``miss_ratio``,
    0-1), and admission queue depth (``queue_depth``).  Each rule uses
    ``window_s`` as its long window and a quarter of it as the
    burn-rate fast window.  Returns ``None`` when every threshold is
    ``None``.
    """
    from repro.obs.monitor import SloMonitor, SloRule

    short_s = window_s / 4
    rules = []
    if p99_ms is not None:
        rules.append(
            SloRule(
                "latency-p99",
                "repro.request.latency",
                "p99",
                threshold=p99_ms * 1e3,  # the series is in microseconds
                window_s=window_s,
                short_window_s=short_s,
                min_count=10,
            )
        )
    if miss_ratio is not None:
        rules.append(
            SloRule(
                "deadline-miss-ratio",
                "repro.request.outcome",
                "ratio",
                threshold=miss_ratio,
                window_s=window_s,
                short_window_s=short_s,
                min_count=10,
            )
        )
    if queue_depth is not None:
        rules.append(
            SloRule(
                "queue-depth",
                "repro.queue.depth",
                "max",
                threshold=queue_depth,
                window_s=window_s,
                short_window_s=short_s,
            )
        )
    if fault_count is not None:
        rules.append(
            SloRule(
                "fault-count",
                "repro.fault.events",
                "count",
                threshold=fault_count,
                window_s=window_s,
                short_window_s=short_s,
            )
        )
    return SloMonitor(rules) if rules else None


def run_load(
    clients: int = 64,
    duration_s: float = 2.0,
    rate_rps: float = 16000.0,
    seed: int = 0,
    config: "ServeConfig | None" = None,
    deadline_s: "float | None" = None,
    monitor=None,
    degrade_policy: "str | None" = None,
    flight=None,
    prof=None,
) -> LoadReport:
    """Drive one service instance with Poisson arrivals; summarize.

    Arrivals are generated up front from ``seed`` (so batched and
    unbatched runs in a comparison see the *identical* request stream),
    assigned uniformly to ``clients`` sessions, then replayed through
    :meth:`SimulationService.submit`/:meth:`~SimulationService.advance`.

    ``flight`` optionally attaches an
    :class:`~repro.obs.flight.FlightRecorder`; its tail-sampled summary
    (retention counts, failed-over request ids, and whether the p99
    latency bucket's exemplars resolve to retained traces) lands in
    :attr:`LoadReport.flight`.

    ``prof`` optionally attaches a
    :class:`~repro.prof.session.ProfSession` for the duration of the
    replay; the scheduler records the modelled kernel cost of every
    sub-batch into it and the per-kernel report lands in
    :attr:`LoadReport.prof`.
    """
    config = config or ServeConfig(physics=False, default_deadline_s=deadline_s)
    service = SimulationService(config)
    if monitor is not None:
        service.attach_monitor(monitor, degrade_policy=degrade_policy)
    if flight is not None:
        service.attach_flight(flight)
    for i in range(clients):
        service.create_session(f"client-{i}", seed=seed + i)

    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=max(1, int(rate_rps * duration_s * 2)))
    arrivals = np.cumsum(gaps)
    arrivals = arrivals[arrivals < duration_s]
    owners = rng.integers(0, clients, size=arrivals.size)

    requests: "list[StepRequest]" = []
    max_depth = 0
    prof_ctx = prof if prof is not None else contextlib.nullcontext()
    with prof_ctx:
        for t, owner in zip(arrivals, owners):
            service.advance(float(t))
            requests.append(service.submit(f"client-{owner}"))
            max_depth = max(max_depth, service.admission.depth)
        service.drain()

    latencies_ms = [
        r.latency_s * 1e3
        for r in requests
        if r.status is RequestStatus.DONE and r.latency_s is not None
    ]
    by_status = {
        status: sum(1 for r in requests if r.status is status)
        for status in FAILED_STATUSES
    }
    # Stranded = submitted but never driven to a terminal status; the
    # resilience layer's contract is that this is always zero.
    stranded = sum(1 for r in requests if r.status not in TERMINAL_STATUSES)
    stats = service.stats
    flight_summary = None
    if flight is not None:
        hist = obs.request_latency_histogram("serve")
        flight_summary = {
            **flight.stats(),
            "failover_request_ids": flight.request_ids("failover"),
            "failed_request_ids": flight.request_ids("failed"),
            # The exemplar resolution path: the run's p99 latency bucket
            # -> (value, trace) samples -> were those traces retained?
            "p99_exemplars": [
                {
                    "value_us": value,
                    "trace_id": trace_id,
                    "retained": flight.trace(trace_id) is not None,
                }
                for value, trace_id in hist.exemplars_for(99)
            ],
        }
    prof_summary = None
    if prof is not None:
        from repro.prof.report import session_report

        prof_summary = session_report(prof, label="serve")
    return LoadReport(
        batching=config.batching,
        backend=(
            config.backend
            if isinstance(config.backend, str)
            else ",".join(config.backend)
        ),
        offered=len(requests),
        offered_rate=rate_rps,
        duration_s=duration_s,
        completed=stats.completed,
        rejected=by_status[RequestStatus.REJECTED],
        shed=by_status[RequestStatus.SHED],
        expired=by_status[RequestStatus.EXPIRED],
        finished_at_s=service.now,
        p50_ms=_percentile(latencies_ms, 50),
        p95_ms=_percentile(latencies_ms, 95),
        p99_ms=_percentile(latencies_ms, 99),
        mean_batch_size=stats.mean_batch_size,
        batches=stats.batches,
        launches=stats.launches,
        max_queue_depth=max_depth,
        failed=by_status[RequestStatus.FAILED],
        stranded=stranded,
        retries=stats.retries,
        timeouts=stats.timeouts,
        evictions=stats.evictions,
        failovers=stats.failovers,
        faults=service.fault_stats,
        latencies_ms=latencies_ms,
        alerts=(
            [alert.to_dict() for alert in monitor.log]
            if monitor is not None
            else []
        ),
        flight=flight_summary,
        prof=prof_summary,
    )


def _build_parser() -> argparse.ArgumentParser:
    """The ``repro.serve.loadgen`` command line."""
    p = argparse.ArgumentParser(
        prog="python -m repro.serve.loadgen",
        description="Open-loop load generator for the repro.serve subsystem "
        "(virtual-time SLO report).",
    )
    p.add_argument("--clients", type=int, default=64, help="client sessions")
    p.add_argument(
        "--duration", type=float, default=2.0, help="virtual seconds of arrivals"
    )
    p.add_argument(
        "--rate", type=float, default=16000.0, help="offered requests/second"
    )
    p.add_argument("--agents", type=int, default=128, help="agents per session")
    p.add_argument(
        "--version",
        type=int,
        default=5,
        choices=(1, 2, 3, 4, 5, 6),
        help="gpusteer pipeline version to serve (6 = grid-bucketed "
        "neighbor search over cupp.containers)",
    )
    p.add_argument("--max-batch", type=int, default=32, help="batch size cap")
    p.add_argument(
        "--window-ms", type=float, default=2.0, help="batching window (ms)"
    )
    p.add_argument(
        "--queue-capacity", type=int, default=256, help="admission queue slots"
    )
    p.add_argument(
        "--policy",
        default="reject",
        choices=("reject", "shed-oldest", "block"),
        help="backpressure policy when the queue is full",
    )
    p.add_argument("--devices", type=int, default=2, help="GPUs in the group")
    p.add_argument(
        "--streams",
        type=int,
        default=2,
        help="CUDA streams per device: 2 pipelines uploads/kernels/"
        "fetches (depth 2); 1 restores the legacy serial scheduler "
        "byte-for-byte",
    )
    p.add_argument(
        "--backend",
        default="sim",
        help=(
            "execution backend: sim (cycle simulator, virtual time), "
            "native (vectorized numpy, wall-clock cost model), or mixed "
            "(alternating — heterogeneous group with cost-aware placement)"
        ),
    )
    p.add_argument(
        "--no-pool",
        action="store_true",
        help="bypass the repro.mem caching allocator (raw driver allocs)",
    )
    p.add_argument(
        "--deadline-ms",
        type=float,
        default=None,
        help="per-request deadline (ms after arrival); default none",
    )
    p.add_argument(
        "--no-batching",
        action="store_true",
        help="one launch per request (the baseline batching amortizes)",
    )
    p.add_argument(
        "--compare",
        action="store_true",
        help="run batched AND unbatched on the same arrivals; print both",
    )
    p.add_argument(
        "--seed", type=int, default=0, help="arrival-stream (and chaos) seed"
    )
    chaos = p.add_argument_group("chaos (deterministic fault injection)")
    chaos.add_argument(
        "--chaos",
        action="store_true",
        help="inject the standard fault mix (FaultConfig.chaos) seeded "
        "from --seed; the run must leave zero stranded requests",
    )
    chaos.add_argument(
        "--chaos-rate",
        type=float,
        default=0.01,
        help="total device-fault probability per consult (default 0.01)",
    )
    p.add_argument(
        "--physics",
        action="store_true",
        help="run real boids physics (slower; identical virtual timing)",
    )
    p.add_argument(
        "--trace", default=None, metavar="DIR", help="write trace/metrics JSON"
    )
    p.add_argument(
        "--json", default=None, metavar="PATH", help="write the report as JSON"
    )
    flight = p.add_argument_group(
        "flight tracing (per-request causal traces, tail-sampled)"
    )
    flight.add_argument(
        "--flight",
        default=None,
        metavar="PATH",
        help="record per-request flight traces and write them here "
        "(feed the file to python -m repro.serve.explain)",
    )
    flight.add_argument(
        "--flight-slow-ms",
        type=float,
        default=2.0,
        help="retain any trace slower than this end-to-end (ms)",
    )
    flight.add_argument(
        "--flight-cap",
        type=int,
        default=256,
        help="retained-trace cap (head samples evict first)",
    )
    flight.add_argument(
        "--flight-head",
        type=int,
        default=64,
        help="deterministic head sampling: keep 1 in N normal traces "
        "(0 disables)",
    )
    p.add_argument(
        "--prof",
        default=None,
        metavar="PATH",
        help="attach a kernel profiler session (repro.prof) and write "
        "its per-kernel report JSON here",
    )
    slo = p.add_argument_group("SLO monitoring (virtual-time, in-service)")
    slo.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        help="alert when windowed p99 latency exceeds this (ms)",
    )
    slo.add_argument(
        "--slo-miss-ratio",
        type=float,
        default=None,
        help="alert when the windowed failure ratio exceeds this (0-1)",
    )
    slo.add_argument(
        "--slo-queue-depth",
        type=float,
        default=None,
        help="alert when the admission queue exceeds this depth",
    )
    slo.add_argument(
        "--slo-fault-count",
        type=float,
        default=None,
        help="alert when injected faults in the window exceed this count",
    )
    slo.add_argument(
        "--slo-window-ms",
        type=float,
        default=50.0,
        help="SLO sliding window (ms of virtual time)",
    )
    slo.add_argument(
        "--slo-degrade",
        default=None,
        choices=("reject", "shed-oldest", "block"),
        help="admission policy to switch to while an alert fires",
    )
    slo.add_argument(
        "--alerts",
        default=None,
        metavar="PATH",
        help="write the alert log as JSON (defaults into --trace DIR)",
    )
    return p


def _config(args: argparse.Namespace, batching: bool) -> ServeConfig:
    """Build a ServeConfig from parsed CLI arguments."""
    return ServeConfig(
        agents_per_session=args.agents,
        max_batch=args.max_batch,
        window_s=args.window_ms * 1e-3,
        batching=batching,
        queue_capacity=args.queue_capacity,
        policy=args.policy,
        default_deadline_s=(
            None if args.deadline_ms is None else args.deadline_ms * 1e-3
        ),
        devices=args.devices,
        streams=args.streams,
        backend=args.backend,
        pool=not args.no_pool,
        physics=args.physics,
        version=args.version,
        faults=(
            FaultConfig.chaos(seed=args.seed, device_fault_rate=args.chaos_rate)
            if args.chaos
            else None
        ),
    )


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        # Validate up front for a clear CLI error naming the valid kinds
        # (instead of a KeyError deep inside device construction).
        normalize_backends(args.backend, args.devices)
    except ConfigurationError as exc:
        parser.error(str(exc))
    monitors: "list" = []
    flight_recorder = (
        obs.FlightRecorder(
            head_sample_every=args.flight_head,
            slow_threshold_s=args.flight_slow_ms * 1e-3,
            max_retained=args.flight_cap,
        )
        if args.flight
        else None
    )

    def one(batching: bool, flight=None, prof=None) -> LoadReport:
        monitor = slo_monitor(
            p99_ms=args.slo_p99_ms,
            miss_ratio=args.slo_miss_ratio,
            queue_depth=args.slo_queue_depth,
            fault_count=args.slo_fault_count,
            window_s=args.slo_window_ms * 1e-3,
        )
        if monitor is not None:
            monitors.append(monitor)
        return run_load(
            clients=args.clients,
            duration_s=args.duration,
            rate_rps=args.rate,
            seed=args.seed,
            config=_config(args, batching),
            monitor=monitor,
            degrade_policy=args.slo_degrade,
            flight=flight,
            prof=prof,
        )

    prof_session = None
    if args.prof:
        from repro.prof.session import ProfSession

        prof_session = ProfSession()

    reports: "list[LoadReport]" = []
    if args.trace:
        with obs.capture("serve-loadgen") as cap:
            reports.append(
                one(not args.no_batching, flight_recorder, prof_session)
            )
        paths = cap.write(args.trace, stem="serve-loadgen")
        trace_note = f"trace/metrics written: {', '.join(paths)}"
    else:
        reports.append(one(not args.no_batching, flight_recorder, prof_session))
        trace_note = None

    if args.compare:
        reports.append(one(False))

    for report in reports:
        print("\n".join(report.lines()))
        print()
    if args.compare and len(reports) == 2:
        on, off = reports
        print("--- batching vs no-batching ---")
        print(
            f"throughput  {on.throughput_rps:,.0f} vs {off.throughput_rps:,.0f} "
            f"req/s ({on.throughput_rps / max(off.throughput_rps, 1e-9):.2f}x)"
        )
        print(
            f"launches    {on.launches} vs {off.launches} "
            f"({off.launches / max(on.launches, 1):.1f}x fewer with batching)"
        )
        print(f"p99         {on.p99_ms:.3f} ms vs {off.p99_ms:.3f} ms")
    if trace_note:
        print(trace_note)
    if flight_recorder is not None:
        flight_recorder.write(args.flight)
        print(f"flight traces written: {args.flight}")
    if args.prof and reports[0].prof is not None:
        with open(args.prof, "w", encoding="utf-8") as fh:
            json.dump(reports[0].prof, fh, indent=2, sort_keys=True)
        print(f"kernel profile written: {args.prof}")
    alerts_path = args.alerts
    if alerts_path is None and args.trace and monitors:
        import os

        alerts_path = os.path.join(args.trace, "serve-loadgen.alerts.json")
    if alerts_path and monitors:
        alert_payload = (
            monitors[0].to_dict()
            if len(monitors) == 1
            else {
                "batching": monitors[0].to_dict(),
                "no_batching": monitors[1].to_dict(),
            }
        )
        with open(alerts_path, "w", encoding="utf-8") as fh:
            json.dump(alert_payload, fh, indent=2, sort_keys=True)
        print(f"alert log written: {alerts_path}")
    if args.json:
        payload = (
            reports[0].to_dict()
            if len(reports) == 1
            else {"batching": reports[0].to_dict(), "no_batching": reports[1].to_dict()}
        )
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
        print(f"report written: {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
