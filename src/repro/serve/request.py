"""Step requests — the unit of work the serving layer moves around.

A client asks the service to advance its session's flock by one frame.
The request object doubles as the per-request record: admission,
launch, and finish timestamps land on it as the request moves through
the pipeline (queue -> batch -> device -> demux), so latency breakdowns
need no side tables.

All timestamps are *virtual* seconds on the service's modelled clock
(the same clock :class:`repro.simgpu.transfer.DeviceTimeline` runs on),
which keeps every run deterministic and independent of wall time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np


class RequestStatus(enum.Enum):
    """Lifecycle of a step request inside the service."""

    #: Created, not yet offered to admission control.
    PENDING = "pending"
    #: Admitted; waiting in the bounded queue for a batch slot.
    QUEUED = "queued"
    #: Admission queue was full under the ``block`` policy; the client
    #: is being back-pressured until a slot frees.
    BLOCKED = "blocked"
    #: Turned away at admission (``reject`` policy, full queue).
    REJECTED = "rejected"
    #: Evicted from the queue by a newer arrival (``shed-oldest``).
    SHED = "shed"
    #: Deadline passed before the request reached a device.
    EXPIRED = "expired"
    #: Launched as part of a batch; executing on a device.
    IN_FLIGHT = "in-flight"
    #: Completed; ``finish_s`` and (optionally) ``result`` are set.
    DONE = "done"
    #: Hit an injected/device fault and exhausted its retry budget.
    FAILED = "failed"


#: Statuses that mean the request will never produce a result.
FAILED_STATUSES = frozenset(
    {
        RequestStatus.REJECTED,
        RequestStatus.SHED,
        RequestStatus.EXPIRED,
        RequestStatus.FAILED,
    }
)

#: Statuses a drained service must leave every request in — anything
#: else is a stranded request, which the resilience layer forbids.
TERMINAL_STATUSES = frozenset({RequestStatus.DONE}) | FAILED_STATUSES


@dataclass
class StepRequest:
    """One "advance my flock by one frame" request, plus its journey.

    Parameters
    ----------
    session_id:
        The session whose agents this request steps.
    arrival_s:
        Virtual time the client issued the request.
    deadline_s:
        Optional absolute virtual deadline; requests still queued (or
        blocked) past it are dropped as :attr:`RequestStatus.EXPIRED`
        when the batcher next forms a batch.
    want_draw:
        When true, the per-request slice of the batch's fused draw-matrix
        vector is attached as :attr:`result` (shape ``(n, 4, 4)``).
    """

    session_id: str
    arrival_s: float
    deadline_s: "float | None" = None
    want_draw: bool = False

    #: Assigned by the service at submit time (monotone, per service).
    request_id: int = -1
    status: RequestStatus = RequestStatus.PENDING
    #: Virtual time the request entered the bounded queue.
    admit_s: "float | None" = None
    #: Virtual time the request's batch launched on a device.
    launch_s: "float | None" = None
    #: Virtual time the request's result was demultiplexed back.
    finish_s: "float | None" = None
    #: Index (within the device group) of the device that served it.
    device_index: "int | None" = None
    #: Batch the request rode in (service-wide monotone id).
    batch_id: "int | None" = None
    #: Launch attempts consumed so far (faults send a request back
    #: through admission with exponential backoff until the retry
    #: policy's budget runs out).
    attempts: int = 0
    #: Draw matrices for the stepped frame, when ``want_draw`` was set.
    result: "np.ndarray | None" = field(default=None, repr=False)
    #: Flight-trace context (:class:`repro.obs.flight.TraceContext`)
    #: riding on the request through admission, batching, scheduling,
    #: and retry/failover; None whenever flight recording is off.
    ctx: "object | None" = field(default=None, repr=False, compare=False)

    @property
    def latency_s(self) -> "float | None":
        """End-to-end virtual latency (None until the request finishes)."""
        if self.finish_s is None:
            return None
        return self.finish_s - self.arrival_s

    @property
    def queue_wait_s(self) -> "float | None":
        """Time spent between admission and launch (None until launched)."""
        if self.launch_s is None or self.admit_s is None:
            return None
        return self.launch_s - self.admit_s

    def expired(self, now: float) -> bool:
        """Has this request's deadline passed at virtual time ``now``?"""
        return self.deadline_s is not None and now > self.deadline_s
