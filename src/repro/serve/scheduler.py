"""Multi-device placement: batches onto a ``DeviceGroup``, with overlap.

The scheduler owns the device side of the serving pipeline.  It places
each formed batch onto the group as one or more *sub-batches*:

* sessions already resident on a device are pinned there (moving them
  would re-pay their state upload — the lazy-copy reuse the session
  store exists for);
* cold sessions are spread over the group with the same contiguous
  :meth:`~repro.cupp.multidevice.DeviceGroup.chunk_bounds` split that
  ``MultiKernel`` shards vectors with, least-busy device first.

Execution is played out on each device's own
:class:`~repro.simgpu.transfer.DeviceTimeline` under the paper's §2.2
rules: kernel launches are asynchronous (the host enqueues and moves
on), memcpys block until the device is idle.  The overlap therefore
comes from two places, both measured rather than asserted: the host
assembles and launches the *next* sub-batch while other devices
compute, and each batch's result fetch is deferred to its completion
event (double-buffer style, §6.3.2) instead of stalling the launch
path.  A batch's completion is the **makespan** of its sub-batches —
the same metric :attr:`DeviceGroup.makespan_s` reports for a sharded
``MultiKernel`` call.

Transfers are attributed in the ledger as the batching data path:
``batch-concat`` for the fused cold-state upload, ``batch-split`` for
the fused result fetch (each then sliced per request by
``Vector.split_at``).

With ``streams >= 2`` (the default via :class:`ServeConfig`) each device
gets a *copy* stream and a *compute* stream on its timeline, and the
scheduler stops serializing on ``device_busy_until``: the cold-state
upload rides the copy engine (``cudaMemcpyAsync`` semantics) with the
kernels gated on it by an event (``stream-wait`` in the ledger), the
kernels queue on the compute stream, and the result fetch is a deferred
async d2h on the copy stream.  Each device then pipelines up to two
sub-batches (depth 2): the next batch's upload and kernel queueing
overlap the previous batch's tail instead of waiting for the device to
go idle.  ``streams=1`` keeps the legacy null-stream path byte-for-byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import obs
from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.cuda.runtime import CudaMachine
from repro.cupp.exceptions import CuppMemoryError, CuppUsageError
from repro.cupp.multidevice import DeviceGroup
from repro.cupp.vector import Vector
from repro.fault import InjectedFault
from repro.prof import hook as prof_hook
from repro.serve.batcher import Batch
from repro.serve.engine import LAUNCHES_PER_BATCH, StepEngine
from repro.serve.request import StepRequest
from repro.serve.sessions import Session
from repro.simgpu.arch import scaled_arch


def make_group(
    devices: int = 2,
    multiprocessors: int = 12,
    pool: bool = True,
    backend: "str | list[str]" = "sim",
) -> DeviceGroup:
    """A serving device group: ``devices`` G80-class GPUs.

    ``pool`` (default on) routes each device's allocations through a
    :class:`repro.mem.MemoryPool`, so the per-batch buffer churn the
    scheduler generates is served from cache instead of the driver.

    ``backend`` selects the execution substrate per device — ``"sim"``,
    ``"native"``, ``"mixed"`` (alternating), or an explicit per-device
    list — making heterogeneous groups possible.
    """
    if devices <= 0:
        raise CuppUsageError(f"need at least one device, got {devices}")
    machine = CudaMachine(
        [
            scaled_arch(f"serve-gpu{i}", multiprocessors, memory_bytes=1 << 26)
            for i in range(devices)
        ],
        backend=backend,
    )
    group = DeviceGroup(machine)
    if pool:
        for device in group.devices:
            device.enable_pool()
    return group


@dataclass
class SubBatch:
    """The slice of a batch placed on one device."""

    device_index: int
    requests: "list[StepRequest]" = field(default_factory=list)
    sessions: "list[Session]" = field(default_factory=list)
    #: Virtual time the sub-batch's kernels finish on its device.
    completion_s: float = 0.0
    #: Completion excluding any injected hang (streams mode): what the
    #: schedule *predicts*, including queueing behind the device's other
    #: in-flight sub-batch.  The watchdog deadline builds on this.
    expected_completion_s: float = 0.0
    #: Device buffer holding the fused draw-matrix results between
    #: :meth:`DeviceScheduler.launch` and :meth:`~DeviceScheduler.finish`.
    result_ptr: "object | None" = None
    #: Watchdog deadline set at launch when fault injection is active;
    #: the service times the sub-batch out (and evicts its device) if
    #: the completion has not arrived by then.  ``None`` = no watchdog.
    timeout_s: "float | None" = None
    #: An injected hang wedged this sub-batch's device.
    hung: bool = False
    #: The result fetch came back with an uncorrectable ECC error; the
    #: results must be discarded and the requests retried.
    corrupt: bool = False
    #: The sub-batch was timed out and abandoned; its (late) completion
    #: event is reaped without touching sessions or results.
    zombie: bool = False
    #: Flight-trace ``fused-launch`` span for this sub-batch
    #: (:class:`repro.obs.flight.FlightSpan`); None when flight
    #: recording is off.
    flight_span: "object | None" = None


class DeviceScheduler:
    """Places batches on a :class:`DeviceGroup` and models their time."""

    def __init__(
        self,
        group: DeviceGroup,
        calib: Calibration = DEFAULT_CALIBRATION,
        host_dispatch_s: float = 50e-6,
        host_per_request_s: float = 2e-6,
        streams: int = 1,
    ) -> None:
        if streams < 1:
            raise CuppUsageError(f"streams must be >= 1, got {streams}")
        self.group = group
        self.calib = calib
        self.host_dispatch_s = host_dispatch_s
        self.host_per_request_s = host_per_request_s
        self.timelines = [d.sim.timeline for d in group.devices]
        for tl in self.timelines:
            tl.launch_overhead_s = calib.launch_overhead_s
        #: Streams per device: 1 = legacy null-stream scheduling (every
        #: op serializes on ``device_busy_until``); >= 2 = overlapped
        #: copy/compute streams with pipeline depth 2 per device.
        self.streams = streams
        self.pipeline_depth = 1 if streams == 1 else 2
        #: Sub-batches currently in flight per device (streams mode lets
        #: this reach :attr:`pipeline_depth`; legacy mode caps it at 1).
        self.inflight_count = [0] * len(group)
        if streams > 1:
            self._copy_streams = [tl.create_stream() for tl in self.timelines]
            self._compute_streams = [
                tl.create_stream() for tl in self.timelines
            ]
        else:
            self._copy_streams = None
            self._compute_streams = None
        #: Execution-backend kind per device (``"sim"``/``"native"``).
        self.backend_kinds = [d.backend_kind for d in group.devices]
        #: Heterogeneous groups get cost-aware placement; homogeneous
        #: groups keep the original even split, byte-for-byte.
        self.heterogeneous = len(set(self.backend_kinds)) > 1
        #: Online cost model per *native* device: EWMA of the ratio
        #: measured/modelled kernel seconds (sim devices use the perf
        #: model directly — it *is* their clock).
        self._native_cost: "dict[int, object]" = {}
        #: Requests placed per device, by the cost-aware (or even) split;
        #: lets callers verify work actually routed to each backend kind.
        self.placed_requests = [0] * len(group)
        #: Device indices with a sub-batch currently in flight.
        self.busy: "set[int]" = set()
        #: Device indices evicted by the health machinery; excluded
        #: from placement until a probe readmits them.
        self.unhealthy: "set[int]" = set()
        #: Optional :class:`repro.fault.FaultInjector` (set by the
        #: service when chaos is configured); consulted once per
        #: sub-batch launch and once per result fetch.
        self.injector = None
        #: Optional :class:`repro.obs.flight.FlightRecorder` (set by the
        #: service); when present, launch/finish record busy/transfer/
        #: wedged intervals onto per-device utilization tracks.
        self.flight = None

    # ------------------------------------------------------------------
    def free_devices(self) -> "list[int]":
        """Healthy indices with pipeline room, least busy first.

        Legacy mode (``streams == 1``): devices with no in-flight
        sub-batch.  Streams mode: devices below :attr:`pipeline_depth`,
        emptiest first so new work prefers idle silicon over queueing.
        """
        if self.streams == 1:
            free = [
                i
                for i in range(len(self.group))
                if i not in self.busy and i not in self.unhealthy
            ]
            free.sort(key=lambda i: self.timelines[i].device_busy_until)
            return free
        free = [
            i
            for i in range(len(self.group))
            if self.inflight_count[i] < self.pipeline_depth
            and i not in self.unhealthy
        ]
        free.sort(
            key=lambda i: (
                self.inflight_count[i],
                self.timelines[i].device_busy_until,
            )
        )
        return free

    # ------------------------------------------------------------------
    # device health (eviction / readmission)
    # ------------------------------------------------------------------
    def evict(self, device_index: int, reason: str) -> None:
        """Remove a device from placement until a probe readmits it."""
        self.busy.discard(device_index)
        self.inflight_count[device_index] = 0
        self.unhealthy.add(device_index)
        obs.counter("fault.evictions").inc()
        obs.instant(
            "serve.device-evict", device=device_index, reason=reason
        )
        obs.record_transfer(
            "device-evict", "none", 0, moved=False, label=reason
        )

    def probe(self, device_index: int, now: float) -> bool:
        """Health-check an evicted device; readmit it once its timeline
        has drained (the hang played out).  Returns True on readmission."""
        if device_index not in self.unhealthy:
            return False
        if self.timelines[device_index].device_busy_until > now:
            return False
        self.unhealthy.discard(device_index)
        obs.counter("fault.readmissions").inc()
        obs.instant("serve.device-readmit", device=device_index)
        return True

    def abandon(self, sub: SubBatch) -> None:
        """Release a timed-out sub-batch's device buffer and mark it a
        zombie: its completion event is still owed by the timeline, but
        nothing will be fetched from it."""
        if sub.result_ptr is not None:
            self.group.devices[sub.device_index].free(sub.result_ptr)
            sub.result_ptr = None
        sub.zombie = True

    @property
    def makespan_s(self) -> float:
        """Modelled time until every device in the group is idle."""
        return self.group.makespan_s

    # ------------------------------------------------------------------
    # cost model: perf model for sim devices, EWMA-corrected for native
    # ------------------------------------------------------------------
    def _ewma(self, device_index: int):
        model = self._native_cost.get(device_index)
        if model is None:
            from repro.backend.native import EwmaCost

            model = self._native_cost[device_index] = EwmaCost()
        return model

    def predict_kernel_s(
        self, device_index: int, sessions: "list[Session]", engine: StepEngine
    ) -> float:
        """Predicted kernel seconds for a sub-batch on one device.

        Sim devices answer with the analytic perf model — which is
        exactly their virtual clock, so the prediction is the truth.
        Native devices scale the model by an online EWMA of the ratio
        measured/modelled wall-clock kernel time, seeded at 1.0 (pure
        perf model) until the first measurement arrives.
        """
        modelled = engine.batch_kernel_seconds(sessions)
        if self.backend_kinds[device_index] != "native":
            return modelled
        return self._ewma(device_index).predict(modelled)

    def observe_native_cost(
        self, device_index: int, modelled_s: float, measured_s: float
    ) -> None:
        """Feed one measured native kernel time into the EWMA."""
        if self.backend_kinds[device_index] == "native":
            self._ewma(device_index).observe(modelled_s, measured_s)

    def _cost_scale(self, device_index: int) -> float:
        """Predicted seconds per modelled second for one device."""
        if self.backend_kinds[device_index] != "native":
            return 1.0
        return max(self._ewma(device_index).ratio, 1e-12)

    def _cold_bounds(
        self, free: "list[int]", total: int, engine: "StepEngine | None"
    ) -> "list[tuple[int, int]]":
        """Contiguous split of ``total`` cold requests over ``free``.

        Homogeneous groups keep the near-even ``chunk_bounds`` split —
        the exact historical behaviour.  Heterogeneous groups weight
        each device by predicted speed (1 / cost scale), rounding by
        largest remainder so every request lands somewhere.
        """
        if not self.heterogeneous or engine is None:
            return DeviceGroup.chunk_bounds(_BoundsProxy(len(free)), total)
        weights = [1.0 / self._cost_scale(i) for i in free]
        wsum = sum(weights)
        raw = [total * w / wsum for w in weights]
        counts = [int(r) for r in raw]
        leftover = total - sum(counts)
        by_remainder = sorted(
            range(len(free)), key=lambda k: raw[k] - counts[k], reverse=True
        )
        for k in by_remainder[:leftover]:
            counts[k] += 1
        bounds, start = [], 0
        for c in counts:
            bounds.append((start, start + c))
            start += c
        return bounds

    # ------------------------------------------------------------------
    def place(
        self,
        batch: Batch,
        store,
        free: "list[int]",
        engine: "StepEngine | None" = None,
    ) -> "list[SubBatch]":
        """Split a batch into per-device sub-batches.

        Warm sessions pin their requests to their resident device when
        it is free; everything else is spread over the free devices —
        near-evenly on homogeneous groups, cost-aware (weighted by each
        backend's predicted speed) on heterogeneous ones.  ``free`` must
        be non-empty.
        """
        if not free:
            raise CuppUsageError("place() needs at least one free device")
        free_set = set(free)
        per_device: "dict[int, SubBatch]" = {}

        def sub(device_index: int) -> SubBatch:
            if device_index not in per_device:
                per_device[device_index] = SubBatch(device_index)
            return per_device[device_index]

        cold: "list[tuple[StepRequest, Session]]" = []
        for request in batch.requests:
            session = store.get(request.session_id)
            if session.resident_on in free_set:
                entry = sub(session.resident_on)
                entry.requests.append(request)
                entry.sessions.append(session)
            else:
                cold.append((request, session))

        if cold:
            # The MultiKernel scatter split, applied to requests: a
            # contiguous partition over the free devices (near-even, or
            # speed-weighted when the group mixes backend kinds).
            bounds = self._cold_bounds(free, len(cold), engine)
            for device_index, (start, stop) in zip(free, bounds):
                for request, session in cold[start:stop]:
                    entry = sub(device_index)
                    entry.requests.append(request)
                    entry.sessions.append(session)
        for entry in per_device.values():
            self.placed_requests[entry.device_index] += len(entry.requests)
        return list(per_device.values())

    # ------------------------------------------------------------------
    def launch(
        self, sub: SubBatch, engine: StepEngine, now: float
    ) -> float:
        """Play one sub-batch's upload + kernels on its device timeline.

        Returns the modelled completion time of the kernels.  The result
        fetch is *not* done here — it happens at completion, via
        :meth:`finish` — so the host is free to drive other devices
        while this one computes.
        """
        tl = self.timelines[sub.device_index]
        tl.host_time = max(tl.host_time, now)
        device = self.group.devices[sub.device_index]

        # Host-side batch assembly (request handling, argument marshal).
        tl.host_work(
            self.host_dispatch_s + self.host_per_request_s * len(sub.requests)
        )

        # Fault consult: one draw per sub-batch launch.  A transient
        # launch failure aborts here, before any state moved, so the
        # service can retry the requests cleanly; a hang proceeds like a
        # normal launch but wedges the device for the configured latency
        # (only the watchdog timeout will notice).
        hang_s = 0.0
        if self.injector is not None:
            fault = self.injector.draw("launch", device_index=sub.device_index)
            if fault == "launch-fail":
                raise InjectedFault("launch-fail", sub.device_index)
            if fault == "hang":
                hang_s = self.injector.config.hang_latency_s
                sub.hung = True

        # Fused upload of cold session state: one Vector.concat + one
        # modelled h2d memcpy instead of one per session.
        cold = [s for s in sub.sessions if s.resident_on != sub.device_index]
        allocated: "list" = []
        try:
            if cold:
                for session in cold:
                    session.refresh_state_vector()
                    # Real device residency for the session state: drop the
                    # stale block on the old device (a migration), allocate
                    # on this one.  Warm sessions keep their block, so the
                    # steady state performs no allocations here at all.
                    if session.state_ptr is not None:
                        self.group.devices[session.resident_on].free(
                            session.state_ptr
                        )
                        session.state_ptr = None
                    session.state_ptr = device.alloc(session.state_bytes)
                    allocated.append(session)
                fused = Vector.concat([s.state for s in cold])
                nbytes = len(fused) * fused.dtype.itemsize
                # Transient staging buffer backing the fused upload.
                staging = device.alloc(nbytes)
                if self.streams > 1:
                    # Async upload on the copy stream; the compute
                    # stream is gated on it by an event so the kernels
                    # start at the upload's completion instead of the
                    # host stalling for the whole device to drain.
                    copy = self._copy_streams[sub.device_index]
                    op = tl.stream_memcpy(copy, nbytes)
                    obs.record_transfer(
                        "batch-concat",
                        "h2d",
                        nbytes,
                        label="serve.session-upload",
                    )
                    uploaded = tl.create_event()
                    tl.record_event(uploaded, copy)
                    tl.stream_wait_event(
                        self._compute_streams[sub.device_index], uploaded
                    )
                    tl.destroy_event(uploaded)
                    obs.record_transfer(
                        "stream-wait",
                        "none",
                        0,
                        moved=False,
                        label="serve.kernels<-upload",
                    )
                    if self.flight is not None:
                        self.flight.device_event(
                            sub.device_index, "transfer",
                            op.start_s, op.end_s,
                            label="h2d", stream=op.stream_id,
                        )
                else:
                    tl.memcpy(nbytes)
                    obs.record_transfer(
                        "batch-concat", "h2d", nbytes,
                        label="serve.session-upload",
                    )
                    if self.flight is not None:
                        # Only the bus-active portion of the memcpy (the
                        # implicit synchronize wait is device-busy time,
                        # already painted by the kernel track).
                        self.flight.device_event(
                            sub.device_index, "transfer",
                            tl.host_time - tl.pcie.transfer_time(nbytes),
                            tl.host_time, label="h2d",
                        )
                device.free(staging)
                for session in cold:
                    session.resident_on = sub.device_index
            else:
                obs.instant(
                    "serve.lazy-hit",
                    device=device.name,
                    sessions=len(sub.sessions),
                )

            # Device buffer the kernels write the fused draw matrices into;
            # freed by finish() once the results are fetched.
            sub.result_ptr = device.alloc(engine.result_bytes(sub.sessions))
        except CuppMemoryError as exc:
            # Allocation failed (a spurious OOM the pool's flush-and-retry
            # could not absorb, or genuine exhaustion).  Unwind this
            # launch's uploads so the touched sessions are simply cold
            # again, then surface it as a transient launch fault.
            for session in allocated:
                if session.state_ptr is not None:
                    device.free(session.state_ptr)
                    session.state_ptr = None
                session.resident_on = None
            raise InjectedFault("oom", sub.device_index) from exc

        # The fused v5 kernels: asynchronous launches, additive cost.
        # Sim devices advance their virtual clock by the perf model;
        # native devices by the EWMA-corrected wall-clock prediction.
        kernel_s = self.predict_kernel_s(sub.device_index, sub.sessions, engine)
        prof = prof_hook.active()
        if prof is not None:
            # The serve plane plays modelled costs on timelines instead
            # of executing kernels, so the profiler gets the closed-form
            # cost rows of each session's kernels on this device.
            arch = self.group.devices[sub.device_index].sim.arch
            kind = self.backend_kinds[sub.device_index]
            for session in sub.sessions:
                for kname, inputs, secs in engine.kernel_cost_rows(session.n):
                    prof.record_modelled(
                        kname, kind, inputs, arch=arch, modelled_s=secs
                    )
        if self.streams > 1:
            compute = self._compute_streams[sub.device_index]
            for _ in range(LAUNCHES_PER_BATCH - 1):
                tl.stream_launch(compute, 0.0)  # launch cost only
            op = tl.stream_launch(compute, kernel_s + hang_s)
            obs.counter("repro.serve.launches").inc(LAUNCHES_PER_BATCH)
            self.busy.add(sub.device_index)
            self.inflight_count[sub.device_index] += 1
            sub.completion_s = op.end_s
            sub.expected_completion_s = op.end_s - hang_s
            if self.flight is not None:
                self.flight.device_event(
                    sub.device_index, "busy", op.start_s,
                    op.start_s + kernel_s,
                    label="step-kernels", stream=op.stream_id,
                )
                if hang_s > 0.0:
                    self.flight.device_event(
                        sub.device_index, "wedged", op.start_s + kernel_s,
                        op.end_s, label="injected-hang", stream=op.stream_id,
                    )
            return sub.completion_s

        for _ in range(LAUNCHES_PER_BATCH - 1):
            tl.launch_kernel(0.0)  # simulate/modify boundary: launch cost only
        tl.launch_kernel(kernel_s + hang_s)
        obs.counter("repro.serve.launches").inc(LAUNCHES_PER_BATCH)

        self.busy.add(sub.device_index)
        self.inflight_count[sub.device_index] = 1
        sub.completion_s = tl.device_busy_until
        sub.expected_completion_s = sub.completion_s - hang_s
        if self.flight is not None:
            # The kernel occupies [start, start+kernel_s]; an injected
            # hang extends the device occupancy but is *wedged* time,
            # painted separately so the gantt shows the stall.
            start = sub.completion_s - kernel_s - hang_s
            self.flight.device_event(
                sub.device_index, "busy", start, start + kernel_s,
                label="step-kernels",
            )
            if hang_s > 0.0:
                self.flight.device_event(
                    sub.device_index, "wedged", start + kernel_s,
                    sub.completion_s, label="injected-hang",
                )
        return sub.completion_s

    def finish(self, sub: SubBatch, engine: StepEngine, now: float) -> float:
        """Fetch a completed sub-batch's results; returns the host time.

        One fused d2h memcpy for the whole sub-batch (``batch-split``),
        then the per-request host-side slicing cost.
        """
        tl = self.timelines[sub.device_index]
        tl.host_time = max(tl.host_time, now)
        nbytes = engine.result_bytes(sub.sessions)
        if self.streams > 1:
            # Deferred async fetch: the d2h rides the copy stream, which
            # waits only on the copy engine (and this host call — the
            # kernels finished at completion_s <= now), never on the
            # device's *other* in-flight sub-batch's kernels.  The host
            # then blocks on the stream: it needs the payload to demux.
            copy = self._copy_streams[sub.device_index]
            op = tl.stream_memcpy(copy, nbytes)
            tl.stream_synchronize(copy)
            obs.record_transfer(
                "batch-split", "d2h", nbytes, label="serve.draw-matrices"
            )
            if self.flight is not None:
                self.flight.device_event(
                    sub.device_index, "transfer", op.start_s, op.end_s,
                    label="d2h", stream=op.stream_id,
                )
        else:
            tl.memcpy(nbytes)
            obs.record_transfer(
                "batch-split", "d2h", nbytes, label="serve.draw-matrices"
            )
            if self.flight is not None:
                self.flight.device_event(
                    sub.device_index, "transfer",
                    tl.host_time - tl.pcie.transfer_time(nbytes),
                    tl.host_time, label="d2h",
                )
        # Fault consult: one draw per result fetch.  A corrupt fetch
        # still paid for the bytes (charged above), but the payload is
        # garbage — discard it, release the device, and let the service
        # roll the sessions back and retry the requests.
        if self.injector is not None:
            fault = self.injector.draw(
                "transfer", device_index=sub.device_index, nbytes=nbytes
            )
            if fault == "transfer-corrupt":
                if sub.result_ptr is not None:
                    self.group.devices[sub.device_index].free(sub.result_ptr)
                    sub.result_ptr = None
                self._release_device(sub.device_index)
                sub.corrupt = True
                return tl.host_time
        if sub.result_ptr is not None:
            self.group.devices[sub.device_index].free(sub.result_ptr)
            sub.result_ptr = None
        tl.host_work(self.host_per_request_s * len(sub.requests))
        self._release_device(sub.device_index)
        return tl.host_time

    def _release_device(self, device_index: int) -> None:
        """One sub-batch left ``device_index``; clear ``busy`` once the
        pipeline is empty."""
        if self.inflight_count[device_index] > 0:
            self.inflight_count[device_index] -= 1
        if self.inflight_count[device_index] == 0:
            self.busy.discard(device_index)


class _BoundsProxy:
    """Duck-typed stand-in so ``DeviceGroup.chunk_bounds`` (which only
    reads ``len(self.devices)``) can split over the *free* subset of a
    group without constructing a second group."""

    def __init__(self, count: int) -> None:
        self.devices = [None] * count
