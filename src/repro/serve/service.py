"""The serving front door: a virtual-time discrete-event service.

:class:`SimulationService` glues the pipeline together — session store,
admission controller, dynamic batcher, device scheduler — and runs it as
a deterministic discrete-event simulation on the same virtual clock the
:class:`~repro.simgpu.transfer.DeviceTimeline` model uses everywhere
else in this repo.  There are no threads and no wall-clock reads: a
driver (the load generator, a test, the demo) injects arrivals with
:meth:`SimulationService.submit` and turns the crank with
:meth:`advance`/:meth:`drain`.  Identical inputs give identical
latencies, byte counts, and launch totals, run to run.

Two event types exist:

* **launch-ready** — the batcher's window/size rule says a batch should
  form *and* a device is free to take it;
* **sub-batch completion** — a device's kernels finish; its results are
  fetched, demultiplexed, and the sessions become schedulable again.

The host is one thread, as in the paper: dispatch work (batch assembly,
launches, memcpys) serializes on the global clock, while kernels run
asynchronously per device — so the service overlaps one device's
compute with the next batch's assembly exactly the way §2.2's async
launch semantics allow.

Device affinity keeps lazy reuse honest: a warm session's requests are
only batched when its resident device is free, so an admitted session
uploads its state **once** and every later step is a modelled lazy hit.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.bench.calibration import Calibration, DEFAULT_CALIBRATION
from repro.cupp.exceptions import CuppUsageError
from repro.cupp.vector import Vector
from repro.fault import FaultConfig, FaultInjector, InjectedFault
from repro.serve.admission import AdmissionController
from repro.serve.batcher import DynamicBatcher
from repro.serve.engine import StepEngine
from repro.serve.request import RequestStatus, StepRequest
from repro.serve.scheduler import DeviceScheduler, SubBatch, make_group
from repro.serve.sessions import Session, SessionStore
from repro.steer.params import BoidsParams, DEFAULT_PARAMS

#: Tolerance when comparing virtual timestamps (they are sums of many
#: small floats; exact equality would drop simultaneous events).
_EPS = 1e-12


@dataclass
class RetryPolicy:
    """How the service recovers from injected/device faults.

    Requests whose launch (or result fetch) hits a fault are re-offered
    to admission after an exponential backoff, up to ``max_attempts``
    total launches; exhausting the budget fails the request
    (:attr:`~repro.serve.request.RequestStatus.FAILED`).  Sub-batches
    carry a watchdog deadline of their *predicted* kernel time plus
    ``batch_timeout_s`` of slack: missing it (an injected hang
    overshoots by ~``hang_latency_s``; healthy work never does) evicts
    the device and fails its sessions over.  Evicted devices are
    health-probed every ``probe_interval_s`` and readmitted once their
    timeline drains.
    """

    max_attempts: int = 3
    backoff_s: float = 0.5e-3
    backoff_multiplier: float = 2.0
    batch_timeout_s: float = 2e-3
    probe_interval_s: float = 5e-3

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CuppUsageError(
                f"max_attempts must be at least 1, got {self.max_attempts}"
            )
        if self.backoff_s < 0 or self.batch_timeout_s <= 0:
            raise CuppUsageError("backoff/timeout must be non-negative")

    def backoff_for(self, attempts: int) -> float:
        """Backoff before re-admitting a request on its Nth failure."""
        return self.backoff_s * self.backoff_multiplier ** max(
            0, attempts - 1
        )


@dataclass
class ServeConfig:
    """Tunables of one service instance (defaults match the loadgen)."""

    #: Agents per session when ``create_session`` is not given a size.
    agents_per_session: int = 128
    #: Batching window/size rule (see :class:`DynamicBatcher`).
    max_batch: int = 32
    window_s: float = 2e-3
    batching: bool = True
    #: Admission control (see :class:`AdmissionController`).
    queue_capacity: int = 256
    policy: str = "reject"
    #: Default absolute deadline offset applied to submitted requests
    #: (``None`` disables deadlines unless a request carries its own).
    default_deadline_s: "float | None" = None
    #: Devices in the serving group.
    devices: int = 2
    #: CUDA streams per device.  The default (2: one copy + one compute
    #: stream) pipelines staging uploads, kernels, and deferred result
    #: fetches with depth 2 per device; ``streams=1`` restores the
    #: legacy null-stream scheduler byte-for-byte (every launch/memcpy
    #: serializes on ``device_busy_until``).
    streams: int = 2
    #: Execution backend per device: ``"sim"``, ``"native"``, ``"mixed"``
    #: (alternating), or an explicit per-device list of kinds.
    backend: "str | list[str]" = "sim"
    #: Route device allocations through the :mod:`repro.mem` caching
    #: pool (the serving layer's default; ``--no-pool`` in the loadgen).
    pool: bool = True
    #: Run real boids physics (demos/tests) or frozen synthetic state
    #: (load generation — modelled costs are identical either way).
    physics: bool = True
    #: Host-side cost of assembling + dispatching one batch, and the
    #: per-request marshalling increment on top of it.
    host_dispatch_s: float = 50e-6
    host_per_request_s: float = 2e-6
    params: BoidsParams = DEFAULT_PARAMS
    calib: Calibration = DEFAULT_CALIBRATION
    version: int = 5
    #: Fault injection (chaos mode).  ``None`` keeps every fault path
    #: inert — fault-free runs are byte-identical to pre-chaos builds.
    faults: "FaultConfig | None" = None
    #: Recovery behaviour when faults are enabled.
    retry: RetryPolicy = field(default_factory=RetryPolicy)


@dataclass
class ServiceStats:
    """Run counters the load generator reports from directly."""

    submitted: int = 0
    completed: int = 0
    batches: int = 0
    launches: int = 0
    agents_stepped: int = 0
    batch_sizes: "list[int]" = field(default_factory=list)
    #: Resilience counters (all zero on fault-free runs).
    retries: int = 0
    failed: int = 0
    timeouts: int = 0
    evictions: int = 0
    failovers: int = 0

    @property
    def mean_batch_size(self) -> float:
        """Average requests per formed batch (0 when none formed)."""
        if not self.batch_sizes:
            return 0.0
        return sum(self.batch_sizes) / len(self.batch_sizes)


class SimulationService:
    """Multi-tenant boids serving on a simulated multi-GPU host."""

    def __init__(self, config: "ServeConfig | None" = None) -> None:
        self.config = config or ServeConfig()
        cfg = self.config
        self.store = SessionStore()
        self.admission = AdmissionController(cfg.queue_capacity, cfg.policy)
        self.batcher = DynamicBatcher(
            cfg.max_batch, cfg.window_s, enabled=cfg.batching
        )
        self.engine = StepEngine(cfg.params, cfg.calib, cfg.version)
        self.group = make_group(cfg.devices, pool=cfg.pool, backend=cfg.backend)
        self.scheduler = DeviceScheduler(
            self.group,
            calib=cfg.calib,
            host_dispatch_s=cfg.host_dispatch_s,
            host_per_request_s=cfg.host_per_request_s,
            streams=cfg.streams,
        )
        #: The service's virtual clock (seconds).
        self.now = 0.0
        self.stats = ServiceStats()
        self._in_flight: "list[SubBatch]" = []
        self._busy_sessions: "set[str]" = set()
        self._next_request_id = 0
        self._latency_us = obs.request_latency_histogram("serve")
        #: Optional live SLO monitor (see :meth:`attach_monitor`).
        self.monitor = None
        #: Optional flight recorder (see :meth:`attach_flight`).  None
        #: by default: every flight hook below is guarded, so recording
        #: off costs nothing and perturbs nothing.
        self.flight = None
        self._degrade_policy: "str | None" = None
        self._normal_policy: "str | None" = None
        self._normal_window: "float | None" = None
        #: Chaos wiring: one injector shared by the scheduler's consult
        #: sites and every simulated device's runtime hooks.
        self.injector: "FaultInjector | None" = None
        if cfg.faults is not None and cfg.faults.any_enabled:
            self.injector = FaultInjector(cfg.faults)
            self.injector.listener = self._on_fault_injected
            self.scheduler.injector = self.injector
            for device in self.group.devices:
                device.sim.fault_injector = self.injector
        self.retry = cfg.retry
        #: Requests parked for backoff: ``(wake_s, seq, request)``.
        self._retry_parked: "list[tuple[float, int, StepRequest]]" = []
        self._retry_seq = 0
        #: Timed-out sub-batches whose (late) completion is still owed
        #: by their device timeline; reaped without touching sessions.
        self._zombies: "list[SubBatch]" = []
        self._next_probe_s: "float | None" = None

    # ------------------------------------------------------------------
    # client API
    # ------------------------------------------------------------------
    def create_session(
        self,
        session_id: str,
        n: "int | None" = None,
        seed: "int | None" = None,
    ) -> Session:
        """Register a tenant flock (``n`` defaults from the config)."""
        return self.store.create(
            session_id,
            self.config.agents_per_session if n is None else n,
            params=self.config.params,
            seed=seed,
            physics=self.config.physics,
        )

    # ------------------------------------------------------------------
    # live SLO monitoring
    # ------------------------------------------------------------------
    def attach_monitor(
        self, monitor, degrade_policy: "str | None" = None
    ) -> None:
        """Evaluate ``monitor`` (an :class:`repro.obs.monitor.SloMonitor`)
        live, on the service's virtual clock.

        The service feeds the monitor the canonical series — completed
        request latency (µs) into ``repro.request.latency``, a 0/1
        failure indicator per terminal request into
        ``repro.request.outcome``, and the admission queue depth into
        ``repro.queue.depth`` — and evaluates it after every event.

        ``degrade_policy`` makes admission *react* to alerts: while any
        alert is firing the admission policy switches to it (e.g.
        ``"shed-oldest"`` sheds the stalest queued work instead of
        rejecting fresh arrivals), and the original policy is restored
        when the last alert clears.  Both transitions land in the trace
        as ``serve.slo-fire``/``serve.slo-clear`` instants.
        """
        from repro.serve.admission import POLICIES

        if degrade_policy is not None and degrade_policy not in POLICIES:
            raise CuppUsageError(
                f"unknown degrade policy {degrade_policy!r}; one of {POLICIES}"
            )
        self.monitor = monitor
        self._degrade_policy = degrade_policy
        self.admission.outcome_listener = self._on_admission_outcome
        monitor.on_fire(self._on_alert_fire)
        monitor.on_clear(self._on_alert_clear)

    # ------------------------------------------------------------------
    # flight tracing
    # ------------------------------------------------------------------
    def attach_flight(self, recorder) -> None:
        """Record per-request causal flight traces into ``recorder``
        (an :class:`repro.obs.flight.FlightRecorder`).

        Every subsequent :meth:`submit` mints a
        :class:`~repro.obs.flight.TraceContext` that rides on the
        request through admission, batching, scheduling, and every
        retry/failover hop; the scheduler additionally feeds the
        recorder's per-device utilization tracks.  The recorder's
        tail-sampling policy decides which finished traces survive.
        """
        self.flight = recorder
        self.scheduler.flight = recorder
        self.admission.outcome_listener = self._on_admission_outcome

    def _on_admission_outcome(
        self, request: StepRequest, outcome: str, now: float
    ) -> None:
        """Admission callback: terminal failures feed the outcome
        series, and the flight trace gains its admission-side spans."""
        if self.monitor is not None and outcome in ("rejected", "shed", "expired"):
            self.monitor.observe("repro.request.outcome", now, 1.0)
        fl = self.flight
        ctx = request.ctx
        if fl is None or ctx is None:
            return
        # drain() sweeps stragglers with drop_expired(inf); clamp so the
        # trace carries the service clock, not a literal infinity.
        t = self.now if now == float("inf") else now
        if outcome == "admitted":
            if ctx.queue is not None and ctx.queue.end_s is None:
                # A blocked (or shed-path) request finally got a slot:
                # the open queue span absorbs the blocked wait.
                ctx.queue.attrs["admitted_s"] = t
            else:
                fl.end(fl.start(ctx, "admit", t, parent=ctx.root), t)
                ctx.queue = fl.start(ctx, "queue", t, parent=ctx.root)
        elif outcome == "blocked":
            ctx.queue = fl.start(ctx, "queue", t, parent=ctx.root, blocked=True)
        elif outcome in ("rejected", "shed", "expired"):
            where = "submit" if request.admit_s is None else "dequeue"
            if ctx.queue is not None and ctx.queue.end_s is None:
                fl.end(ctx.queue, t, outcome=outcome)
            if outcome == "expired":
                ctx.flags.add("deadline-miss")
            if ctx.root is not None and ctx.root.end_s is None:
                fl.end(ctx.root, t, outcome=outcome, where=where)
            fl.finish(ctx, t)

    def _on_alert_fire(self, alert) -> None:
        obs.instant(
            "serve.slo-fire",
            rule=alert.rule,
            value=alert.value,
            threshold=alert.threshold,
        )
        if self._degrade_policy is not None and self._normal_policy is None:
            self._normal_policy = self.admission.policy
            self.admission.policy = self._degrade_policy
        # Under chaos, degradation also shrinks the batching window so
        # the service trades batch efficiency for latency while the
        # alert (e.g. a fault burst) is live.
        if (
            self.injector is not None
            and self._degrade_policy is not None
            and self._normal_window is None
        ):
            self._normal_window = self.batcher.window_s
            self.batcher.window_s = self._normal_window * 0.25

    def _on_alert_clear(self, alert) -> None:
        obs.instant("serve.slo-clear", rule=alert.rule)
        if self._normal_policy is not None and not self.monitor.active:
            self.admission.policy = self._normal_policy
            self._normal_policy = None
        if self._normal_window is not None and not self.monitor.active:
            self.batcher.window_s = self._normal_window
            self._normal_window = None

    def _on_fault_injected(
        self, kind: str, point: str, device_index: "int | None"
    ) -> None:
        """Injector listener: every fired fault feeds the SLO monitor's
        fault series (rate rules alert on bursts)."""
        if self.monitor is not None:
            self.monitor.observe("repro.fault.events", self.now, 1.0)

    def _evaluate_monitor(self) -> None:
        if self.monitor is not None:
            self.monitor.evaluate(self.now)

    def submit(
        self,
        session_id: str,
        want_draw: bool = False,
        deadline_s: "float | None" = None,
    ) -> StepRequest:
        """Offer one step request at the current virtual time.

        The request goes through admission immediately; launching waits
        for :meth:`advance`/:meth:`drain` to move the clock.  The
        returned request object is live — its status and timestamps
        update as it moves through the pipeline.
        """
        if session_id not in self.store:
            raise CuppUsageError(f"unknown session {session_id!r}")
        if deadline_s is None and self.config.default_deadline_s is not None:
            deadline_s = self.now + self.config.default_deadline_s
        request = StepRequest(
            session_id=session_id,
            arrival_s=self.now,
            deadline_s=deadline_s,
            want_draw=want_draw,
        )
        request.request_id = self._next_request_id
        self._next_request_id += 1
        self.stats.submitted += 1
        if self.flight is not None:
            ctx = self.flight.mint()
            request.ctx = ctx
            ctx.root = self.flight.start(
                ctx,
                "request",
                self.now,
                request=request.request_id,
                session=session_id,
            )
        self.admission.submit(request, self.now)
        if self.monitor is not None:
            self.monitor.observe(
                "repro.queue.depth",
                self.now,
                self.admission.depth,
                getattr(request.ctx, "trace_id", None),
            )
            self._evaluate_monitor()
        return request

    # ------------------------------------------------------------------
    # the event loop
    # ------------------------------------------------------------------
    def _placeable(self, free_set: "set[int]"):
        """Device-affinity predicate for the batcher: cold sessions can
        go anywhere free; warm sessions need their resident device."""

        def ok(request: StepRequest) -> bool:
            session = self.store.get(request.session_id)
            return session.resident_on is None or session.resident_on in free_set

        return ok

    def _next_event_time(self) -> "float | None":
        """Earliest pending event, or ``None`` when the service is idle."""
        times = []
        for sub in self._in_flight:
            t = sub.completion_s
            if sub.timeout_s is not None:
                t = min(t, sub.timeout_s)
            times.append(t)
        times.extend(sub.completion_s for sub in self._zombies)
        if self._retry_parked:
            times.append(min(wake for wake, _, _ in self._retry_parked))
        if self.scheduler.unhealthy and self._next_probe_s is not None:
            times.append(self._next_probe_s)
        free = self.scheduler.free_devices()
        if free:
            ready = self.batcher.ready_time(
                self.admission.queue,
                self._busy_sessions,
                self.now,
                placeable=self._placeable(set(free)),
            )
            if ready is not None:
                times.append(ready)
        return min(times) if times else None

    def advance(self, until: float) -> None:
        """Process every event up to virtual time ``until``."""
        while True:
            t = self._next_event_time()
            if t is None or t > until + _EPS:
                break
            self._run_event(t)
        self.now = max(self.now, until)

    def drain(self) -> None:
        """Run the clock until no queued, blocked, or in-flight work is
        left (every surviving request reaches a terminal status)."""
        while True:
            t = self._next_event_time()
            if t is None:
                if self.admission.pending and not self._in_flight:
                    # Only unplaceable/blocked work remains with no event
                    # to free it — expire what has deadlines, drop ties.
                    self.admission.drop_expired(float("inf"))
                    self.admission.on_slots_freed(self.now)
                    if self._next_event_time() is None:
                        break
                    continue
                break
            self._run_event(t)

    def _run_event(self, t: float) -> None:
        """Advance to ``t``; complete finished work, then launch ready work."""
        self.now = max(self.now, t)
        self._mature_retries()
        self._probe_devices()
        for sub in [
            s for s in self._in_flight if s.completion_s <= self.now + _EPS
        ]:
            self._complete(sub)
        # Watchdog: sub-batches whose completion has not arrived by
        # their deadline (an injected hang) lose their device.
        for sub in [
            s
            for s in self._in_flight
            if s.timeout_s is not None and s.timeout_s <= self.now + _EPS
        ]:
            self._timeout_sub(sub)
        for sub in [
            s for s in self._zombies if s.completion_s <= self.now + _EPS
        ]:
            self._reap_zombie(sub)
        self.admission.drop_expired(self.now)
        self._launch_ready()
        self._evaluate_monitor()

    # ------------------------------------------------------------------
    # fault recovery (all no-ops on fault-free runs)
    # ------------------------------------------------------------------
    def _mature_retries(self) -> None:
        """Re-admit parked retries whose backoff has elapsed."""
        if not self._retry_parked:
            return
        due = sorted(
            e for e in self._retry_parked if e[0] <= self.now + _EPS
        )
        if not due:
            return
        self._retry_parked = [
            e for e in self._retry_parked if e[0] > self.now + _EPS
        ]
        for _, _, request in due:
            self.admission.submit(request, self.now)
            if self.monitor is not None:
                self.monitor.observe(
                    "repro.queue.depth", self.now, self.admission.depth
                )

    def _schedule_probe(self) -> None:
        nxt = self.now + self.retry.probe_interval_s
        if self._next_probe_s is None or nxt < self._next_probe_s:
            self._next_probe_s = nxt

    def _probe_devices(self) -> None:
        """Health-probe evicted devices; readmit the drained ones."""
        if self._next_probe_s is None or self._next_probe_s > self.now + _EPS:
            return
        for index in sorted(self.scheduler.unhealthy):
            self.scheduler.probe(index, self.now)
        self._next_probe_s = (
            self.now + self.retry.probe_interval_s
            if self.scheduler.unhealthy
            else None
        )

    def _restore_session(self, session: Session, reason: str) -> None:
        """Fail one session over to the host: roll its state back to the
        last checkpoint and drop its device residency, so its next
        launch re-uploads last-known-good state to a healthy device."""
        if session.state_ptr is not None and session.resident_on is not None:
            self.group.devices[session.resident_on].free(session.state_ptr)
        session.state_ptr = None
        session.resident_on = None
        session.restore_checkpoint()
        self.stats.failovers += 1
        obs.counter("fault.failovers").inc()
        obs.instant(
            "serve.failover", session=session.session_id, reason=reason
        )
        obs.record_transfer(
            "failover-restore",
            "none",
            session.state_bytes,
            moved=False,
            label=reason,
        )

    def _fault_requeue(self, requests: "list[StepRequest]", reason: str) -> None:
        """Route faulted requests: park for retry, or fail them out."""
        # Timeouts and corrupt fetches roll sessions back and drop
        # residency (_restore_session): the next attempt is a failover
        # hop.  Launch-stage faults never moved state: a plain retry.
        failover = reason in ("batch-timeout", "result-corrupt")
        for request in requests:
            request.attempts += 1
            request.launch_s = None
            request.device_index = None
            request.batch_id = None
            if request.attempts >= self.retry.max_attempts:
                request.status = RequestStatus.FAILED
                self.stats.failed += 1
                obs.counter("repro.serve.requests", outcome="failed").inc()
                obs.request_outcome_counter("serve", "failed").inc()
                obs.instant(
                    "serve.request-failed",
                    request=request.request_id,
                    reason=reason,
                    attempts=request.attempts,
                )
                if self.monitor is not None:
                    self.monitor.observe(
                        "repro.request.outcome", self.now, 1.0
                    )
            else:
                request.status = RequestStatus.PENDING
                wake = self.now + self.retry.backoff_for(request.attempts)
                self._retry_parked.append((wake, self._retry_seq, request))
                self._retry_seq += 1
                self.stats.retries += 1
                obs.counter("fault.retries").inc()
                obs.record_transfer(
                    "retry", "none", 0, moved=False, label=reason
                )
            fl = self.flight
            ctx = request.ctx
            if fl is not None and ctx is not None:
                if ctx.attempt is not None and ctx.attempt.end_s is None:
                    fl.end(ctx.attempt, self.now, outcome=reason)
                if ctx.attempt is not None:
                    ctx.prev_attempt = (
                        ctx.attempt.span_id,
                        "failover-of" if failover else "retry-of",
                    )
                ctx.flags.add("fault")
                if failover:
                    ctx.flags.add("failover")
                if request.status is RequestStatus.FAILED:
                    ctx.flags.add("failed")
                    if ctx.root is not None and ctx.root.end_s is None:
                        fl.end(
                            ctx.root, self.now, outcome="failed", reason=reason
                        )
                    fl.finish(ctx, self.now)

    def _timeout_sub(self, sub: SubBatch) -> None:
        """Watchdog expiry: abandon the sub-batch, evict its device, and
        fail every session resident there over to the host."""
        self.stats.timeouts += 1
        self.stats.evictions += 1
        obs.counter("fault.timeouts").inc()
        obs.instant(
            "serve.batch-timeout",
            device=sub.device_index,
            hung=sub.hung,
            requests=len(sub.requests),
        )
        self._in_flight.remove(sub)
        if self.flight is not None and sub.flight_span is not None:
            self.flight.end(sub.flight_span, self.now, outcome="batch-timeout")
        # Streams mode pipelines two sub-batches per device, so the
        # evicted device may hold a sibling whose kernels are queued
        # behind the wedge: it goes down with the device (abandoned and
        # requeued like the primary, but the eviction is counted once).
        siblings = [
            s for s in self._in_flight if s.device_index == sub.device_index
        ]
        for sib in siblings:
            self._in_flight.remove(sib)
            obs.instant(
                "serve.sibling-abandon",
                device=sib.device_index,
                requests=len(sib.requests),
            )
            if self.flight is not None and sib.flight_span is not None:
                self.flight.end(
                    sib.flight_span, self.now, outcome="batch-timeout"
                )
        self.scheduler.abandon(sub)
        for sib in siblings:
            self.scheduler.abandon(sib)
        self.scheduler.evict(sub.device_index, reason="batch-timeout")
        for doomed in (sub, *siblings):
            for request, session in zip(doomed.requests, doomed.sessions):
                session.in_flight = False
                self._busy_sessions.discard(session.session_id)
        # Every session resident on the dead device — in this sub or
        # idle — fails over (warm sessions pin to their device, so none
        # can be in flight elsewhere).
        for session in self.store:
            if session.resident_on == sub.device_index:
                self._restore_session(session, "batch-timeout")
        self._fault_requeue(sub.requests, "batch-timeout")
        for sib in siblings:
            self._fault_requeue(sib.requests, "batch-timeout")
        self._zombies.append(sub)
        self._zombies.extend(siblings)
        self._schedule_probe()
        self.admission.on_slots_freed(self.now)

    def _reap_zombie(self, sub: SubBatch) -> None:
        """A timed-out sub-batch's late completion: the device already
        played the work out on its timeline; nothing is fetched."""
        self._zombies.remove(sub)
        obs.instant(
            "serve.zombie-complete",
            device=sub.device_index,
            requests=len(sub.requests),
        )

    def _launch_ready(self) -> None:
        """Form and launch batches as long as the rule and devices allow."""
        while True:
            free = self.scheduler.free_devices()
            if not free:
                return
            placeable = self._placeable(set(free))
            ready = self.batcher.ready_time(
                self.admission.queue, self._busy_sessions, self.now, placeable
            )
            if ready is None or ready > self.now + _EPS:
                return
            batch = self.batcher.take(
                self.admission.queue, self._busy_sessions, self.now, placeable
            )
            self.admission.remove(batch.requests)
            self.admission.on_slots_freed(self.now)
            self.stats.batches += 1
            self.stats.batch_sizes.append(len(batch))
            with obs.span(
                "serve.batch", batch=batch.batch_id, size=len(batch)
            ):
                for sub in self.scheduler.place(
                    batch, self.store, free, engine=self.engine
                ):
                    fl = self.flight
                    if fl is not None:
                        sub.flight_span = fl.start_batch(
                            self.now,
                            batch=batch.batch_id,
                            device=sub.device_index,
                            size=len(sub.requests),
                        )
                    for request, session in zip(sub.requests, sub.sessions):
                        request.status = RequestStatus.IN_FLIGHT
                        request.launch_s = self.now
                        request.batch_id = batch.batch_id
                        request.device_index = sub.device_index
                        session.in_flight = True
                        self._busy_sessions.add(session.session_id)
                        ctx = request.ctx
                        if fl is not None and ctx is not None:
                            if ctx.queue is not None and ctx.queue.end_s is None:
                                fl.end(ctx.queue, self.now, outcome="launched")
                            attempt = fl.start(
                                ctx,
                                f"attempt-{request.attempts + 1}",
                                self.now,
                                parent=ctx.root,
                                device=sub.device_index,
                                batch=batch.batch_id,
                            )
                            if ctx.prev_attempt is not None:
                                prev_id, kind = ctx.prev_attempt
                                fl.link(attempt, ctx.trace_id, prev_id, kind)
                            # The cross-trace stitch: the fused launch
                            # knows every rider, every rider knows its
                            # fused launch.
                            fl.link(
                                attempt,
                                sub.flight_span.trace_id,
                                sub.flight_span.span_id,
                                "fused-launch",
                            )
                            fl.link(
                                sub.flight_span,
                                ctx.trace_id,
                                attempt.span_id,
                                "coalesced",
                            )
                            ctx.attempt = attempt
                    try:
                        self.scheduler.launch(sub, self.engine, self.now)
                    except InjectedFault as fault:
                        # Transient launch failure / unabsorbed OOM: the
                        # scheduler unwound the device state; release the
                        # sessions and send the requests to retry.
                        self.now = self.scheduler.timelines[
                            sub.device_index
                        ].host_time
                        for request, session in zip(
                            sub.requests, sub.sessions
                        ):
                            session.in_flight = False
                            self._busy_sessions.discard(session.session_id)
                        obs.instant(
                            "serve.launch-fault",
                            device=sub.device_index,
                            kind=fault.kind,
                        )
                        if fl is not None and sub.flight_span is not None:
                            fl.end(
                                sub.flight_span, self.now, outcome=fault.kind
                            )
                        self._fault_requeue(sub.requests, fault.kind)
                        continue
                    # The single host thread serializes dispatch work.
                    self.now = self.scheduler.timelines[
                        sub.device_index
                    ].host_time
                    if self.injector is not None:
                        # Watchdog: predicted completion plus slack — a
                        # hang overshoots this; nothing healthy does.
                        if self.scheduler.streams > 1:
                            # Streams mode: the schedule itself predicts
                            # the finish (queueing behind the device's
                            # other in-flight sub-batch included, any
                            # injected hang excluded).
                            sub.timeout_s = (
                                sub.expected_completion_s
                                + self.retry.batch_timeout_s
                            )
                        else:
                            # Legacy: launch time plus predicted kernel
                            # seconds (perf model on sim devices, EWMA
                            # on native).
                            predicted = self.scheduler.predict_kernel_s(
                                sub.device_index, sub.sessions, self.engine
                            )
                            sub.timeout_s = (
                                self.now
                                + predicted
                                + self.retry.batch_timeout_s
                            )
                    self.stats.launches += 2
                    self._in_flight.append(sub)

    def _complete(self, sub: SubBatch) -> None:
        """Fetch, demux, and retire one finished sub-batch."""
        finish_host = self.scheduler.finish(
            sub, self.engine, max(self.now, sub.completion_s)
        )
        self.now = max(self.now, finish_host)
        if sub.corrupt:
            # The fetch came back with an uncorrectable ECC error: the
            # step is void.  Roll every touched session back to its
            # checkpoint (the device copy is suspect too) and retry.
            self._in_flight.remove(sub)
            obs.counter("fault.corruptions").inc()
            obs.instant(
                "serve.result-corrupt",
                device=sub.device_index,
                requests=len(sub.requests),
            )
            if self.flight is not None and sub.flight_span is not None:
                self.flight.end(
                    sub.flight_span, self.now, outcome="result-corrupt"
                )
            for request, session in zip(sub.requests, sub.sessions):
                session.in_flight = False
                self._busy_sessions.discard(session.session_id)
                self._restore_session(session, "result-corrupt")
            self._fault_requeue(sub.requests, "result-corrupt")
            self.admission.on_slots_freed(self.now)
            return
        # On a native device with real physics the step *is* the kernel:
        # wall-clock it and feed the scheduler's online cost model.
        # (Without physics there is nothing to measure — native devices
        # then keep the perf-model-seeded estimate.)
        measure = (
            self.config.physics
            and self.scheduler.backend_kinds[sub.device_index] == "native"
        )
        started = _time.perf_counter() if measure else 0.0
        for session in sub.sessions:
            self.engine.advance(session)
            self.stats.agents_stepped += session.n
            if self.injector is not None:
                # Last-known-good snapshot for the failover path.
                session.checkpoint()
        if measure:
            self.scheduler.observe_native_cost(
                sub.device_index,
                self.engine.batch_kernel_seconds(sub.sessions),
                _time.perf_counter() - started,
            )
        self._demux_results(sub)
        fl = self.flight
        if fl is not None and sub.flight_span is not None:
            fl.end(sub.flight_span, self.now, outcome="done")
        for request, session in zip(sub.requests, sub.sessions):
            session.in_flight = False
            self._busy_sessions.discard(session.session_id)
            request.status = RequestStatus.DONE
            request.finish_s = self.now
            self.stats.completed += 1
            latency_us = max(1, int(request.latency_s * 1e6))
            trace_id = None
            ctx = request.ctx
            if fl is not None and ctx is not None:
                trace_id = ctx.trace_id
                if ctx.attempt is not None and ctx.attempt.end_s is None:
                    fl.end(ctx.attempt, self.now, outcome="done")
                if ctx.root is not None and ctx.root.end_s is None:
                    fl.end(
                        ctx.root, self.now,
                        outcome="done", latency_us=latency_us,
                    )
                fl.finish(ctx, self.now)
            self._latency_us.observe(latency_us, trace_id)
            obs.request_outcome_counter("serve", "done").inc()
            if self.monitor is not None:
                self.monitor.observe(
                    "repro.request.latency", self.now, latency_us, trace_id
                )
                self.monitor.observe("repro.request.outcome", self.now, 0.0)
        self._in_flight.remove(sub)
        self.admission.on_slots_freed(self.now)

    def _demux_results(self, sub: SubBatch) -> None:
        """Slice the fused draw-matrix vector back per request.

        Only materialized when some request asked for matrices — the
        modelled d2h bytes were already charged in
        :meth:`DeviceScheduler.finish` either way.
        """
        if not any(r.want_draw for r in sub.requests):
            return
        arrays = [
            s.draw_matrices().astype(np.float32).reshape(-1)
            for s in sub.sessions
        ]
        fused = Vector(np.concatenate(arrays), dtype=np.float32)
        offsets = np.cumsum([a.size for a in arrays])[:-1]
        parts = fused.split_at(*(int(o) for o in offsets))
        for request, session, part in zip(sub.requests, sub.sessions, parts):
            if request.want_draw:
                request.result = part.to_numpy().reshape(session.n, 4, 4)

    # ------------------------------------------------------------------
    @property
    def in_flight_batches(self) -> int:
        """Sub-batches currently executing on devices."""
        return len(self._in_flight)

    @property
    def fault_stats(self) -> "dict | None":
        """The injector's counters (``None`` on fault-free services)."""
        if self.injector is None:
            return None
        return self.injector.stats.to_dict()
