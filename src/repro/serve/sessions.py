"""Per-client session state: a flock, its ``cupp.Vector``, its residency.

Each tenant of the service owns a :class:`Session`: a functional
:class:`~repro.steer.simulation.Simulation` (the truth about where its
agents are) plus a flattened ``cupp.Vector`` of agent state — the thing
the batcher concatenates and the scheduler uploads.  The vector gives
sessions the paper's §4.6 lazy-copy behaviour across requests: after the
first upload the state *stays* on its device, later requests reuse it
(a modelled lazy hit), and only a device migration forces the bytes to
move again.

``physics=False`` turns a session into a timing-model-only tenant: the
flock state is frozen, steps only count, and every modelled cost (kernel
seconds, transfer bytes, launch overhead) is charged exactly as with
physics on.  The load generator uses this mode — SLO numbers live in
virtual time either way, so the reports are identical and the wall-clock
cost of driving tens of thousands of requests disappears.
"""

from __future__ import annotations

import numpy as np

from repro.cupp.exceptions import CuppUsageError
from repro.cupp.vector import Vector
from repro.steer.params import BoidsParams, DEFAULT_PARAMS
from repro.steer.simulation import Simulation

#: Floats of device-resident state per agent: position (3), forward (3),
#: speed (1) — the arrays the v5 kernels read and write in place.
STATE_FLOATS_PER_AGENT = 7


class Session:
    """One client's flock plus its serving-side bookkeeping."""

    def __init__(
        self,
        session_id: str,
        n: int,
        params: BoidsParams = DEFAULT_PARAMS,
        seed: "int | None" = None,
        physics: bool = True,
    ) -> None:
        if n <= 0:
            raise CuppUsageError(f"a session needs at least one agent, got {n}")
        self.session_id = session_id
        self.params = params
        self.physics = physics
        self.sim = Simulation(n, params, seed=seed)
        self.state = Vector(self._flat_state(), dtype=np.float32)
        #: Device (index within the serving group) holding this session's
        #: agent state, or None while the session is cold.
        self.resident_on: "int | None" = None
        #: The device block backing the resident state (allocated by the
        #: scheduler on first placement, reallocated on migration).
        self.state_ptr = None
        #: True while a batch containing this session is on a device —
        #: the batcher must not co-schedule a second step.
        self.in_flight = False
        self.steps_done = 0
        #: Host-side last-known-good snapshot (see :meth:`checkpoint`);
        #: the failover path restores from it when a device dies.
        self._ckpt: "tuple | None" = None
        self.checkpoints_taken = 0
        self.restores_done = 0
        self.checkpoint()

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Agents in this session's flock."""
        return self.sim.n

    @property
    def state_bytes(self) -> int:
        """Bytes of device-resident agent state."""
        return self.n * STATE_FLOATS_PER_AGENT * 4

    def _flat_state(self) -> np.ndarray:
        """Flatten the simulation state into the device layout."""
        return np.concatenate(
            [
                self.sim.positions.reshape(-1),
                self.sim.forwards.reshape(-1),
                self.sim.speeds.reshape(-1),
            ]
        ).astype(np.float32)

    def refresh_state_vector(self) -> None:
        """Rewrite the state vector from the simulation (host write).

        Needed before a cold upload or a migration: the vector's host
        copy must reflect the current flock.  With physics off the state
        never changes, so the initial contents stay authoritative.
        """
        if not self.physics:
            return
        self.state = Vector(self._flat_state(), dtype=np.float32)

    def step(self) -> None:
        """Advance the flock one frame (or just the counter, synthetic)."""
        if self.physics:
            self.sim.update()
        self.steps_done += 1

    # -- checkpoint / restore (the serve failover path) -----------------
    def checkpoint(self) -> None:
        """Snapshot the host-side state as last-known-good.

        The service takes one after every *completed* step (and one is
        taken at construction), so a restore always rolls back to the
        last step whose results actually reached the client.  Only the
        arrays the device mutates are copied; with physics off the
        state is frozen and the snapshot is just the step counter.
        """
        arrays = (
            (
                self.sim.positions.copy(),
                self.sim.forwards.copy(),
                self.sim.speeds.copy(),
            )
            if self.physics
            else None
        )
        self._ckpt = (self.steps_done, arrays)
        self.checkpoints_taken += 1

    def restore_checkpoint(self) -> None:
        """Roll the host state back to the last checkpoint.

        Used when a device dies (or a result fetch arrives corrupt)
        with this session's step unaccounted for: whatever the device
        did is discarded and the session resumes from its last
        completed step.  Residency bookkeeping (``resident_on``,
        ``state_ptr``) is the caller's to clean up — the session only
        owns its host truth.
        """
        steps_done, arrays = self._ckpt
        self.steps_done = steps_done
        if arrays is not None:
            positions, forwards, speeds = arrays
            self.sim.positions[:] = positions
            self.sim.forwards[:] = forwards
            self.sim.speeds[:] = speeds
        self.refresh_state_vector()
        self.restores_done += 1

    def draw_matrices(self) -> np.ndarray:
        """The frame's ``(n, 4, 4)`` draw matrices (§6.2.3 payload)."""
        if self.physics:
            return self.sim.draw_stage()
        mats = np.zeros((self.n, 4, 4))
        mats[:, 3, 3] = 1.0
        return mats


class SessionStore:
    """All live sessions, keyed by session id."""

    def __init__(self) -> None:
        self._sessions: "dict[str, Session]" = {}

    def create(
        self,
        session_id: str,
        n: int,
        params: BoidsParams = DEFAULT_PARAMS,
        seed: "int | None" = None,
        physics: bool = True,
    ) -> Session:
        """Register a new session; ids must be unique."""
        if session_id in self._sessions:
            raise CuppUsageError(f"session {session_id!r} already exists")
        session = Session(session_id, n, params, seed=seed, physics=physics)
        self._sessions[session_id] = session
        return session

    def get(self, session_id: str) -> Session:
        """Look up a session; raises for unknown ids."""
        try:
            return self._sessions[session_id]
        except KeyError:
            raise CuppUsageError(f"unknown session {session_id!r}") from None

    def remove(self, session_id: str) -> None:
        """Drop a session (its device residency is simply forgotten)."""
        self._sessions.pop(session_id, None)

    def __len__(self) -> int:
        return len(self._sessions)

    def __iter__(self):
        return iter(self._sessions.values())

    def __contains__(self, session_id: str) -> bool:
        return session_id in self._sessions
