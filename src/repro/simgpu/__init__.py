"""A G80-class SIMT GPU simulator.

This subpackage is the hardware substrate the reproduction runs on: warp
lockstep execution with divergence serialization, the Table 2.2 cycle cost
model, a first-fit linear device-memory allocator, CC 1.0 coalescing rules,
per-multiprocessor occupancy, an analytic kernel-timing model, and a PCIe
transfer/async-execution timeline.

Public entry points:

- :class:`SimDevice` — construct a device and ``launch`` kernels on it.
- :class:`ArchSpec` / :data:`G80_8800GTS` — hardware descriptions.
- :data:`G80_COSTS` — the Table 2.2 instruction cost table.
- :mod:`repro.simgpu.isa` / :mod:`repro.simgpu.devicelib` — what simulated
  kernels are written against.
- :func:`kernel_time` — analytic timing from instruction counts.
"""

from repro.simgpu.arch import ATHLON64_3700, ArchSpec, CpuSpec, G80_8800GTS, scaled_arch
from repro.simgpu.block import BarrierDeadlock, ThreadCtx
from repro.simgpu.costs import CostTable, G80_COSTS, OpClass
from repro.simgpu.device import LaunchResult, SimDevice
from repro.simgpu.dims import Dim3, as_dim3, make_dim3
from repro.simgpu.memory import (
    DeviceArrayView,
    DeviceMemory,
    DeviceMemoryError,
    DevicePtr,
    InvalidDeviceAccess,
    InvalidFree,
    NULL_PTR,
    OutOfDeviceMemory,
    SharedArrayView,
)
from repro.simgpu.multiprocessor import Occupancy, compute_occupancy
from repro.simgpu.perfmodel import (
    KernelCostInputs,
    KernelTimeBreakdown,
    kernel_time,
    time_from_profile,
)
from repro.simgpu.profile import InstructionProfile
from repro.simgpu.ptx import KernelTrace, find_local_spills, trace_kernel
from repro.simgpu.transfer import DeviceTimeline, PcieModel
from repro.simgpu.warp import KernelFault

__all__ = [
    "ATHLON64_3700",
    "ArchSpec",
    "BarrierDeadlock",
    "CostTable",
    "CpuSpec",
    "DeviceArrayView",
    "DeviceMemory",
    "DeviceMemoryError",
    "DevicePtr",
    "DeviceTimeline",
    "Dim3",
    "G80_8800GTS",
    "G80_COSTS",
    "InstructionProfile",
    "InvalidDeviceAccess",
    "InvalidFree",
    "KernelCostInputs",
    "KernelFault",
    "KernelTimeBreakdown",
    "KernelTrace",
    "find_local_spills",
    "trace_kernel",
    "LaunchResult",
    "NULL_PTR",
    "Occupancy",
    "OpClass",
    "OutOfDeviceMemory",
    "PcieModel",
    "SharedArrayView",
    "SimDevice",
    "ThreadCtx",
    "as_dim3",
    "compute_occupancy",
    "kernel_time",
    "make_dim3",
    "scaled_arch",
    "time_from_profile",
]
