"""Architecture specification for the simulated GPU.

The paper evaluates on a GeForce 8800 GTS 640 MB — a G80-class part with
12 multiprocessors of 8 scalar processors each (96 processors total, §5.3),
a 500 MHz core clock, 1.2 GHz shader clock, and a warp size of 32.  This
module captures those constants in :class:`ArchSpec` so the execution
engine, the occupancy calculator, and the analytic performance model all
agree on the hardware they are simulating.

The host CPU of the paper's testbed (AMD Athlon 64 3700+, single core,
2.2 GHz) is described by :class:`CpuSpec` and used by the OpenSteer CPU
timing model and the Fig. 1.1 peak-FLOPS comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.common.units import KIB, MIB


@dataclass(frozen=True)
class ArchSpec:
    """Immutable description of a CUDA 1.0 class device.

    The defaults describe the GeForce 8800 GTS 640 MB used in the paper.
    All limits are the CUDA 1.0 / compute-capability 1.0 limits quoted in
    chapter 2 of the paper.
    """

    name: str = "GeForce 8800 GTS (simulated)"
    multiprocessors: int = 12
    processors_per_mp: int = 8
    warp_size: int = 32
    core_clock_hz: float = 500.0e6
    shader_clock_hz: float = 1200.0e6
    device_memory_bytes: int = 640 * MIB
    memory_bandwidth_bytes_per_s: float = 64.0e9  # 320-bit GDDR3 @ 1.6 GT/s
    shared_mem_per_mp: int = 16 * KIB
    registers_per_mp: int = 8192
    #: Constant memory: 64 KiB total, cached per multiprocessor (§2.1:
    #: "texture and constant caches are available on every
    #: multiprocessor").
    constant_mem_bytes: int = 64 * KIB
    constant_cache_per_mp: int = 8 * KIB
    texture_cache_per_mp: int = 8 * KIB
    max_threads_per_block: int = 512
    max_threads_per_mp: int = 768
    max_blocks_per_mp: int = 8
    max_grid_dim: tuple[int, int] = (65535, 65535)
    max_block_dim: tuple[int, int, int] = (512, 512, 64)
    # CUDA 1.0 kernel parameter stack size (256 bytes).
    kernel_stack_bytes: int = 256
    compute_capability: tuple[int, int] = (1, 0)
    supports_atomics: bool = False  # compute capability 1.0 has none

    def __post_init__(self) -> None:
        if self.warp_size % self.processors_per_mp != 0:
            raise ConfigurationError(
                "warp_size must be a multiple of processors_per_mp "
                f"(got {self.warp_size} / {self.processors_per_mp})"
            )

    @property
    def total_processors(self) -> int:
        """Total scalar processors on the device (96 on the 8800 GTS)."""
        return self.multiprocessors * self.processors_per_mp

    @property
    def cycles_per_warp_instruction(self) -> int:
        """Shader cycles for one warp to issue one simple instruction.

        With a warp of 32 threads and 8 processors per multiprocessor, a
        warp needs at least 32/8 = 4 clock cycles per instruction (§2.2).
        """
        return self.warp_size // self.processors_per_mp

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOP/s (MAD counted as 2 FLOPs)."""
        return self.total_processors * self.shader_clock_hz * 2 / 1e9

    @property
    def bytes_per_core_cycle(self) -> float:
        """Device-memory bandwidth expressed per core-clock cycle."""
        return self.memory_bandwidth_bytes_per_s / self.core_clock_hz


@dataclass(frozen=True)
class CpuSpec:
    """The paper's host CPU: AMD Athlon 64 3700+ (single core, 2.2 GHz)."""

    name: str = "AMD Athlon 64 3700+ (modelled)"
    clock_hz: float = 2200.0e6
    cores: int = 1
    # Peak SSE single-precision throughput: 4-wide SIMD, one ADD + one MUL
    # port -> 8 FLOPs/cycle is generous for K8; the paper's Fig 1.1 uses
    # vendor peak numbers, we use 4 FLOPs/cycle (one 4-wide op per cycle).
    flops_per_cycle: float = 4.0
    memory_bandwidth_bytes_per_s: float = 6.4e9  # dual-channel DDR-400

    @property
    def peak_gflops(self) -> float:
        """Peak single-precision GFLOP/s of the modelled CPU."""
        return self.cores * self.clock_hz * self.flops_per_cycle / 1e9


#: The device the paper benchmarks on.
G80_8800GTS = ArchSpec()

#: The host the paper benchmarks on.
ATHLON64_3700 = CpuSpec()


def scaled_arch(
    name: str,
    multiprocessors: int,
    *,
    base: ArchSpec = G80_8800GTS,
    bandwidth_scale: float = 1.0,
    memory_bytes: int | None = None,
) -> ArchSpec:
    """Derive an ArchSpec with a different multiprocessor count.

    Used by the Fig. 1.1 generation sweep (G80 parts differed mainly in MP
    count and memory bus width) and by tests that want a tiny device.
    """
    return ArchSpec(
        name=name,
        multiprocessors=multiprocessors,
        processors_per_mp=base.processors_per_mp,
        warp_size=base.warp_size,
        core_clock_hz=base.core_clock_hz,
        shader_clock_hz=base.shader_clock_hz,
        device_memory_bytes=(
            base.device_memory_bytes if memory_bytes is None else memory_bytes
        ),
        memory_bandwidth_bytes_per_s=base.memory_bandwidth_bytes_per_s
        * bandwidth_scale,
        shared_mem_per_mp=base.shared_mem_per_mp,
        registers_per_mp=base.registers_per_mp,
        max_threads_per_block=base.max_threads_per_block,
        max_threads_per_mp=base.max_threads_per_mp,
        max_blocks_per_mp=base.max_blocks_per_mp,
    )
