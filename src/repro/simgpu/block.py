"""Thread blocks: barrier semantics, shared memory, thread contexts.

A block owns its threads (grouped into warps), its shared-memory
scratchpad, and the ``__syncthreads`` barrier.  The barrier releases when
every *live* thread of the block has arrived; if the block wedges — some
threads parked at the barrier while no other thread can make progress,
which is what happens when ``__syncthreads`` sits in divergent conditional
code (§3.1.4 says that is only well defined when the condition evaluates
identically across the block) — the executor raises
:class:`BarrierDeadlock` instead of hanging.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.common.errors import ReproError
from repro.simgpu.arch import ArchSpec
from repro.simgpu.dims import Dim3
from repro.simgpu.memory import SharedArrayView, SharedMemory
from repro.simgpu.profile import InstructionProfile
from repro.simgpu.warp import KernelFault, Thread, ThreadState, Warp


class BarrierDeadlock(ReproError):
    """``__syncthreads`` was reached by only part of the block while the
    rest already exited or cannot advance — undefined in CUDA, fatal here."""


def unflatten(flat: int, dim: Dim3) -> Dim3:
    """Convert a flat thread index to its (x, y, z) coordinates.

    CUDA flattens thread indexes x-fastest: ``flat = x + y*Dx + z*Dx*Dy``.
    """
    x = flat % dim.x
    y = (flat // dim.x) % dim.y
    z = flat // (dim.x * dim.y)
    return Dim3(x, y, z)


class ThreadCtx:
    """Per-thread view of the built-in variables (§3.1.3) plus the handle
    through which a kernel declares shared memory.

    ``thread_idx``/``block_idx``/``block_dim``/``grid_dim`` mirror
    ``threadIdx``/``blockIdx``/``blockDim``/``gridDim``.
    """

    __slots__ = (
        "thread_idx",
        "block_idx",
        "block_dim",
        "grid_dim",
        "warp_size",
        "_block",
    )

    def __init__(
        self,
        thread_idx: Dim3,
        block_idx: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
        warp_size: int,
        block: "ThreadBlock",
    ) -> None:
        self.thread_idx = thread_idx
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.warp_size = warp_size
        self._block = block

    @property
    def global_thread_id(self) -> int:
        """Flat 1D global thread id (the common Boids indexing scheme)."""
        return self.block_idx.x * self.block_dim.x + self.thread_idx.x

    def shared_array(
        self, name: str, dtype: np.dtype, count: int
    ) -> SharedArrayView:
        """Declare (or fetch) a block-level ``__shared__`` array.

        All threads of a block calling with the same ``name`` receive the
        *same* storage — shared declarations are per block, not per thread.
        """
        return self._block.shared_array(name, dtype, count)

    def local_array(self, name: str, dtype: np.dtype, count: int):
        """Declare (or fetch) a *thread-local* array.

        Local arrays with dynamic indexing cannot live in registers, so
        the compiler places them in device memory (Table 2.1: local memory
        = registers + device memory).  Accesses therefore go through
        ``ld``/``st`` at full global-memory cost — the effect behind the
        paper's version-3-vs-4 finding (§6.2.2) and the manual
        shared-memory workaround of §6.2.3.
        """
        flat = (
            self.thread_idx.x
            + self.thread_idx.y * self.block_dim.x
            + self.thread_idx.z * self.block_dim.x * self.block_dim.y
        )
        return self._block.local_array(name, flat, dtype, count)


class ThreadBlock:
    """One thread block being executed: warps + barrier + shared memory."""

    def __init__(
        self,
        kernel_fn: Callable,
        args: tuple,
        block_idx: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
        arch: ArchSpec,
        *,
        strict_sync: bool = True,
        device_memory=None,
    ) -> None:
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.arch = arch
        self.strict_sync = strict_sync
        self.device_memory = device_memory
        self._shared = SharedMemory(arch.shared_mem_per_mp)
        self._shared_arrays: dict[str, SharedArrayView] = {}
        self._local_arrays: dict[tuple[str, int], object] = {}
        self._local_ptrs: list = []

        threads: list[Thread] = []
        for flat in range(block_dim.volume):
            ctx = ThreadCtx(
                unflatten(flat, block_dim),
                block_idx,
                block_dim,
                grid_dim,
                arch.warp_size,
                self,
            )
            gen = kernel_fn(ctx, *args)
            if not hasattr(gen, "send"):
                raise KernelFault(
                    f"kernel {kernel_fn.__name__!r} is not a generator "
                    "function — simulated kernels must yield instruction "
                    "events (see repro.simgpu.isa)"
                )
            threads.append(Thread(lane=flat, gen=gen))
        from repro.simgpu.caches import (
            CONSTANT_LINE_BYTES,
            CacheSim,
            TEXTURE_LINE_BYTES,
        )

        caches = {
            "constant": CacheSim(arch.constant_cache_per_mp, CONSTANT_LINE_BYTES),
            "texture": CacheSim(arch.texture_cache_per_mp, TEXTURE_LINE_BYTES),
        }
        ws = arch.warp_size
        self.warps = [
            Warp(threads[i : i + ws], ws, caches)
            for i in range(0, len(threads), ws)
        ]
        self._threads = threads

    # ------------------------------------------------------------------
    def shared_array(
        self, name: str, dtype: np.dtype, count: int
    ) -> SharedArrayView:
        view = self._shared_arrays.get(name)
        if view is None:
            view = self._shared.array(dtype, count)
            self._shared_arrays[name] = view
        elif len(view) != count or view.data.dtype != np.dtype(dtype):
            raise KernelFault(
                f"shared array {name!r} redeclared with a different shape"
            )
        return view

    def local_array(self, name: str, thread_flat: int, dtype: np.dtype, count: int):
        """Per-thread spilled local-memory array (see ThreadCtx.local_array)."""
        from repro.simgpu.memory import DeviceArrayView

        key = (name, thread_flat)
        view = self._local_arrays.get(key)
        if view is None:
            if self.device_memory is None:
                raise KernelFault(
                    "local arrays need a device-memory-backed launch "
                    "(SimDevice.launch provides one)"
                )
            nbytes = np.dtype(dtype).itemsize * count
            ptr = self.device_memory.alloc(nbytes)
            self._local_ptrs.append(ptr)
            view = DeviceArrayView(self.device_memory, ptr, np.dtype(dtype), count)
            self._local_arrays[key] = view
        return view

    def release_local_memory(self) -> None:
        """Free the compiler-allocated local-memory spill space."""
        for ptr in self._local_ptrs:
            self.device_memory.free(ptr)
        self._local_ptrs.clear()
        self._local_arrays.clear()

    @property
    def shared_bytes_used(self) -> int:
        return self._shared.used

    # ------------------------------------------------------------------
    def run(self, profile: InstructionProfile) -> None:
        """Execute the block to completion, enforcing barrier semantics."""
        for w in self.warps:
            if w.threads:
                profile.warps_launched += 1
        while True:
            live = [t for t in self._threads if t.state is not ThreadState.DONE]
            if not live:
                return
            # Barrier release: every live thread is parked at the sync.
            if all(t.state is ThreadState.AT_SYNC for t in live):
                exited = len(self._threads) - len(live)
                if exited and self.strict_sync:
                    raise BarrierDeadlock(
                        f"block {tuple(self.block_idx)}: {len(live)} threads "
                        f"wait at __syncthreads() but {exited} already "
                        "exited and will never arrive — __syncthreads in "
                        "divergent control flow is undefined (paper §3.1.4)"
                    )
                for t in live:
                    t.state = ThreadState.RUNNABLE
                continue
            for w in self.warps:
                w.step_round(profile)
