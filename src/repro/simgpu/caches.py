"""Constant memory and texture references — the cached read-only spaces.

Chapter 2 places "texture and constant caches ... on every
multiprocessor"; chapter 7 proposes using them to back ``cupp::vector``
automatically when it is passed as a const reference.  This module
provides both:

* :class:`ConstantMemory` — the 64 KiB constant space.  Host-writable
  (``cudaMemcpyToSymbol``), device-readable.  Reads are cached and
  *broadcast*: when every active thread of a warp reads the same address
  a hit costs about as much as a register access; distinct addresses are
  served serially (one issue per distinct address) — the real G80
  behaviour, and the reason constant memory suits uniform lookups
  (simulation parameters) but not per-thread indexing.
* :class:`TextureReference` — a read-only cached window onto *linear
  global memory* (``cudaBindTexture``).  Per-thread addressing is fine;
  a cache-line tracker charges the first touch of each line as a device
  memory transaction and later touches as cheap hits — the paper's
  neighbor-search access pattern (every block streams all positions) is
  exactly the locality textures reward.
* :class:`CacheSim` — the per-launch line tracker used for both.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import ReproError
from repro.common.units import align_up
from repro.simgpu.memory import DeviceArrayView, InvalidDeviceAccess


class ConstantMemoryError(ReproError):
    """Constant-space exhaustion or invalid access."""


#: Cache line sizes of the read-only caches (bytes).
CONSTANT_LINE_BYTES = 64
TEXTURE_LINE_BYTES = 32


class ConstantMemory:
    """The device's constant address space (64 KiB, host-writable)."""

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity = int(capacity_bytes)
        self._data = np.zeros(self.capacity, dtype=np.uint8)
        self._cursor = 0

    def alloc_symbol(self, dtype, count: int) -> "ConstantArrayView":
        """Declare a ``__constant__`` symbol of ``count`` elements."""
        dtype = np.dtype(dtype)
        nbytes = align_up(dtype.itemsize * int(count), 4)
        if self._cursor + nbytes > self.capacity:
            raise ConstantMemoryError(
                f"constant memory exhausted: {self._cursor} + {nbytes} > "
                f"{self.capacity} bytes"
            )
        offset = self._cursor
        self._cursor += nbytes
        return ConstantArrayView(self, offset, dtype, int(count))

    def write(self, offset: int, data: np.ndarray) -> None:
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1)
        if offset + raw.size > self.capacity:
            raise ConstantMemoryError("write overruns constant memory")
        self._data[offset : offset + raw.size] = raw

    def read_raw(self, offset: int, nbytes: int) -> np.ndarray:
        return self._data[offset : offset + nbytes]

    @property
    def used(self) -> int:
        return self._cursor


class ConstantArrayView:
    """Typed handle to a ``__constant__`` symbol.

    Device code reads it through ``ldc`` events; the host writes it
    through ``cudaMemcpyToSymbol``.
    """

    __slots__ = ("memory", "offset", "dtype", "count")

    def __init__(
        self, memory: ConstantMemory, offset: int, dtype: np.dtype, count: int
    ) -> None:
        self.memory = memory
        self.offset = offset
        self.dtype = np.dtype(dtype)
        self.count = count

    def addr_of(self, index: int) -> int:
        if not 0 <= index < self.count:
            raise InvalidDeviceAccess(
                f"constant index {index} out of bounds for {self.count}"
            )
        return self.offset + index * self.dtype.itemsize

    def _raw(self) -> np.ndarray:
        return self.memory.read_raw(
            self.offset, self.count * self.dtype.itemsize
        ).view(self.dtype)

    def __len__(self) -> int:
        return self.count


class TextureReference:
    """A texture reference bound to linear global memory (1D fetch)."""

    __slots__ = ("view",)

    def __init__(self, view: DeviceArrayView | None = None) -> None:
        self.view = view

    def bind(self, view: DeviceArrayView) -> None:
        self.view = view

    def unbind(self) -> None:
        self.view = None

    @property
    def bound(self) -> bool:
        return self.view is not None

    def addr_of(self, index: int) -> int:
        if self.view is None:
            raise InvalidDeviceAccess("texture fetch through an unbound reference")
        return self.view.addr_of(index)

    def _raw(self) -> np.ndarray:
        if self.view is None:
            raise InvalidDeviceAccess("texture fetch through an unbound reference")
        return self.view._raw()

    def __len__(self) -> int:
        return 0 if self.view is None else self.view.count


@dataclass
class CacheSim:
    """Line-granular hit/miss tracking for one read-only cache.

    Capacity is enforced as a line budget with FIFO eviction — crude but
    adequate: the quantities the timing model needs are hit/miss counts,
    which for streaming workloads depend on footprint vs capacity, not
    on replacement subtleties.
    """

    capacity_bytes: int
    line_bytes: int
    _lines: "dict[int, None]" = field(default_factory=dict)  # ordered set
    hits: int = 0
    misses: int = 0

    @property
    def max_lines(self) -> int:
        return max(1, self.capacity_bytes // self.line_bytes)

    def access(self, addr: int) -> bool:
        """Touch the line holding ``addr``; returns True on a hit."""
        line = addr // self.line_bytes
        if line in self._lines:
            self.hits += 1
            return True
        self.misses += 1
        self._lines[line] = None
        while len(self._lines) > self.max_lines:
            self._lines.pop(next(iter(self._lines)))
        return False
