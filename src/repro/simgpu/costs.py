"""Instruction cost table of the G80 architecture (paper Table 2.2).

Costs are *cycles per warp* in the shader clock domain:

=============================================  =========================
Instruction                                    Cost (cycles per warp)
=============================================  =========================
FADD, FMUL, FMAD, IADD                         4
bitwise operations, compare, min, max          4
reciprocal, reciprocal square root             16
accessing registers                            0
accessing shared memory                        >= 4
reading from device memory                     400 - 600
synchronizing all threads within a block       4 + possible waiting time
=============================================  =========================

Writing to device memory is a *fire-and-forget* instruction (§2.3): the
processor forwards it to a memory writing unit and continues, so it costs
only the issue slot (4 cycles) plus memory-pipeline occupancy accounted by
the performance model, not the 400-600 cycle read latency.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class OpClass(enum.Enum):
    """Instruction classes distinguished by the Table 2.2 cost model."""

    FADD = "fadd"
    FMUL = "fmul"
    FMAD = "fmad"
    IADD = "iadd"
    BITWISE = "bitwise"
    COMPARE = "compare"
    MINMAX = "minmax"
    RCP = "rcp"  # reciprocal
    RSQRT = "rsqrt"  # reciprocal square root
    #: Other SFU transcendentals (__sinf/__cosf/__expf/__logf): the G80
    #: special function unit serves these at rcp-like throughput.
    TRANSCENDENTAL = "transcendental"
    #: Type conversion / casting intrinsics (§3.1.4): simple-ALU cost.
    CONVERT = "convert"
    REGISTER = "register"
    SHARED_READ = "shared_read"
    SHARED_WRITE = "shared_write"
    GLOBAL_READ = "global_read"
    GLOBAL_WRITE = "global_write"
    #: Cached read-only spaces (§2.1/§2.2; modelled for the ch. 7 future
    #: work).  Costs below are cache-*hit* issue costs; misses are
    #: accounted as device-memory traffic by the executor.
    CONSTANT_READ = "constant_read"
    TEXTURE_READ = "texture_read"
    SYNC = "sync"
    BRANCH = "branch"  # control-flow instruction itself (§2.3: only the
    # instruction executes when the warp does not diverge)


#: Arithmetic classes that count as one FLOP each (FMAD counts as two).
FLOP_CLASSES = frozenset(
    {OpClass.FADD, OpClass.FMUL, OpClass.FMAD, OpClass.RCP, OpClass.RSQRT}
)


@dataclass(frozen=True)
class CostTable:
    """Cycles-per-warp issue/latency costs, configurable for what Table 2.2
    leaves as a range ("400 - 600", ">= 4").

    ``global_read_latency`` is the full round-trip latency of a device
    memory read; ``issue_cycles`` is the pipeline issue cost every
    instruction pays (4 cycles per warp on G80).
    """

    issue_cycles: int = 4
    rcp_cycles: int = 16
    rsqrt_cycles: int = 16
    register_cycles: int = 0
    shared_cycles: int = 4
    global_read_latency: int = 500  # middle of the 400-600 band
    global_read_latency_min: int = 400
    global_read_latency_max: int = 600
    sync_base_cycles: int = 4
    #: Constant cache hit: register speed when the warp broadcasts from
    #: one address (the hardware serializes distinct addresses).
    constant_hit_cycles: int = 4
    #: Texture cache hit: cheap but not register-cheap.
    texture_hit_cycles: int = 8

    def issue_cost(self, op: OpClass) -> int:
        """Pipeline issue cost in cycles per warp (latency excluded)."""
        if op is OpClass.REGISTER:
            return self.register_cycles
        if op in (OpClass.RCP, OpClass.RSQRT, OpClass.TRANSCENDENTAL):
            if op is OpClass.RCP:
                return self.rcp_cycles
            if op is OpClass.RSQRT:
                return self.rsqrt_cycles
            return self.rsqrt_cycles  # SFU throughput class
        if op in (OpClass.SHARED_READ, OpClass.SHARED_WRITE):
            return self.shared_cycles
        if op is OpClass.CONSTANT_READ:
            return self.constant_hit_cycles
        if op is OpClass.TEXTURE_READ:
            return self.texture_hit_cycles
        if op is OpClass.SYNC:
            return self.sync_base_cycles
        # FADD/FMUL/FMAD/IADD/BITWISE/COMPARE/MINMAX/BRANCH and the issue
        # slot of global reads/writes all take one 4-cycle issue.
        return self.issue_cycles

    def serialized_cost(self, op: OpClass) -> int:
        """Full cost when nothing hides latency (used by the emulator's
        worst-case accounting and Table 2.2 microbenchmarks)."""
        if op is OpClass.GLOBAL_READ:
            return self.global_read_latency
        return self.issue_cost(op)


#: Default cost table used throughout the library.
G80_COSTS = CostTable()
