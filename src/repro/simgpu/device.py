"""The simulated device: memory, launch validation, block scheduling.

:class:`SimDevice` ties the pieces together: it owns the global
:class:`~repro.simgpu.memory.DeviceMemory`, validates launch configurations
against the CUDA 1.0 limits, executes grids block-by-block on the warp
emulator, and keeps the asynchronous-execution bookkeeping (kernel launches
do not block the host; accessing device memory does — §2.2) through its
:class:`~repro.simgpu.transfer.DeviceTimeline`.

Blocks of a grid cannot synchronize with each other and multiple kernels
never run in parallel (§2.2), so executing blocks sequentially is
observationally equivalent to the hardware schedule; the *time* a launch
takes is computed by the analytic model from the measured instruction
profile and the occupancy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigurationError
from repro.simgpu.arch import ArchSpec, G80_8800GTS
from repro.simgpu.block import ThreadBlock
from repro.simgpu.costs import CostTable, G80_COSTS
from repro.simgpu.dims import Dim3, as_dim3
from repro.simgpu.memory import DeviceMemory
from repro.simgpu.multiprocessor import Occupancy, compute_occupancy
from repro.simgpu.profile import InstructionProfile
from repro.simgpu.transfer import DeviceTimeline, PcieModel


@dataclass
class LaunchResult:
    """Everything the emulator learned from executing one grid."""

    grid_dim: Dim3
    block_dim: Dim3
    profile: InstructionProfile
    occupancy: Occupancy
    shared_bytes_per_block: int

    @property
    def blocks(self) -> int:
        return self.grid_dim.volume

    @property
    def threads(self) -> int:
        return self.grid_dim.volume * self.block_dim.volume


_device_ids = itertools.count(0)


class SimDevice:
    """A simulated G80-class device.

    Parameters
    ----------
    arch:
        Hardware description; defaults to the paper's 8800 GTS.
    costs:
        Instruction cost table (Table 2.2).
    pcie:
        Host<->device interconnect model used for transfer timing.
    """

    def __init__(
        self,
        arch: ArchSpec = G80_8800GTS,
        costs: CostTable = G80_COSTS,
        pcie: PcieModel | None = None,
    ) -> None:
        from repro.simgpu.caches import ConstantMemory

        self.device_id = next(_device_ids)
        self.arch = arch
        self.costs = costs
        self.memory = DeviceMemory(arch.device_memory_bytes)
        self.constant = ConstantMemory(arch.constant_mem_bytes)
        self.timeline = DeviceTimeline(pcie or PcieModel())
        self.launches: list[LaunchResult] = []
        #: Optional :class:`repro.fault.FaultInjector` consulted by the
        #: CUDA runtime's alloc/launch/memcpy entry points.  ``None``
        #: (the default) keeps every fault path completely inert.
        self.fault_injector = None

    # ------------------------------------------------------------------
    def validate_launch(self, grid_dim: Dim3, block_dim: Dim3) -> None:
        """Apply the CUDA 1.0 configuration limits (§2.2)."""
        if block_dim.volume == 0 or grid_dim.volume == 0:
            raise ConfigurationError("grid and block dimensions must be non-zero")
        if block_dim.volume > self.arch.max_threads_per_block:
            raise ConfigurationError(
                f"block of {block_dim.volume} threads exceeds the limit of "
                f"{self.arch.max_threads_per_block}"
            )
        if grid_dim.z != 1:
            raise ConfigurationError("grids are at most 2-dimensional (§2.2)")
        mx, my = self.arch.max_grid_dim
        if grid_dim.x > mx or grid_dim.y > my:
            raise ConfigurationError(
                f"grid {tuple(grid_dim)} exceeds the limit {(mx, my)}"
            )
        bx, by, bz = self.arch.max_block_dim
        if block_dim.x > bx or block_dim.y > by or block_dim.z > bz:
            raise ConfigurationError(
                f"block {tuple(block_dim)} exceeds the limit {(bx, by, bz)}"
            )

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel_fn: Callable,
        grid_dim: "Dim3 | int | tuple",
        block_dim: "Dim3 | int | tuple",
        args: tuple = (),
        *,
        registers_per_thread: int = 10,
        strict_sync: bool = True,
    ) -> LaunchResult:
        """Execute ``kernel_fn`` over the whole grid on the emulator.

        Returns the merged :class:`InstructionProfile` and the occupancy of
        the configuration.  Intended for correctness tests and the
        Table 2.2 microbenchmarks; the Boids benchmarks at paper scale use
        the closed-form cost model validated against these profiles.
        """
        grid_dim = as_dim3(grid_dim)
        block_dim = as_dim3(block_dim)
        self.validate_launch(grid_dim, block_dim)

        profile = InstructionProfile()
        shared_bytes = 0
        for by in range(grid_dim.y):
            for bx in range(grid_dim.x):
                block = ThreadBlock(
                    kernel_fn,
                    args,
                    Dim3(bx, by, 1),
                    block_dim,
                    grid_dim,
                    self.arch,
                    strict_sync=strict_sync,
                    device_memory=self.memory,
                )
                try:
                    block.run(profile)
                finally:
                    block.release_local_memory()
                shared_bytes = max(shared_bytes, block.shared_bytes_used)

        occupancy = compute_occupancy(
            self.arch,
            block_dim.volume,
            shared_bytes,
            registers_per_thread,
        )
        result = LaunchResult(
            grid_dim=grid_dim,
            block_dim=block_dim,
            profile=profile,
            occupancy=occupancy,
            shared_bytes_per_block=shared_bytes,
        )
        self.launches.append(result)
        return result

    # ------------------------------------------------------------------
    def properties(self) -> dict[str, object]:
        """Device properties in ``cudaDeviceProp`` spirit (§3.2.1)."""
        return {
            "name": self.arch.name,
            "totalGlobalMem": self.arch.device_memory_bytes,
            "sharedMemPerBlock": self.arch.shared_mem_per_mp,
            "regsPerBlock": self.arch.registers_per_mp,
            "warpSize": self.arch.warp_size,
            "maxThreadsPerBlock": self.arch.max_threads_per_block,
            "multiProcessorCount": self.arch.multiprocessors,
            "clockRate": int(self.arch.shader_clock_hz / 1000),  # kHz
            "major": self.arch.compute_capability[0],
            "minor": self.arch.compute_capability[1],
            "supportsAtomics": self.arch.supports_atomics,
        }
