"""The simulated device: memory, launch validation, block scheduling.

:class:`SimDevice` is the cycle-accounting implementation of
:class:`~repro.backend.base.ExecutionBackend`: it owns the global
:class:`~repro.simgpu.memory.DeviceMemory` (via the backend base),
validates launch configurations against the CUDA 1.0 limits, executes
grids block-by-block on the warp emulator, and keeps the
asynchronous-execution bookkeeping (kernel launches do not block the
host; accessing device memory does — §2.2) through its
:class:`~repro.simgpu.transfer.DeviceTimeline`.

Blocks of a grid cannot synchronize with each other and multiple kernels
never run in parallel (§2.2), so executing blocks sequentially is
observationally equivalent to the hardware schedule; the *time* a launch
takes — this backend's :meth:`~SimDevice.duration_s` — is computed by
the analytic model from the measured instruction profile and the
occupancy, entirely in virtual time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.backend.base import ExecutionBackend
from repro.simgpu.arch import ArchSpec, G80_8800GTS
from repro.simgpu.block import ThreadBlock
from repro.simgpu.costs import CostTable, G80_COSTS
from repro.simgpu.dims import Dim3, as_dim3
from repro.simgpu.multiprocessor import Occupancy, compute_occupancy
from repro.simgpu.profile import InstructionProfile
from repro.simgpu.transfer import PcieModel


@dataclass
class LaunchResult:
    """Everything the emulator learned from executing one grid."""

    grid_dim: Dim3
    block_dim: Dim3
    profile: InstructionProfile
    occupancy: Occupancy
    shared_bytes_per_block: int

    @property
    def blocks(self) -> int:
        return self.grid_dim.volume

    @property
    def threads(self) -> int:
        return self.grid_dim.volume * self.block_dim.volume


class SimDevice(ExecutionBackend):
    """A simulated G80-class device.

    Parameters
    ----------
    arch:
        Hardware description; defaults to the paper's 8800 GTS.
    costs:
        Instruction cost table (Table 2.2).
    pcie:
        Host<->device interconnect model used for transfer timing.
    """

    backend_kind = "sim"

    def __init__(
        self,
        arch: ArchSpec = G80_8800GTS,
        costs: CostTable = G80_COSTS,
        pcie: PcieModel | None = None,
    ) -> None:
        self._init_backend(arch, pcie)
        self.costs = costs

    # ------------------------------------------------------------------
    def launch(
        self,
        kernel_fn: Callable,
        grid_dim: "Dim3 | int | tuple",
        block_dim: "Dim3 | int | tuple",
        args: tuple = (),
        *,
        registers_per_thread: int = 10,
        strict_sync: bool = True,
    ) -> LaunchResult:
        """Execute ``kernel_fn`` over the whole grid on the emulator.

        Returns the merged :class:`InstructionProfile` and the occupancy of
        the configuration.  Intended for correctness tests and the
        Table 2.2 microbenchmarks; the Boids benchmarks at paper scale use
        the closed-form cost model validated against these profiles.
        """
        grid_dim = as_dim3(grid_dim)
        block_dim = as_dim3(block_dim)
        self.validate_launch(grid_dim, block_dim)

        profile = InstructionProfile()
        shared_bytes = 0
        for by in range(grid_dim.y):
            for bx in range(grid_dim.x):
                block = ThreadBlock(
                    kernel_fn,
                    args,
                    Dim3(bx, by, 1),
                    block_dim,
                    grid_dim,
                    self.arch,
                    strict_sync=strict_sync,
                    device_memory=self.memory,
                )
                try:
                    block.run(profile)
                finally:
                    block.release_local_memory()
                shared_bytes = max(shared_bytes, block.shared_bytes_used)

        occupancy = compute_occupancy(
            self.arch,
            block_dim.volume,
            shared_bytes,
            registers_per_thread,
        )
        result = LaunchResult(
            grid_dim=grid_dim,
            block_dim=block_dim,
            profile=profile,
            occupancy=occupancy,
            shared_bytes_per_block=shared_bytes,
        )
        self.launches.append(result)
        return result

    # ------------------------------------------------------------------
    def duration_s(self, result: LaunchResult, registers_per_thread: int = 10) -> float:
        """Virtual seconds the launch occupies the device: the analytic
        perf model (§5) applied to the measured instruction profile."""
        from repro.simgpu.perfmodel import time_from_profile

        return time_from_profile(
            result.profile,
            result.blocks,
            result.block_dim.volume,
            shared_bytes_per_block=result.shared_bytes_per_block,
            registers_per_thread=registers_per_thread,
            arch=self.arch,
            costs=self.costs,
        ).total_s
