"""Device-side math helpers for simulated kernels.

Kernels yield one event per instruction; writing 3-vector math that way is
noisy, so this module provides composite helpers used with ``yield from``::

    offset = yield from dl.sub3(pos_a, pos_b)     # 3 FADD
    d2 = yield from dl.length_squared3(offset)    # FMUL + 2 FMAD

Each helper yields the instruction events the G80 would execute for the
operation and *returns* the computed value, so cycle accounting and the
actual arithmetic can never disagree.  Values are plain Python tuples of
floats — registers, in hardware terms (cost 0 to access, Table 2.2).
"""

from __future__ import annotations

import math
from typing import Generator

from repro.simgpu.costs import OpClass
from repro.simgpu.isa import OpEvent, ld, lds, op, st, sts
from repro.simgpu.memory import DeviceArrayView, SharedArrayView

Vec = tuple[float, float, float]

ZERO3: Vec = (0.0, 0.0, 0.0)


def add3(a: Vec, b: Vec) -> Generator:
    """Component-wise addition: 3 FADD."""
    yield op(OpClass.FADD, 3)
    return (a[0] + b[0], a[1] + b[1], a[2] + b[2])


def sub3(a: Vec, b: Vec) -> Generator:
    """Component-wise subtraction: 3 FADD."""
    yield op(OpClass.FADD, 3)
    return (a[0] - b[0], a[1] - b[1], a[2] - b[2])


def scale3(a: Vec, s: float) -> Generator:
    """Scalar multiply: 3 FMUL."""
    yield op(OpClass.FMUL, 3)
    return (a[0] * s, a[1] * s, a[2] * s)


def dot3(a: Vec, b: Vec) -> Generator:
    """Dot product: 1 FMUL + 2 FMAD."""
    yield op(OpClass.FMUL, 1)
    yield op(OpClass.FMAD, 2)
    return a[0] * b[0] + a[1] * b[1] + a[2] * b[2]


def length_squared3(a: Vec) -> Generator:
    """Squared length: 1 FMUL + 2 FMAD."""
    return (yield from dot3(a, a))


def rsqrt(x: float) -> Generator:
    """Reciprocal square root: 16-cycle transcendental (Table 2.2)."""
    yield op(OpClass.RSQRT)
    return 1.0 / math.sqrt(x) if x > 0.0 else 0.0


def length3(a: Vec) -> Generator:
    """Length: length_squared + rsqrt + FMUL (x * rsqrt(x) = sqrt(x))."""
    d2 = yield from length_squared3(a)
    r = yield from rsqrt(d2)
    yield op(OpClass.FMUL)
    return d2 * r


def normalize3(a: Vec) -> Generator:
    """Unit vector (zero stays zero): length_squared + rsqrt + scale."""
    d2 = yield from length_squared3(a)
    r = yield from rsqrt(d2)
    return (yield from scale3(a, r))


def ld_vec3(array: DeviceArrayView, index: int) -> Generator:
    """Load a float3 stored as 3 consecutive float32 at ``index*3``.

    Three separate 32-bit loads — the G80 pattern for float3, and the
    reason position loads in the Boids kernels do not coalesce.
    """
    base = index * 3
    x = yield ld(array, base)
    y = yield ld(array, base + 1)
    z = yield ld(array, base + 2)
    return (x, y, z)


def st_vec3(array: DeviceArrayView, index: int, value: Vec) -> Generator:
    """Store a float3 as 3 consecutive float32 stores."""
    base = index * 3
    yield st(array, base, value[0])
    yield st(array, base + 1, value[1])
    yield st(array, base + 2, value[2])


def lds_vec3(array: SharedArrayView, index: int) -> Generator:
    """Load a float3 from shared memory (3 shared reads)."""
    base = index * 3
    x = yield lds(array, base)
    y = yield lds(array, base + 1)
    z = yield lds(array, base + 2)
    return (x, y, z)


def sts_vec3(array: SharedArrayView, index: int, value: Vec) -> Generator:
    """Store a float3 to shared memory (3 shared writes)."""
    base = index * 3
    yield sts(array, base, value[0])
    yield sts(array, base + 1, value[1])
    yield sts(array, base + 2, value[2])


def ld_auto(device_vector, index: int) -> Generator:
    """Load one element of a DeviceVector-like from whatever space it
    lives in (global / texture / constant — the ch. 7 extension)."""
    from repro.simgpu.isa import ldc, ldt

    space = getattr(device_vector, "space", "global")
    if space == "texture":
        value = yield ldt(device_vector.texref, index)
    elif space == "constant":
        value = yield ldc(device_vector.const_view, index)
    else:
        value = yield ld(device_vector.view, index)
    return value


def ld_vec3_auto(device_vector, index: int) -> Generator:
    """float3 variant of :func:`ld_auto` (3 consecutive loads)."""
    base = index * 3
    x = yield from ld_auto(device_vector, base)
    y = yield from ld_auto(device_vector, base + 1)
    z = yield from ld_auto(device_vector, base + 2)
    return (x, y, z)


# ----------------------------------------------------------------------
# Device runtime library: mathematical / conversion functions (§3.1.4).
# The G80's special function unit serves transcendentals at rcp-like
# throughput; conversions ride the plain ALU pipe.
# ----------------------------------------------------------------------
def sinf(x: float) -> Generator:
    """``__sinf`` — fast sine on the SFU."""
    yield op(OpClass.TRANSCENDENTAL)
    return math.sin(x)


def cosf(x: float) -> Generator:
    """``__cosf`` — fast cosine on the SFU."""
    yield op(OpClass.TRANSCENDENTAL)
    return math.cos(x)


def expf(x: float) -> Generator:
    """``__expf`` — fast exponential on the SFU."""
    yield op(OpClass.TRANSCENDENTAL)
    return math.exp(x)


def logf(x: float) -> Generator:
    """``__logf`` — fast natural log on the SFU (x > 0)."""
    yield op(OpClass.TRANSCENDENTAL)
    return math.log(x)


def rcp(x: float) -> Generator:
    """Reciprocal (Table 2.2: 16 cycles)."""
    yield op(OpClass.RCP)
    return 0.0 if x == 0.0 else 1.0 / x


def sqrtf(x: float) -> Generator:
    """``sqrtf`` — compiled as rsqrt + multiply on the G80."""
    r = yield from rsqrt(x)
    yield op(OpClass.FMUL)
    return x * r


def float2int(x: float) -> Generator:
    """``__float2int_rz`` — round-toward-zero conversion (§3.1.4)."""
    yield op(OpClass.CONVERT)
    return math.trunc(x)


def int2float(x: int) -> Generator:
    """``__int2float_rn`` conversion."""
    yield op(OpClass.CONVERT)
    return float(x)


def fminf(a: float, b: float) -> Generator:
    """``fminf`` (Table 2.2: min/max cost 4)."""
    yield op(OpClass.MINMAX)
    return a if a < b else b


def fmaxf(a: float, b: float) -> Generator:
    """``fmaxf``."""
    yield op(OpClass.MINMAX)
    return a if a > b else b


def clampf(x: float, lo: float, hi: float) -> Generator:
    """Clamp via fmin/fmax (two MINMAX issues)."""
    x = yield from fmaxf(x, lo)
    return (yield from fminf(x, hi))


def iadd(count: int = 1) -> OpEvent:
    """Integer add/increment issue (loop counters, index math)."""
    return op(OpClass.IADD, count)


def compare(count: int = 1) -> OpEvent:
    """Comparison issue (loop conditions, radius tests)."""
    return op(OpClass.COMPARE, count)


def branch(count: int = 1) -> OpEvent:
    """Control-flow instruction issue (§2.3: executed even when the warp
    does not diverge)."""
    return op(OpClass.BRANCH, count)
