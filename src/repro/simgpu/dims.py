"""Dimension triples used to configure launches and index threads.

CUDA's ``dim3`` is a 3-component unsigned-integer vector whose unspecified
components default to 1 (§3.1.3); ``uint3`` is the same shape without the
defaulting.  We model both with one immutable class.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ConfigurationError


@dataclass(frozen=True, order=True)
class Dim3:
    """A ``dim3``/``uint3`` value: three non-negative integers ``x, y, z``.

    Components left unspecified default to 1, matching ``dim3``.
    """

    x: int = 1
    y: int = 1
    z: int = 1

    def __post_init__(self) -> None:
        for name in ("x", "y", "z"):
            v = getattr(self, name)
            if not isinstance(v, int) or v < 0:
                raise ConfigurationError(
                    f"Dim3.{name} must be a non-negative int, got {v!r}"
                )

    @property
    def volume(self) -> int:
        """Total number of elements addressed (x*y*z)."""
        return self.x * self.y * self.z

    def __iter__(self):
        yield self.x
        yield self.y
        yield self.z


def make_dim3(x: int = 1, y: int = 1, z: int = 1) -> Dim3:
    """CUDA's ``make_dim3`` helper (used in the paper's listing 4.3)."""
    return Dim3(int(x), int(y), int(z))


def as_dim3(value: "Dim3 | int | tuple") -> Dim3:
    """Coerce an int or tuple to a :class:`Dim3` (1D launches are common)."""
    if isinstance(value, Dim3):
        return value
    if isinstance(value, int):
        return Dim3(value)
    return Dim3(*(int(v) for v in value))
