"""Instruction events — the contract between kernels and the warp executor.

Simulated kernels are Python *generator functions*.  Each thread of a launch
runs one generator; every ``yield`` hands the executor one instruction event
(an arithmetic op, a memory access, or a barrier).  The executor runs all
threads of a warp in lockstep, detects control-flow divergence by comparing
the events the threads yielded, performs the memory accesses, accounts the
Table 2.2 cycle costs, and ``send``\\ s load results back into the
generators.

A kernel therefore looks like ordinary code with ``yield`` at the points
where the hardware would execute an instruction::

    def saxpy(ctx, a, x, y, out):
        i = ctx.global_thread_id
        if i < len(x):
            xi = yield ld(x, i)
            yi = yield ld(y, i)
            yield op(OpClass.FMAD)
            yield st(out, i, a * xi + yi)

Composite helpers for 3-vector math used heavily by the Boids kernels live
in :mod:`repro.simgpu.devicelib`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simgpu.costs import OpClass
from repro.simgpu.memory import DeviceArrayView, SharedArrayView


@dataclass(frozen=True)
class OpEvent:
    """``count`` back-to-back arithmetic instructions of one class."""

    op: OpClass
    count: int = 1


@dataclass(frozen=True)
class GlobalReadEvent:
    """Read element ``index`` of a global-memory array; the executor sends
    the value back into the generator."""

    array: DeviceArrayView
    index: int


@dataclass(frozen=True)
class GlobalWriteEvent:
    """Write ``value`` to element ``index`` of a global-memory array.

    Fire-and-forget (§2.3): costs only the issue slot.
    """

    array: DeviceArrayView
    index: int
    value: object


@dataclass(frozen=True)
class SharedReadEvent:
    """Read element ``index`` of a shared-memory array."""

    array: SharedArrayView
    index: int


@dataclass(frozen=True)
class SharedWriteEvent:
    """Write ``value`` to element ``index`` of a shared-memory array."""

    array: SharedArrayView
    index: int
    value: object


@dataclass(frozen=True)
class ConstantReadEvent:
    """Read element ``index`` of a ``__constant__`` symbol.

    Broadcast semantics: one issue serves a warp reading a single
    address; distinct addresses serialize (see
    :mod:`repro.simgpu.caches`).
    """

    array: object  # ConstantArrayView
    index: int


@dataclass(frozen=True)
class TextureReadEvent:
    """1D texture fetch (``tex1Dfetch``) through a bound reference."""

    texref: object  # TextureReference
    index: int


@dataclass(frozen=True)
class SyncEvent:
    """``__syncthreads()`` — block-wide barrier (§3.1.4)."""


@dataclass(frozen=True)
class ReconvergeEvent:
    """A warp reconvergence point (branch post-dominator).

    Real SIMT hardware re-joins diverged threads at the immediate
    post-dominator of the branch; generator kernels mark those points
    explicitly (typically the bottom of a loop body).  Costs nothing —
    it models where the hardware's reconvergence stack pops.
    """


Event = (
    OpEvent
    | GlobalReadEvent
    | GlobalWriteEvent
    | SharedReadEvent
    | SharedWriteEvent
    | ConstantReadEvent
    | TextureReadEvent
    | SyncEvent
    | ReconvergeEvent
)


# ----------------------------------------------------------------------
# Convenience constructors (keep kernel bodies readable)
# ----------------------------------------------------------------------
def op(op_class: OpClass, count: int = 1) -> OpEvent:
    """An arithmetic instruction event of the given class."""
    return OpEvent(op_class, count)


def ld(array: DeviceArrayView, index: int) -> GlobalReadEvent:
    """A global-memory load event; ``yield`` returns the element."""
    return GlobalReadEvent(array, int(index))


def st(array: DeviceArrayView, index: int, value: object) -> GlobalWriteEvent:
    """A global-memory store event."""
    return GlobalWriteEvent(array, int(index), value)


def lds(array: SharedArrayView, index: int) -> SharedReadEvent:
    """A shared-memory load event; ``yield`` returns the element."""
    return SharedReadEvent(array, int(index))


def sts(array: SharedArrayView, index: int, value: object) -> SharedWriteEvent:
    """A shared-memory store event."""
    return SharedWriteEvent(array, int(index), value)


def ldc(array: object, index: int) -> ConstantReadEvent:
    """A constant-memory load event; ``yield`` returns the element."""
    return ConstantReadEvent(array, int(index))


def ldt(texref: object, index: int) -> TextureReadEvent:
    """A texture fetch event; ``yield`` returns the element."""
    return TextureReadEvent(texref, int(index))


def sync() -> SyncEvent:
    """A ``__syncthreads()`` barrier event."""
    return SyncEvent()


def reconv() -> ReconvergeEvent:
    """A warp reconvergence point (free; see :class:`ReconvergeEvent`)."""
    return ReconvergeEvent()


def signature(event: Event) -> tuple:
    """Divergence signature of an event.

    Two threads of a warp execute "the same instruction" iff their events
    have equal signatures; differing signatures in one lockstep round mean
    the warp diverged and the executor serializes the groups (§2.3).
    Operand *values* never contribute — only what instruction is executed.
    """
    if isinstance(event, OpEvent):
        return ("op", event.op, event.count)
    if isinstance(event, GlobalReadEvent):
        return ("gld",)
    if isinstance(event, GlobalWriteEvent):
        return ("gst",)
    if isinstance(event, SharedReadEvent):
        return ("slds",)
    if isinstance(event, SharedWriteEvent):
        return ("ssts",)
    if isinstance(event, ConstantReadEvent):
        return ("ldc",)
    if isinstance(event, TextureReadEvent):
        return ("ldt",)
    if isinstance(event, SyncEvent):
        return ("sync",)
    if isinstance(event, ReconvergeEvent):
        return ("reconv",)
    raise TypeError(f"kernel yielded a non-event object: {event!r}")
