"""Simulated device memory: linear global memory and per-block shared memory.

Global ("device") memory is a 32-bit linear address space managed by a
first-fit allocator, exactly the ``cudaMalloc``/``cudaFree`` model of
CUDA 1.0 (§3.2.3).  Pointers into it are :class:`DevicePtr` values — opaque
integers with pointer arithmetic but **no dereference operator**: the paper
stresses that dereferencing a device pointer on the host is undefined, and
we turn "undefined" into an immediate :class:`InvalidDeviceAccess`.

Host code moves data in and out through :meth:`DeviceMemory.copy_in` /
:meth:`DeviceMemory.copy_out` (the back end of ``cudaMemcpy``); device code
reads and writes through the warp executor, which accounts the Table 2.2
costs.

Shared memory is a small per-thread-block scratchpad (:class:`SharedMemory`)
sized by :attr:`ArchSpec.shared_mem_per_mp`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

import numpy as np

from repro.common.errors import ReproError
from repro.common.units import align_up


class DeviceMemoryError(ReproError):
    """Base class for simulated memory faults."""


class OutOfDeviceMemory(DeviceMemoryError):
    """Allocation request cannot be satisfied (fragmentation or exhaustion)."""


class InvalidDeviceAccess(DeviceMemoryError):
    """An address does not fall inside a live allocation, or a host attempt
    was made to dereference a device pointer directly."""


class InvalidFree(DeviceMemoryError):
    """``free`` called with a pointer that is not a live allocation base."""


#: Allocation granularity.  CUDA 1.0 aligns allocations to 256 bytes.
ALLOC_ALIGN = 256

#: First valid device address; address 0 is the null pointer.
BASE_ADDRESS = ALLOC_ALIGN


@dataclass(frozen=True)
class DevicePtr:
    """An address in simulated device memory.

    Supports pointer arithmetic (``ptr + nbytes``) and comparison, but has
    no way to read the bytes it points to: that is exactly the property of
    a real device pointer on the host side.
    """

    addr: int

    def __add__(self, offset: int) -> "DevicePtr":
        return DevicePtr(self.addr + int(offset))

    def __sub__(self, other: "DevicePtr | int") -> "DevicePtr | int":
        if isinstance(other, DevicePtr):
            return self.addr - other.addr
        return DevicePtr(self.addr - int(other))

    def __bool__(self) -> bool:
        return self.addr != 0

    def __int__(self) -> int:
        return self.addr

    def __getitem__(self, _index: object) -> None:
        raise InvalidDeviceAccess(
            "dereferencing a device pointer on the host is undefined "
            "(paper §3.2.3); use cudaMemcpy / cupp.memory1d transfers"
        )


#: The null device pointer.
NULL_PTR = DevicePtr(0)


@dataclass
class _Block:
    """A live allocation: [addr, addr + size) backed by a numpy buffer."""

    addr: int
    size: int
    data: np.ndarray  # uint8, length == size


class DeviceMemory:
    """Linear device memory with a first-fit allocator.

    The allocator keeps an address-ordered free list and merges adjacent
    free ranges on :meth:`free`, so the invariants tested by the property
    suite hold: live blocks never overlap, and alloc-after-free reuses
    space.
    """

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= BASE_ADDRESS:
            raise DeviceMemoryError(
                f"capacity must exceed {BASE_ADDRESS} bytes, got {capacity_bytes}"
            )
        self.capacity = int(capacity_bytes)
        self._blocks: dict[int, _Block] = {}
        # Parallel sorted structures: free range start addresses and sizes.
        self._free_starts: list[int] = [BASE_ADDRESS]
        self._free_sizes: list[int] = [self.capacity - BASE_ADDRESS]
        self._block_starts: list[int] = []  # sorted, for address resolution

    # ------------------------------------------------------------------
    # allocation
    # ------------------------------------------------------------------
    def alloc(self, nbytes: int) -> DevicePtr:
        """Allocate ``nbytes`` (rounded up to the 256-byte granule).

        Raises :class:`OutOfDeviceMemory` when no free range fits.
        A zero-byte request returns a distinct valid allocation of one
        granule, mirroring ``cudaMalloc(&p, 0)`` returning success.
        """
        if nbytes < 0:
            raise DeviceMemoryError(f"cannot allocate {nbytes} bytes")
        size = align_up(max(int(nbytes), 1), ALLOC_ALIGN)
        for i, (start, free_size) in enumerate(
            zip(self._free_starts, self._free_sizes)
        ):
            if free_size >= size:
                # Carve from the front of this free range.
                if free_size == size:
                    del self._free_starts[i]
                    del self._free_sizes[i]
                else:
                    self._free_starts[i] = start + size
                    self._free_sizes[i] = free_size - size
                block = _Block(start, size, np.zeros(size, dtype=np.uint8))
                self._blocks[start] = block
                bisect.insort(self._block_starts, start)
                return DevicePtr(start)
        raise OutOfDeviceMemory(
            f"cannot allocate {size} bytes "
            f"({self.free_bytes} free of {self.capacity})"
        )

    def free(self, ptr: DevicePtr) -> None:
        """Release an allocation.  Freeing the null pointer is a no-op
        (matching ``cudaFree(NULL)``); anything else that is not a live
        allocation base raises :class:`InvalidFree`."""
        if not ptr:
            return
        block = self._blocks.pop(ptr.addr, None)
        if block is None:
            raise InvalidFree(f"0x{ptr.addr:x} is not a live allocation")
        self._block_starts.remove(ptr.addr)
        self._insert_free_range(block.addr, block.size)

    def _insert_free_range(self, start: int, size: int) -> None:
        """Insert a free range, merging with adjacent free neighbours."""
        i = bisect.bisect_left(self._free_starts, start)
        # Merge with predecessor?
        if i > 0 and self._free_starts[i - 1] + self._free_sizes[i - 1] == start:
            i -= 1
            self._free_sizes[i] += size
        else:
            self._free_starts.insert(i, start)
            self._free_sizes.insert(i, size)
        # Merge with successor?
        if (
            i + 1 < len(self._free_starts)
            and self._free_starts[i] + self._free_sizes[i]
            == self._free_starts[i + 1]
        ):
            self._free_sizes[i] += self._free_sizes[i + 1]
            del self._free_starts[i + 1]
            del self._free_sizes[i + 1]

    def free_all(self) -> None:
        """Release every allocation (used when a device handle is destroyed:
        §4.1 — 'when the device handle is destroyed, all memory allocated
        on this device is freed as well')."""
        for addr in list(self._blocks):
            self.free(DevicePtr(addr))

    # ------------------------------------------------------------------
    # address resolution & host-side transfer
    # ------------------------------------------------------------------
    def _resolve(self, ptr: DevicePtr, nbytes: int) -> tuple[_Block, int]:
        """Map ``ptr`` to (block, offset); the access must stay inside one
        allocation, otherwise it is an :class:`InvalidDeviceAccess`."""
        if not isinstance(ptr, DevicePtr):
            raise InvalidDeviceAccess(
                f"expected a DevicePtr, got {type(ptr).__name__} "
                "(host pointers are not valid on the device)"
            )
        i = bisect.bisect_right(self._block_starts, ptr.addr) - 1
        if i < 0:
            raise InvalidDeviceAccess(f"0x{ptr.addr:x} is not mapped")
        block = self._blocks[self._block_starts[i]]
        offset = ptr.addr - block.addr
        if offset + nbytes > block.size:
            raise InvalidDeviceAccess(
                f"access of {nbytes} bytes at 0x{ptr.addr:x} overruns the "
                f"{block.size}-byte allocation at 0x{block.addr:x}"
            )
        return block, offset

    def copy_in(self, ptr: DevicePtr, data: np.ndarray | bytes) -> None:
        """Host -> device transfer of raw bytes."""
        raw = np.ascontiguousarray(data).view(np.uint8).reshape(-1) if isinstance(
            data, np.ndarray
        ) else np.frombuffer(data, dtype=np.uint8)
        block, offset = self._resolve(ptr, raw.size)
        block.data[offset : offset + raw.size] = raw

    def copy_out(self, ptr: DevicePtr, nbytes: int) -> np.ndarray:
        """Device -> host transfer; returns a *copy* of the bytes."""
        block, offset = self._resolve(ptr, nbytes)
        return block.data[offset : offset + nbytes].copy()

    def copy_device_to_device(
        self, dst: DevicePtr, src: DevicePtr, nbytes: int
    ) -> None:
        """Device -> device copy (``cudaMemcpyDeviceToDevice``)."""
        src_block, src_off = self._resolve(src, nbytes)
        dst_block, dst_off = self._resolve(dst, nbytes)
        chunk = src_block.data[src_off : src_off + nbytes].copy()
        dst_block.data[dst_off : dst_off + nbytes] = chunk

    def view(self, ptr: DevicePtr, dtype: np.dtype, count: int) -> np.ndarray:
        """Typed numpy view of device bytes — **simulator internal**.

        Only the warp executor and the fast functional executor may call
        this; host-facing layers must use copy_in/copy_out.
        """
        itemsize = np.dtype(dtype).itemsize
        block, offset = self._resolve(ptr, count * itemsize)
        return block.data[offset : offset + count * itemsize].view(dtype)

    # ------------------------------------------------------------------
    # snapshot / restore (profiler replay support)
    # ------------------------------------------------------------------
    def snapshot_contents(self) -> "dict[int, np.ndarray]":
        """Copy the bytes of every live allocation, keyed by base address.

        This captures *contents only*, not allocator structure: the
        profiler's replay pass (:mod:`repro.backend.native`) re-runs a
        kernel in the SIMT emulator to collect counters and then calls
        :meth:`restore_contents` so the subsequent timed run starts from
        identical memory.  Allocations are expected to be unchanged
        between snapshot and restore — a kernel cannot alloc or free.
        """
        return {addr: blk.data.copy() for addr, blk in self._blocks.items()}

    def restore_contents(self, snapshot: "dict[int, np.ndarray]") -> None:
        """Write back bytes captured by :meth:`snapshot_contents`."""
        for addr, data in snapshot.items():
            block = self._blocks.get(addr)
            if block is None or block.size != data.size:
                raise InvalidDeviceAccess(
                    f"allocation at 0x{addr:x} changed between snapshot "
                    "and restore"
                )
            block.data[:] = data

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def allocated_bytes(self) -> int:
        return sum(b.size for b in self._blocks.values())

    @property
    def free_bytes(self) -> int:
        return sum(self._free_sizes)

    @property
    def allocation_count(self) -> int:
        return len(self._blocks)

    @property
    def largest_free_bytes(self) -> int:
        """The biggest contiguous free range (0 when memory is full).

        ``free_bytes - largest_free_bytes`` is the space only reachable
        by smaller allocations — the external-fragmentation number the
        :mod:`repro.mem` pool reports on OOM.
        """
        return max(self._free_sizes, default=0)

    def free_ranges(self) -> "list[tuple[int, int]]":
        """Address-ordered ``(start, size)`` free ranges (a copy)."""
        return list(zip(self._free_starts, self._free_sizes))

    def check_invariants(self) -> None:
        """Assert allocator invariants (used by the property tests)."""
        ranges: list[tuple[int, int, str]] = []
        for b in self._blocks.values():
            ranges.append((b.addr, b.size, "live"))
        for start, size in zip(self._free_starts, self._free_sizes):
            ranges.append((start, size, "free"))
        ranges.sort()
        cursor = BASE_ADDRESS
        for start, size, _kind in ranges:
            if start != cursor:
                raise AssertionError(
                    f"gap or overlap at 0x{cursor:x}..0x{start:x}"
                )
            cursor = start + size
        if cursor != self.capacity:
            raise AssertionError(
                f"address space ends at 0x{cursor:x}, expected 0x{self.capacity:x}"
            )
        # Free list must be fully coalesced: no two adjacent free ranges.
        for i in range(len(self._free_starts) - 1):
            assert (
                self._free_starts[i] + self._free_sizes[i]
                < self._free_starts[i + 1]
            ), "free list not coalesced"


class DeviceArrayView:
    """A typed, bounds-checked handle to an array in *global* memory.

    Kernels never index this directly: they go through the thread context
    (``ctx.ld(view, i)`` / ``ctx.st(view, i, v)``) so the executor can
    account memory transactions.  Host code constructing the view keeps the
    pointer + element type together, which is what ``cupp::memory1d`` needs.
    """

    __slots__ = ("memory", "ptr", "dtype", "count")

    def __init__(
        self,
        memory: DeviceMemory,
        ptr: DevicePtr,
        dtype: np.dtype,
        count: int,
    ) -> None:
        self.memory = memory
        self.ptr = ptr
        self.dtype = np.dtype(dtype)
        self.count = int(count)

    def addr_of(self, index: int) -> int:
        if not 0 <= index < self.count:
            raise InvalidDeviceAccess(
                f"index {index} out of bounds for DeviceArrayView of "
                f"{self.count} elements"
            )
        return self.ptr.addr + index * self.dtype.itemsize

    def _raw(self) -> np.ndarray:
        return self.memory.view(self.ptr, self.dtype, self.count)

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, _index: object) -> None:
        raise InvalidDeviceAccess(
            "global memory cannot be indexed from the host; device code "
            "must read it through the thread context (ctx.ld)"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DeviceArrayView(addr=0x{self.ptr.addr:x}, dtype={self.dtype}, "
            f"count={self.count})"
        )


class SharedMemory:
    """Per-thread-block shared memory scratchpad (16 KiB on G80).

    A block's kernel declares shared arrays at launch through
    :meth:`array`; the bump allocator enforces the per-multiprocessor
    capacity, and the total footprint feeds the occupancy calculation.
    """

    def __init__(self, capacity_bytes: int) -> None:
        self.capacity = int(capacity_bytes)
        self.used = 0
        self._arrays: list[np.ndarray] = []

    def array(self, dtype: np.dtype, count: int) -> "SharedArrayView":
        """Allocate a shared array of ``count`` elements of ``dtype``."""
        dtype = np.dtype(dtype)
        nbytes = align_up(dtype.itemsize * int(count), 4)
        if self.used + nbytes > self.capacity:
            raise OutOfDeviceMemory(
                f"shared memory exhausted: {self.used} + {nbytes} > "
                f"{self.capacity} bytes"
            )
        self.used += nbytes
        data = np.zeros(count, dtype=dtype)
        self._arrays.append(data)
        return SharedArrayView(data)


class SharedArrayView:
    """Typed handle to a shared-memory array.

    Like :class:`DeviceArrayView`, device code accesses it only via the
    thread context so shared-access cycles are accounted.
    """

    __slots__ = ("data",)

    def __init__(self, data: np.ndarray) -> None:
        self.data = data

    def __len__(self) -> int:
        return len(self.data)
