"""Discrete-event validation of the latency-hiding model.

The analytic model (:mod:`repro.simgpu.perfmodel`) claims that with ``W``
resident warps each issuing ``g`` cycles of work between device-memory
reads of latency ``L``, a multiprocessor exposes
``max(0, L - (W-1)*g)`` stall cycles per read round.  That formula is a
steady-state argument; this module *simulates* the schedule — a
round-robin warp scheduler with blocking reads — cycle by cycle, so the
test suite can hold the closed form to an executable ground truth.

(This is a model-validation instrument, not part of the execution path:
kernels run on the lockstep emulator, timing comes from the analytic
model; this simulator referees between them.)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs


@dataclass(frozen=True)
class SyntheticWarp:
    """A warp that alternates compute and memory: ``reads`` rounds of
    (``gap_cycles`` of issue work, then one read of ``issue`` cycles that
    blocks the warp for ``latency`` cycles)."""

    reads: int
    gap_cycles: int


@dataclass
class MpSimResult:
    """Outcome of one scheduled run."""

    total_cycles: int
    issue_cycles: int  # cycles the pipeline actually issued
    idle_cycles: int  # cycles nothing was ready (exposed latency)

    @property
    def utilization(self) -> float:
        return self.issue_cycles / self.total_cycles if self.total_cycles else 0.0


def simulate_mp(
    warps: int,
    reads_per_warp: int,
    gap_cycles: int,
    *,
    latency: int = 500,
    issue: int = 4,
) -> MpSimResult:
    """Schedule ``warps`` identical synthetic warps on one multiprocessor.

    The scheduling policy is greedy-till-stall (issue from one warp until
    it blocks on its read, then switch — "oldest ready first"), which is
    both how scoreboarded hardware behaves for this analysis and the
    assumption behind the analytic formula.  A perfectly *fair*
    round-robin over synchronized identical warps would convoy — every
    warp reaches its read in the same window and the whole MP stalls
    together — an artifact of the synthetic symmetry, not of real mixes.

    Reads pipeline (any number in flight); a warp that issued one is
    unavailable until its latency expires.  Returns the makespan and the
    idle (exposed) cycles.
    """
    reads_left = [reads_per_warp] * warps
    ready_at = [0] * warps  # when each warp can issue again

    with obs.span(
        "mpsim.simulate",
        warps=warps,
        reads_per_warp=reads_per_warp,
        gap_cycles=gap_cycles,
        latency=latency,
        issue=issue,
    ) as span:
        clock = 0
        issued = 0
        idle = 0
        while any(r > 0 for r in reads_left):
            # Oldest-ready-first among warps with work.
            candidates = [w for w in range(warps) if reads_left[w] > 0]
            w = min(candidates, key=lambda k: (ready_at[k], k))
            if ready_at[w] > clock:
                idle += ready_at[w] - clock
                clock = ready_at[w]
            # Greedy: the whole compute gap, then the read, back to back.
            burst = gap_cycles + issue
            clock += burst
            issued += burst
            ready_at[w] = clock + latency
            reads_left[w] -= 1
        result = MpSimResult(
            total_cycles=clock, issue_cycles=issued, idle_cycles=idle
        )
        span.set(
            total_cycles=result.total_cycles,
            idle_cycles=result.idle_cycles,
            utilization=result.utilization,
        )
    return result


def analytic_prediction(
    warps: int,
    reads_per_warp: int,
    gap_cycles: int,
    *,
    latency: int = 500,
    issue: int = 4,
) -> float:
    """The perfmodel formula evaluated on the same synthetic workload."""
    issue_total = warps * reads_per_warp * (gap_cycles + issue)
    gap_with_issue = gap_cycles + issue
    exposed_per_round = max(0.0, latency - (warps - 1) * gap_with_issue)
    read_rounds = reads_per_warp  # per MP, with W warps interleaved
    return issue_total + read_rounds * exposed_per_round
