"""Multiprocessor occupancy: how many blocks and warps stay resident.

Multiple thread blocks can be mapped onto the same multiprocessor and then
execute concurrently, splitting its registers and shared memory (§2.2).
The number of concurrently *resident* warps is what lets the hardware hide
the 400-600 cycle device-memory latency by switching between warps (§2.3),
so the occupancy computed here is a first-class input to the analytic
performance model.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.common.errors import ConfigurationError
from repro.simgpu.arch import ArchSpec


@dataclass(frozen=True)
class Occupancy:
    """Residency of one kernel configuration on one multiprocessor."""

    blocks_per_mp: int
    warps_per_block: int
    limited_by: str

    @property
    def warps_per_mp(self) -> int:
        return self.blocks_per_mp * self.warps_per_block


def compute_occupancy(
    arch: ArchSpec,
    threads_per_block: int,
    shared_bytes_per_block: int = 0,
    registers_per_thread: int = 10,
) -> Occupancy:
    """Blocks resident per multiprocessor for a launch configuration.

    Applies the four CUDA 1.0 limits: block slots, thread slots, shared
    memory, and the register file.  ``limited_by`` names the binding
    constraint (useful in reports and the ablation benchmarks).
    """
    if threads_per_block <= 0:
        raise ConfigurationError(
            f"threads_per_block must be positive, got {threads_per_block}"
        )
    if threads_per_block > arch.max_threads_per_block:
        raise ConfigurationError(
            f"{threads_per_block} threads per block exceeds the device "
            f"limit of {arch.max_threads_per_block}"
        )

    limits = {
        "block slots": arch.max_blocks_per_mp,
        "thread slots": arch.max_threads_per_mp // threads_per_block,
    }
    if shared_bytes_per_block > 0:
        limits["shared memory"] = arch.shared_mem_per_mp // shared_bytes_per_block
    if registers_per_thread > 0:
        limits["registers"] = arch.registers_per_mp // (
            registers_per_thread * threads_per_block
        )

    limited_by, blocks = min(limits.items(), key=lambda kv: kv[1])
    blocks = max(0, blocks)
    warps_per_block = math.ceil(threads_per_block / arch.warp_size)
    return Occupancy(
        blocks_per_mp=blocks,
        warps_per_block=warps_per_block,
        limited_by=limited_by,
    )


@dataclass(frozen=True)
class KernelLimits:
    """Per-thread/per-block resource appetite of one kernel.

    ``shared_bytes_static`` is the block-size-independent shared usage
    (e.g. a fixed scratch array); ``shared_bytes_per_thread`` scales with
    the block (e.g. a tile of one element per thread, as in listing
    6.2's staging buffer).  Together they describe how a candidate block
    size translates into the occupancy limits of
    :func:`compute_occupancy`.
    """

    registers_per_thread: int = 10
    shared_bytes_static: int = 0
    shared_bytes_per_thread: int = 0

    def shared_bytes(self, threads_per_block: int) -> int:
        return (
            self.shared_bytes_static
            + self.shared_bytes_per_thread * threads_per_block
        )


def suggest_block_size(
    arch: ArchSpec,
    limits: KernelLimits | None = None,
    candidates: "tuple[int, ...] | None" = None,
) -> "tuple[int, Occupancy]":
    """Sweep block sizes and return the best ``(block, occupancy)``.

    Candidates default to every warp-size multiple up to the device
    block limit.  "Best" maximizes resident warps per multiprocessor
    (what hides the 400-600 cycle read latency, §2.3); ties go to the
    **smallest** block, which gives the grid the most blocks and thus
    the best multiprocessor coverage for a fixed thread count.  Raises
    :class:`~repro.common.errors.ConfigurationError` if no candidate
    yields a resident block (e.g. the shared-memory appetite exceeds the
    multiprocessor at every size).
    """
    limits = limits or KernelLimits()
    if candidates is None:
        candidates = tuple(
            range(arch.warp_size, arch.max_threads_per_block + 1, arch.warp_size)
        )
    best: "tuple[int, Occupancy] | None" = None
    for tpb in candidates:
        if not 0 < tpb <= arch.max_threads_per_block:
            continue
        occ = compute_occupancy(
            arch,
            tpb,
            limits.shared_bytes(tpb),
            limits.registers_per_thread,
        )
        if occ.blocks_per_mp == 0:
            continue
        if best is None or occ.warps_per_mp > best[1].warps_per_mp:
            best = (tpb, occ)
    if best is None:
        raise ConfigurationError(
            f"no candidate block size fits on {arch.name}: "
            f"{limits} exceeds a multiprocessor at every size"
        )
    return best
