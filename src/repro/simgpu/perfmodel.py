"""Analytic kernel timing: instruction counts -> cycles -> seconds.

The emulator (:mod:`repro.simgpu.warp`) answers *what* a launch executed;
this module answers *how long* the G80 would take.  The model has three
terms, all direct consequences of chapter 2 of the paper:

``t_issue``
    Every warp instruction occupies the multiprocessor pipeline for its
    Table 2.2 issue cost (4 cycles for arithmetic, 16 for rcp/rsqrt, ...).
    Work distributes over the multiprocessors the grid can cover.

``t_mem``
    Device-memory throughput: payload bytes (after coalescing analysis,
    including the 32-byte minimum segment of uncoalesced accesses) over
    the device bandwidth.  This is what makes the naive neighbor search
    (version 1) memory-bound and the shared-memory version 3.3x faster.

``t_exposed``
    The 400-600 cycle read latency is hidden by switching among the
    resident warps (§2.3).  With ``W`` resident warps each issuing ``g``
    cycles of work between consecutive reads, a read exposes
    ``max(0, L - (W-1)*g)`` cycles of stall to the multiprocessor.

The kernel time is ``max(t_issue, t_mem) + t_exposed``.  The same function
serves emulator profiles (tests, microbenchmarks) and the closed-form
Boids kernel counts (paper-scale benchmarks), so the two paths cannot
drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simgpu.arch import ArchSpec, G80_8800GTS
from repro.simgpu.costs import CostTable, G80_COSTS
from repro.simgpu.multiprocessor import Occupancy, compute_occupancy
from repro.simgpu.profile import InstructionProfile


@dataclass(frozen=True)
class KernelCostInputs:
    """Warp-level aggregate counts for one kernel launch.

    ``issue_cycles`` are shader-clock cycles of pipeline occupancy summed
    over all warps; ``global_reads`` are warp-level read instructions
    (after divergence serialization); ``bytes_moved`` is total device
    memory traffic after coalescing analysis.
    """

    blocks: int
    threads_per_block: int
    issue_cycles: int
    global_reads: int
    bytes_moved: int
    shared_bytes_per_block: int = 0
    registers_per_thread: int = 10

    @property
    def warps(self) -> int:
        # Warps per block times blocks; per-block warp count rounds up.
        per_block = -(-self.threads_per_block // 32)
        return self.blocks * per_block

    @staticmethod
    def from_profile(
        profile: InstructionProfile,
        blocks: int,
        threads_per_block: int,
        shared_bytes_per_block: int = 0,
        registers_per_thread: int = 10,
        costs: CostTable = G80_COSTS,
    ) -> "KernelCostInputs":
        """Build model inputs from an emulator profile."""
        return KernelCostInputs(
            blocks=blocks,
            threads_per_block=threads_per_block,
            issue_cycles=profile.issue_cycles(costs),
            global_reads=profile.global_reads,
            bytes_moved=profile.bytes_read + profile.bytes_written,
            shared_bytes_per_block=shared_bytes_per_block,
            registers_per_thread=registers_per_thread,
        )


@dataclass(frozen=True)
class KernelTimeBreakdown:
    """Per-term timing result; ``total_s`` is the modelled kernel time."""

    t_issue_s: float
    t_mem_s: float
    t_exposed_s: float
    occupancy: Occupancy
    mps_used: int

    @property
    def total_s(self) -> float:
        return max(self.t_issue_s, self.t_mem_s) + self.t_exposed_s

    @property
    def bound_by(self) -> str:
        return "memory" if self.t_mem_s > self.t_issue_s else "issue"


def kernel_time(
    inputs: KernelCostInputs,
    arch: ArchSpec = G80_8800GTS,
    costs: CostTable = G80_COSTS,
) -> KernelTimeBreakdown:
    """Model the execution time of one kernel launch (see module docstring)."""
    occupancy = compute_occupancy(
        arch,
        inputs.threads_per_block,
        inputs.shared_bytes_per_block,
        inputs.registers_per_thread,
    )
    mps_used = max(1, min(arch.multiprocessors, inputs.blocks))

    t_issue = inputs.issue_cycles / mps_used / arch.shader_clock_hz
    t_mem = inputs.bytes_moved / arch.memory_bandwidth_bytes_per_s

    t_exposed = 0.0
    if inputs.global_reads > 0 and inputs.warps > 0:
        resident_warps = max(1, occupancy.warps_per_mp)
        reads_per_warp = inputs.global_reads / inputs.warps
        issue_per_warp = inputs.issue_cycles / inputs.warps
        gap = issue_per_warp / max(reads_per_warp, 1.0)
        exposed_per_read = max(
            0.0, costs.global_read_latency - (resident_warps - 1) * gap
        )
        read_rounds = inputs.global_reads / mps_used / resident_warps
        t_exposed = read_rounds * exposed_per_read / arch.shader_clock_hz

    return KernelTimeBreakdown(
        t_issue_s=t_issue,
        t_mem_s=t_mem,
        t_exposed_s=t_exposed,
        occupancy=occupancy,
        mps_used=mps_used,
    )


def time_from_profile(
    profile: InstructionProfile,
    blocks: int,
    threads_per_block: int,
    *,
    shared_bytes_per_block: int = 0,
    registers_per_thread: int = 10,
    arch: ArchSpec = G80_8800GTS,
    costs: CostTable = G80_COSTS,
) -> KernelTimeBreakdown:
    """Convenience wrapper: model the time of an emulator launch."""
    return kernel_time(
        KernelCostInputs.from_profile(
            profile,
            blocks,
            threads_per_block,
            shared_bytes_per_block,
            registers_per_thread,
            costs,
        ),
        arch,
        costs,
    )
