"""Execution profiles: what a kernel launch actually did.

The warp executor fills an :class:`InstructionProfile` while it runs.  The
analytic performance model (:mod:`repro.simgpu.perfmodel`) converts a
profile plus launch configuration into cycles and seconds; the closed-form
kernel cost models in :mod:`repro.gpusteer.cost_model` are validated against
these profiles in the test suite.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.simgpu.costs import CostTable, FLOP_CLASSES, OpClass


@dataclass
class InstructionProfile:
    """Warp-level instruction counts and memory traffic for one launch.

    All ``*_instructions`` counts are **per warp issue slots**: one entry
    means one warp executed one instruction (32 threads in lockstep, or
    fewer after divergence serialization — serialized groups each count
    one issue).
    """

    op_counts: Counter = field(default_factory=Counter)
    #: Number of lockstep rounds where a warp had >1 distinct event group.
    divergent_rounds: int = 0
    #: Extra serialized groups beyond the first in divergent rounds.
    serialized_groups: int = 0
    #: Global memory transactions after coalescing analysis.
    global_read_transactions: int = 0
    global_write_transactions: int = 0
    #: The coalescing split of the transaction counts above: transactions
    #: issued by half-warps that satisfied the CC 1.0 rules vs the
    #: per-thread transactions of half-warps that did not.  Constant- and
    #: texture-miss refills are counted in ``global_read_transactions``
    #: but belong to neither bucket (they go through the read-only
    #: caches, not the coalescer), so the split sums to at most the
    #: totals, never beyond.
    coalesced_transactions: int = 0
    uncoalesced_transactions: int = 0
    #: Half-warp access groups that failed to coalesce, and the bytes
    #: they moved.  One group would have been a single wide transaction;
    #: the difference against ``uncoalesced_transactions`` is the
    #: transaction reduction a perfect access pattern could claim.
    uncoalesced_groups: int = 0
    uncoalesced_bytes: int = 0
    #: The load-side slice of the uncoalesced traffic above.  The
    #: advisor's coalescing rule keys on this: uncoalesced *stores*
    #: (e.g. the v5 draw-matrix writes) are often inherent to the output
    #: layout, while uncoalesced loads are usually a fixable data-layout
    #: problem (§2.4).  Write-side numbers are the difference against
    #: the direction-agnostic counters.
    uncoalesced_read_transactions: int = 0
    uncoalesced_read_groups: int = 0
    uncoalesced_read_bytes: int = 0
    #: Payload bytes moved to/from device memory by the kernel.
    bytes_read: int = 0
    bytes_written: int = 0
    #: Barrier events (per warp arrival).
    sync_count: int = 0
    #: Number of warps that executed at least one instruction.
    warps_launched: int = 0
    #: Read-only cache behaviour (constant/texture, ch. 7 extension).
    constant_hits: int = 0
    constant_misses: int = 0
    texture_hits: int = 0
    texture_misses: int = 0
    #: Extra serialized shared-memory accesses from bank conflicts
    #: (the ">=" in Table 2.2's shared-memory row).
    shared_bank_conflicts: int = 0

    # ------------------------------------------------------------------
    def count(self, op: OpClass, n: int = 1) -> None:
        self.op_counts[op] += n

    def merge(self, other: "InstructionProfile") -> None:
        """Accumulate another profile into this one (per-block merge)."""
        self.op_counts.update(other.op_counts)
        self.divergent_rounds += other.divergent_rounds
        self.serialized_groups += other.serialized_groups
        self.global_read_transactions += other.global_read_transactions
        self.global_write_transactions += other.global_write_transactions
        self.coalesced_transactions += other.coalesced_transactions
        self.uncoalesced_transactions += other.uncoalesced_transactions
        self.uncoalesced_groups += other.uncoalesced_groups
        self.uncoalesced_bytes += other.uncoalesced_bytes
        self.uncoalesced_read_transactions += other.uncoalesced_read_transactions
        self.uncoalesced_read_groups += other.uncoalesced_read_groups
        self.uncoalesced_read_bytes += other.uncoalesced_read_bytes
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.sync_count += other.sync_count
        self.warps_launched += other.warps_launched
        self.constant_hits += other.constant_hits
        self.constant_misses += other.constant_misses
        self.texture_hits += other.texture_hits
        self.texture_misses += other.texture_misses
        self.shared_bank_conflicts += other.shared_bank_conflicts

    # ------------------------------------------------------------------
    @property
    def total_instructions(self) -> int:
        """All warp instruction issues, including memory and sync."""
        return sum(self.op_counts.values())

    @property
    def global_reads(self) -> int:
        return self.op_counts[OpClass.GLOBAL_READ]

    @property
    def global_writes(self) -> int:
        return self.op_counts[OpClass.GLOBAL_WRITE]

    @property
    def shared_accesses(self) -> int:
        return (
            self.op_counts[OpClass.SHARED_READ]
            + self.op_counts[OpClass.SHARED_WRITE]
        )

    @property
    def flops(self) -> int:
        """Warp-level FLOP issues (FMAD counted twice)."""
        total = 0
        for op, n in self.op_counts.items():
            if op in FLOP_CLASSES:
                total += n * (2 if op is OpClass.FMAD else 1)
        return total

    def issue_cycles(self, costs: CostTable) -> int:
        """Pipeline issue cycles across all warps (no latency, no hiding)."""
        return sum(
            costs.issue_cost(op) * n for op, n in self.op_counts.items()
        )

    def serialized_cycles(self, costs: CostTable) -> int:
        """Worst-case cycles with every global-read latency fully exposed.

        This is what a single resident warp would take; Table 2.2
        microbenchmarks measure exactly this.
        """
        return sum(
            costs.serialized_cost(op) * n for op, n in self.op_counts.items()
        )

    def summary(self) -> dict[str, int]:
        """Plain-dict summary for reports and assertions.

        Covers **every** counter the profile records (the test suite
        asserts the dataclass fields are all represented) plus the
        derived totals, so ``repro.prof``, the launch-span attributes,
        and the steer profiler all see the same dict.
        """
        return {
            "instructions": self.total_instructions,
            "flops": self.flops,
            "global_reads": self.global_reads,
            "global_writes": self.global_writes,
            "read_transactions": self.global_read_transactions,
            "write_transactions": self.global_write_transactions,
            "coalesced_transactions": self.coalesced_transactions,
            "uncoalesced_transactions": self.uncoalesced_transactions,
            "uncoalesced_groups": self.uncoalesced_groups,
            "uncoalesced_bytes": self.uncoalesced_bytes,
            "uncoalesced_read_transactions": self.uncoalesced_read_transactions,
            "uncoalesced_read_groups": self.uncoalesced_read_groups,
            "uncoalesced_read_bytes": self.uncoalesced_read_bytes,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "shared_accesses": self.shared_accesses,
            "divergent_rounds": self.divergent_rounds,
            "serialized_groups": self.serialized_groups,
            "syncs": self.sync_count,
            "warps": self.warps_launched,
            "constant_hits": self.constant_hits,
            "constant_misses": self.constant_misses,
            "texture_hits": self.texture_hits,
            "texture_misses": self.texture_misses,
            "shared_bank_conflicts": self.shared_bank_conflicts,
        }
