"""Pseudo-PTX kernel inspection.

§6.2.3: local variables that land in device memory "can only be
identified by reading the compiler generated assembler code (known as
PTX code)", per the *Parallel Thread Execution ISA* [Cor07d].  The
paper's authors did that by hand to build version 5; this module gives
the simulator the equivalent instrument:

* :func:`trace_kernel` — record one thread's instruction stream as a
  PTX-flavoured listing;
* :func:`find_local_spills` — report every local array a kernel
  declares, with its size: the exact information the paper dug out of
  the assembler (and the reason v3 lost to v4).

The trace runs the kernel on a scratch device for a single block, so it
is an inspection tool, not a profiler — profiles come from real launches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.simgpu.costs import OpClass
from repro.simgpu.isa import (
    ConstantReadEvent,
    GlobalReadEvent,
    GlobalWriteEvent,
    OpEvent,
    ReconvergeEvent,
    SharedReadEvent,
    SharedWriteEvent,
    SyncEvent,
    TextureReadEvent,
)

#: PTX mnemonics per instruction class (flavour, not a real assembler).
_PTX_NAMES = {
    OpClass.FADD: "add.f32",
    OpClass.FMUL: "mul.f32",
    OpClass.FMAD: "mad.f32",
    OpClass.IADD: "add.s32",
    OpClass.BITWISE: "and.b32",
    OpClass.COMPARE: "setp.lt.f32",
    OpClass.MINMAX: "min.f32",
    OpClass.RCP: "rcp.f32",
    OpClass.RSQRT: "rsqrt.f32",
    OpClass.TRANSCENDENTAL: "sin.approx.f32",
    OpClass.CONVERT: "cvt.rzi.s32.f32",
    OpClass.REGISTER: "mov.f32",
    OpClass.BRANCH: "bra",
}


@dataclass
class KernelTrace:
    """One thread's recorded instruction stream."""

    kernel_name: str
    lines: list[str] = field(default_factory=list)
    local_arrays: dict[str, int] = field(default_factory=dict)  # name -> bytes
    shared_arrays: dict[str, int] = field(default_factory=dict)

    def listing(self) -> str:
        """The pseudo-PTX text."""
        header = [f".entry {self.kernel_name}", "{"]
        decls = [
            f"    .local .align 4 .b8 __local_{name}[{nbytes}];"
            for name, nbytes in sorted(self.local_arrays.items())
        ] + [
            f"    .shared .align 4 .b8 __shared_{name}[{nbytes}];"
            for name, nbytes in sorted(self.shared_arrays.items())
        ]
        body = [f"    {line};" for line in self.lines]
        return "\n".join(header + decls + body + ["}"])

    @property
    def spills_to_device_memory(self) -> bool:
        """Does this kernel keep local arrays in device memory (§6.2.3)?"""
        return bool(self.local_arrays)


class _TracingCtx:
    """A ThreadCtx stand-in that records declarations for one thread."""

    def __init__(self, real_ctx, trace: KernelTrace) -> None:
        self._real = real_ctx
        self._trace = trace

    def __getattr__(self, name):
        return getattr(self._real, name)

    def shared_array(self, name, dtype, count):
        self._trace.shared_arrays[name] = int(np.dtype(dtype).itemsize * count)
        return self._real.shared_array(name, dtype, count)

    def local_array(self, name, dtype, count):
        self._trace.local_arrays[name] = int(np.dtype(dtype).itemsize * count)
        return self._real.local_array(name, dtype, count)


def _render(event, counter: int) -> "list[str]":
    if isinstance(event, OpEvent):
        name = _PTX_NAMES.get(event.op, event.op.value)
        return [name] * event.count
    if isinstance(event, GlobalReadEvent):
        return [f"ld.global.f32 %f{counter}, [%rd{counter}]"]
    if isinstance(event, GlobalWriteEvent):
        return [f"st.global.f32 [%rd{counter}], %f{counter}"]
    if isinstance(event, SharedReadEvent):
        return [f"ld.shared.f32 %f{counter}, [%sh{counter}]"]
    if isinstance(event, SharedWriteEvent):
        return [f"st.shared.f32 [%sh{counter}], %f{counter}"]
    if isinstance(event, ConstantReadEvent):
        return [f"ld.const.f32 %f{counter}, [%rc{counter}]"]
    if isinstance(event, TextureReadEvent):
        return [f"tex.1d.v4.f32.s32 %f{counter}, [tex0, %r{counter}]"]
    if isinstance(event, SyncEvent):
        return ["bar.sync 0"]
    if isinstance(event, ReconvergeEvent):
        return []  # the reconvergence stack pop has no instruction
    return [f"// unknown event {event!r}"]


def trace_kernel(
    kernel_fn,
    args: tuple,
    *,
    threads: int = 1,
    max_instructions: int = 20_000,
    device=None,
) -> KernelTrace:
    """Execute one block of ``kernel_fn`` and record thread 0's stream.

    ``kernel_fn`` may be a ``@global_`` wrapper or a raw generator
    function.  The kernel runs for real (memory is touched), so pass
    scratch arguments.
    """
    from repro.simgpu.device import SimDevice

    impl = getattr(kernel_fn, "impl", kernel_fn)
    device = device or SimDevice()
    trace = KernelTrace(kernel_name=impl.__name__)

    def wrapper(ctx, *kargs):
        if ctx.thread_idx.x == 0 and ctx.thread_idx.y == 0 and ctx.thread_idx.z == 0:
            tctx = _TracingCtx(ctx, trace)
            counter = 0
            gen = impl(tctx, *kargs)
            send = None
            started = False
            while len(trace.lines) < max_instructions:
                try:
                    event = gen.send(send) if started else next(gen)
                    started = True
                except StopIteration:
                    return
                trace.lines.extend(_render(event, counter))
                counter += 1
                send = yield event
        else:
            yield from impl(ctx, *kargs)

    device.launch(wrapper, 1, threads, args, strict_sync=False)
    return trace


def find_local_spills(kernel_fn, args: tuple, *, threads: int = 1) -> dict:
    """The §6.2.3 question, answered directly: which local arrays does
    this kernel spill to device memory, and how many bytes each?"""
    return trace_kernel(kernel_fn, args, threads=threads).local_arrays
