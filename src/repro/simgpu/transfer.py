"""Host<->device transfer timing and asynchronous-execution bookkeeping.

Two facts from §2.2 drive the double-buffering result of Fig. 6.4:

1. *A kernel invocation does not block the host* — host and device run in
   parallel after a launch.
2. *Device memory can only be accessed by the host if no kernel is active*
   — a ``cudaMemcpy`` (and therefore every lazy ``cupp::vector`` read)
   blocks the host until the device is idle.

:class:`DeviceTimeline` models both with two clocks: the host clock, which
the caller advances as host work happens, and ``device_busy_until``, which
kernel launches push forward.  :class:`PcieModel` supplies the transfer
cost itself: a fixed per-call overhead (driver + DMA setup dominated
real-world CUDA 1.0 transfers of small buffers) plus bytes over effective
bandwidth.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PcieModel:
    """PCIe 1.0 x16 era interconnect: ~4 GB/s raw, ~2.5 GB/s effective for
    pageable host memory, and tens of microseconds of per-call overhead."""

    bandwidth_bytes_per_s: float = 2.5e9
    per_call_overhead_s: float = 15e-6

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` in one ``cudaMemcpy``-style call."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        return self.per_call_overhead_s + nbytes / self.bandwidth_bytes_per_s


@dataclass
class DeviceTimeline:
    """Async host/device clocks (seconds since an arbitrary origin)."""

    pcie: PcieModel = field(default_factory=PcieModel)
    host_time: float = 0.0
    device_busy_until: float = 0.0
    #: Fixed host cost to configure + launch one kernel (driver call chain
    #: cudaConfigureCall/cudaSetupArgument*/cudaLaunch).
    launch_overhead_s: float = 10e-6

    def reset(self) -> None:
        self.host_time = 0.0
        self.device_busy_until = 0.0

    # ------------------------------------------------------------------
    def host_work(self, seconds: float) -> None:
        """The host computes for ``seconds`` (device may run in parallel)."""
        self.host_time += seconds

    def launch_kernel(self, duration_s: float) -> None:
        """Asynchronously enqueue a kernel that runs for ``duration_s``.

        The host pays only the launch overhead; the device starts when it
        is free (kernels never overlap each other, §2.2).
        """
        self.host_time += self.launch_overhead_s
        start = max(self.host_time, self.device_busy_until)
        self.device_busy_until = start + duration_s

    def synchronize(self) -> float:
        """Block the host until the device is idle; returns the wait."""
        wait = max(0.0, self.device_busy_until - self.host_time)
        self.host_time += wait
        return wait

    def memcpy(self, nbytes: int) -> float:
        """A blocking host<->device copy: implicit synchronization plus the
        transfer itself.  Returns the total host time consumed."""
        wait = self.synchronize()
        cost = self.pcie.transfer_time(nbytes)
        self.host_time += cost
        # The bus is busy during the copy; the device cannot start a new
        # kernel before it completes.
        self.device_busy_until = self.host_time
        return wait + cost
