"""Host<->device transfer timing and asynchronous-execution bookkeeping.

Two facts from §2.2 drive the double-buffering result of Fig. 6.4:

1. *A kernel invocation does not block the host* — host and device run in
   parallel after a launch.
2. *Device memory can only be accessed by the host if no kernel is active*
   — a ``cudaMemcpy`` (and therefore every lazy ``cupp::vector`` read)
   blocks the host until the device is idle.

:class:`DeviceTimeline` models both with two clocks: the host clock, which
the caller advances as host work happens, and ``device_busy_until``, which
kernel launches push forward.  :class:`PcieModel` supplies the transfer
cost itself: a fixed per-call overhead (driver + DMA setup dominated
real-world CUDA 1.0 transfers of small buffers) plus bytes over effective
bandwidth.

Streams and events
------------------

On top of the serial clocks the timeline models CUDA streams the way the
``asyncAPI``/``concurrentKernels`` samples use them: the device owns one
*copy-engine* track (the DMA engine; all async copies serialize on it)
and ``compute_track_count`` *compute* tracks.  Work submitted to one
stream serializes in submission order; work on different streams may
overlap whenever distinct tracks are free.  An event records the
completion time of everything submitted to its stream so far, and a
``stream_wait_event`` dependency resolves as the max of the waiting
stream's own front and the event's timestamp — i.e. dependent work starts
at the max of its predecessors' completions.

Zero-byte copies
----------------

A zero-byte ``cudaMemcpy`` is modeled as a **driver no-op that is still a
synchronization point**: :meth:`PcieModel.transfer_time` returns ``0.0``
for ``nbytes == 0`` (no per-call overhead — the driver never programs the
DMA engine), and :meth:`DeviceTimeline.memcpy` degenerates to a plain
:meth:`DeviceTimeline.synchronize` without touching ``device_busy_until``.
Both backends (sim and native) share this timeline, so they agree by
construction; the conformance suite pins it.

Legacy (default-stream) operations — :meth:`DeviceTimeline.launch_kernel`,
:meth:`DeviceTimeline.memcpy` — keep CUDA's null-stream semantics: they
serialize against *every* track, and stream work submitted later will not
start before them.  A schedule that only ever touches one stream is
arithmetically identical to the old serial timeline (the property suite
asserts byte-identity).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class PcieModel:
    """PCIe 1.0 x16 era interconnect: ~4 GB/s raw, ~2.5 GB/s effective for
    pageable host memory, and tens of microseconds of per-call overhead."""

    bandwidth_bytes_per_s: float = 2.5e9
    per_call_overhead_s: float = 15e-6

    def transfer_time(self, nbytes: int) -> float:
        """Seconds to move ``nbytes`` in one ``cudaMemcpy``-style call.

        A zero-byte copy is a driver no-op: the DMA engine is never
        programmed, so neither the per-call overhead nor any bus time is
        charged.
        """
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.per_call_overhead_s + nbytes / self.bandwidth_bytes_per_s


@dataclass
class Stream:
    """One in-order work queue on a device timeline.

    ``ready_s`` is the completion time of the last operation submitted to
    the stream (the stream's *front*); new work on the stream starts no
    earlier than this.
    """

    stream_id: int
    ready_s: float = 0.0
    destroyed: bool = False


@dataclass
class Event:
    """A marker in a stream's work queue.

    ``timestamp_s`` is ``None`` until the event is recorded; once
    recorded it holds the completion time of everything submitted to the
    recording stream before the record call (max of predecessor
    completions, since the stream serializes them).
    """

    event_id: int
    timestamp_s: "float | None" = None
    destroyed: bool = False


@dataclass(frozen=True)
class StreamOp:
    """The scheduled interval of one stream operation.

    Returned by :meth:`DeviceTimeline.stream_launch` /
    :meth:`DeviceTimeline.stream_memcpy` so callers (flight recorder,
    schedulers) can paint per-stream utilization tracks without the
    timeline retaining history.
    """

    kind: str  # "kernel" | "copy"
    stream_id: int
    track: str  # "copy" or "compute<k>"
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


class DeviceTimeline:
    """Async host/device clocks (seconds since an arbitrary origin).

    The serial API (``launch_kernel``/``memcpy``/``synchronize``) is the
    CUDA 1.0 null stream; the ``stream_*`` API adds overlap on one
    copy-engine track plus ``compute_track_count`` compute tracks.
    """

    def __init__(
        self,
        pcie: "PcieModel | None" = None,
        host_time: float = 0.0,
        device_busy_until: float = 0.0,
        *,
        compute_track_count: int = 2,
    ) -> None:
        if compute_track_count < 1:
            raise ValueError(
                f"compute_track_count must be >= 1, got {compute_track_count}"
            )
        self.pcie = pcie if pcie is not None else PcieModel()
        self.host_time = host_time
        #: Fixed host cost to configure + launch one kernel (driver call
        #: chain cudaConfigureCall/cudaSetupArgument*/cudaLaunch).
        self.launch_overhead_s = 10e-6
        #: Host cost to *submit* an async op to a stream.  Zero by
        #: default so a single-stream schedule is byte-identical to the
        #: serial timeline (the DMA per-call overhead is charged to the
        #: copy engine, not the host).
        self.async_submit_overhead_s = 0.0
        self._serial_busy_until = device_busy_until
        self._copy_busy_until = 0.0
        self._compute_busy_until = [0.0] * compute_track_count
        self._streams: list[Stream] = []
        self._events: list[Event] = []

    # -- device clock ---------------------------------------------------
    @property
    def device_busy_until(self) -> float:
        """When the device goes fully idle: max over the legacy serial
        clock, the copy engine, and every compute track."""
        return max(
            self._serial_busy_until,
            self._copy_busy_until,
            *self._compute_busy_until,
        )

    @device_busy_until.setter
    def device_busy_until(self, value: float) -> None:
        # Legacy callers (e.g. the d2d copy path) assign the scalar clock
        # directly; stream tracks are left untouched.
        self._serial_busy_until = value

    def reset(self) -> None:
        self.host_time = 0.0
        self._serial_busy_until = 0.0
        self._copy_busy_until = 0.0
        self._compute_busy_until = [0.0] * len(self._compute_busy_until)
        for s in self._streams:
            s.ready_s = 0.0
        for e in self._events:
            e.timestamp_s = None

    # -- serial (null stream) API --------------------------------------
    def host_work(self, seconds: float) -> None:
        """The host computes for ``seconds`` (device may run in parallel)."""
        self.host_time += seconds

    def launch_kernel(self, duration_s: float) -> None:
        """Asynchronously enqueue a kernel that runs for ``duration_s``.

        The host pays only the launch overhead; the device starts when it
        is free (null-stream launches never overlap anything, §2.2).
        """
        self.host_time += self.launch_overhead_s
        start = max(self.host_time, self.device_busy_until)
        self._serial_busy_until = start + duration_s

    def synchronize(self) -> float:
        """Block the host until the device is idle; returns the wait."""
        wait = max(0.0, self.device_busy_until - self.host_time)
        self.host_time += wait
        return wait

    def memcpy(self, nbytes: int) -> float:
        """A blocking host<->device copy: implicit synchronization plus the
        transfer itself.  Returns the total host time consumed.

        A zero-byte copy is a pure synchronization point: the driver
        no-ops the DMA, so no per-call overhead is charged and the
        device-busy clock is left alone.
        """
        wait = self.synchronize()
        if nbytes == 0:
            return wait
        cost = self.pcie.transfer_time(nbytes)
        self.host_time += cost
        # The bus is busy during the copy; the device cannot start a new
        # kernel before it completes.
        self.device_busy_until = self.host_time
        return wait + cost

    # -- streams & events ----------------------------------------------
    def create_stream(self) -> Stream:
        """Create a new in-order work queue (``cudaStreamCreate``)."""
        stream = Stream(stream_id=len(self._streams))
        self._streams.append(stream)
        return stream

    def destroy_stream(self, stream: Stream) -> None:
        """Invalidate ``stream``; already-submitted work keeps its times."""
        self._check_stream(stream)
        stream.destroyed = True

    def create_event(self) -> Event:
        """Create an unrecorded event (``cudaEventCreate``)."""
        event = Event(event_id=len(self._events))
        self._events.append(event)
        return event

    def destroy_event(self, event: Event) -> None:
        self._check_event(event)
        event.destroyed = True

    def _check_stream(self, stream: Stream) -> None:
        if stream.destroyed or stream not in self._streams:
            raise ValueError(f"invalid or destroyed stream {stream!r}")

    def _check_event(self, event: Event) -> None:
        if event.destroyed or event not in self._events:
            raise ValueError(f"invalid or destroyed event {event!r}")

    def _stream_front(self, stream: Stream) -> float:
        # New stream work starts no earlier than: the stream's own front
        # (in-order queue), the submitting host call, and any null-stream
        # work (the null stream synchronizes with everything).
        return max(stream.ready_s, self.host_time, self._serial_busy_until)

    def stream_launch(self, stream: Stream, duration_s: float) -> StreamOp:
        """Enqueue a kernel on ``stream``; picks the earliest-free compute
        track.  Kernels on the same stream serialize; kernels on distinct
        streams overlap when distinct tracks are free."""
        self._check_stream(stream)
        self.host_time += self.launch_overhead_s
        ready = self._stream_front(stream)
        track = min(
            range(len(self._compute_busy_until)),
            key=lambda i: self._compute_busy_until[i],
        )
        start = max(ready, self._compute_busy_until[track])
        end = start + duration_s
        self._compute_busy_until[track] = end
        stream.ready_s = end
        return StreamOp("kernel", stream.stream_id, f"compute{track}", start, end)

    def stream_memcpy(self, stream: Stream, nbytes: int) -> StreamOp:
        """Enqueue an async copy on ``stream`` (``cudaMemcpyAsync``).

        The host pays only :attr:`async_submit_overhead_s`; the DMA
        per-call overhead and the bus time are charged to the copy-engine
        track, on which all async copies serialize.  A zero-byte copy
        still orders the stream but never touches the engine clock (the
        driver no-ops the DMA), so it cannot inflate
        :attr:`device_busy_until` past what actually ran.
        """
        self._check_stream(stream)
        if nbytes < 0:
            raise ValueError(f"nbytes must be non-negative, got {nbytes}")
        self.host_time += self.async_submit_overhead_s
        ready = self._stream_front(stream)
        start = max(ready, self._copy_busy_until)
        end = start + self.pcie.transfer_time(nbytes)
        if nbytes:
            self._copy_busy_until = end
        stream.ready_s = end
        return StreamOp("copy", stream.stream_id, "copy", start, end)

    def record_event(self, event: Event, stream: "Stream | None" = None) -> float:
        """Record ``event`` after the work currently in ``stream``
        (``cudaEventRecord``).  ``stream=None`` records on the null
        stream: the event completes when the whole device drains."""
        self._check_event(event)
        if stream is None:
            event.timestamp_s = max(self.host_time, self.device_busy_until)
        else:
            self._check_stream(stream)
            event.timestamp_s = max(stream.ready_s, self.host_time)
        return event.timestamp_s

    def stream_wait_event(self, stream: Stream, event: Event) -> None:
        """Make future work on ``stream`` wait for ``event``
        (``cudaStreamWaitEvent``): the stream's front becomes the max of
        its own completions and the event's — dependencies resolve as
        max-of-predecessor-completions.  Waiting on an unrecorded event
        is a no-op (CUDA semantics).  Costs the host nothing."""
        self._check_stream(stream)
        self._check_event(event)
        if event.timestamp_s is not None:
            stream.ready_s = max(stream.ready_s, event.timestamp_s)

    def stream_synchronize(self, stream: Stream) -> float:
        """Block the host until ``stream`` drains; returns the wait."""
        self._check_stream(stream)
        wait = max(0.0, stream.ready_s - self.host_time)
        self.host_time += wait
        return wait

    def event_synchronize(self, event: Event) -> float:
        """Block the host until ``event`` completes; returns the wait.
        An unrecorded event is already complete (CUDA semantics)."""
        self._check_event(event)
        if event.timestamp_s is None:
            return 0.0
        wait = max(0.0, event.timestamp_s - self.host_time)
        self.host_time += wait
        return wait
