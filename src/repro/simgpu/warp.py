"""Warp-lockstep execution with SIMD divergence serialization.

A warp advances all of its runnable threads one instruction event per
*round*.  Events are grouped by :func:`repro.simgpu.isa.signature`; one
group means the warp executed the instruction in lockstep, more than one
means the control flow diverged and the hardware serializes the groups
(§2.3: "the different execution paths are then executed one after
another").  Every serialized group pays the full warp issue cost, which is
exactly how divergence loses performance on the real part.

Global-memory accesses inside a round go through a CUDA-1.0-style
coalescing analysis per half-warp: thread ``k`` must read the ``k``-th
consecutive aligned word for the half-warp to merge into one transaction;
anything else — including all threads reading the *same* address, which is
what the naive Boids neighbor search does — issues one transaction per
thread.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Generator

from repro.common.errors import ReproError
from repro.simgpu.costs import OpClass
from repro.simgpu.isa import (
    ConstantReadEvent,
    Event,
    GlobalReadEvent,
    GlobalWriteEvent,
    OpEvent,
    ReconvergeEvent,
    SharedReadEvent,
    SharedWriteEvent,
    SyncEvent,
    TextureReadEvent,
    signature,
)
from repro.simgpu.profile import InstructionProfile

#: Half-warp size used by the CC 1.0 coalescing rules.
HALF_WARP = 16

#: Minimum device-memory transaction size in bytes (uncoalesced accesses
#: still move a full 32-byte segment on G80).
MIN_TRANSACTION_BYTES = 32

#: Word sizes the coalescer can merge (32-, 64-, 128-bit accesses).
COALESCABLE_ITEMSIZES = (4, 8, 16)

#: Shared-memory banks on the G80 (32-bit words, round-robin).
SHARED_BANKS = 16


class KernelFault(ReproError):
    """A kernel thread raised or yielded something invalid."""


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    AT_SYNC = "at_sync"
    AT_RECONV = "at_reconv"  # parked at a warp reconvergence point
    DONE = "done"


@dataclass
class Thread:
    """One device thread: a generator plus its lockstep bookkeeping."""

    lane: int  # flat index within the block
    gen: Generator[Event, object, None]
    state: ThreadState = ThreadState.RUNNABLE
    send_value: object = None  # value to send into the generator next step
    started: bool = False
    pending: Event | None = None  # event yielded, not yet executed


class Warp:
    """A SIMD group of up to ``warp_size`` threads executed in lockstep."""

    def __init__(
        self,
        threads: list[Thread],
        warp_size: int,
        caches: "dict[str, object] | None" = None,
    ) -> None:
        if len(threads) > warp_size:
            raise KernelFault(
                f"warp constructed with {len(threads)} > {warp_size} threads"
            )
        self.threads = threads
        self.warp_size = warp_size
        #: Read-only cache simulators shared across the block's warps
        #: ("constant"/"texture" -> CacheSim), or None when absent.
        self.caches = caches or {}

    # ------------------------------------------------------------------
    @property
    def live_threads(self) -> list[Thread]:
        return [t for t in self.threads if t.state is not ThreadState.DONE]

    @property
    def runnable_threads(self) -> list[Thread]:
        return [t for t in self.threads if t.state is ThreadState.RUNNABLE]

    @property
    def done(self) -> bool:
        return not self.live_threads

    # ------------------------------------------------------------------
    def step_round(self, profile: InstructionProfile) -> bool:
        """Advance every runnable thread one event and execute the events.

        Returns True if any thread made progress.  Threads that yield a
        :class:`SyncEvent` transition to AT_SYNC and stay parked until the
        block releases the barrier.
        """
        runnable = self.runnable_threads
        if not runnable:
            # Reconvergence: the warp re-joins once no thread can advance
            # past the marker — diverged paths have all caught up.
            parked = [
                t for t in self.threads if t.state is ThreadState.AT_RECONV
            ]
            if parked:
                for t in parked:
                    t.state = ThreadState.RUNNABLE
                return True
            return False

        # 1. Fetch: advance each runnable generator to its next event.
        fetched: list[Thread] = []
        for t in runnable:
            if t.pending is None:
                try:
                    if t.started:
                        t.pending = t.gen.send(t.send_value)
                    else:
                        t.started = True
                        t.pending = next(t.gen)
                    t.send_value = None
                except StopIteration:
                    t.state = ThreadState.DONE
                    continue
                except Exception as exc:  # surface kernel bugs loudly
                    raise KernelFault(
                        f"thread {t.lane} raised {type(exc).__name__}: {exc}"
                    ) from exc
            fetched.append(t)
        if not fetched:
            return True  # every runnable thread just finished

        # 2. Group by divergence signature, in first-lane order.
        groups: dict[tuple, list[Thread]] = {}
        for t in fetched:
            groups.setdefault(signature(t.pending), []).append(t)
        if len(groups) > 1:
            profile.divergent_rounds += 1
            profile.serialized_groups += len(groups) - 1

        # 3. Execute each group serialized; each pays a full warp issue.
        for _sig, members in sorted(
            groups.items(), key=lambda kv: kv[1][0].lane
        ):
            self._execute_group(members, profile)
        return True

    # ------------------------------------------------------------------
    def _execute_group(
        self, members: list[Thread], profile: InstructionProfile
    ) -> None:
        event = members[0].pending
        if isinstance(event, OpEvent):
            profile.count(event.op, event.count)
            for t in members:
                t.pending = None
        elif isinstance(event, GlobalReadEvent):
            profile.count(OpClass.GLOBAL_READ)
            self._coalesce(members, profile, is_read=True)
            for t in members:
                ev: GlobalReadEvent = t.pending  # type: ignore[assignment]
                t.send_value = ev.array._raw()[ev.index].item()
                t.pending = None
        elif isinstance(event, GlobalWriteEvent):
            profile.count(OpClass.GLOBAL_WRITE)
            self._coalesce(members, profile, is_read=False)
            for t in members:
                ev: GlobalWriteEvent = t.pending  # type: ignore[assignment]
                ev.array._raw()[ev.index] = ev.value
                t.pending = None
        elif isinstance(event, SharedReadEvent):
            degree = self._shared_conflict_degree(members)
            profile.count(OpClass.SHARED_READ, degree)
            profile.shared_bank_conflicts += degree - 1
            for t in members:
                ev: SharedReadEvent = t.pending  # type: ignore[assignment]
                t.send_value = ev.array.data[ev.index].item()
                t.pending = None
        elif isinstance(event, SharedWriteEvent):
            degree = self._shared_conflict_degree(members)
            profile.count(OpClass.SHARED_WRITE, degree)
            profile.shared_bank_conflicts += degree - 1
            for t in members:
                ev: SharedWriteEvent = t.pending  # type: ignore[assignment]
                ev.array.data[ev.index] = ev.value
                t.pending = None
        elif isinstance(event, ConstantReadEvent):
            self._execute_constant_reads(members, profile)
        elif isinstance(event, TextureReadEvent):
            self._execute_texture_reads(members, profile)
        elif isinstance(event, SyncEvent):
            profile.count(OpClass.SYNC)
            profile.sync_count += 1
            for t in members:
                t.state = ThreadState.AT_SYNC
                t.pending = None
        elif isinstance(event, ReconvergeEvent):
            # Free: reconvergence is the branch stack popping, not an
            # issued instruction.
            for t in members:
                t.state = ThreadState.AT_RECONV
                t.pending = None
        else:
            raise KernelFault(f"kernel yielded a non-event: {event!r}")

    # ------------------------------------------------------------------
    def _shared_conflict_degree(self, members: list[Thread]) -> int:
        """Shared-memory bank conflicts (the "≥" in Table 2.2's ">= 4").

        The G80's shared memory has 16 banks of 32-bit words; a half-warp
        whose threads hit the same bank with *different* addresses
        serializes, multiplying the access cost by the conflict degree.
        All threads reading one identical address broadcast for free.
        Returns the worst half-warp's degree (>= 1).
        """
        worst = 1
        by_half: dict[int, list[Thread]] = {}
        for t in members:
            by_half.setdefault(
                (t.lane % self.warp_size) // HALF_WARP, []
            ).append(t)
        for group in by_half.values():
            banks: dict[int, set[int]] = {}
            for t in group:
                ev = t.pending
                word = (
                    ev.index * ev.array.data.dtype.itemsize
                ) // 4  # 32-bit word address
                banks.setdefault(word % SHARED_BANKS, set()).add(word)
            degree = max(
                (len(words) for words in banks.values()), default=1
            )
            worst = max(worst, degree)
        return worst

    # ------------------------------------------------------------------
    def _execute_constant_reads(
        self, members: list[Thread], profile: InstructionProfile
    ) -> None:
        """Constant reads broadcast: one issue per *distinct address* in
        the group; first touch of a cache line is a device-memory miss."""
        cache = self.caches.get("constant")
        addresses: dict[int, None] = {}
        for t in members:
            ev: ConstantReadEvent = t.pending  # type: ignore[assignment]
            addresses[ev.array.addr_of(ev.index)] = None
            t.send_value = ev.array._raw()[ev.index].item()
            t.pending = None
        profile.count(OpClass.CONSTANT_READ, len(addresses))
        for addr in addresses:
            if cache is not None and not cache.access(addr):
                profile.constant_misses += 1
                profile.global_read_transactions += 1
                profile.bytes_read += MIN_TRANSACTION_BYTES
            else:
                profile.constant_hits += 1

    def _execute_texture_reads(
        self, members: list[Thread], profile: InstructionProfile
    ) -> None:
        """Texture fetches: per-thread addressing, cached in lines; each
        missed line is one device-memory transaction."""
        cache = self.caches.get("texture")
        profile.count(OpClass.TEXTURE_READ)
        for t in members:
            ev: TextureReadEvent = t.pending  # type: ignore[assignment]
            addr = ev.texref.addr_of(ev.index)
            t.send_value = ev.texref._raw()[ev.index].item()
            t.pending = None
            if cache is not None and not cache.access(addr):
                profile.texture_misses += 1
                profile.global_read_transactions += 1
                profile.bytes_read += MIN_TRANSACTION_BYTES
            else:
                profile.texture_hits += 1

    # ------------------------------------------------------------------
    def _coalesce(
        self,
        members: list[Thread],
        profile: InstructionProfile,
        *,
        is_read: bool,
    ) -> None:
        """CC 1.0 coalescing per half-warp.

        Coalesced: every active thread ``k`` (in lane order) accesses
        ``base + k * itemsize`` with ``itemsize`` in {4, 8, 16} and
        ``base`` aligned to ``HALF_WARP * itemsize``.  Then the half-warp
        issues one transaction.  Otherwise each active thread issues its
        own >= 32-byte transaction — the G80 has no cache to merge them.
        """
        by_half: dict[int, list[Thread]] = {}
        for t in members:
            by_half.setdefault((t.lane % self.warp_size) // HALF_WARP, []).append(t)
        for _hw, group in by_half.items():
            group.sort(key=lambda t: t.lane)
            accesses = []
            for t in group:
                ev = t.pending
                itemsize = ev.array.dtype.itemsize
                addr = (
                    ev.array.addr_of(ev.index)
                    if hasattr(ev.array, "addr_of")
                    else None
                )
                accesses.append((addr, itemsize))
            itemsizes = {sz for _a, sz in accesses}
            coalesced = False
            if len(itemsizes) == 1:
                itemsize = next(iter(itemsizes))
                if itemsize in COALESCABLE_ITEMSIZES:
                    lane0 = group[0].lane % HALF_WARP
                    base = accesses[0][0] - lane0 * itemsize
                    coalesced = base % (HALF_WARP * itemsize) == 0 and all(
                        addr == base + (t.lane % HALF_WARP) * itemsize
                        for (addr, _sz), t in zip(accesses, group)
                    )
            payload = sum(sz for _a, sz in accesses)
            if coalesced:
                transactions = 1
                moved = max(payload, MIN_TRANSACTION_BYTES)
                profile.coalesced_transactions += 1
            else:
                transactions = len(group)
                moved = sum(
                    max(sz, MIN_TRANSACTION_BYTES) for _a, sz in accesses
                )
                profile.uncoalesced_transactions += transactions
                profile.uncoalesced_groups += 1
                profile.uncoalesced_bytes += moved
                if is_read:
                    profile.uncoalesced_read_transactions += transactions
                    profile.uncoalesced_read_groups += 1
                    profile.uncoalesced_read_bytes += moved
            if is_read:
                profile.global_read_transactions += transactions
                profile.bytes_read += moved
            else:
                profile.global_write_transactions += transactions
                profile.bytes_written += moved
