"""OpenSteer Boids substrate (paper ch. 5).

The CPU flocking simulation the GPU port starts from: Vec3 math, the
agent/vehicle model with a spherical world, the 7-nearest neighbor search
(listing 5.2), the separation/alignment/cohesion behaviors (listings
5.3-5.5), the staged main loop with think frequency (§5.3), and the
Athlon-64 timing model + stage profiler behind Figs. 5.5 and 5.6.
"""

from repro.steer.agent import (
    Agent,
    apply_steering,
    draw_matrix,
    spawn_agents,
    wrap_spherical,
)
from repro.steer.behaviors import (
    alignment_np,
    alignment_pure,
    cohesion_np,
    cohesion_pure,
    flocking_np,
    flocking_pure,
    separation_np,
    separation_pure,
)
from repro.steer.cpu_model import CpuCostModel, DEFAULT_CPU_MODEL
from repro.steer.demo import (
    Annotation,
    AnnotationItem,
    Clock,
    DemoError,
    OpenSteerDemo,
    PlugIn,
)
from repro.steer.neighbors import (
    NO_NEIGHBOR,
    neighbor_search_all,
    neighbor_search_all_kdtree,
    neighbor_search_all_numpy,
    neighbor_search_all_pure,
    neighbor_search_pure,
)
from repro.steer.params import BoidsParams, DEFAULT_PARAMS, THINK_FREQ_PARAMS
from repro.steer.plugins import BoidsPlugIn, PursuitPlugIn
from repro.steer.profiler import STAGES, StageProfile
from repro.steer.simulation import (
    ReferenceSimulation,
    Simulation,
    StepTiming,
    think_cohort,
)
from repro.steer.vec3 import UNIT_X, UNIT_Y, UNIT_Z, Vec3, ZERO

__all__ = [
    "Agent",
    "Annotation",
    "AnnotationItem",
    "BoidsParams",
    "BoidsPlugIn",
    "Clock",
    "DemoError",
    "OpenSteerDemo",
    "PlugIn",
    "PursuitPlugIn",
    "CpuCostModel",
    "DEFAULT_CPU_MODEL",
    "DEFAULT_PARAMS",
    "NO_NEIGHBOR",
    "ReferenceSimulation",
    "STAGES",
    "Simulation",
    "StageProfile",
    "StepTiming",
    "THINK_FREQ_PARAMS",
    "UNIT_X",
    "UNIT_Y",
    "UNIT_Z",
    "Vec3",
    "ZERO",
    "alignment_np",
    "alignment_pure",
    "apply_steering",
    "cohesion_np",
    "cohesion_pure",
    "draw_matrix",
    "flocking_np",
    "flocking_pure",
    "neighbor_search_all",
    "neighbor_search_all_kdtree",
    "neighbor_search_all_numpy",
    "neighbor_search_all_pure",
    "neighbor_search_pure",
    "separation_np",
    "separation_pure",
    "spawn_agents",
    "think_cohort",
    "wrap_spherical",
]
