"""The Boids agent and its vehicle model (paper §5.1, §5.3).

An agent is a sphere with a position, a forward direction, and a speed.
The only action it can take is to accelerate in some direction — the
steering vector's direction is where it wants to go, its length is the
acceleration (§5.1).

:func:`apply_steering` is the modification substage for one agent: the
simplified OpenSteer vehicle model (clip force, integrate, clip speed,
re-derive forward) plus the spherical-world wraparound.  The acceleration
smoothing carries state across steps, which is why the modification
kernel needs its "first simulation time step" branch (§6.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.rng import make_rng
from repro.steer.params import BoidsParams
from repro.steer.vec3 import Vec3


@dataclass
class Agent:
    """Mutable per-agent state (the pure-Python reference representation;
    the numpy engine stores the same fields as column arrays)."""

    position: Vec3
    forward: Vec3
    speed: float
    smoothed_accel: Vec3 = field(default_factory=Vec3)
    steps: int = 0  # simulation steps already applied (smoothing gate)

    @property
    def velocity(self) -> Vec3:
        return self.forward * self.speed


def spawn_agents(n: int, params: BoidsParams, seed: int | None = None) -> list[Agent]:
    """Deterministically place ``n`` agents uniformly inside the world
    sphere with random headings and cruise speed."""
    rng = make_rng(seed)
    agents: list[Agent] = []
    for _ in range(n):
        # Uniform point in a ball: direction * radius * u^(1/3).
        direction = Vec3.from_tuple(rng.normal(size=3)).normalize()
        radius = params.world_radius * 0.9 * float(rng.random()) ** (1 / 3)
        heading = Vec3.from_tuple(rng.normal(size=3)).normalize()
        agents.append(
            Agent(
                position=direction * radius,
                forward=heading,
                speed=params.max_speed * 0.5,
            )
        )
    return agents


def wrap_spherical(position: Vec3, world_radius: float) -> Vec3:
    """§5.1: "An agent leaving the world is put back into the world at the
    diametric opposite point."""
    if position.length_squared() > world_radius * world_radius:
        return -position
    return position


def apply_steering(agent: Agent, steering: Vec3, params: BoidsParams) -> None:
    """The modification substage for one agent (in place)."""
    force = steering.truncate_length(params.max_force)
    accel = force / params.mass
    if agent.steps == 0:
        # First step: no history to smooth against (the §6.3.1 branch).
        smoothed = accel
    else:
        s = params.accel_smoothing
        smoothed = agent.smoothed_accel * (1.0 - s) + accel * s
    agent.smoothed_accel = smoothed

    velocity = agent.velocity + smoothed * params.dt
    speed = velocity.length()
    if speed > params.max_speed:
        velocity = velocity * (params.max_speed / speed)
        speed = params.max_speed
    agent.position = wrap_spherical(
        agent.position + velocity * params.dt, params.world_radius
    )
    if speed > 1e-12:
        agent.forward = velocity / speed
    agent.speed = speed
    agent.steps += 1


def draw_matrix(agent: Agent) -> tuple:
    """The 4x4 transform the draw stage needs per agent — the only data
    version 5 moves back to the host each frame (§6.2.3: "a 4x4 matrix
    containing 16 float values")."""
    f = agent.forward
    # Build an orthonormal basis around forward.
    up_hint = Vec3(0.0, 1.0, 0.0) if abs(f.y) < 0.99 else Vec3(1.0, 0.0, 0.0)
    side = f.cross(up_hint).normalize()
    up = side.cross(f)
    p = agent.position
    return (
        (side.x, side.y, side.z, 0.0),
        (up.x, up.y, up.z, 0.0),
        (f.x, f.y, f.z, 0.0),
        (p.x, p.y, p.z, 1.0),
    )
