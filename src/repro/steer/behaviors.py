"""The three basic steering behaviors and their flocking combination
(paper §5.2, listings 5.1 / 5.3 / 5.4 / 5.5).

Each behavior maps an agent and its neighborhood to a steering vector:

* **separation** — keep distance: sum of ``-offset.normalize()/|offset|``
  over neighbors (1/d falloff);
* **cohesion** — move toward the neighborhood: sum of position offsets;
* **alignment** — fly the same way: sum of neighbor headings minus
  ``count * my_forward``;
* **flocking** — ``wA*norm(sep) + wB*norm(align) + wC*norm(coh)``.

Pure (Vec3) versions are the reference the GPU kernels are tested
against; the numpy versions vectorize over all agents at once for the
benchmark-scale runs.
"""

from __future__ import annotations

import numpy as np

from repro.steer.neighbors import NO_NEIGHBOR
from repro.steer.params import BoidsParams
from repro.steer.vec3 import Vec3


# ----------------------------------------------------------------------
# Pure reference implementations (listings 5.3-5.5, one agent at a time)
# ----------------------------------------------------------------------
def separation_pure(
    me: int, positions: "list[Vec3]", neighborhood: "list[int]"
) -> Vec3:
    """Listing 5.3: repulsion with 1/d falloff."""
    steering = Vec3()
    for j in neighborhood:
        if j == NO_NEIGHBOR:
            continue
        offset = positions[j] - positions[me]
        length = offset.length()
        if length > 1e-12:
            steering = steering - offset.normalize() / length
    return steering


def cohesion_pure(
    me: int, positions: "list[Vec3]", neighborhood: "list[int]"
) -> Vec3:
    """Listing 5.4: accumulate offsets toward the neighbors."""
    steering = Vec3()
    for j in neighborhood:
        if j == NO_NEIGHBOR:
            continue
        steering = steering + (positions[j] - positions[me])
    return steering


def alignment_pure(
    me: int, forwards: "list[Vec3]", neighborhood: "list[int]"
) -> Vec3:
    """Listing 5.5: average of neighbor headings, relative to mine."""
    steering = Vec3()
    count = 0
    for j in neighborhood:
        if j == NO_NEIGHBOR:
            continue
        steering = steering + forwards[j]
        count += 1
    return steering - forwards[me] * count


def flocking_pure(
    me: int,
    positions: "list[Vec3]",
    forwards: "list[Vec3]",
    neighborhood: "list[int]",
    params: BoidsParams,
) -> Vec3:
    """Listing 5.1: the weighted combination."""
    sep = separation_pure(me, positions, neighborhood).normalize()
    ali = alignment_pure(me, forwards, neighborhood).normalize()
    coh = cohesion_pure(me, positions, neighborhood).normalize()
    return (
        sep * params.separation_weight
        + ali * params.alignment_weight
        + coh * params.cohesion_weight
    )


# ----------------------------------------------------------------------
# Vectorized implementations (all agents at once)
# ----------------------------------------------------------------------
def _normalize_rows(v: np.ndarray) -> np.ndarray:
    norms = np.linalg.norm(v, axis=-1, keepdims=True)
    return np.divide(v, norms, out=np.zeros_like(v), where=norms > 1e-12)


def _gather(values: np.ndarray, neighbors: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Gather per-neighbor rows; returns (gathered (n,k,3), valid (n,k))."""
    valid = neighbors != NO_NEIGHBOR
    safe = np.where(valid, neighbors, 0)
    return values[safe], valid


def separation_np(positions: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
    """Vectorized listing 5.3 over an ``(n, 3)`` position array."""
    npos, valid = _gather(positions, neighbors)
    offset = npos - positions[:, None, :]
    length = np.linalg.norm(offset, axis=2)
    ok = valid & (length > 1e-12)
    # -offset.normalize()/length == -offset / length^2
    inv = np.where(ok, 1.0 / np.where(ok, length, 1.0) ** 2, 0.0)
    return -(offset * inv[:, :, None]).sum(axis=1)


def cohesion_np(positions: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
    """Vectorized listing 5.4."""
    npos, valid = _gather(positions, neighbors)
    offset = (npos - positions[:, None, :]) * valid[:, :, None]
    return offset.sum(axis=1)


def alignment_np(forwards: np.ndarray, neighbors: np.ndarray) -> np.ndarray:
    """Vectorized listing 5.5."""
    nfwd, valid = _gather(forwards, neighbors)
    total = (nfwd * valid[:, :, None]).sum(axis=1)
    counts = valid.sum(axis=1)
    return total - forwards * counts[:, None]


def flocking_np(
    positions: np.ndarray,
    forwards: np.ndarray,
    neighbors: np.ndarray,
    params: BoidsParams,
) -> np.ndarray:
    """Vectorized listing 5.1: the full flocking steering vector."""
    sep = _normalize_rows(separation_np(positions, neighbors))
    ali = _normalize_rows(alignment_np(forwards, neighbors))
    coh = _normalize_rows(cohesion_np(positions, neighbors))
    return (
        sep * params.separation_weight
        + ali * params.alignment_weight
        + coh * params.cohesion_weight
    )
