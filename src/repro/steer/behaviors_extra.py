"""The wider OpenSteer behavior library (Reynolds, GDC 1999).

§5.3: "OpenSteer ... provides simple steering behaviors and a basic agent
implementation", and §5.1 names fleeing as a canonical action.  The Boids
scenario only exercises flocking, but the library the paper integrates
with carries the full Reynolds repertoire; reproducing it makes the
substrate genuinely reusable (and gives the examples a second scenario).

Every behavior is a pure function from agent state to a steering vector,
interpreted exactly as §5.1 prescribes: direction = desired movement,
length = acceleration.
"""

from __future__ import annotations

from repro.common.rng import make_rng
from repro.steer.vec3 import Vec3


def seek(position: Vec3, velocity: Vec3, target: Vec3, max_speed: float) -> Vec3:
    """Steer toward a static target at full speed."""
    desired = (target - position).normalize() * max_speed
    return desired - velocity


def flee(position: Vec3, velocity: Vec3, threat: Vec3, max_speed: float) -> Vec3:
    """Steer directly away from a static threat ("flee from another
    agent", §5.1)."""
    desired = (position - threat).normalize() * max_speed
    return desired - velocity


def _predict_interception(
    position: Vec3, target_pos: Vec3, target_vel: Vec3, max_speed: float
) -> Vec3:
    """Linear prediction of where a moving target will be."""
    offset = target_pos - position
    lead_time = offset.length() / max(max_speed, 1e-12)
    return target_pos + target_vel * lead_time


def pursue(
    position: Vec3,
    velocity: Vec3,
    target_pos: Vec3,
    target_vel: Vec3,
    max_speed: float,
) -> Vec3:
    """Seek the target's *predicted* position."""
    return seek(
        position,
        velocity,
        _predict_interception(position, target_pos, target_vel, max_speed),
        max_speed,
    )


def evade(
    position: Vec3,
    velocity: Vec3,
    threat_pos: Vec3,
    threat_vel: Vec3,
    max_speed: float,
) -> Vec3:
    """Flee the threat's predicted position."""
    return flee(
        position,
        velocity,
        _predict_interception(position, threat_pos, threat_vel, max_speed),
        max_speed,
    )


def arrival(
    position: Vec3,
    velocity: Vec3,
    target: Vec3,
    max_speed: float,
    slowing_distance: float,
) -> Vec3:
    """Seek that decelerates inside the slowing radius and stops on the
    target (Reynolds' "arrival")."""
    offset = target - position
    distance = offset.length()
    if distance < 1e-12:
        return -velocity  # park
    ramped = max_speed * (distance / slowing_distance)
    clipped = min(ramped, max_speed)
    desired = offset * (clipped / distance)
    return desired - velocity


class Wander:
    """Reynolds' wander: a random walk on a sphere projected ahead of the
    agent — smooth, lifelike meandering.  Stateful (the wander point
    persists between steps), deterministic given the seed."""

    def __init__(
        self,
        wander_radius: float = 1.0,
        wander_distance: float = 2.0,
        jitter: float = 0.3,
        seed: int | None = None,
    ) -> None:
        self.wander_radius = wander_radius
        self.wander_distance = wander_distance
        self.jitter = jitter
        self._rng = make_rng(seed)
        self._point = Vec3(1.0, 0.0, 0.0)

    def __call__(self, forward: Vec3) -> Vec3:
        j = self._rng.uniform(-1.0, 1.0, size=3) * self.jitter
        self._point = (
            self._point + Vec3(float(j[0]), float(j[1]), float(j[2]))
        ).normalize() * self.wander_radius
        circle_center = forward * self.wander_distance
        return circle_center + self._point


def separation_only_distance(
    position: Vec3, obstacle_center: Vec3, obstacle_radius: float
) -> float:
    """Signed clearance between a point and a spherical obstacle."""
    return position.distance(obstacle_center) - obstacle_radius


def avoid_sphere(
    position: Vec3,
    forward: Vec3,
    speed: float,
    obstacle_center: Vec3,
    obstacle_radius: float,
    agent_radius: float,
    lookahead_s: float,
) -> Vec3:
    """Spherical obstacle avoidance: if the swept path intersects the
    (inflated) obstacle, push laterally away from its center."""
    min_clearance = obstacle_radius + agent_radius
    to_center = obstacle_center - position
    along = to_center.dot(forward)
    if along <= 0 or along > speed * lookahead_s + min_clearance:
        return Vec3()  # behind us, or too far ahead to matter
    lateral = to_center.perpendicular_component(forward)
    if lateral.length() >= min_clearance:
        return Vec3()  # the path misses
    if lateral.length_squared() < 1e-18:
        # Dead-center: pick any perpendicular escape direction.
        up_hint = Vec3(0, 1, 0) if abs(forward.y) < 0.99 else Vec3(1, 0, 0)
        lateral = forward.cross(up_hint)
    return -lateral.normalize() * (min_clearance - 0.0)


def follow_path(
    position: Vec3,
    velocity: Vec3,
    waypoints: "list[Vec3]",
    current_index: int,
    arrive_radius: float,
    max_speed: float,
) -> "tuple[Vec3, int]":
    """Waypoint path following: seek the current waypoint, advance when
    inside the arrival radius.  Returns (steering, next_index)."""
    if not waypoints:
        return Vec3(), current_index
    index = min(current_index, len(waypoints) - 1)
    target = waypoints[index]
    if position.distance(target) <= arrive_radius and index + 1 < len(waypoints):
        index += 1
        target = waypoints[index]
    if index == len(waypoints) - 1:
        steering = arrival(
            position, velocity, target, max_speed, slowing_distance=arrive_radius * 4
        )
    else:
        steering = seek(position, velocity, target, max_speed)
    return steering, index
