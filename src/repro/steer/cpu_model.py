"""Timing model of the paper's CPU Boids implementation (§5.3).

The paper measures a single-core Athlon 64 3700+ running the (serial,
brute-force) OpenSteer code.  Our functional engine computes the same
simulation with vectorized numpy or a k-d tree, so its wall-clock says
nothing about the 2007 testbed; instead we charge the *paper's algorithm*
its modelled cycle costs:

* the neighbor search scans all ``n`` agents per thinking agent at
  ``cycles_per_candidate`` each — O(n^2), the 82% bottleneck of Fig. 5.5;
* the rest of the simulation substage (three behaviors over <= 7
  neighbors, weighting, normalization) is a fixed per-thinker cost;
* modification and draw are linear, per agent, every step.

The per-operation constants are calibrated against the paper's published
ratios (Fig. 5.5's 82%, and through the GPU model Fig. 6.2's version
ladder); see ``repro/bench/calibration.py`` for the provenance notes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simgpu.arch import ATHLON64_3700, CpuSpec


@dataclass(frozen=True)
class CpuCostModel:
    """Cycle costs of the serial OpenSteer implementation."""

    cpu: CpuSpec = ATHLON64_3700
    #: Inner-loop cost of listing 5.2 per candidate agent: distance
    #: computation, radius compare, bookkeeping, loop overhead.
    cycles_per_candidate: float = 15.0
    #: Steering-vector calculation per thinking agent (3 behaviors over 7
    #: neighbors + normalize + weight, listing 5.1).
    cycles_steering_per_agent: float = 2400.0
    #: Modification substage per agent (vehicle model + world wrap).
    cycles_modification_per_agent: float = 250.0
    #: Draw stage per agent (matrix build + GL submission + render share);
    #: drawing alone caps 4096 agents at ~60 fps (§6.3.2: the 4096-agent
    #: demo is draw-bound).
    cycles_draw_per_agent: float = 8900.0
    #: Fixed per-step bookkeeping (loop scaffolding, stage switching).
    cycles_step_overhead: float = 20_000.0

    # ------------------------------------------------------------------
    def neighbor_search_cycles(self, n: int, thinkers: int) -> float:
        """The all-agents neighbor search: O(thinkers * n)."""
        return float(thinkers) * n * self.cycles_per_candidate

    def steering_cycles(self, thinkers: int) -> float:
        return float(thinkers) * self.cycles_steering_per_agent

    def modification_cycles(self, n: int) -> float:
        return float(n) * self.cycles_modification_per_agent

    def update_cycles(self, n: int, thinkers: int) -> float:
        """The full update stage (simulation + modification substages)."""
        return (
            self.neighbor_search_cycles(n, thinkers)
            + self.steering_cycles(thinkers)
            + self.modification_cycles(n)
            + self.cycles_step_overhead
        )

    def draw_cycles(self, n: int) -> float:
        return float(n) * self.cycles_draw_per_agent

    # ------------------------------------------------------------------
    def parallel_update_cycles(
        self, n: int, thinkers: int, cores: int, efficiency: float = 0.85
    ) -> float:
        """The Knafla & Leopold OpenMP baseline [KLar]: the update stage
        parallelized across CPU cores.

        The paper's CPU version "is based on a version by Knafla and
        Leopold" that parallelized OpenSteer with OpenMP; the measured
        machine had one core, but the citation invites the comparison.
        Both substages parallelize (agents are independent within each,
        §6.1); the per-step overhead and an imperfect-scaling factor stay
        serial.
        """
        parallel_part = (
            self.neighbor_search_cycles(n, thinkers)
            + self.steering_cycles(thinkers)
            + self.modification_cycles(n)
        )
        speedup = 1.0 + (cores - 1) * efficiency
        return parallel_part / speedup + self.cycles_step_overhead

    # ------------------------------------------------------------------
    def seconds(self, cycles: float) -> float:
        return cycles / self.cpu.clock_hz

    def update_seconds(self, n: int, thinkers: int) -> float:
        return self.seconds(self.update_cycles(n, thinkers))

    def draw_seconds(self, n: int) -> float:
        return self.seconds(self.draw_cycles(n))


#: The calibrated default model.
DEFAULT_CPU_MODEL = CpuCostModel()
