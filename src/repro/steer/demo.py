"""OpenSteerDemo: the plugin-based demo application (paper §5.3, Fig 5.4).

"OpenSteerDemo currently offers different scenarios — among others the
Boids scenario.  The design of OpenSteerDemo is similar to the ones of
games.  It runs a main loop, which first recalculates all agent states
and then draws the new states to the screen."

Reproduced here headless: a :class:`Clock` with fixed simulation steps, a
:class:`PlugIn` interface scenarios implement, an :class:`Annotation`
recorder standing in for the debug-drawing layer (OpenSteer exists "to
simulate and debug some artificial intelligence aspects of games",
ch. 1), and the staged main loop — update stage (simulation substage,
then modification substage), then draw stage — with per-stage cycle
accounting feeding the same :class:`StageProfile` Fig. 5.5 reads.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.common.errors import ReproError
from repro.steer.profiler import StageProfile


class DemoError(ReproError):
    """Plugin registry / main-loop misuse."""


@dataclass
class Clock:
    """Fixed-timestep simulation clock with pause support."""

    dt: float = 1.0 / 60.0
    elapsed: float = 0.0
    step_count: int = 0
    paused: bool = False

    def tick(self) -> float:
        """Advance one simulation step; returns the dt consumed (0 when
        paused — the draw stage still runs, as in the real demo)."""
        if self.paused:
            return 0.0
        self.elapsed += self.dt
        self.step_count += 1
        return self.dt

    def toggle_pause(self) -> bool:
        self.paused = not self.paused
        return self.paused


@dataclass(frozen=True)
class AnnotationItem:
    """One debug-drawing primitive recorded during a frame."""

    kind: str  # "line" | "circle" | "text"
    data: tuple
    color: str = "white"


class Annotation:
    """Headless stand-in for OpenSteer's annotation (debug drawing)."""

    def __init__(self) -> None:
        self.frames: list[list[AnnotationItem]] = []
        self._current: list[AnnotationItem] = []

    def line(self, start, end, color: str = "white") -> None:
        self._current.append(AnnotationItem("line", (start, end), color))

    def circle(self, center, radius: float, color: str = "white") -> None:
        self._current.append(AnnotationItem("circle", (center, radius), color))

    def text(self, position, message: str, color: str = "white") -> None:
        self._current.append(AnnotationItem("text", (position, message), color))

    def end_frame(self) -> None:
        self.frames.append(self._current)
        self._current = []

    @property
    def last_frame(self) -> list[AnnotationItem]:
        return self.frames[-1] if self.frames else []


class PlugIn(abc.ABC):
    """One scenario: the interface OpenSteerDemo drives (Fig 5.4).

    The update stage is split into the two substages the GPU port depends
    on (§5.3/§6.1): ``simulation_substage`` computes without mutating
    shared agent state; ``modification_substage`` applies the results.
    """

    name: str = "unnamed plugin"

    @abc.abstractmethod
    def open(self, annotation: Annotation) -> None:
        """Build the scenario's world."""

    @abc.abstractmethod
    def simulation_substage(self, dt: float) -> None:
        ...

    @abc.abstractmethod
    def modification_substage(self, dt: float) -> None:
        ...

    @abc.abstractmethod
    def redraw(self, annotation: Annotation) -> None:
        """Emit this frame's drawing (annotations, headless)."""

    def reset(self) -> None:  # pragma: no cover - optional hook
        """Restore the initial state (the demo's 'r' key)."""

    def close(self) -> None:  # pragma: no cover - optional hook
        """Tear the scenario down."""


class OpenSteerDemo:
    """The main-loop driver: plugin registry + staged frame execution."""

    def __init__(self, clock: Clock | None = None) -> None:
        self.clock = clock or Clock()
        self.annotation = Annotation()
        self.profile = StageProfile()
        self._plugins: dict[str, PlugIn] = {}
        self._active: PlugIn | None = None
        self.frames_run = 0

    # -- registry --------------------------------------------------------
    def register(self, plugin: PlugIn) -> None:
        if plugin.name in self._plugins:
            raise DemoError(f"plugin {plugin.name!r} already registered")
        self._plugins[plugin.name] = plugin

    @property
    def plugin_names(self) -> list[str]:
        return sorted(self._plugins)

    def select(self, name: str) -> PlugIn:
        try:
            plugin = self._plugins[name]
        except KeyError:
            raise DemoError(
                f"no plugin {name!r}; registered: {self.plugin_names}"
            ) from None
        if self._active is not None:
            self._active.close()
        self._active = plugin
        plugin.open(self.annotation)
        return plugin

    @property
    def active(self) -> PlugIn:
        if self._active is None:
            raise DemoError("no plugin selected")
        return self._active

    # -- the main loop (Fig 5.4) -----------------------------------------
    def run_frame(self) -> None:
        """Update stage (simulation substage, modification substage) then
        draw stage — one full main-loop iteration."""
        plugin = self.active
        dt = self.clock.tick()
        if dt > 0.0:
            plugin.simulation_substage(dt)
            plugin.modification_substage(dt)
        plugin.redraw(self.annotation)
        self.annotation.end_frame()
        self.frames_run += 1

    def run(self, frames: int) -> None:
        for _ in range(frames):
            self.run_frame()
