"""Neighbor search: the 7 nearest agents within a radius (paper §5.2.1).

Three engines compute the identical result:

``pure``
    Listing 5.2 verbatim — a linear scan keeping the 7 nearest.  O(n) per
    agent, O(n^2) for everyone; the CPU performance bottleneck (82% of
    cycles, Fig. 5.5) and the exact algorithm the GPU kernels port.

``numpy``
    Blocked brute force: the same O(n^2) arithmetic vectorized, with a
    block size bounding the pairwise-distance working set.

``kdtree``
    ``scipy.spatial.cKDTree`` k-nearest query with the radius filter
    applied afterwards.  An *engine* optimization only — it returns the
    same neighbor sets, and the paper-faithful timing model continues to
    charge for the brute-force scan the paper's code performs.  (It is
    also the "spatial data structures" future work of ch. 7.)

All engines return an ``(n, k)`` int array padded with -1.
"""

from __future__ import annotations

import numpy as np

from repro.steer.params import BoidsParams
from repro.steer.vec3 import Vec3

NO_NEIGHBOR = -1


def neighbor_search_pure(
    positions: "list[Vec3]",
    me: int,
    search_radius: float,
    max_neighbors: int = 7,
) -> list[int]:
    """Listing 5.2: the 7 nearest agents within the radius, one agent."""
    neighbors: list[tuple[float, int]] = []  # (distance^2, index)
    r2 = search_radius * search_radius
    my_pos = positions[me]
    for j, other in enumerate(positions):
        if j == me:
            continue
        d2 = my_pos.distance_squared(other)
        if d2 < r2:
            if len(neighbors) < max_neighbors:
                neighbors.append((d2, j))
            else:
                # Evict the lexicographically largest (d2, index) pair if
                # the new pair is smaller: the kept set is *the*
                # max_neighbors smallest pairs, independent of scan order
                # — so ties resolve identically across every engine and
                # both device backends.
                worst = max(range(len(neighbors)), key=lambda k: neighbors[k])
                if neighbors[worst] > (d2, j):
                    neighbors[worst] = (d2, j)
    neighbors.sort()
    found = [j for _d2, j in neighbors]
    return found + [NO_NEIGHBOR] * (max_neighbors - len(found))


def neighbor_search_all_pure(
    positions: "list[Vec3]", params: BoidsParams
) -> np.ndarray:
    """The listing 5.2 scan for every agent (the O(n^2) problem)."""
    return np.array(
        [
            neighbor_search_pure(
                positions, i, params.search_radius, params.max_neighbors
            )
            for i in range(len(positions))
        ],
        dtype=np.int64,
    ).reshape(len(positions), params.max_neighbors)


def neighbor_search_all_numpy(
    positions: np.ndarray,
    params: BoidsParams,
    block: int = 2048,
    rows: "np.ndarray | None" = None,
) -> np.ndarray:
    """Blocked brute force over an ``(n, 3)`` float array.

    ``rows`` restricts the search to the given query agents — the think
    frequency's cohort (§5.3): only those rows of the result are filled,
    the rest stay NO_NEIGHBOR.
    """
    n = positions.shape[0]
    k = params.max_neighbors
    r2 = params.search_radius**2
    query = np.arange(n) if rows is None else np.asarray(rows)
    out = np.full((n, k), NO_NEIGHBOR, dtype=np.int64)
    kk = min(k, n - 1)
    if kk == 0:
        return out  # a lone agent has no possible neighbors
    for start in range(0, len(query), block):
        sel = query[start : start + block]
        chunk = positions[sel]
        # (block, n) squared distances.
        d2 = ((chunk[:, None, :] - positions[None, :, :]) ** 2).sum(axis=2)
        d2[np.arange(len(sel)), sel] = np.inf  # exclude self
        d2[d2 >= r2] = np.inf
        # Stable sort on d2 breaks ties by ascending column index, i.e.
        # the exact (d2, index) selection.  (argpartition's k-cut is
        # arbitrary under tied distances, so it cannot be used here.)
        idx = np.argsort(d2, axis=1, kind="stable")[:, :kk]
        part = np.take_along_axis(d2, idx, axis=1)
        idx[~np.isfinite(part)] = NO_NEIGHBOR
        out[sel, :kk] = idx
    return out


def neighbor_search_all_kdtree(
    positions: np.ndarray,
    params: BoidsParams,
    rows: "np.ndarray | None" = None,
) -> np.ndarray:
    """k-NN via cKDTree, radius-filtered — same sets, different engine."""
    from scipy.spatial import cKDTree

    n = positions.shape[0]
    k = params.max_neighbors
    query = np.arange(n) if rows is None else np.asarray(rows)
    tree = cKDTree(positions)
    # +1 for the self-match the query returns, +1 as a tie sentinel: one
    # candidate past the kept set, so a tie straddling the k-cut always
    # shows up as a duplicated distance in the returned row.
    kk = min(k + 2, n)
    dist, idx = tree.query(positions[query], k=kk)
    if kk == 1:
        dist = dist[:, None]
        idx = idx[:, None]
    # Drop self-matches and out-of-radius hits.
    self_col = idx == query[:, None]
    dist = np.where(self_col, np.inf, dist)
    dist[dist >= params.search_radius] = np.inf
    order = np.argsort(dist, axis=1, kind="stable")
    dist = np.take_along_axis(dist, order, axis=1)
    idx = np.take_along_axis(idx, order, axis=1)
    out = np.full((n, k), NO_NEIGHBOR, dtype=np.int64)
    take = min(k, kk)
    sel = idx[:, :take].astype(np.int64)
    sel[~np.isfinite(dist[:, :take])] = NO_NEIGHBOR
    out[query, :take] = sel
    # The tree's k-cut and return order are arbitrary under exact ties,
    # so any row showing a duplicated in-radius distance is recomputed
    # with the exact (d2, index) engine.  Measure-zero for continuous
    # positions — the fallback fires only on manufactured tie inputs.
    finite = np.isfinite(dist)
    dup = (dist[:, :-1] == dist[:, 1:]) & finite[:, 1:]
    tie_rows = query[np.any(dup, axis=1)]
    if tie_rows.size:
        exact = neighbor_search_all_numpy(positions, params, rows=tie_rows)
        out[tie_rows] = exact[tie_rows]
    return out


ENGINES = {
    "numpy": neighbor_search_all_numpy,
    "kdtree": neighbor_search_all_kdtree,
}


def neighbor_search_all(
    positions: np.ndarray,
    params: BoidsParams,
    engine: str = "auto",
    rows: "np.ndarray | None" = None,
) -> np.ndarray:
    """Dispatch to an engine; ``auto`` uses kdtree for large populations."""
    if engine == "auto":
        engine = "kdtree" if positions.shape[0] > 2048 else "numpy"
    try:
        fn = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown neighbor engine {engine!r}; pick from {sorted(ENGINES)}"
        ) from None
    return fn(positions, params, rows=rows)
