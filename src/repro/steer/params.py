"""Boids scenario parameters (paper ch. 5).

One parameter block shared by the CPU reference, the numpy engine, and
the GPU kernels, so every implementation simulates the *same* world:

* agents are identical spheres in a spherical world; leaving the world
  re-enters at the diametrically opposite point (§5.1);
* the local environment is the 7 nearest agents within the neighbor
  search radius (§5.2.1);
* flocking = weighted sum of normalized separation/alignment/cohesion
  (listing 5.1).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BoidsParams:
    """Everything that defines one Boids run (except agent count/seed)."""

    world_radius: float = 50.0
    search_radius: float = 9.0
    max_neighbors: int = 7  # "We only consider the 7 nearest neighbors"
    separation_weight: float = 12.0  # weightA in listing 5.1
    alignment_weight: float = 8.0  # weightB
    cohesion_weight: float = 8.0  # weightC
    agent_radius: float = 0.5
    max_force: float = 27.0
    max_speed: float = 9.0
    mass: float = 1.0
    dt: float = 1.0 / 60.0
    #: Exponential smoothing factor for acceleration (OpenSteer's
    #: blendIntoAccumulator); also the source of the modification kernel's
    #: "first simulation time step" branch (§6.3.1).
    accel_smoothing: float = 0.22

    #: Think frequency denominator: 1 = every step (off); 10 = each agent
    #: recomputes its steering every 10th step (§5.3, "skipThink").
    think_every: int = 1

    def with_think_frequency(self, every: int) -> "BoidsParams":
        """The same world with a different think frequency."""
        from dataclasses import replace

        return replace(self, think_every=every)

    @property
    def think_frequency_label(self) -> str:
        return "off" if self.think_every <= 1 else f"1/{self.think_every}"


#: The configuration the paper's measurements use.
DEFAULT_PARAMS = BoidsParams()

#: The paper's think-frequency variant (1/10, §5.3).
THINK_FREQ_PARAMS = DEFAULT_PARAMS.with_think_frequency(10)
