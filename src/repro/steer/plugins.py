"""Built-in OpenSteerDemo plugins: the Boids scenario and a pursuit
scenario (§5.3: "OpenSteerDemo currently offers different scenarios —
among others the Boids scenario")."""

from __future__ import annotations

from repro.steer.behaviors_extra import Wander, evade, pursue
from repro.steer.demo import Annotation, PlugIn
from repro.steer.params import BoidsParams, DEFAULT_PARAMS
from repro.steer.simulation import Simulation
from repro.steer.vec3 import Vec3


class BoidsPlugIn(PlugIn):
    """The paper's scenario, wrapped as a demo plugin."""

    name = "Boids"

    def __init__(
        self,
        n: int = 256,
        params: BoidsParams = DEFAULT_PARAMS,
        seed: int | None = None,
        engine: str = "auto",
    ) -> None:
        self._n = n
        self._params = params
        self._seed = seed
        self._engine = engine
        self.sim: Simulation | None = None

    def open(self, annotation: Annotation) -> None:
        self.sim = Simulation(
            self._n, self._params, seed=self._seed, engine=self._engine
        )

    def simulation_substage(self, dt: float) -> None:
        self.sim.simulation_substage()

    def modification_substage(self, dt: float) -> None:
        self.sim.modification_substage()
        self.sim.step_count += 1

    def redraw(self, annotation: Annotation) -> None:
        # One annotation line per agent: position -> position + forward.
        for p, f in zip(self.sim.positions, self.sim.forwards):
            annotation.line(tuple(p), tuple(p + f), color="gray")
        annotation.text(
            (0, 0, 0), f"{self._n} boids, step {self.sim.step_count}"
        )

    def reset(self) -> None:
        self.open(Annotation())


class PursuitPlugIn(PlugIn):
    """Pursuit and evasion, driving the wider Reynolds behavior set."""

    name = "Pursuit"

    def __init__(
        self,
        pursuer_speed: float = 11.0,
        evader_speed: float = 9.0,
        max_force: float = 30.0,
        seed: int = 9,
    ) -> None:
        self._speeds = (pursuer_speed, evader_speed)
        self._max_force = max_force
        self._seed = seed
        self.capture_radius = 2.0
        self.captured = False

    def open(self, annotation: Annotation) -> None:
        self.pursuer_pos = Vec3(0, 0, 0)
        self.pursuer_vel = Vec3(1, 0, 0)
        self.evader_pos = Vec3(25, 0, 0)
        self.evader_vel = Vec3(0, 0, 6)
        self._wander = Wander(jitter=0.4, seed=self._seed)
        self._pending: tuple[Vec3, Vec3] | None = None
        self.captured = False

    def simulation_substage(self, dt: float) -> None:
        # Compute both steering vectors without touching state — the
        # substage contract (§5.3).
        sp = pursue(
            self.pursuer_pos,
            self.pursuer_vel,
            self.evader_pos,
            self.evader_vel,
            self._speeds[0],
        )
        se = evade(
            self.evader_pos,
            self.evader_vel,
            self.pursuer_pos,
            self.pursuer_vel,
            self._speeds[1],
        ) + self._wander(self.evader_vel.normalize()) * 2.0
        self._pending = (sp, se)

    def modification_substage(self, dt: float) -> None:
        if self._pending is None or self.captured:
            return
        sp, se = self._pending
        for which, (steer, max_speed) in enumerate(
            ((sp, self._speeds[0]), (se, self._speeds[1]))
        ):
            force = steer.truncate_length(self._max_force)
            if which == 0:
                self.pursuer_vel = (self.pursuer_vel + force * dt).truncate_length(max_speed)
                self.pursuer_pos = self.pursuer_pos + self.pursuer_vel * dt
            else:
                self.evader_vel = (self.evader_vel + force * dt).truncate_length(max_speed)
                self.evader_pos = self.evader_pos + self.evader_vel * dt
        if self.pursuer_pos.distance(self.evader_pos) < self.capture_radius:
            self.captured = True

    def redraw(self, annotation: Annotation) -> None:
        annotation.circle(self.pursuer_pos.as_tuple(), 0.5, color="red")
        annotation.circle(self.evader_pos.as_tuple(), 0.5, color="blue")
        annotation.line(
            self.pursuer_pos.as_tuple(), self.evader_pos.as_tuple(), "gray"
        )
        if self.captured:
            annotation.text(self.evader_pos.as_tuple(), "CAPTURED", "yellow")
