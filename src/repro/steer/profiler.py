"""Per-stage cycle accounting — the instrument behind Fig. 5.5.

The paper profiles the CPU demo and finds the neighbor search eats ~82%
of the cycles.  :class:`StageProfile` accumulates modelled cycles per
stage across steps and reports shares; the Fig. 5.5 benchmark prints its
:meth:`breakdown`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro import obs

#: Canonical stage names, in pipeline order (Fig. 5.4).
STAGES = ("neighbor_search", "steering", "modification", "draw", "other")


@dataclass
class StageProfile:
    """Accumulated cycles per pipeline stage."""

    cycles: "OrderedDict[str, float]" = field(
        default_factory=lambda: OrderedDict((s, 0.0) for s in STAGES)
    )

    def add(self, stage: str, cycles: float) -> None:
        if stage not in self.cycles:
            raise KeyError(f"unknown stage {stage!r}; expected one of {STAGES}")
        self.cycles[stage] += cycles
        obs.counter("steer.stage_cycles", stage=stage).inc(cycles)
        tracer = obs.get_tracer()
        if tracer.enabled:
            tracer.instant(f"stage:{stage}", cycles=cycles)

    @property
    def total(self) -> float:
        return sum(self.cycles.values())

    def share(self, stage: str) -> float:
        """Fraction of all cycles spent in ``stage`` (0.0 when idle)."""
        total = self.total
        return self.cycles[stage] / total if total else 0.0

    def update_share(self, stage: str) -> float:
        """Share within the update stage only (draw excluded), which is
        what Fig. 5.5 reports."""
        update_total = sum(
            c for s, c in self.cycles.items() if s != "draw"
        )
        return self.cycles[stage] / update_total if update_total else 0.0

    def breakdown(self) -> "OrderedDict[str, float]":
        """Stage -> share of total cycles."""
        total = self.total
        return OrderedDict(
            (s, (c / total if total else 0.0)) for s, c in self.cycles.items()
        )

    def merge(self, other: "StageProfile") -> None:
        """Accumulate another profile into this one, in place — the same
        API shape as :meth:`repro.simgpu.profile.InstructionProfile.merge`,
        so the two profile types compose uniformly."""
        for s in STAGES:
            self.cycles[s] += other.cycles[s]

    def merged(self, other: "StageProfile") -> "StageProfile":
        """Out-of-place variant of :meth:`merge` (kept for callers that
        want a fresh profile): returns ``self + other``."""
        out = StageProfile()
        out.merge(self)
        out.merge(other)
        return out
