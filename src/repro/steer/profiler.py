"""Per-stage cycle accounting — the instrument behind Fig. 5.5.

The paper profiles the CPU demo and finds the neighbor search eats ~82%
of the cycles.  :class:`StageProfile` accumulates modelled cycles per
stage across steps and reports shares; the Fig. 5.5 benchmark prints its
:meth:`breakdown`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

#: Canonical stage names, in pipeline order (Fig. 5.4).
STAGES = ("neighbor_search", "steering", "modification", "draw", "other")


@dataclass
class StageProfile:
    """Accumulated cycles per pipeline stage."""

    cycles: "OrderedDict[str, float]" = field(
        default_factory=lambda: OrderedDict((s, 0.0) for s in STAGES)
    )

    def add(self, stage: str, cycles: float) -> None:
        if stage not in self.cycles:
            raise KeyError(f"unknown stage {stage!r}; expected one of {STAGES}")
        self.cycles[stage] += cycles

    @property
    def total(self) -> float:
        return sum(self.cycles.values())

    def share(self, stage: str) -> float:
        """Fraction of all cycles spent in ``stage`` (0.0 when idle)."""
        total = self.total
        return self.cycles[stage] / total if total else 0.0

    def update_share(self, stage: str) -> float:
        """Share within the update stage only (draw excluded), which is
        what Fig. 5.5 reports."""
        update_total = sum(
            c for s, c in self.cycles.items() if s != "draw"
        )
        return self.cycles[stage] / update_total if update_total else 0.0

    def breakdown(self) -> "OrderedDict[str, float]":
        """Stage -> share of total cycles."""
        total = self.total
        return OrderedDict(
            (s, (c / total if total else 0.0)) for s, c in self.cycles.items()
        )

    def merged(self, other: "StageProfile") -> "StageProfile":
        out = StageProfile()
        for s in STAGES:
            out.cycles[s] = self.cycles[s] + other.cycles[s]
        return out
