"""The OpenSteerDemo main loop (paper §5.3, Fig. 5.4).

Every frame runs the **update stage** — a *simulation substage* in which
thinking agents compute steering vectors without touching shared state,
then a *modification substage* that applies them — followed by the
**draw stage**.  The two-substage split is what makes the GPU port's
kernel decomposition possible (§6.1), so we keep it strict: the
simulation substage never mutates agent state.

Think frequency (§5.3, "skipThink"): with ``think_every = T``, only the
agents whose index is congruent to the step number mod T recompute their
steering; everyone else keeps flying on their cached steering vector.
The modification substage still runs for all agents every step.

Two interchangeable state engines:

* :class:`ReferenceSimulation` — Agent objects + the pure listing code.
  The ground truth for tests.
* :class:`Simulation` — column arrays + vectorized numpy.  What the
  benchmarks run.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.steer.agent import Agent, apply_steering, draw_matrix, spawn_agents
from repro.steer.behaviors import flocking_np, flocking_pure
from repro.steer.cpu_model import CpuCostModel, DEFAULT_CPU_MODEL
from repro.steer.neighbors import (
    neighbor_search_all,
    neighbor_search_all_pure,
)
from repro.steer.params import BoidsParams, DEFAULT_PARAMS
from repro.steer.profiler import StageProfile
from repro.steer.vec3 import Vec3


def think_cohort(n: int, step: int, think_every: int) -> np.ndarray:
    """Indices of the agents that recompute steering this step."""
    if think_every <= 1:
        return np.arange(n)
    return np.arange(step % think_every, n, think_every)


@dataclass
class StepTiming:
    """Modelled CPU seconds of one frame, stage by stage."""

    neighbor_search_s: float
    steering_s: float
    modification_s: float
    draw_s: float

    @property
    def update_s(self) -> float:
        return self.neighbor_search_s + self.steering_s + self.modification_s

    @property
    def frame_s(self) -> float:
        return self.update_s + self.draw_s


class Simulation:
    """Vectorized Boids state + the staged main loop."""

    def __init__(
        self,
        n: int,
        params: BoidsParams = DEFAULT_PARAMS,
        seed: int | None = None,
        engine: str = "auto",
        cpu_model: CpuCostModel = DEFAULT_CPU_MODEL,
    ) -> None:
        self.params = params
        self.engine = engine
        self.cpu_model = cpu_model
        agents = spawn_agents(n, params, seed)
        self.positions = np.array([a.position.as_tuple() for a in agents])
        self.forwards = np.array([a.forward.as_tuple() for a in agents])
        self.speeds = np.array([a.speed for a in agents])
        self.smoothed_accel = np.zeros((n, 3))
        self.steering = np.zeros((n, 3))
        self.step_count = 0
        self.profile = StageProfile()

    @property
    def n(self) -> int:
        return self.positions.shape[0]

    # ------------------------------------------------------------------
    # stages
    # ------------------------------------------------------------------
    def simulation_substage(self) -> np.ndarray:
        """Compute steering for this step's think cohort; returns the
        cohort indices.  Mutates only the steering cache, never agent
        state (the substage contract of §5.3)."""
        cohort = think_cohort(self.n, self.step_count, self.params.think_every)
        # Only the thinking cohort searches (skipThink, §5.3) — the
        # functional engine skips the other agents' O(n) scans entirely.
        neighbors = neighbor_search_all(
            self.positions, self.params, engine=self.engine, rows=cohort
        )
        self.steering[cohort] = flocking_np(
            self.positions, self.forwards, neighbors, self.params
        )[cohort]
        # Model what the paper's serial code would cost.
        m = self.cpu_model
        self.profile.add(
            "neighbor_search", m.neighbor_search_cycles(self.n, len(cohort))
        )
        self.profile.add("steering", m.steering_cycles(len(cohort)))
        return cohort

    def modification_substage(self) -> None:
        """Apply cached steering vectors to every agent (vectorized twin
        of :func:`repro.steer.agent.apply_steering`)."""
        p = self.params
        force = _truncate_rows(self.steering, p.max_force)
        accel = force / p.mass
        if self.step_count == 0:
            smoothed = accel
        else:
            s = p.accel_smoothing
            smoothed = self.smoothed_accel * (1.0 - s) + accel * s
        self.smoothed_accel = smoothed

        velocity = self.forwards * self.speeds[:, None] + smoothed * p.dt
        speed = np.linalg.norm(velocity, axis=1)
        over = speed > p.max_speed
        if over.any():
            velocity[over] *= (p.max_speed / speed[over])[:, None]
            speed[over] = p.max_speed
        self.positions = self.positions + velocity * p.dt
        outside = (self.positions**2).sum(axis=1) > p.world_radius**2
        if outside.any():
            self.positions[outside] = -self.positions[outside]
        moving = speed > 1e-12
        self.forwards[moving] = velocity[moving] / speed[moving][:, None]
        self.speeds = speed

        self.profile.add(
            "modification", self.cpu_model.modification_cycles(self.n)
        )

    def draw_stage(self) -> np.ndarray:
        """Build the per-agent 4x4 draw matrices (the data the GPU port
        ships back to the host, §6.2.3)."""
        f = self.forwards
        up_hint = np.where(
            (np.abs(f[:, 1]) < 0.99)[:, None],
            np.array([0.0, 1.0, 0.0]),
            np.array([1.0, 0.0, 0.0]),
        )
        side = np.cross(f, up_hint)
        side /= np.maximum(np.linalg.norm(side, axis=1, keepdims=True), 1e-12)
        up = np.cross(side, f)
        mats = np.zeros((self.n, 4, 4))
        mats[:, 0, :3] = side
        mats[:, 1, :3] = up
        mats[:, 2, :3] = f
        mats[:, 3, :3] = self.positions
        mats[:, 3, 3] = 1.0
        self.profile.add("draw", self.cpu_model.draw_cycles(self.n))
        return mats

    # ------------------------------------------------------------------
    def update(self) -> StepTiming:
        """One update stage; returns the modelled stage timings."""
        m = self.cpu_model
        cohort = self.simulation_substage()
        self.modification_substage()
        timing = StepTiming(
            neighbor_search_s=m.seconds(
                m.neighbor_search_cycles(self.n, len(cohort))
            ),
            steering_s=m.seconds(m.steering_cycles(len(cohort))),
            modification_s=m.seconds(m.modification_cycles(self.n)),
            draw_s=m.draw_seconds(self.n),
        )
        self.step_count += 1
        return timing

    def frame(self) -> StepTiming:
        """Update + draw (one full main-loop iteration)."""
        timing = self.update()
        self.draw_stage()
        return timing

    def run(self, steps: int) -> list[StepTiming]:
        return [self.frame() for _ in range(steps)]

    # ------------------------------------------------------------------
    def state_snapshot(self) -> dict[str, np.ndarray]:
        return {
            "positions": self.positions.copy(),
            "forwards": self.forwards.copy(),
            "speeds": self.speeds.copy(),
        }


class ReferenceSimulation:
    """Pure-Python Agent-object simulation — listing-faithful, O(n^2),
    used as the oracle in tests."""

    def __init__(
        self,
        n: int,
        params: BoidsParams = DEFAULT_PARAMS,
        seed: int | None = None,
    ) -> None:
        self.params = params
        self.agents = spawn_agents(n, params, seed)
        self.steering = [Vec3() for _ in range(n)]
        self.step_count = 0

    # ------------------------------------------------------------------
    def update(self) -> None:
        params = self.params
        positions = [a.position for a in self.agents]
        forwards = [a.forward for a in self.agents]
        cohort = think_cohort(
            len(self.agents), self.step_count, params.think_every
        )
        neighbors = neighbor_search_all_pure(positions, params)
        for i in cohort:
            self.steering[i] = flocking_pure(
                int(i), positions, forwards, list(neighbors[i]), params
            )
        for agent, steer in zip(self.agents, self.steering):
            apply_steering(agent, steer, params)
        self.step_count += 1

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.update()

    def draw_matrices(self) -> list[tuple]:
        return [draw_matrix(a) for a in self.agents]

    def state_snapshot(self) -> dict[str, np.ndarray]:
        return {
            "positions": np.array([a.position.as_tuple() for a in self.agents]),
            "forwards": np.array([a.forward.as_tuple() for a in self.agents]),
            "speeds": np.array([a.speed for a in self.agents]),
        }


def _truncate_rows(v: np.ndarray, max_length: float) -> np.ndarray:
    """Row-wise ``Vec3.truncate_length``."""
    norms = np.linalg.norm(v, axis=1)
    over = norms > max_length
    out = v.copy()
    if over.any():
        out[over] *= (max_length / norms[over])[:, None]
    return out
