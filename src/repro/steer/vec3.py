"""3-component vector math (OpenSteer's ``Vec3``).

A POD in the paper's sense: identical layout on host and device, no
pointers, no virtual functions — so it crosses the kernel boundary with
the default byte-wise copy.  The steering behaviors (listings 5.1-5.5)
are written against exactly this interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Vec3:
    """An immutable 3-vector of floats."""

    x: float = 0.0
    y: float = 0.0
    z: float = 0.0

    # -- algebra ---------------------------------------------------------
    def __add__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x + other.x, self.y + other.y, self.z + other.z)

    def __sub__(self, other: "Vec3") -> "Vec3":
        return Vec3(self.x - other.x, self.y - other.y, self.z - other.z)

    def __neg__(self) -> "Vec3":
        return Vec3(-self.x, -self.y, -self.z)

    def __mul__(self, s: float) -> "Vec3":
        return Vec3(self.x * s, self.y * s, self.z * s)

    __rmul__ = __mul__

    def __truediv__(self, s: float) -> "Vec3":
        return Vec3(self.x / s, self.y / s, self.z / s)

    # -- metrics ---------------------------------------------------------
    def dot(self, other: "Vec3") -> float:
        return self.x * other.x + self.y * other.y + self.z * other.z

    def cross(self, other: "Vec3") -> "Vec3":
        return Vec3(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )

    def length_squared(self) -> float:
        return self.dot(self)

    def length(self) -> float:
        return math.sqrt(self.length_squared())

    def distance(self, other: "Vec3") -> float:
        return (self - other).length()

    def distance_squared(self, other: "Vec3") -> float:
        return (self - other).length_squared()

    # -- direction helpers -----------------------------------------------
    def normalize(self) -> "Vec3":
        """Unit vector; the zero vector normalizes to itself (the listing
        5.1 behaviors rely on this when an agent has no neighbors).

        Pre-scales by the largest component so squaring cannot underflow
        or overflow — tiny (subnormal-range) vectors normalize exactly as
        accurately as ordinary ones.
        """
        m = max(abs(self.x), abs(self.y), abs(self.z))
        if m == 0.0:
            return Vec3()
        scaled = Vec3(self.x / m, self.y / m, self.z / m)
        inv = 1.0 / math.sqrt(scaled.length_squared())
        return Vec3(scaled.x * inv, scaled.y * inv, scaled.z * inv)

    def truncate_length(self, max_length: float) -> "Vec3":
        """Clamp the vector's length (OpenSteer's ``truncateLength`` —
        applies max force / max speed in the vehicle model)."""
        d2 = self.length_squared()
        if d2 <= max_length * max_length:
            return self
        return self * (max_length / math.sqrt(d2))

    def parallel_component(self, unit_basis: "Vec3") -> "Vec3":
        """Projection onto a unit basis vector."""
        return unit_basis * self.dot(unit_basis)

    def perpendicular_component(self, unit_basis: "Vec3") -> "Vec3":
        """Component orthogonal to a unit basis vector."""
        return self - self.parallel_component(unit_basis)

    # -- conversions -------------------------------------------------------
    def as_tuple(self) -> tuple[float, float, float]:
        return (self.x, self.y, self.z)

    @staticmethod
    def from_tuple(t: "tuple[float, float, float]") -> "Vec3":
        return Vec3(float(t[0]), float(t[1]), float(t[2]))

    def is_finite(self) -> bool:
        return all(map(math.isfinite, (self.x, self.y, self.z)))


ZERO = Vec3()
UNIT_X = Vec3(1.0, 0.0, 0.0)
UNIT_Y = Vec3(0.0, 1.0, 0.0)
UNIT_Z = Vec3(0.0, 0.0, 1.0)
